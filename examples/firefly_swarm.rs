//! A biologically-motivated scenario: a swarm of fireflies picking a
//! pacemaker.
//!
//! The paper's introduction motivates weak-communication models with
//! primitive organisms: agents that can only flash (beep) or watch, no
//! identities, no idea how many peers exist. We place fireflies
//! uniformly at random in a field (a random geometric graph — who can
//! see whose flash), and let BFW elect a pacemaker. The example also
//! verifies the paper's energy story: after convergence the surviving
//! leader flashes at the stationary rate p/(2p+1) of Eq. (16).
//!
//! Run with: `cargo run --release --example firefly_swarm`

use bfw_core::{theory, Bfw};
use bfw_graph::{algo, generators};
use bfw_sim::{run_election, ElectionConfig, Network};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 200;
    let radius = 0.16; // flash visibility range in the unit field
    let mut rng = ChaCha8Rng::seed_from_u64(2025);

    // Sample fields until the swarm is fully visible-connected.
    let graph = loop {
        let g = generators::random_geometric(n, radius, &mut rng);
        if algo::is_connected(&g) {
            break g;
        }
    };
    let diameter = algo::diameter(&graph).expect("connected");
    let degrees = algo::degree_stats(&graph).expect("non-empty");
    println!("firefly field: {n} fireflies, visibility radius {radius}");
    println!(
        "  visibility graph: {} edges, diameter {diameter}, mean degree {:.1}",
        graph.edge_count(),
        degrees.mean
    );

    let p = 0.5;
    let outcome = run_election(
        Bfw::new(p),
        graph.clone().into(),
        7,
        ElectionConfig::new(10_000_000).with_stability_check(5_000),
    )?;
    println!("\npacemaker elected: firefly {}", outcome.leader);
    println!("  converged round:  {}", outcome.converged_round);
    println!(
        "  flashes used:     {} total ({:.2} per firefly per round)",
        outcome.total_beeps,
        outcome.total_beeps as f64 / (n as u64 * (outcome.converged_round + 1)) as f64
    );
    println!(
        "  Theorem 2 ratio:  rounds / (D² ln n) = {:.3}",
        theory::theorem2_ratio(outcome.converged_round as f64, diameter, n)
    );

    // After convergence the pacemaker flashes at the stationary rate.
    let mut net = Network::new(Bfw::new(p), graph.into(), 7);
    net.run_until(10_000_000, |v| v.leader_count() == 1)
        .expect("swarm converges");
    let leader = net.unique_leader().expect("converged");
    net.run(256); // let residual waves die out
    let horizon = 40_000;
    let mut flashes = 0u64;
    for _ in 0..horizon {
        net.step();
        if net.state(leader).beeps() {
            flashes += 1;
        }
    }
    let measured = flashes as f64 / horizon as f64;
    let predicted = theory::stationary_beep_rate(p);
    println!("\npacemaker flash rate over {horizon} rounds:");
    println!("  measured:  {measured:.4}");
    println!("  Eq. (16):  p/(2p+1) = {predicted:.4}");
    println!("  the waves it emits never return to disturb it (Corollary 8).");
    Ok(())
}
