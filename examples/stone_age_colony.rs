//! BFW in the stone-age model: a bacterial colony on a grid.
//!
//! The paper notes (Section 1) that BFW "can also be implemented in a
//! synchronous version of the stone-age model" — agents that display a
//! symbol and can only distinguish "no neighbor shows it" from "at
//! least one does" (threshold-1 counting). This example runs the same
//! seeded election in both runtimes and verifies the executions are
//! bit-for-bit identical, then reports the colony's election.
//!
//! Run with: `cargo run --release --example stone_age_colony`

use bfw_core::{viz, Bfw};
use bfw_graph::generators;
use bfw_sim::stone_age::{BeepingAsStoneAge, StoneAgeNetwork};
use bfw_sim::Network;

fn main() {
    let rows = 12;
    let cols = 12;
    let graph = generators::grid(rows, cols);
    let n = graph.node_count();
    let seed = 99;
    let p = 0.5;

    println!("bacterial colony on a {rows}x{cols} grid ({n} cells), stone-age model:");
    println!("  alphabet: {{silent, beep}}, counting threshold b = 1\n");

    let mut beeping = Network::new(Bfw::new(p), graph.clone().into(), seed);
    let mut stone = StoneAgeNetwork::new(BeepingAsStoneAge::new(Bfw::new(p)), graph.into(), seed);

    let mut divergence = None;
    let mut converged_at = None;
    for round in 1..=200_000u64 {
        beeping.step();
        stone.step();
        if beeping.states() != stone.states() {
            divergence = Some(round);
            break;
        }
        if converged_at.is_none() && stone.leader_count() == 1 {
            converged_at = Some(round);
            break;
        }
    }

    match divergence {
        Some(round) => println!("  !! runtimes diverged at round {round} (this is a bug)"),
        None => println!("  beeping and stone-age executions identical, round for round."),
    }

    // A few frames of the colony, as 2-D snapshots.
    println!(
        "\n  colony at round {} (one glyph per cell):\n",
        beeping.round()
    );
    for line in viz::render_grid_round(beeping.states(), rows, cols).lines() {
        println!("    {line}");
    }
    println!("\n  legend: {}", viz::legend().replace('\n', "   "));
    match converged_at {
        Some(round) => {
            let leader = beeping.unique_leader().expect("both runtimes agree");
            println!("  colony coordinator: cell {leader} (round {round})");
            println!(
                "  coordinates on the grid: row {}, col {}",
                leader.index() / cols,
                leader.index() % cols
            );
        }
        None => println!("  no convergence within the budget (unexpected)"),
    }
    println!(
        "\n  the claim of Section 1 is executable: BFW needs nothing beyond \
         stone-age 'one-or-none' perception."
    );
}
