//! Quickstart: elect a leader on a ring of 32 anonymous beeping nodes.
//!
//! Reproduces the paper's headline claim end to end: six states, no
//! identifiers, no knowledge of the network — and yet exactly one
//! leader remains, within O(D² log n) rounds.
//!
//! Run with: `cargo run --release --example quickstart`

use bfw_core::{theory, Bfw, BfwState};
use bfw_graph::generators;
use bfw_sim::{run_election, ElectionConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 32;
    let graph = generators::cycle(n);
    let diameter = bfw_graph::algo::diameter(&graph).expect("cycles are connected");

    // Figure 1: the entire protocol, printed.
    println!("The BFW state machine (Figure 1):");
    for state in BfwState::ALL {
        println!(
            "  {}  leader={} beeps={}",
            state.symbol(),
            state.is_leader(),
            state.beeps()
        );
    }

    let p = 0.5;
    let outcome = run_election(
        Bfw::new(p),
        graph.into(),
        42,
        ElectionConfig::new(1_000_000).with_stability_check(10_000),
    )?;

    println!("\ncycle of {n} nodes (diameter {diameter}), p = {p}:");
    println!("  elected leader:   node {}", outcome.leader);
    println!("  converged round:  {}", outcome.converged_round);
    println!("  total beeps:      {}", outcome.total_beeps);
    println!(
        "  stable:           {} (checked 10k extra rounds)",
        outcome.stable
    );
    println!(
        "  Theorem 2 scale:  D²·ln n = {:.0}, measured/theory ratio = {:.2}",
        theory::BfwChainTheory::theorem2_reference(diameter, n),
        theory::theorem2_ratio(outcome.converged_round as f64, diameter, n),
    );
    Ok(())
}
