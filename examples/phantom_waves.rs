//! The Section 5 robustness obstacle: phantom beep waves with no
//! leader behind them.
//!
//! The paper explains why BFW is not self-stabilizing: an *arbitrary*
//! initial configuration can contain "persistent and deterministic
//! beep waves traveling along cycles of the graph, while no leader
//! would be present", indistinguishable — from any node's local view —
//! from waves a real leader emits. This example constructs that
//! configuration, runs it, renders it, and contrasts it with a
//! legitimate start.
//!
//! Run with: `cargo run --release --example phantom_waves`

use bfw_core::{adversarial, viz, Bfw};
use bfw_graph::generators;
use bfw_sim::{observe_run, Network, TraceRecorder};

fn main() {
    let n = 12;
    let graph = generators::cycle(n);

    // A phantom wave: F◦ B◦ W◦ W◦ ... — no leader anywhere.
    let config = adversarial::leaderless_wave_cycle(n, 1);
    let mut net = Network::with_states(Bfw::new(0.5), graph.clone().into(), 0, config);
    let mut trace = TraceRecorder::new();
    observe_run(&mut net, &mut trace, 2 * n as u64, |_| false);

    println!("a leaderless phantom wave on a cycle of {n} (two full laps):\n");
    println!("{}", viz::render_trace(&trace));
    println!("{}\n", viz::legend());
    println!(
        "after {} rounds: {} leaders, {} beeping node(s) — the wave circulates forever.",
        net.round(),
        net.leader_count(),
        net.beeping_node_count()
    );

    // Long-horizon check: it really never dies and never creates a
    // leader.
    net.run(100_000);
    println!(
        "after {} rounds: {} leaders, {} beeping node(s).",
        net.round(),
        net.leader_count(),
        net.beeping_node_count()
    );

    // Contrast with a legitimate Eq. (2) start on the same cycle.
    let mut legit = Network::new(Bfw::new(0.5), graph.into(), 0);
    let converged = legit
        .run_until(1_000_000, |v| v.leader_count() == 1)
        .expect("legitimate starts converge");
    println!(
        "\nfrom the paper's initial configuration (everyone W•), the same cycle elects \
         node {} in {} rounds.",
        legit.unique_leader().expect("converged"),
        converged
    );
    println!(
        "\nEq. (2) is a real assumption: relaxing it is the open problem the paper \
         leaves for future work (Section 5)."
    );
}
