//! Churn storm: drive BFW through an environment that refuses to sit
//! still, and watch it re-elect after every disruption.
//!
//! The paper proves convergence on a *fixed* connected graph; this
//! example uses the `bfw-scenario` engine to crash the elected leader,
//! rejoin it, shed and restore edges, and split the ring in half — then
//! prints the measured re-election latency for every disruption.
//!
//! Run with: `cargo run --release --example churn_storm`

use bfw_core::Bfw;
use bfw_graph::{generators, NodeId};
use bfw_scenario::{bfw_injector, Engine, ScenarioEvent, Timeline};
use bfw_sim::Network;

fn main() {
    let n = 24;
    let seed = 42;
    let horizon = 80_000;
    let graph = generators::cycle(n);

    let timeline = Timeline::new()
        // Act 1: regicide and restoration.
        .at(15_000, ScenarioEvent::CrashLeader)
        .at(16_000, ScenarioEvent::RecoverAll)
        // Act 2: the ring frays — two chords appear, one ring edge snaps.
        .at(
            30_000,
            ScenarioEvent::AddEdge(NodeId::new(0), NodeId::new(12)),
        )
        .at(
            31_000,
            ScenarioEvent::AddEdge(NodeId::new(6), NodeId::new(18)),
        )
        .at(
            32_000,
            ScenarioEvent::RemoveEdge(NodeId::new(0), NodeId::new(1)),
        )
        // Act 3: partition and heal.
        .at(
            50_000,
            ScenarioEvent::Partition {
                side: (0..n / 2).map(NodeId::new).collect(),
            },
        )
        .at(54_000, ScenarioEvent::Heal)
        // Act 4: background crash/recover churn. Each rejoin is a fresh
        // W• whose wave can eliminate the incumbent — risky business.
        .every(60_000, 4_000, 3, ScenarioEvent::CrashRandom)
        .every(60_500, 4_000, 3, ScenarioEvent::RecoverRandom)
        // Act 5: attempt the operator's remedy — reboot a node so a
        // fresh W• can re-elect. On a *quiet* network this always
        // works; here the churn may have left Section 5's phantom
        // waves circulating through the chords, and a phantom wave
        // eliminates every rejoining leader. Watch the output.
        .at(74_000, ScenarioEvent::CrashRandom)
        .at(74_500, ScenarioEvent::RecoverAll);

    let net = Network::new(Bfw::new(0.5), graph.clone().into(), seed);
    let outcome = Engine::new(net, &graph, &timeline, horizon, seed, 100)
        .with_injector(bfw_injector())
        .run();

    println!("churn storm on a cycle of {n} (seed {seed}, {horizon} rounds)\n");
    println!("{}", outcome.to_text());
    if let Some(mean) = outcome.mean_latency() {
        println!(
            "mean re-election latency: {mean:.0} rounds across {} recoveries",
            outcome.recoveries.len()
        );
    }
    if outcome.final_leaders.is_empty() {
        println!(
            "\nthe storm won: the ring ends LEADERLESS. Edge churn broke the wave\n\
             directionality the paper's Section 3 flow argument guarantees on a\n\
             static graph, leaving Section 5-style phantom waves circulating —\n\
             and a phantom wave eliminates every leader that dares to rejoin.\n\
             BFW is not self-stabilizing; under topology churn, that matters."
        );
    } else {
        println!("\nthe network survived the storm with a stable leader.");
    }
}
