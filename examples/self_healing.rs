//! Self-healing leader election: the recovery layer vs Section 5.
//!
//! The paper proves BFW cannot recover once every leader is gone
//! (Section 5), and asks whether a "simple but more robust rule"
//! could. This example stages the two canonical wipeouts — crashing
//! the unique leader with no rejoin, and injecting the Section 5
//! phantom-wave configuration — and runs each under both stacks:
//! plain BFW stays leaderless forever, while `RecoveringProtocol`
//! (heartbeat detection + epoch-fenced restart) re-elects.
//!
//! Run with: `cargo run --release --example self_healing`

use bfw_core::{Bfw, RecoveringProtocol, RecoveryConfig};
use bfw_graph::generators;
use bfw_scenario::{
    bfw_injector, recovering_bfw_injector, Engine, InjectKind, ProtocolKind, ScenarioEvent,
    Timeline,
};
use bfw_sim::Network;

fn main() {
    let n = 24;
    let seed = 42;
    let horizon = 120_000;
    let graph = generators::cycle(n);
    // Crashes stretch alive-graph distances (a crashed node relays
    // nothing), so size the relay window to the worst-case
    // eccentricity n - 1 — exactly what the scenario runner does for
    // crash-bearing timelines.
    let bound = (n - 1) as u32;
    let config = RecoveryConfig::for_diameter(bound);

    println!("=== Self-healing BFW on cycle({n}), seed {seed} ===\n");
    println!(
        "recovery timing (eccentricity bound {bound}): heartbeat period {}, timeout {}, \
         grace {} (restart boundaries every {} rounds)\n",
        config.heartbeat_period,
        config.timeout,
        config.grace,
        config.align_rounds()
    );

    let acts: Vec<(&str, Timeline)> = vec![
        (
            "act 1: the unique leader crashes and never comes back",
            Timeline::new().at(30_000, ScenarioEvent::CrashLeader),
        ),
        (
            "act 2: a Section 5 phantom-wave configuration is injected",
            Timeline::new().at(
                30_000,
                ScenarioEvent::InjectState(InjectKind::PhantomWaves { waves: 1 }),
            ),
        ),
    ];

    for (title, timeline) in acts {
        println!("--- {title} ---");
        for protocol in [ProtocolKind::Bfw, ProtocolKind::BfwRecovery] {
            let (outcome, max_epoch) = match protocol {
                ProtocolKind::Bfw => {
                    let host = Network::new(Bfw::new(0.5), graph.clone().into(), seed);
                    let outcome = Engine::new(host, &graph, &timeline, horizon, seed, 100)
                        .with_injector(bfw_injector())
                        .run();
                    (outcome, 0)
                }
                ProtocolKind::BfwRecovery => {
                    let protocol = RecoveringProtocol::bfw(0.5, config);
                    let host =
                        bfw_core::RecoveringNetwork::new(protocol, graph.clone().into(), seed);
                    let (outcome, host) = Engine::new(host, &graph, &timeline, horizon, seed, 100)
                        .with_injector(recovering_bfw_injector())
                        .run_with_host();
                    let max_epoch = host.states().iter().map(|s| s.epoch).max().unwrap_or(0);
                    (outcome, max_epoch)
                }
            };
            let verdict = match outcome.final_leaders.as_slice() {
                [] => "LEADERLESS FOREVER".to_owned(),
                [leader] => format!("healed: node {leader} leads"),
                more => format!("{} leaders still dueling", more.len()),
            };
            let latency = outcome
                .recoveries
                .last()
                .map(|r| format!("{} rounds after the wipeout", r.latency()))
                .unwrap_or_else(|| "—".to_owned());
            println!(
                "  {:<14} {:<28} re-election: {:<32} restart epochs: {}",
                protocol.to_string(),
                verdict,
                latency,
                max_epoch
            );
        }
        println!();
    }
    println!(
        "The recovery layer pays for this with a halved election rate (every other\n\
         round is a heartbeat slot) and Theorem-3-style non-uniformity (its timing\n\
         constants are derived from the diameter). `bfw experiment recovery`\n\
         quantifies the trade across seeds."
    );
}
