//! The Section 5 duel: two leaders at the ends of a path, beep waves
//! crashing in the middle, rendered round by round.
//!
//! The paper conjectures (Section 5) that the point where the waves
//! meet performs a ±1 random walk, so the duel lasts Θ(D²) rounds —
//! this example makes the waves visible and then measures the duel
//! length over many seeds.
//!
//! Run with: `cargo run --release --example two_leader_duel`

use bfw_core::{viz, Bfw, InitialConfig};
use bfw_graph::{generators, NodeId};
use bfw_sim::{observe_run, run_election, ElectionConfig, Network, TraceRecorder};
use bfw_stats::Summary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 21;
    let d = n - 1;
    let duel_init = InitialConfig::Nodes(vec![NodeId::new(0), NodeId::new(n - 1)]);

    // Part 1: render one duel.
    let protocol = Bfw::new(0.5).with_initial_config(duel_init.clone());
    let mut net = Network::new(protocol, generators::path(n).into(), 7);
    let mut trace = TraceRecorder::new();
    let converged = observe_run(&mut net, &mut trace, 5_000, |v| v.leader_count() == 1);
    println!("one duel on a path of diameter {d} (seed 7):\n");
    // Print the first 40 rounds — enough to watch waves crash.
    let shown = trace.len().min(41);
    for t in 0..shown {
        println!("{t:>4} | {}", viz::render_round(trace.states_at(t)));
    }
    if shown < trace.len() {
        println!("     | ... ({} more rounds)", trace.len() - shown);
    }
    println!("\n{}\n", viz::legend());
    println!(
        "winner: node {} after {} rounds\n",
        net.unique_leader().expect("duel resolved"),
        converged.expect("duel resolved within budget"),
    );

    // Part 2: measure the Θ(D²) claim over many seeds.
    let trials = 100;
    let rounds: Vec<f64> = (0..trials)
        .map(|seed| {
            let protocol = Bfw::new(0.5).with_initial_config(duel_init.clone());
            let out = run_election(
                protocol,
                generators::path(n).into(),
                seed,
                ElectionConfig::new(10_000_000),
            )
            .expect("duels resolve");
            out.converged_round as f64
        })
        .collect();
    let s = Summary::from_values(rounds);
    println!("{trials} duels on D = {d}:");
    println!(
        "  mean elimination round: {:.0} ± {:.0}",
        s.mean(),
        s.ci95_half_width()
    );
    println!(
        "  median / p95:           {:.0} / {:.0}",
        s.median(),
        s.quantile(0.95)
    );
    println!(
        "  mean / D²:              {:.2}  (Θ(D²) ⇒ roughly constant across D)",
        s.mean() / (d * d) as f64
    );
    Ok(())
}
