//! Table 1, live: run every implemented leader-election algorithm on
//! the same graphs and print the comparison.
//!
//! Shows the paper's trade-off concretely: BFW pays a Θ̃(D) slowdown to
//! drop every assumption (identifiers, knowledge of n and D, large
//! state spaces, strong models).
//!
//! Run with: `cargo run --release --example baseline_faceoff`

use bfw_baselines::standard_suite;
use bfw_graph::{algo, generators, Graph};
use bfw_stats::{Summary, Table};

fn main() {
    let workloads: Vec<(&str, Graph)> = vec![
        ("clique:32", generators::complete(32)),
        ("grid:6x6", generators::grid(6, 6)),
        ("path:32", generators::path(32)),
    ];
    let algorithms = standard_suite(0.5);
    let trials = 15u64;

    for (name, graph) in workloads {
        let d = algo::diameter(&graph).expect("connected");
        let n = graph.node_count();
        println!("\n=== {name} (n = {n}, D = {d}) ===\n");
        let mut table = Table::with_columns(&[
            "algorithm",
            "model",
            "IDs",
            "knowledge",
            "rounds (mean)",
            "states used",
        ]);
        for algorithm in &algorithms {
            let info = algorithm.info();
            let runs = if info.deterministic { 1 } else { trials };
            let mut rounds = Vec::new();
            let mut max_states = 0;
            let mut failed = false;
            for seed in 0..runs {
                match algorithm.run(&graph, seed, 50_000_000) {
                    Ok(stats) => {
                        rounds.push(stats.converged_round as f64);
                        max_states = max_states.max(stats.distinct_states);
                    }
                    Err(_) => failed = true,
                }
            }
            let rounds_cell = if failed || rounds.is_empty() {
                "no convergence".to_owned()
            } else {
                format!("{:.1}", Summary::from_values(rounds).mean())
            };
            table.push_row(vec![
                info.name.to_owned(),
                info.model.to_string(),
                if info.unique_ids { "yes" } else { "no" }.to_owned(),
                info.knowledge.to_owned(),
                rounds_cell,
                if max_states == 0 {
                    "—".to_owned()
                } else {
                    max_states.to_string()
                },
            ]);
        }
        print!("{}", table.to_markdown());
    }
    println!(
        "\nBFW: six states, no IDs, no knowledge — the only entry that runs unchanged on \
         every row above."
    );
}
