//! Workspace-level property tests: fuzzing the seams between crates.

use bfw_bench::GraphSpec;
use bfw_core::{Bfw, InvariantChecker};
use bfw_graph::{algo, generators, NodeId};
use bfw_sim::stone_age::{AsyncStoneAgeNetwork, BeepingAsStoneAge};
use bfw_sim::{observe_run, run_election, ElectionConfig, Network};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Strategy over arbitrary valid workload specs.
fn arb_spec() -> impl Strategy<Value = GraphSpec> {
    prop_oneof![
        (1usize..40).prop_map(GraphSpec::Path),
        (3usize..40).prop_map(GraphSpec::Cycle),
        (1usize..40).prop_map(GraphSpec::Clique),
        (1usize..40).prop_map(GraphSpec::Star),
        (1usize..7, 1usize..7).prop_map(|(r, c)| GraphSpec::Grid(r, c)),
        (3usize..6, 3usize..6).prop_map(|(r, c)| GraphSpec::Torus(r, c)),
        (1u32..6).prop_map(GraphSpec::Hypercube),
        (1usize..4, 0u32..4).prop_map(|(a, d)| GraphSpec::Tree(a, d)),
        (1usize..40, any::<u64>()).prop_map(|(n, s)| GraphSpec::RandomTree(n, s)),
        (2usize..12, 0usize..6).prop_map(|(k, b)| GraphSpec::Barbell(k, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every spec string round-trips through Display/FromStr and builds
    /// a connected graph whose diameter helper agrees with the exact
    /// algorithm.
    #[test]
    fn spec_round_trip_and_consistency(spec in arb_spec()) {
        let text = spec.to_string();
        let parsed: GraphSpec = text.parse().expect("display output must parse");
        prop_assert_eq!(&parsed, &spec);
        let g = spec.build();
        prop_assert!(algo::is_connected(&g), "{text}");
        prop_assert_eq!(spec.diameter(), algo::diameter(&g).expect("connected"));
        prop_assert_eq!(spec.topology().node_count(), g.node_count());
    }

    /// Elections on arbitrary workloads converge within the Theorem 2
    /// scale and never violate the invariants.
    #[test]
    fn elections_converge_with_clean_invariants(spec in arb_spec(), seed in any::<u64>()) {
        let g = spec.build();
        if g.node_count() < 2 {
            return Ok(());
        }
        let d = u64::from(spec.diameter().max(1));
        let n = g.node_count() as f64;
        let budget = 4_000 * d * d * (n.ln().ceil() as u64).max(1) + 10_000;

        // Invariants on a prefix of the run.
        let mut checker = InvariantChecker::new(&g).with_lemma11(g.node_count() <= 16);
        let mut net = Network::new(Bfw::new(0.5), g.clone().into(), seed);
        observe_run(&mut net, &mut checker, 120, |_| false);
        prop_assert!(checker.report().is_clean(), "{:?}", checker.report().violations());

        // Full election with stability.
        let out = run_election(
            Bfw::new(0.5),
            spec.topology(),
            seed,
            ElectionConfig::new(budget).with_stability_check(200),
        ).map_err(|e| TestCaseError::fail(format!("{spec}: {e}")))?;
        prop_assert!(out.stable);
        prop_assert!(out.leader.index() < g.node_count());
    }

    /// Random-tree workloads: the elected leader is distributed across
    /// the tree, not pinned to node 0 (anonymity sanity at the
    /// workspace level).
    #[test]
    fn winners_vary_across_seeds(tree_seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(tree_seed);
        let g = generators::random_tree(8, &mut rng);
        let mut winners = std::collections::HashSet::new();
        for seed in 0..12u64 {
            let out = run_election(
                Bfw::new(0.5),
                g.clone().into(),
                seed,
                ElectionConfig::new(1_000_000),
            ).expect("tree elections converge");
            winners.insert(out.leader);
        }
        prop_assert!(winners.len() >= 2, "12 seeds elected only {:?}", winners);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The `ActivationEngine`'s uniform scheduler is exactly the
    /// reference schedule drawn directly from the same ChaCha8 stream —
    /// the master seed carves n node streams, then the scheduler
    /// stream, and each activation is one `random_range(0..n)` draw
    /// with **no RNG renumbering**: crashing nodes only *rejects* the
    /// draws that land on them (they are never activated), it never
    /// shifts the stream or re-indexes the alive set.
    #[test]
    fn uniform_activation_schedule_equals_reference_stream(
        n in 3usize..20,
        seed in any::<u64>(),
        crash_bits in any::<u32>(),
        steps in 1usize..120,
    ) {
        // Reference: re-carve the scheduler stream exactly as the
        // engine does (n node streams first, then the scheduler) and
        // draw the raw uniform schedule from it.
        let mut master = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..n {
            let _node_stream = ChaCha8Rng::from_rng(&mut master);
        }
        let mut reference = ChaCha8Rng::from_rng(&mut master);

        // Crash an arbitrary proper subset of the nodes up front.
        let crashed: Vec<usize> = (0..n).filter(|i| crash_bits >> (i % 32) & 1 == 1).collect();
        let keep_alive = crashed.len() == n;

        let mut net = AsyncStoneAgeNetwork::new(
            BeepingAsStoneAge::new(Bfw::new(0.5)),
            generators::cycle(n).into(),
            seed,
        );
        for &i in &crashed {
            if keep_alive && i == 0 {
                continue; // keep at least one node alive
            }
            net.crash_node(NodeId::new(i));
        }

        let schedule: Vec<usize> = (0..steps)
            .map(|_| net.activate_next().expect("an alive node exists").index())
            .collect();

        // The engine's schedule is the reference stream with crashed
        // draws rejected — dropped, not renumbered.
        let mut expected = Vec::with_capacity(steps);
        while expected.len() < steps {
            use rand::Rng as _;
            let u = reference.random_range(0..n);
            if !net.is_crashed(NodeId::new(u)) {
                expected.push(u);
            }
        }
        prop_assert_eq!(&schedule, &expected);
        // And crash-masked nodes are never activated.
        for &u in &schedule {
            prop_assert!(!net.is_crashed(NodeId::new(u)), "crashed node {} activated", u);
        }
    }
}
