//! Integration tests for the extension features: adversarial
//! configurations (§5), termination detection (footnote 4), and
//! unreliable hearing.

use bfw_core::{adversarial, Bfw, BfwWithTermination, TerminationState};
use bfw_graph::generators;
use bfw_sim::{Network, Topology};

#[test]
fn phantom_wave_defeats_bfw_from_arbitrary_start() {
    // The §5 obstacle, end to end: a leaderless wave persists through
    // 50k rounds on cycles of several sizes.
    for n in [6usize, 9, 15] {
        let config = adversarial::leaderless_wave_cycle(n, 1);
        let mut net = Network::with_states(Bfw::new(0.5), generators::cycle(n).into(), 1, config);
        net.run(50_000);
        assert_eq!(
            net.leader_count(),
            0,
            "n={n}: phantom wave created a leader"
        );
        assert_eq!(net.beeping_node_count(), 1, "n={n}: phantom wave died");
    }
}

#[test]
fn phantom_waves_on_path_annihilate_into_dead_silence() {
    // On a *path* the wave runs off the end and the network falls into
    // the dead all-W◦ configuration: the other failure mode.
    let n = 10;
    let mut config = adversarial::dead_configuration(n);
    config[0] = bfw_core::BfwState::Frozen;
    config[1] = bfw_core::BfwState::Beeping;
    let mut net = Network::with_states(Bfw::new(0.5), generators::path(n).into(), 1, config);
    net.run(5 * n as u64);
    assert_eq!(net.leader_count(), 0);
    assert_eq!(
        net.beeping_node_count(),
        0,
        "wave should have run off the path end"
    );
    assert!(net
        .states()
        .iter()
        .all(|s| *s == bfw_core::BfwState::Waiting));
}

#[test]
fn termination_wrapper_solves_explicit_termination_on_suite() {
    for (topology, d) in [
        (Topology::Graph(generators::cycle(16)), 8u32),
        (Topology::Graph(generators::grid(4, 4)), 6),
        (Topology::Clique(16), 1),
    ] {
        let n = topology.node_count();
        let protocol = BfwWithTermination::new(d, n, 6.0);
        let deadline = protocol.deadline();
        let mut net = Network::new(protocol, topology, 5);
        net.run(deadline + 1);
        let leaders = net
            .states()
            .iter()
            .filter(|s| matches!(s, TerminationState::DoneLeader))
            .count();
        let followers = net
            .states()
            .iter()
            .filter(|s| matches!(s, TerminationState::DoneFollower))
            .count();
        assert_eq!(leaders, 1, "exactly one committed leader");
        assert_eq!(followers, n - 1);
        // Terminated: silent forever after.
        for _ in 0..200 {
            net.step();
            assert_eq!(net.beeping_node_count(), 0);
        }
    }
}

#[test]
fn termination_wrapper_preserves_uncommitted_bfw_behaviour() {
    // Before the deadline, the wrapper must behave exactly like BFW
    // with the same p: same seeds ⇒ same beep patterns.
    let n = 12;
    let d = 6;
    let wrapper = BfwWithTermination::new(d, n, 100.0); // deadline far away
    let plain = Bfw::with_known_diameter(d);
    let mut a = Network::new(wrapper, generators::cycle(n).into(), 77);
    let mut b = Network::new(plain, generators::cycle(n).into(), 77);
    for round in 0..500 {
        assert_eq!(a.beep_flags(), b.beep_flags(), "round {round}");
        a.step();
        b.step();
    }
}

#[test]
fn small_noise_usually_still_elects() {
    // Unreliable hearing with tiny q: most runs still converge.
    let mut converged = 0;
    let trials = 20;
    for seed in 0..trials {
        let mut net = Network::new(Bfw::new(0.5), generators::cycle(12).into(), seed)
            .with_hearing_noise(0.01);
        if net.run_until(200_000, |v| v.leader_count() <= 1).is_some() && net.leader_count() == 1 {
            converged += 1;
        }
    }
    assert!(
        converged >= trials * 3 / 4,
        "only {converged}/{trials} converged at q = 0.01"
    );
}

#[test]
fn heavy_noise_can_break_lemma9() {
    // The extension's point: with unreliable hearing the deterministic
    // guarantee of Lemma 9 is genuinely lost — some seed reaches zero
    // leaders.
    let mut wiped = false;
    'outer: for seed in 0..80u64 {
        let mut net =
            Network::new(Bfw::new(0.5), generators::cycle(12).into(), seed).with_hearing_noise(0.3);
        for _ in 0..20_000 {
            net.step();
            if net.leader_count() == 0 {
                wiped = true;
                break 'outer;
            }
        }
    }
    assert!(wiped, "expected at least one wipeout under q = 0.3");
}

#[test]
fn noise_zero_is_bit_identical_to_exact_model() {
    let run = |noise: bool| {
        let mut net = Network::new(Bfw::new(0.5), generators::grid(4, 4).into(), 31);
        if noise {
            net = net.with_hearing_noise(0.0);
        }
        net.run(300);
        net.states().to_vec()
    };
    assert_eq!(run(false), run(true));
}
