//! End-to-end elections across the full workload suite, spanning
//! `bfw-graph` → `bfw-sim` → `bfw-core` → `bfw-bench`.

use bfw_bench::GraphSpec;
use bfw_core::Bfw;
use bfw_sim::{run_election, ElectionConfig, SimError};

fn budget_for(spec: &GraphSpec) -> u64 {
    let d = u64::from(spec.diameter().max(1));
    let n = spec.topology().node_count() as f64;
    2_000 * d * d * n.ln().ceil() as u64 + 10_000
}

#[test]
fn every_suite_workload_elects_a_stable_leader() {
    for spec in GraphSpec::standard_suite(true) {
        let budget = budget_for(&spec);
        let outcome = run_election(
            Bfw::new(0.5),
            spec.topology(),
            1234,
            ElectionConfig::new(budget).with_stability_check(2_000),
        )
        .unwrap_or_else(|e| panic!("{spec}: {e}"));
        assert!(outcome.stable, "{spec}: leader changed after convergence");
        assert!(outcome.leader.index() < outcome.node_count);
        assert!(
            outcome.total_beeps > 0,
            "{spec}: an election needs at least one beep"
        );
    }
}

#[test]
fn known_diameter_variant_elects_on_suite() {
    for spec in GraphSpec::standard_suite(true) {
        let d = spec.diameter();
        let outcome = run_election(
            Bfw::with_known_diameter(d),
            spec.topology(),
            99,
            ElectionConfig::new(budget_for(&spec)).with_stability_check(500),
        )
        .unwrap_or_else(|e| panic!("{spec}: {e}"));
        assert!(outcome.stable, "{spec}");
    }
}

#[test]
fn many_seeds_on_one_graph_all_converge() {
    let spec = GraphSpec::Cycle(16);
    for seed in 0..40u64 {
        let outcome = run_election(
            Bfw::new(0.5),
            spec.topology(),
            seed,
            ElectionConfig::new(budget_for(&spec)),
        )
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(
            outcome.converged_round > 0,
            "a 16-cycle cannot converge in round 0"
        );
    }
}

#[test]
fn different_seeds_elect_different_leaders() {
    // Anonymity/symmetry: on a vertex-transitive graph, the winner is
    // decided purely by the coin flips, so across seeds we must see
    // more than one distinct winner.
    let spec = GraphSpec::Cycle(12);
    let mut winners = std::collections::HashSet::new();
    for seed in 0..25u64 {
        let outcome = run_election(
            Bfw::new(0.5),
            spec.topology(),
            seed,
            ElectionConfig::new(budget_for(&spec)),
        )
        .expect("cycle elections converge");
        winners.insert(outcome.leader);
    }
    assert!(
        winners.len() > 3,
        "only {} distinct winners in 25 runs",
        winners.len()
    );
}

#[test]
fn single_node_graph_is_immediately_elected() {
    let outcome = run_election(
        Bfw::new(0.5),
        GraphSpec::Path(1).topology(),
        0,
        ElectionConfig::new(10).with_stability_check(10),
    )
    .expect("single node");
    assert_eq!(outcome.converged_round, 0);
    assert_eq!(outcome.total_beeps, 0);
    assert!(outcome.stable);
}

#[test]
fn two_node_graph_elects_one() {
    let outcome = run_election(
        Bfw::new(0.5),
        GraphSpec::Path(2).topology(),
        3,
        ElectionConfig::new(100_000).with_stability_check(1_000),
    )
    .expect("two nodes");
    assert!(outcome.stable);
}

#[test]
fn disconnected_graphs_are_rejected_at_the_boundary() {
    let g = bfw_graph::Graph::from_edges(4, [(0, 1), (2, 3)]).expect("valid edges");
    let err = run_election(Bfw::new(0.5), g.into(), 0, ElectionConfig::new(100)).unwrap_err();
    assert_eq!(err, SimError::Disconnected);
}

#[test]
fn extreme_p_values_still_converge_on_small_graphs() {
    for p in [0.01, 0.99] {
        let outcome = run_election(
            Bfw::new(p),
            GraphSpec::Cycle(8).topology(),
            5,
            ElectionConfig::new(50_000_000),
        )
        .unwrap_or_else(|e| panic!("p={p}: {e}"));
        assert!(outcome.converged_round > 0);
    }
}
