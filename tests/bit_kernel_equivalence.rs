//! Bit kernel ≡ generic engine, pinned.
//!
//! The bitplane `BitEngine` claims byte-identical outcomes to the
//! generic `TickEngine` at a fixed seed — same states, same RNG stream
//! positions, same complexity ledger — with the speed coming purely
//! from word-wide execution. These tests pin that claim three ways:
//! state-vector equality across topologies and fault regimes, a frozen
//! constant trace (so a change to the RNG carving or draw order fails
//! even if it changes *both* engines in lockstep), and ledger equality.
//! The 64-lane Monte-Carlo path has its own documented RNG mapping
//! (`bernoulli_words`) — bitsliced trials agree with scalar trials in
//! distribution, not draw-for-draw — pinned here by frozen output
//! words and a statistical cross-check.
//!
//! If any pin ever breaks intentionally, re-pin with a written
//! justification here.

use bfw_core::{run_bfw_trials_bitsliced, Bfw, BfwState, BitNetwork};
use bfw_graph::{generators, Graph, NodeId};
use bfw_sim::{bernoulli_words, run_trials, run_trials_bitsliced, Network};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The fault-regime schedule every equivalence run exercises: plain
/// rounds, then two-channel noise, then a crash, then recovery with
/// noise off again (zero-probability channels draw nothing, so the
/// streams must re-align bit-for-bit).
fn drive<S: Clone + PartialEq + std::fmt::Debug>(
    mut step: impl FnMut(Phase) -> Vec<S>,
) -> Vec<Vec<S>> {
    vec![
        step(Phase::Plain(40)),
        step(Phase::Noise {
            fn_rate: 0.2,
            fp_rate: 0.05,
            rounds: 30,
        }),
        step(Phase::Crash(NodeId::new(3), 25)),
        step(Phase::Recover(NodeId::new(3), 40)),
    ]
}

enum Phase {
    Plain(u64),
    Noise {
        fn_rate: f64,
        fp_rate: f64,
        rounds: u64,
    },
    Crash(NodeId, u64),
    Recover(NodeId, u64),
}

fn run_generic(graph: &Graph, seed: u64) -> Vec<Vec<BfwState>> {
    let mut net = Network::new(Bfw::new(0.5), graph.clone().into(), seed);
    drive(|phase| {
        match phase {
            Phase::Plain(rounds) => net.run(rounds),
            Phase::Noise {
                fn_rate,
                fp_rate,
                rounds,
            } => {
                net.set_noise(fn_rate, fp_rate);
                net.run(rounds);
            }
            Phase::Crash(u, rounds) => {
                net.set_noise(0.0, 0.0);
                net.crash_node(u);
                net.run(rounds);
            }
            Phase::Recover(u, rounds) => {
                net.recover_node(u);
                net.run(rounds);
            }
        }
        net.states().to_vec()
    })
}

fn run_bit(graph: &Graph, seed: u64) -> Vec<Vec<BfwState>> {
    let mut net = BitNetwork::new(Bfw::new(0.5), graph.clone().into(), seed);
    drive(|phase| {
        match phase {
            Phase::Plain(rounds) => net.run(rounds),
            Phase::Noise {
                fn_rate,
                fp_rate,
                rounds,
            } => {
                net.set_noise(fn_rate, fp_rate);
                net.run(rounds);
            }
            Phase::Crash(u, rounds) => {
                net.set_noise(0.0, 0.0);
                net.crash_node(u);
                net.run(rounds);
            }
            Phase::Recover(u, rounds) => {
                net.recover_node(u);
                net.run(rounds);
            }
        }
        net.states()
    })
}

#[test]
fn bit_kernel_matches_generic_across_topologies_and_faults() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xE0);
    let graphs: Vec<(&str, Graph)> = vec![
        ("cycle:100", generators::cycle(100)),
        ("torus:8x8", generators::torus(8, 8)),
        (
            "random-regular:64:4",
            generators::random_regular(64, 4, &mut rng),
        ),
        ("path:65", generators::path(65)),
        ("clique:40", generators::complete(40)),
        ("star:50", generators::star(50)),
    ];
    for (name, graph) in &graphs {
        for seed in [7u64, 42] {
            let generic = run_generic(graph, seed);
            let bit = run_bit(graph, seed);
            assert_eq!(
                generic, bit,
                "{name} seed {seed}: kernels diverged (plain/noise/crash/recover checkpoints)"
            );
        }
    }
}

#[test]
fn bit_kernel_elects_the_same_leader() {
    for seed in [1u64, 9, 77] {
        let graph = generators::cycle(64);
        let mut generic = Network::new(Bfw::new(0.5), graph.clone().into(), seed);
        let mut bit = BitNetwork::new(Bfw::new(0.5), graph.into(), seed);
        let mut rounds = 0u64;
        while generic.leader_count() > 1 && rounds < 1_000_000 {
            generic.step();
            bit.step();
            rounds += 1;
            assert_eq!(generic.leader_count(), bit.leader_count(), "round {rounds}");
        }
        assert_eq!(generic.leader_count(), 1, "seed {seed}");
        let leader = bit.unique_leader().expect("bit kernel agrees");
        assert!(generic.state(leader).is_leader(), "seed {seed}");
    }
}

/// Renders a state vector as the paper's symbols (`W• B◦ …`) — compact
/// enough to pin as a constant.
fn symbols(states: &[BfwState]) -> String {
    states
        .iter()
        .map(|s| s.symbol())
        .collect::<Vec<_>>()
        .join(" ")
}

#[test]
fn bit_kernel_trace_is_pinned() {
    // Frozen trace: cycle(12), seed 42, p = 0.5 — the configuration
    // after 10 and 40 plain rounds. Both kernels must reproduce these
    // exact symbols; a change to the RNG carving, the draw order, or
    // the plane algebra fails here even if it changes both kernels the
    // same way.
    let graph = generators::cycle(12);
    let mut net = BitNetwork::new(Bfw::new(0.5), graph.clone().into(), 42);
    net.run(10);
    let at_10 = symbols(&net.states());
    net.run(30);
    let at_40 = symbols(&net.states());

    let mut generic = Network::new(Bfw::new(0.5), graph.into(), 42);
    generic.run(10);
    assert_eq!(symbols(generic.states()), at_10);
    generic.run(30);
    assert_eq!(symbols(generic.states()), at_40);

    assert_eq!(at_10, "W• W• W◦ W• W◦ F◦ F◦ W• F◦ W• F◦ W◦");
    assert_eq!(at_40, "W◦ B◦ F◦ W• F◦ B◦ B◦ F• B◦ W◦ W◦ W◦");
}

#[test]
fn ledgers_are_identical_across_kernels() {
    let graph = generators::torus(6, 6);
    let mut generic = Network::new(Bfw::new(0.5), graph.clone().into(), 3);
    let mut bit = BitNetwork::new(Bfw::new(0.5), graph.into(), 3);
    generic.enable_instrumentation(Some(32));
    bit.enable_instrumentation(Some(32));
    generic.set_noise(0.1, 0.02);
    bit.set_noise(0.1, 0.02);
    generic.run(50);
    bit.run(50);
    let g = generic.complexity_ledger().unwrap();
    let b = bit.complexity_ledger().unwrap();
    assert_eq!(g.steps(), b.steps());
    assert_eq!(g.beeps_sent(), b.beeps_sent());
    assert_eq!(g.beeps_heard(), b.beeps_heard());
    assert_eq!(g.bits(), b.bits());
    assert_eq!(g.messages(), b.messages());
    assert_eq!(g.state_bytes_per_node(), b.state_bytes_per_node());
    assert!(g.steps() == 50 && g.beeps_sent() > 0 && g.messages() > 0);
}

#[test]
fn bernoulli_words_output_is_pinned() {
    // The documented RNG-stream mapping of the 64-lane Monte-Carlo
    // path: from a fresh ChaCha8 stream, the first three full-need
    // draws at p = 0.5 and one at p = 0.25. Frozen so the bitsliced
    // threshold scan can never drift silently.
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let a = bernoulli_words(&mut rng, 0.5, u64::MAX);
    let b = bernoulli_words(&mut rng, 0.5, u64::MAX);
    let c = bernoulli_words(&mut rng, 0.5, u64::MAX);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let d = bernoulli_words(&mut rng, 0.25, u64::MAX);
    assert_eq!(a, 0x50a5d1772bb8f271);
    assert_eq!(b, 0xf81abf77026dc805);
    assert_eq!(c, 0xb565d4c52149c72d);
    assert_eq!(d, 0x10a0d11323a06230);
    // p = 0.25 accepts a subset of what p = 0.5 accepts on the same
    // stream prefix only where the first scanned bit agrees; the pin
    // itself is the contract, this is just a sanity bound.
    assert!(d.count_ones() < a.count_ones() + 16);
}

#[test]
fn bitsliced_trials_agree_with_scalar_trials_statistically() {
    // Lane trials use a different (word-batched) RNG mapping, so they
    // match scalar trials in distribution, not draw-for-draw: compare
    // mean convergence rounds on cycle(32) across 256 trials.
    let graph = generators::cycle(32);
    let bfw = Bfw::new(0.5);
    let lanes = run_bfw_trials_bitsliced(&bfw, &graph, 256, 4, 11, 1_000_000);
    let lane_mean = lanes
        .iter()
        .map(|o| o.converged_round.expect("converges") as f64)
        .sum::<f64>()
        / 256.0;
    let scalar: Vec<u64> = run_trials(256, 4, 11, |seed| {
        let mut net = Network::new(Bfw::new(0.5), generators::cycle(32).into(), seed);
        let mut rounds = 0u64;
        while net.leader_count() > 1 {
            net.step();
            rounds += 1;
        }
        rounds
    });
    let scalar_mean = scalar.iter().sum::<u64>() as f64 / 256.0;
    let ratio = lane_mean / scalar_mean;
    assert!(
        (0.8..1.25).contains(&ratio),
        "lane mean {lane_mean:.1} vs scalar mean {scalar_mean:.1} (ratio {ratio:.3})"
    );
}

#[test]
fn bitsliced_driver_is_thread_count_invariant() {
    let graph = generators::torus(4, 4);
    let bfw = Bfw::new(0.5);
    let one = run_bfw_trials_bitsliced(&bfw, &graph, 130, 1, 5, 1_000_000);
    for threads in [2usize, 3, 8] {
        assert_eq!(
            one,
            run_bfw_trials_bitsliced(&bfw, &graph, 130, threads, 5, 1_000_000),
            "{threads} threads"
        );
    }
    // The generic driver shares the grouping contract.
    let raw = run_trials_bitsliced(130, 4, 5, |seed, lanes| vec![seed; lanes]);
    assert_eq!(raw.len(), 130);
    assert_eq!(raw[0], 5);
    assert_eq!(raw[64], 69);
    assert_eq!(raw[128], 133);
}

proptest! {
    /// Bitplane pack/unpack round-trips every BFW state (exhaustive in
    /// effect — proptest samples the full 6-element space many times —
    /// and extended with the heard/coin inputs to cross-check the word
    /// algebra against the scalar δ on arbitrary bit positions).
    #[test]
    fn pack_unpack_round_trips(idx in 0usize..6, bit in 0usize..64) {
        use bfw_sim::{BitModel, PlaneWord};
        let bfw = Bfw::new(0.5);
        let state = BfwState::ALL[idx];
        let (l, b, f) = BitModel::pack(&bfw, &state);
        prop_assert_eq!(bfw.unpack(l, b, f), state);
        // The round-trip holds at any bit position of a plane word.
        let planes = PlaneWord {
            leader: u64::from(l) << bit,
            beeping: u64::from(b) << bit,
            frozen: u64::from(f) << bit,
        };
        let back = bfw.unpack(
            planes.leader >> bit & 1 == 1,
            planes.beeping >> bit & 1 == 1,
            planes.frozen >> bit & 1 == 1,
        );
        prop_assert_eq!(back, state);
    }

    /// The word algebra agrees with the scalar δ at every bit position.
    #[test]
    fn advance_word_matches_delta(
        idx in 0usize..6,
        heard in any::<bool>(),
        coin in any::<bool>(),
        bit in 0usize..64,
    ) {
        use bfw_sim::{BitModel, PlaneWord};
        let bfw = Bfw::new(0.5);
        let state = BfwState::ALL[idx];
        let (l, b, f) = BitModel::pack(&bfw, &state);
        let planes = PlaneWord {
            leader: u64::from(l) << bit,
            beeping: u64::from(b) << bit,
            frozen: u64::from(f) << bit,
        };
        let heard_w = u64::from(heard) << bit;
        let mask = bfw.coin_mask(planes, heard_w);
        let coin_w = u64::from(coin) << bit & mask;
        let next = bfw.advance_word(planes, heard_w, coin_w);
        let bit_state = bfw.unpack(
            next.leader >> bit & 1 == 1,
            next.beeping >> bit & 1 == 1,
            next.frozen >> bit & 1 == 1,
        );
        let scalar = bfw_core::delta(state, heard, coin && mask >> bit & 1 == 1);
        prop_assert_eq!(bit_state, scalar);
    }
}
