//! Cross-crate checks that the empirical Table 1 has the paper's shape:
//! who wins, by roughly what factor, and what each algorithm consumes.

use bfw_baselines::suite::{
    BfwKnownDiameter, BfwUniform, BitwiseMaxIdAlgorithm, FloodMaxAlgorithm, KnockoutCliqueAlgorithm,
};
use bfw_baselines::CandidateAlgorithm;
use bfw_graph::generators;
use bfw_stats::Summary;

fn mean_rounds(a: &dyn CandidateAlgorithm, g: &bfw_graph::Graph, trials: u64) -> f64 {
    let runs: Vec<f64> = (0..trials)
        .map(|seed| {
            a.run(g, seed, 100_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", a.info().name))
                .converged_round as f64
        })
        .collect();
    Summary::from_values(runs).mean()
}

#[test]
fn ordering_on_a_long_path_matches_table1() {
    // FloodMax (Θ(D), strong model) < BitwiseMaxId (O(D log n)) <
    // BFW uniform (O(D² log n)). Known-D BFW sits between bitwise and
    // uniform in expectation.
    let g = generators::path(24);
    let flood = mean_rounds(&FloodMaxAlgorithm::default(), &g, 1);
    let bitwise = mean_rounds(&BitwiseMaxIdAlgorithm::default(), &g, 1);
    let known_d = mean_rounds(&BfwKnownDiameter::default(), &g, 10);
    let uniform = mean_rounds(&BfwUniform { p: 0.5 }, &g, 10);
    assert!(flood < bitwise, "flood {flood} vs bitwise {bitwise}");
    assert!(
        bitwise < uniform,
        "bitwise {bitwise} vs uniform BFW {uniform}"
    );
    assert!(known_d < uniform, "known-D {known_d} vs uniform {uniform}");
}

#[test]
fn weak_model_pays_at_most_polynomial_overhead_on_clique() {
    // On the clique everything is fast; BFW should be within a small
    // factor of the knockout baseline (both are O(log n)-ish there).
    let g = generators::complete(32);
    let bfw = mean_rounds(&BfwUniform { p: 0.5 }, &g, 10);
    let knockout = mean_rounds(&KnockoutCliqueAlgorithm::default(), &g, 10);
    assert!(
        bfw < 60.0 * knockout.max(1.0),
        "bfw {bfw} vs knockout {knockout}"
    );
}

#[test]
fn state_budgets_match_table1() {
    let g = generators::path(20);
    let bfw = BfwUniform { p: 0.5 }
        .run(&g, 3, 100_000_000)
        .expect("bfw converges");
    assert!(
        bfw.distinct_states <= 6,
        "BFW used {} states",
        bfw.distinct_states
    );

    let flood = FloodMaxAlgorithm::default()
        .run(&g, 0, 10_000)
        .expect("flood converges");
    assert!(
        flood.distinct_states >= g.node_count(),
        "FloodMax used only {} states",
        flood.distinct_states
    );
}

#[test]
fn knockout_is_single_hop_only() {
    let info = KnockoutCliqueAlgorithm::default().info();
    assert!(info.clique_only);
    // And it indeed converges fast on the clique.
    let g = generators::complete(64);
    let stats = KnockoutCliqueAlgorithm::default()
        .run(&g, 5, 10_000)
        .expect("clique knockout");
    assert!(stats.converged_round < 200);
    assert!(stats.distinct_states <= 3);
}

#[test]
fn deterministic_baselines_are_seed_independent() {
    let g = generators::grid(4, 5);
    for algo in [
        &FloodMaxAlgorithm::default() as &dyn CandidateAlgorithm,
        &BitwiseMaxIdAlgorithm::default(),
    ] {
        let a = algo
            .run(&g, 1, 1_000_000)
            .expect("converges")
            .converged_round;
        let b = algo
            .run(&g, 999, 1_000_000)
            .expect("converges")
            .converged_round;
        assert_eq!(a, b, "{} must ignore the seed", algo.info().name);
    }
}

#[test]
fn bfw_is_the_only_uniform_anonymous_entry() {
    let mut uniform_anonymous = 0;
    for a in bfw_baselines::standard_suite(0.5) {
        let info = a.info();
        if !info.unique_ids && info.knowledge == "none" && !info.clique_only {
            uniform_anonymous += 1;
            assert!(info.name.contains("BFW"), "{}", info.name);
        }
    }
    assert_eq!(uniform_anonymous, 1);
}
