//! Workspace tests for the scenario engine: determinism of the whole
//! TOML → engine → report pipeline, and dynamic-topology invariants.

use bfw_bench::GraphSpec;
use bfw_core::{Bfw, RecoveringProtocol, RecoveryConfig};
use bfw_graph::{generators, DynamicGraph, NodeId};
use bfw_scenario::{
    bfw_injector, run_bfw_scenario, Engine, InjectKind, ProtocolKind, ScenarioEvent, ScenarioSpec,
    Timeline,
};
use bfw_sim::stone_age::{AsyncStoneAgeNetwork, BeepingAsStoneAge, StoneAgeNetwork};
use bfw_sim::{BeepingProtocol, LeaderElection, Network, NodeCtx};
use proptest::prelude::*;

/// The shipped example scenario, exercised exactly as the CLI would.
const RING_CHURN: &str = include_str!("../examples/scenarios/ring_churn.toml");

#[test]
fn shipped_ring_churn_scenario_is_byte_deterministic() {
    let spec = ScenarioSpec::parse(RING_CHURN).expect("shipped scenario must parse");
    assert_eq!(spec.graph, "cycle:32");
    let graph: GraphSpec = spec.graph.parse().unwrap();
    let graph = graph.build();
    let a = run_bfw_scenario(&spec, &graph, 42).unwrap();
    let b = run_bfw_scenario(&spec, &graph, 42).unwrap();
    assert_eq!(a, b);
    assert_eq!(a.to_text(), b.to_text());
    // The scenario's crash is answered after the rejoin.
    assert!(!a.recoveries.is_empty(), "{}", a.to_text());
}

#[test]
fn same_toml_same_seed_same_event_trace() {
    let toml = r#"
[scenario]
name = "trace determinism"
graph = "er:20:300:5"
rounds = 12000
stability = 30

[[event]]
every = 1000
start = 2000
count = 5
kind = "crash-random"

[[event]]
every = 1000
start = 2400
count = 5
kind = "recover-random"

[[event]]
rate = 0.0005
kind = "remove-edge"
u = 0
v = 1
"#;
    let parse_and_run = |seed| {
        let spec = ScenarioSpec::parse(toml).unwrap();
        let graph: GraphSpec = spec.graph.parse().unwrap();
        run_bfw_scenario(&spec, &graph.build(), seed).unwrap()
    };
    let a = parse_and_run(3);
    let b = parse_and_run(3);
    assert_eq!(
        a.event_log, b.event_log,
        "event traces must be bit-identical"
    );
    assert_eq!(a, b);
    // A different seed must at least move the random-target choices.
    let c = parse_and_run(4);
    assert_ne!(a.event_log, c.event_log);
}

/// Beeps every round — any beep from a crashed node is immediately
/// visible in the flags.
#[derive(Debug, Clone)]
struct Siren;

impl BeepingProtocol for Siren {
    type State = ();
    fn initial_state(&self, _ctx: NodeCtx) {}
    fn beeps(&self, _s: &()) -> bool {
        true
    }
    fn transition(&self, _s: &(), _heard: bool, _rng: &mut dyn rand::RngCore) {}
}

impl LeaderElection for Siren {
    fn is_leader(&self, _s: &()) -> bool {
        true
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random mutation sequences keep the dynamic adjacency symmetric,
    /// simple and consistent.
    #[test]
    fn dynamic_graph_invariants_under_random_churn(
        n in 4usize..24,
        ops in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<bool>()), 0..60),
    ) {
        let mut dyn_g = DynamicGraph::from_graph(&generators::cycle(n));
        for (a, b, add) in ops {
            let u = NodeId::new((a % n as u64) as usize);
            let v = NodeId::new((b % n as u64) as usize);
            // Errors (self-loop, duplicate, missing) are expected; the
            // structure must stay valid either way.
            let _ = if add {
                dyn_g.add_edge(u, v)
            } else {
                dyn_g.remove_edge(u, v)
            };
            prop_assert!(dyn_g.invariants_hold());
        }
        let g = dyn_g.to_graph();
        prop_assert_eq!(g.edge_count(), dyn_g.edge_count());
        for u in g.nodes() {
            for &v in g.neighbors(u) {
                prop_assert!(u != v, "self-loop materialized");
                prop_assert!(g.has_edge(v, u), "asymmetric adjacency");
            }
        }
    }

    /// Crash-masked nodes never beep, across random crash/recover
    /// interleavings of an always-beeping protocol.
    #[test]
    fn crashed_nodes_never_beep(
        n in 3usize..16,
        schedule in proptest::collection::vec((any::<u64>(), any::<bool>()), 1..30),
        seed in any::<u64>(),
    ) {
        let mut net = Network::new(Siren, generators::cycle(n).into(), seed);
        for (target, crash) in schedule {
            let u = NodeId::new((target % n as u64) as usize);
            if crash {
                net.crash_node(u);
            } else {
                net.recover_node(u);
            }
            net.step();
            for i in 0..n {
                let id = NodeId::new(i);
                if net.is_crashed(id) {
                    prop_assert!(!net.beep_flags()[i], "crashed node {i} beeped");
                } else {
                    prop_assert!(net.beep_flags()[i], "alive siren {i} silent");
                }
            }
        }
    }

    /// The engine's re-election metric: after a crash of the unique
    /// leader and a later rejoin, a cycle always re-elects within the
    /// horizon, and the measured latency is consistent.
    #[test]
    fn crash_rejoin_always_re_elects_on_cycles(seed in 0u64..24) {
        let n = 8;
        let graph = generators::cycle(n);
        let timeline = Timeline::new()
            .at(4_000, ScenarioEvent::CrashLeader)
            .at(4_300, ScenarioEvent::RecoverAll);
        let net = Network::new(Bfw::new(0.5), graph.clone().into(), seed);
        let outcome = Engine::new(net, &graph, &timeline, 40_000, seed, 50)
            .with_injector(bfw_injector())
            .run();
        prop_assert_eq!(outcome.pending_disruption, None, "{}", outcome.to_text());
        prop_assert_eq!(outcome.final_leaders.len(), 1);
        prop_assert!(!outcome.recoveries.is_empty());
        for r in &outcome.recoveries {
            prop_assert!(r.recovered_at >= r.disrupted_at);
            prop_assert!(r.recovered_at <= 40_000);
        }
    }
}

#[test]
fn partition_heal_merges_leaders_but_can_wipe_them_out() {
    // Partition a ring before convergence: each half elects its own
    // leader. Healing merges the halves — and exposes a hazard the
    // fixed-graph theory rules out: Lemma 9 ("some leader survives")
    // is proved for configurations reachable from Eq. (2) on a *static*
    // graph, and a freshly healed cut is not such a configuration. The
    // duel after healing therefore usually leaves one leader, but with
    // positive probability both are eliminated (waves arriving through
    // the restored edges defeat the freeze's directionality). Both
    // outcomes must occur across seeds; more than one survivor is
    // impossible once the duel resolves.
    let n = 16;
    let graph = generators::cycle(n);
    let mut survived = 0;
    let mut wiped_out = 0;
    for seed in 0..12u64 {
        let timeline = Timeline::new()
            .at(
                50,
                ScenarioEvent::Partition {
                    side: (0..n / 2).map(NodeId::new).collect(),
                },
            )
            .at(20_000, ScenarioEvent::Heal);
        let net = Network::new(Bfw::new(0.5), graph.clone().into(), seed);
        let outcome = Engine::new(net, &graph, &timeline, 60_000, seed, 100)
            .with_injector(bfw_injector())
            .run();
        assert_eq!(outcome.final_edges, n, "heal must restore the ring");
        match outcome.final_leaders.len() {
            0 => wiped_out += 1,
            1 => {
                survived += 1;
                assert_eq!(outcome.pending_disruption, None, "{}", outcome.to_text());
            }
            more => panic!("{more} leaders after the duel: {}", outcome.to_text()),
        }
    }
    assert!(survived > 0, "healing should usually re-elect");
    assert!(
        wiped_out > 0,
        "expected at least one seed to show the heal-merge wipeout hazard"
    );
}

/// The partition-heal timeline of
/// `partition_heal_merges_leaders_but_can_wipe_them_out`, as a spec for
/// either protocol stack.
fn heal_wipeout_spec(n: usize, protocol: ProtocolKind) -> ScenarioSpec {
    ScenarioSpec {
        name: "heal wipeout".to_owned(),
        graph: format!("cycle:{n}"),
        p: 0.5,
        rounds: 60_000,
        stability: 100,
        seed: 0,
        protocol,
        heartbeat: None,
        timeout: None,
        grace: None,
        runtime: Default::default(),
        scheduler: None,
        kernel: Default::default(),
        threads: None,
        trace: None,
        timeline: Timeline::new()
            .at(
                50,
                ScenarioEvent::Partition {
                    side: (0..n / 2).map(NodeId::new).collect(),
                },
            )
            .at(20_000, ScenarioEvent::Heal),
    }
}

#[test]
fn wipeout_seeds_recover_under_bfw_recovery() {
    // Re-run the exact seeds of
    // `partition_heal_merges_leaders_but_can_wipe_them_out` under
    // `bfw+recovery`: every seed — in particular the ones where plain
    // BFW loses every leader in the post-heal duel — must end with a
    // unique leader and no unanswered disruption, and the heal must be
    // answered within the recovery layer's detection bound plus an
    // election allowance.
    let n = 16;
    let graph = generators::cycle(n);
    // The timeline contains a partition (a distance-stretching event),
    // so run_bfw_scenario sizes the recovery timing to the worst-case
    // eccentricity bound n - 1; recompute it here for the latency
    // bound.
    let config = RecoveryConfig::for_diameter((n - 1) as u32);
    let detection = RecoveringProtocol::bfw(0.5, config).detection_bound_rounds();
    // Post-heal duel + Theorem 2 re-election at the halved rate: give
    // each a generous deterministic allowance on top of detection.
    let bound = detection + 20_000;
    let mut plain_wipeouts = 0;
    for seed in 0..12u64 {
        let plain =
            run_bfw_scenario(&heal_wipeout_spec(n, ProtocolKind::Bfw), &graph, seed).unwrap();
        if plain.final_leaders.is_empty() {
            plain_wipeouts += 1;
        }
        let healed = run_bfw_scenario(
            &heal_wipeout_spec(n, ProtocolKind::BfwRecovery),
            &graph,
            seed,
        )
        .unwrap();
        assert_eq!(
            healed.final_leaders.len(),
            1,
            "seed {seed}: bfw+recovery must end with a unique leader\n{}",
            healed.to_text()
        );
        assert_eq!(
            healed.pending_disruption,
            None,
            "seed {seed}: every disruption must be answered\n{}",
            healed.to_text()
        );
        let heal_recovery = healed
            .recoveries
            .iter()
            .find(|r| r.disrupted_at == 20_000)
            .unwrap_or_else(|| {
                panic!(
                    "seed {seed}: no recovery for the heal\n{}",
                    healed.to_text()
                )
            });
        assert!(
            heal_recovery.latency() <= bound,
            "seed {seed}: heal answered after {} rounds (bound {bound})\n{}",
            heal_recovery.latency(),
            healed.to_text()
        );
    }
    assert!(
        plain_wipeouts >= 1,
        "the pinned seeds must still exhibit the plain-BFW wipeout hazard"
    );
}

#[test]
fn injected_phantom_waves_are_flushed_under_bfw_recovery() {
    // Mirror of `injected_phantom_waves_defeat_re_election_as_section5_predicts`:
    // same injection, same seed, but with the recovery layer. The
    // phantom wave circulates only until the heartbeat silence is
    // detected; the epoch-fenced restart flushes it and re-elects.
    let spec = ScenarioSpec::parse(
        "[scenario]\nname = \"phantom\"\ngraph = \"cycle:9\"\nrounds = 9000\nstability = 20\n\
         protocol = \"bfw+recovery\"\n\
         [[event]]\nat = 5000\nkind = \"inject-phantom\"\nwaves = 1\n",
    )
    .unwrap();
    let graph: GraphSpec = spec.graph.parse().unwrap();
    let outcome = run_bfw_scenario(&spec, &graph.build(), 11).unwrap();
    assert_eq!(
        outcome.final_leaders.len(),
        1,
        "the phantom wave must be flushed\n{}",
        outcome.to_text()
    );
    assert_eq!(outcome.pending_disruption, None, "{}", outcome.to_text());
    let r = outcome.recoveries.last().expect("a recovery is recorded");
    assert_eq!(r.disrupted_at, 5_000);
    assert!(r.recovered_at > 5_000 && r.recovered_at < 9_000, "{r:?}");
}

#[test]
fn recovery_protocol_runs_on_the_stone_age_runtime() {
    // The wrapper is itself a BeepingProtocol, so the BeepingAsStoneAge
    // adapter must reproduce its executions bit-for-bit on the
    // stone-age runtime — heartbeat slots and all.
    let protocol = RecoveringProtocol::bfw(0.5, RecoveryConfig::for_diameter(5));
    let graph = generators::cycle(10);
    let mut beeping = Network::new(protocol.clone(), graph.clone().into(), 21);
    let mut stone = StoneAgeNetwork::new(BeepingAsStoneAge::new(protocol), graph.into(), 21);
    for _ in 0..20 {
        beeping.run(500);
        stone.run(500);
        assert_eq!(beeping.states(), stone.states());
    }
    assert_eq!(beeping.leader_count(), 1);
    assert_eq!(stone.leader_count(), 1);
}

#[test]
fn noise_bursts_drive_both_runtimes_identically() {
    // Before the TickEngine refactor, NoiseBurst events were "skipped
    // (runtime has no noise model)" on the stone-age runtime. The noise
    // model now lives in the shared fault layer, so the same scenario
    // must (a) apply the burst on a stone-age host and (b) produce a
    // bit-identical outcome to the beeping host, because the
    // BeepingAsStoneAge adapter reproduces beeping executions
    // draw-for-draw even under noise.
    let n = 10;
    let seed = 9;
    let graph = generators::cycle(n);
    let timeline = Timeline::new()
        .at(
            2_000,
            ScenarioEvent::NoiseBurst {
                fn_rate: 0.3,
                fp_rate: 0.1,
                rounds: 400,
            },
        )
        .at(5_000, ScenarioEvent::CrashLeader)
        .at(5_200, ScenarioEvent::RecoverAll);
    let stone = StoneAgeNetwork::new(
        BeepingAsStoneAge::new(Bfw::new(0.5)),
        graph.clone().into(),
        seed,
    );
    let stone_outcome = Engine::new(stone, &graph, &timeline, 20_000, seed, 50).run();
    assert!(
        stone_outcome.event_log[0].contains("noise on for 400 round(s)"),
        "stone-age runtime must accept noise bursts: {:?}",
        stone_outcome.event_log
    );
    assert!(
        stone_outcome.event_log[1].contains("noise-burst ends"),
        "{:?}",
        stone_outcome.event_log
    );

    let beeping = Network::new(Bfw::new(0.5), graph.clone().into(), seed);
    let beeping_outcome = Engine::new(beeping, &graph, &timeline, 20_000, seed, 50).run();
    assert_eq!(stone_outcome, beeping_outcome);
}

#[test]
fn stone_age_host_survives_edge_churn_and_partitions() {
    // The stone-age runtime shares the delta-applied dynamic topology:
    // edge churn, partition and heal must all land (no skips) and the
    // healed ring must end with every edge restored.
    let n = 12;
    let seed = 4;
    let graph = generators::cycle(n);
    let timeline = Timeline::new()
        .at(
            1_000,
            ScenarioEvent::AddEdge(NodeId::new(0), NodeId::new(6)),
        )
        .at(
            2_000,
            ScenarioEvent::RemoveEdge(NodeId::new(0), NodeId::new(6)),
        )
        .at(
            3_000,
            ScenarioEvent::Partition {
                side: (0..n / 2).map(NodeId::new).collect(),
            },
        )
        .at(4_000, ScenarioEvent::Heal);
    let stone = StoneAgeNetwork::new(
        BeepingAsStoneAge::new(Bfw::new(0.5)),
        graph.clone().into(),
        seed,
    );
    let outcome = Engine::new(stone, &graph, &timeline, 30_000, seed, 50).run();
    assert!(outcome.event_log[0].contains("added edge (0, 6)"));
    assert!(outcome.event_log[1].contains("removed edge (0, 6)"));
    assert!(outcome.event_log[2].contains("cut 2 edge(s)"));
    assert!(outcome.event_log[3].contains("restored 2 edge(s)"));
    assert_eq!(outcome.final_edges, n, "heal must restore the ring");
    assert!(outcome.final_leaders.len() <= 1);
}

#[test]
fn injected_phantom_waves_defeat_re_election_as_section5_predicts() {
    // Inject the Section 5 leaderless wave after convergence: the wave
    // circulates forever, no leader ever returns, and the monitor
    // reports the disruption as permanently pending.
    let spec = ScenarioSpec::parse(
        "[scenario]\nname = \"phantom\"\ngraph = \"cycle:9\"\nrounds = 9000\nstability = 20\n\
         [[event]]\nat = 5000\nkind = \"inject-phantom\"\nwaves = 1\n",
    )
    .unwrap();
    let graph: GraphSpec = spec.graph.parse().unwrap();
    let outcome = run_bfw_scenario(&spec, &graph.build(), 11).unwrap();
    assert!(outcome.final_leaders.is_empty(), "{}", outcome.to_text());
    assert_eq!(outcome.pending_disruption, Some(5_000));
}

/// The shipped async example scenario, exercised exactly as the CLI
/// would (the CI determinism smoke runs the same file through the
/// binary).
const ASYNC_STORM: &str = include_str!("../examples/scenarios/async_storm.toml");

#[test]
fn shipped_async_storm_scenario_is_byte_deterministic() {
    let spec = ScenarioSpec::parse(ASYNC_STORM).expect("shipped scenario must parse");
    assert_eq!(spec.runtime, bfw_scenario::RuntimeKind::Async);
    assert_eq!(spec.scheduler, Some(bfw_sim::Scheduler::Uniform));
    let graph: GraphSpec = spec.graph.parse().unwrap();
    let graph = graph.build();
    let a = run_bfw_scenario(&spec, &graph, 42).unwrap();
    let b = run_bfw_scenario(&spec, &graph, 42).unwrap();
    assert_eq!(a, b);
    assert_eq!(a.to_text(), b.to_text());
    assert_eq!(a.rounds_run, 160_000, "horizon read in activations");
    // The storm's early crash-leader lands while duel leaders are
    // alive, so the async runtime demonstrably answers fault events.
    assert!(
        a.event_log[0].contains("crashed leader"),
        "{:?}",
        a.event_log
    );
}

#[test]
fn async_runtime_with_recovery_protocol_is_a_hard_spec_error() {
    // Satellite of the ActivationEngine PR, mirroring the PR 3 negative
    // parser tests: the recovery layer multiplexes slots over round
    // parity, which does not exist under asynchronous activation.
    let e = ScenarioSpec::parse(
        "[scenario]\ngraph = \"cycle:8\"\nruntime = \"async\"\nprotocol = \"bfw+recovery\"",
    )
    .unwrap_err();
    assert!(e.to_string().contains("synchronous rounds"), "{e}");
    assert!(
        e.to_string().contains("did you mean protocol = \"bfw\"?"),
        "{e}"
    );

    // Unknown scheduler values are hard errors with hints, and the
    // scheduler key itself needs the async runtime.
    let e = ScenarioSpec::parse(
        "[scenario]\ngraph = \"cycle:8\"\nruntime = \"async\"\nscheduler = \"replya\"",
    )
    .unwrap_err();
    assert!(
        e.to_string()
            .contains("unknown scheduler 'replya' (did you mean 'replay'?)"),
        "{e}"
    );
    let e = ScenarioSpec::parse("[scenario]\ngraph = \"cycle:8\"\nscheduler = \"uniform\"")
        .unwrap_err();
    assert!(
        e.to_string()
            .contains("scheduler requires runtime = \"async\""),
        "{e}"
    );
}

#[test]
fn async_host_drives_the_full_fault_vocabulary() {
    // One asynchronous scenario through every event family: explicit
    // crash + recover, edge churn, partition + heal, a noise burst and
    // a Section 5 phantom injection must all land (no "skipped"), with
    // positions read in activations.
    let n = 9;
    let spec = ScenarioSpec {
        name: "async vocabulary".to_owned(),
        graph: format!("cycle:{n}"),
        p: 0.5,
        rounds: 40_000,
        stability: 200,
        seed: 0,
        protocol: ProtocolKind::Bfw,
        heartbeat: None,
        timeout: None,
        grace: None,
        runtime: bfw_scenario::RuntimeKind::Async,
        scheduler: Some(bfw_sim::Scheduler::Replay),
        kernel: Default::default(),
        threads: None,
        trace: None,
        timeline: Timeline::new()
            .at(1_000, ScenarioEvent::CrashNode(NodeId::new(3)))
            .at(2_000, ScenarioEvent::RecoverNode(NodeId::new(3)))
            .at(
                3_000,
                ScenarioEvent::AddEdge(NodeId::new(0), NodeId::new(4)),
            )
            .at(
                4_000,
                ScenarioEvent::RemoveEdge(NodeId::new(0), NodeId::new(4)),
            )
            .at(
                5_000,
                ScenarioEvent::Partition {
                    side: (0..n / 2).map(NodeId::new).collect(),
                },
            )
            .at(6_000, ScenarioEvent::Heal)
            .at(
                7_000,
                ScenarioEvent::NoiseBurst {
                    fn_rate: 0.1,
                    fp_rate: 0.02,
                    rounds: 1_000,
                },
            )
            .at(
                20_000,
                ScenarioEvent::InjectState(InjectKind::PhantomWaves { waves: 1 }),
            ),
    };
    let graph = generators::cycle(n);
    let outcome = run_bfw_scenario(&spec, &graph, 7).unwrap();
    let expectations = [
        "crashed node 3",
        "recovered node 3",
        "added edge (0, 4)",
        "removed edge (0, 4)",
        "cut 2 edge(s)",
        "restored 2 edge(s)",
        "noise on for 1000 round(s)",
        "noise-burst ends",
        "injected phantom-waves(1)",
    ];
    for (line, want) in outcome.event_log.iter().zip(expectations) {
        assert!(
            line.contains(want),
            "{want:?} missing: {:?}",
            outcome.event_log
        );
    }
    assert_eq!(outcome.rounds_run, 40_000);
    assert_eq!(outcome.final_edges, n, "heal must restore the ring");
    // Section 5 holds asynchronously too: the injected leaderless wave
    // can never mint a new leader (only wipe itself out), so the run
    // ends with zero leaders.
    assert!(outcome.final_leaders.is_empty(), "{}", outcome.to_text());
    // And byte-determinism survives the whole vocabulary.
    assert_eq!(outcome, run_bfw_scenario(&spec, &graph, 7).unwrap());
}

#[test]
fn async_schedulers_drive_distinct_but_deterministic_runs() {
    let mk = |scheduler| {
        let mut net = AsyncStoneAgeNetwork::new(
            BeepingAsStoneAge::new(Bfw::new(0.5)),
            generators::cycle(10).into(),
            3,
        );
        net.set_scheduler(scheduler);
        net.run_activations(400);
        format!("{:?}", net.states())
    };
    for s in [
        bfw_sim::Scheduler::Uniform,
        bfw_sim::Scheduler::Weighted,
        bfw_sim::Scheduler::Replay,
    ] {
        assert_eq!(mk(s), mk(s), "{s} must be deterministic");
    }
    // On a cycle every degree is equal, so uniform and weighted draw
    // different streams yet both remain valid; replay is a fixed sweep.
    // At least two of the three must differ somewhere.
    let outcomes: std::collections::HashSet<String> = [
        bfw_sim::Scheduler::Uniform,
        bfw_sim::Scheduler::Weighted,
        bfw_sim::Scheduler::Replay,
    ]
    .into_iter()
    .map(mk)
    .collect();
    assert!(outcomes.len() >= 2, "schedulers must matter");
}

#[test]
fn recovery_survives_the_lowest_noise_sweep_point() {
    // The ROADMAP's open noise-on-heartbeat gap, pinned as a
    // regression: at the lowest E17 `--noise` sweep point the
    // self-healing stack must still reach 0 permanently-leaderless
    // runs across all three wipeout classes (noise inflates latency
    // and flaps — measured by `bfw experiment recovery --noise` — but
    // must not break safety).
    let (fn_rate, fp_rate) = bfw_bench::experiments::recovery::NOISE_SWEEP[0];
    for (label, spec) in
        bfw_bench::experiments::recovery::noisy_wipeout_specs(12, 40_000, fn_rate, fp_rate)
    {
        let graph: GraphSpec = spec.graph.parse().unwrap();
        let graph = graph.build();
        for seed in 0..8u64 {
            let outcome = run_bfw_scenario(&spec, &graph, seed).unwrap();
            assert!(
                !outcome.final_leaders.is_empty(),
                "{label} seed {seed}: permanently leaderless under the lowest \
                 noise sweep point\n{}",
                outcome.to_text()
            );
        }
    }
}
