//! Workspace-level interchange checks: every tracked `BENCH_*.json`
//! artifact is a valid, canonically-rendered `bfw/bench-report`
//! document, and the `bfw/graph` format round-trips byte-identically
//! at scale.
//!
//! The tracked artifacts are committed from release runs; these tests
//! only *read* them (regeneration stays a release-binary affair — see
//! the CI smoke steps).

use bfw_graph::generators;
use bfw_graph::io::{export_json, import_json, GraphDoc, Provenance};
use bfw_stats::JsonValue;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::path::Path;

/// The committed bench artifacts at the workspace root.
const TRACKED_REPORTS: &[&str] = &[
    "BENCH_churn.json",
    "BENCH_complexity.json",
    "BENCH_parallel.json",
    "BENCH_tick.json",
];

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn tracked_bench_reports_validate_and_are_canonical() {
    for name in TRACKED_REPORTS {
        let path = workspace_root().join(name);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{name} must be tracked at the workspace root: {e}"));

        // Schema-valid with a non-empty row set.
        let summary = bfw_bench::report::validate_bench_report(&text)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!summary.experiment.is_empty(), "{name}");
        assert!(summary.rows > 0, "{name}: no rows");

        // Parse → render → parse fixpoint, and the committed bytes ARE
        // the canonical rendering (so regenerating diffs cleanly).
        let value = JsonValue::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let rendered = value.render_pretty();
        assert_eq!(
            JsonValue::parse(&rendered).unwrap(),
            value,
            "{name}: parse–render–parse is not a fixpoint"
        );
        assert_eq!(rendered, text, "{name}: committed bytes are not canonical");
    }
}

#[test]
fn tracked_heal_report_validates_and_is_canonical() {
    // The committed scenario artifact: the `[trace]` section of
    // `examples/scenarios/heal_wipeout.toml` writes it at seed 2, so
    // `bfw scenario run examples/scenarios/heal_wipeout.toml` must
    // reproduce it byte-for-byte.
    let name = "heal_report.json";
    let path = workspace_root().join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{name} must be tracked at the workspace root: {e}"));

    let summary =
        bfw_scenario::validate_run_report(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
    assert_eq!(summary.scenario, "heal wipeout, survived", "{name}");
    assert!(
        summary.traced,
        "{name}: the [trace] section must be present"
    );

    let value = JsonValue::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
    let rendered = value.render_pretty();
    assert_eq!(
        JsonValue::parse(&rendered).unwrap(),
        value,
        "{name}: parse–render–parse is not a fixpoint"
    );
    assert_eq!(rendered, text, "{name}: committed bytes are not canonical");
}

#[test]
fn hundred_thousand_node_graph_round_trips_byte_identically() {
    let n = 100_000;
    let doc = GraphDoc {
        graph: generators::cycle(n),
        provenance: Some(Provenance::new("cycle", [("n", n as u64)], None)),
        delta: None,
    };
    let exported = export_json(&doc);
    let imported = import_json(&exported).expect("canonical export imports");
    assert_eq!(imported, doc);
    assert_eq!(
        export_json(&imported),
        exported,
        "re-export must be a byte fixpoint"
    );
}

#[test]
fn generator_family_documents_round_trip_with_provenance() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let doc = GraphDoc {
        graph: generators::preferential_attachment(5_000, 3, &mut rng),
        provenance: Some(Provenance::new("ba", [("n", 5_000), ("m", 3)], Some(7))),
        delta: None,
    };
    let exported = export_json(&doc);
    let imported = import_json(&exported).expect("ba export imports");
    assert_eq!(imported, doc);
    assert_eq!(export_json(&imported), exported);
    // The document validates and reports its family.
    let summary = bfw_graph::io::validate_json(&exported).unwrap();
    assert_eq!(summary.nodes, 5_000);
    assert_eq!(summary.family.as_deref(), Some("ba"));
}
