//! Cross-crate checks of the paper's quantitative claims: Section 3's
//! exact laws on live executions, and Section 4's stationary behaviour.

use bfw_bench::GraphSpec;
use bfw_core::{flow, theory, Bfw, FlowAuditor, InvariantChecker};
use bfw_graph::NodeId;
use bfw_sim::{observe_run, Network, ObserverSet, Topology};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

#[test]
fn flow_theory_exact_across_suite() {
    for spec in GraphSpec::standard_suite(true) {
        let graph = match spec.topology() {
            Topology::Graph(g) => g,
            t => t.to_graph(),
        };
        let n = graph.node_count();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut auditor = FlowAuditor::new(n);
        for _ in 0..4 {
            let start = NodeId::new(rng.random_range(0..n));
            if let Some(p) = flow::random_walk_path(&graph, start, 10, &mut rng) {
                auditor.register_path(p);
            }
        }
        let checker = InvariantChecker::new(&graph).with_lemma11(n <= 32);
        let mut combo = ObserverSet::new(auditor, checker);
        let mut net = Network::new(Bfw::new(0.5), graph.into(), 77);
        observe_run(&mut net, &mut combo, 600, |_| false);
        combo.first.assert_clean();
        combo.second.assert_clean();
    }
}

#[test]
fn surviving_leader_beeps_at_stationary_rate() {
    let p = 0.5;
    let mut net = Network::new(Bfw::new(p), GraphSpec::Cycle(16).topology(), 2024);
    net.run_until(1_000_000, |v| v.leader_count() == 1)
        .expect("cycle election converges");
    let leader = net.unique_leader().expect("converged");
    net.run(200); // drain residual waves
    let horizon = 60_000;
    let mut beeps = 0u64;
    for _ in 0..horizon {
        net.step();
        if net.state(leader).beeps() {
            beeps += 1;
        }
    }
    let rate = beeps as f64 / horizon as f64;
    let predicted = theory::stationary_beep_rate(p);
    assert!(
        (rate - predicted).abs() < 0.01,
        "measured {rate}, Eq. (16) predicts {predicted}"
    );
}

#[test]
fn leader_is_never_disturbed_after_convergence() {
    // Stronger than stability: after convergence (plus a drain period),
    // the leader must never be in B◦/F◦/W◦ — it stays a leader and its
    // own waves never return (flow theory).
    let mut net = Network::new(Bfw::new(0.5), GraphSpec::Grid(4, 4).topology(), 3);
    net.run_until(1_000_000, |v| v.leader_count() == 1)
        .expect("grid election converges");
    let leader = net.unique_leader().expect("converged");
    net.run(64);
    for _ in 0..20_000 {
        net.step();
        assert!(net.state(leader).is_leader());
        assert_eq!(net.unique_leader(), Some(leader));
    }
}

#[test]
fn lemma11_bound_is_tight_on_paths() {
    // The bound |N_beep(u) − N_beep(v)| ≤ dis(u, v) is achieved: on a
    // long path some adjacent pair must reach gap exactly 1 quickly
    // (the first beep anywhere creates it).
    let n = 10;
    let g = bfw_graph::generators::path(n);
    let mut counts = vec![0u64; n];
    let mut net = Network::new(Bfw::new(0.5), g.into(), 1);
    let mut achieved = false;
    for _ in 0..100 {
        net.step();
        for (i, &b) in net.beep_flags().iter().enumerate() {
            counts[i] += u64::from(b);
        }
        if counts.windows(2).any(|w| w[0].abs_diff(w[1]) == 1) {
            achieved = true;
            break;
        }
    }
    assert!(
        achieved,
        "gap of 1 across an edge should appear almost immediately"
    );
}

#[test]
fn theorem2_normalization_is_bounded_on_growing_cycles() {
    // rounds / (D² ln n) stays below a fixed constant across sizes —
    // the empirical content of the O(D² log n) upper bound.
    for n in [8usize, 16, 32, 48] {
        let spec = GraphSpec::Cycle(n);
        let d = spec.diameter();
        let mut worst_ratio: f64 = 0.0;
        for seed in 0..8u64 {
            let out = bfw_sim::run_election(
                Bfw::new(0.5),
                spec.topology(),
                seed,
                bfw_sim::ElectionConfig::new(100_000_000),
            )
            .expect("cycle elections converge");
            worst_ratio = worst_ratio.max(theory::theorem2_ratio(out.converged_round as f64, d, n));
        }
        assert!(
            worst_ratio < 10.0,
            "n={n}: rounds/(D² ln n) = {worst_ratio} — far above the Theorem 2 scale"
        );
    }
}
