//! Word-sharded parallel stepping ≡ serial stepping, pinned.
//!
//! The multi-threaded `BitEngine` claims byte-identical outcomes at
//! every thread count — same state vectors, same RNG stream positions,
//! same complexity ledger — with the speed coming purely from stepping
//! disjoint word shards concurrently. These tests pin that claim
//! across topologies (including the provenance-tagged ba and geo
//! families) and fault regimes, and pin the cache-aware RCM relabeling
//! as externally invisible: a relabeled propagation plan computes the
//! same heard sets as the original-label plan, just in its own word
//! order.
//!
//! The trailing noise phase after recovery matters: zero drift there
//! proves the per-node RNG streams sit at identical positions after
//! every sharded phase, not merely that the states happen to agree.

use bfw_core::{Bfw, BfwState, BitNetwork};
use bfw_graph::{generators, Graph, NodeId, WordGraph};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Thread counts the equivalence grid exercises: serial, even split,
/// a prime that misaligns shard boundaries, and more threads than most
/// of these graphs have words.
const THREAD_COUNTS: [usize; 4] = [1, 2, 7, 16];

/// The fault-regime schedule every run exercises: plain rounds, two-
/// channel noise, a crash, recovery, then noise again (the RNG-
/// position pin — see the module docs).
fn drive<M>(mut phase_done: M) -> Vec<Vec<BfwState>>
where
    M: FnMut(&mut dyn FnMut(&mut BitNetwork)) -> Vec<BfwState>,
{
    let mut checkpoints = Vec::new();
    checkpoints.push(phase_done(&mut |net| net.run(40)));
    checkpoints.push(phase_done(&mut |net| {
        net.set_noise(0.2, 0.05);
        net.run(30);
    }));
    checkpoints.push(phase_done(&mut |net| {
        net.set_noise(0.0, 0.0);
        net.crash_node(NodeId::new(3));
        net.run(25);
    }));
    checkpoints.push(phase_done(&mut |net| {
        net.recover_node(NodeId::new(3));
        net.run(40);
    }));
    checkpoints.push(phase_done(&mut |net| {
        net.set_noise(0.1, 0.1);
        net.run(30);
    }));
    checkpoints
}

/// Runs the full fault schedule at `threads`, returning the state
/// vector at every phase boundary.
fn run_sharded(graph: &Graph, seed: u64, threads: usize) -> Vec<Vec<BfwState>> {
    let mut net = BitNetwork::new(Bfw::new(0.5), graph.clone().into(), seed);
    net.set_threads(threads);
    net.enable_instrumentation(None);
    drive(|apply| {
        apply(&mut net);
        net.states()
    })
}

/// Ledger counts as a comparable tuple.
fn ledger_counts(net: &BitNetwork) -> (u64, u64, u64, u64, u64) {
    let l = net.complexity_ledger().unwrap();
    (
        l.steps(),
        l.beeps_sent(),
        l.beeps_heard(),
        l.bits(),
        l.messages(),
    )
}

/// The topology grid: the diameter-diverse trio plus the two
/// provenance-tagged random families (ba preferential attachment and
/// the geometric disk graph).
fn grid() -> Vec<(&'static str, Graph)> {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9E0);
    vec![
        ("cycle:100", generators::cycle(100)),
        ("torus:8x8", generators::torus(8, 8)),
        (
            "random-regular:64:4",
            generators::random_regular(64, 4, &mut rng),
        ),
        (
            "ba:64:2",
            generators::preferential_attachment(64, 2, &mut rng),
        ),
        (
            "geo:64:250",
            generators::random_geometric_connected(64, 0.25, &mut rng),
        ),
    ]
}

#[test]
fn thread_counts_agree_across_topologies_and_faults() {
    for (name, graph) in &grid() {
        for seed in [7u64, 42] {
            let serial = run_sharded(graph, seed, 1);
            for threads in THREAD_COUNTS {
                let sharded = run_sharded(graph, seed, threads);
                assert_eq!(
                    serial, sharded,
                    "{name} seed {seed} threads {threads}: sharded stepping diverged \
                     (plain/noise/crash/recover/noise checkpoints)"
                );
            }
        }
    }
}

#[test]
fn ledgers_are_identical_across_thread_counts() {
    let graph = generators::torus(6, 6);
    let mut serial = BitNetwork::new(Bfw::new(0.5), graph.clone().into(), 3);
    serial.enable_instrumentation(Some(32));
    serial.set_noise(0.1, 0.02);
    serial.run(50);
    let expected = ledger_counts(&serial);
    assert!(expected.0 == 50 && expected.1 > 0 && expected.4 > 0);
    for threads in THREAD_COUNTS {
        let mut net = BitNetwork::new(Bfw::new(0.5), graph.clone().into(), 3);
        net.set_threads(threads);
        net.enable_instrumentation(Some(32));
        net.set_noise(0.1, 0.02);
        net.run(50);
        assert_eq!(expected, ledger_counts(&net), "threads {threads}");
    }
}

#[test]
fn sharded_stepping_elects_the_same_leader() {
    // The end-to-end outcome: an election driven at 7 threads lands on
    // the same leader, in the same round count, as the serial run.
    let graph = generators::cycle(64);
    let run = |threads: usize| {
        let mut net = BitNetwork::new(Bfw::new(0.5), graph.clone().into(), 9);
        net.set_threads(threads);
        let mut rounds = 0u64;
        while net.leader_count() != 1 && rounds < 1_000_000 {
            net.step();
            rounds += 1;
        }
        (net.unique_leader().expect("election converges"), rounds)
    };
    let serial = run(1);
    for threads in [2usize, 7, 16] {
        assert_eq!(serial, run(threads), "threads {threads}");
    }
}

/// Sets bit `u` of a node bitset.
fn set_bit(words: &mut [u64], u: usize) {
    words[u / 64] |= 1u64 << (u % 64);
}

/// Reads bit `u` of a node bitset.
fn get_bit(words: &[u64], u: usize) -> bool {
    words[u / 64] >> (u % 64) & 1 == 1
}

/// One relabel-transparency check: the relabeled plan's heard set,
/// mapped back to original labels, equals the original-label plan's.
fn relabel_is_invisible(graph: &Graph, beepers: &[usize]) {
    let plain = WordGraph::build_no_relabel(graph);
    let relabeled = WordGraph::build(graph);

    let mut src_plain = vec![0u64; plain.words()];
    let mut src_rel = vec![0u64; relabeled.words()];
    for &u in beepers {
        set_bit(&mut src_plain, u);
        let i = relabeled.relabeling().map_or(u, |r| r.to_internal(u));
        set_bit(&mut src_rel, i);
    }

    let mut dst_plain = vec![0u64; plain.words()];
    let mut dst_rel = vec![0u64; relabeled.words()];
    plain.propagate_or(&src_plain, &mut dst_plain);
    relabeled.propagate_or(&src_rel, &mut dst_rel);

    for u in 0..graph.node_count() {
        let i = relabeled.relabeling().map_or(u, |r| r.to_internal(u));
        assert_eq!(
            get_bit(&dst_plain, u),
            get_bit(&dst_rel, i),
            "node {u} heard differently under relabeling ({})",
            relabeled.plan_kind()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Property: for random connected graphs and random beep sets, the
    /// RCM-relabeled propagation plan computes exactly the heard set
    /// of the original-label plan.
    #[test]
    fn relabeled_propagation_matches_original_labels(
        n in 2usize..160,
        edge_prob in 0.02f64..0.3,
        graph_seed in any::<u64>(),
        beep_mask in any::<u64>(),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(graph_seed);
        // At low edge_prob small graphs may never connect within the
        // retry budget — fall back to a cycle (still a fresh topology
        // per case via the beep mask).
        let graph = generators::erdos_renyi_connected(n, edge_prob, 64, &mut rng)
            .unwrap_or_else(|| generators::cycle(n));
        // A pseudo-random ~half-density beep set carved from the mask.
        let beepers: Vec<usize> = (0..graph.node_count())
            .filter(|u| beep_mask.rotate_left((*u % 64) as u32) & 1 == 1)
            .collect();
        relabel_is_invisible(&graph, &beepers);
    }

    /// Property: random thread counts never change the states an
    /// election run reaches on a random geometric graph.
    #[test]
    fn random_thread_counts_preserve_states(
        threads in 1usize..=16,
        seed in any::<u64>(),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(0xD15C);
        let graph = generators::random_geometric_connected(96, 0.2, &mut rng);
        let mut serial = BitNetwork::new(Bfw::new(0.5), graph.clone().into(), seed);
        let mut sharded = BitNetwork::new(Bfw::new(0.5), graph.into(), seed);
        sharded.set_threads(threads);
        serial.run(60);
        sharded.run(60);
        prop_assert_eq!(serial.states(), sharded.states());
    }
}
