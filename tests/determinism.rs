//! Reproducibility across the whole stack: seeded runs are bit-stable
//! regardless of thread count, topology fast paths, or runtime.

use bfw_bench::{election_summary, GraphSpec};
use bfw_core::{Bfw, InitialConfig};
use bfw_sim::{run_election, run_trials, run_trials_sequential, ElectionConfig, Network};

#[test]
fn run_election_is_seed_deterministic() {
    let spec = GraphSpec::Grid(4, 4);
    let run = |seed| {
        run_election(
            Bfw::new(0.5),
            spec.topology(),
            seed,
            ElectionConfig::new(1_000_000),
        )
        .expect("grid elections converge")
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a, b);
    let c = run(8);
    assert!(a != c || a.leader == c.leader); // different seeds usually differ
}

#[test]
fn trial_parallelism_does_not_change_results() {
    let spec = GraphSpec::Cycle(12);
    let topo = spec.topology();
    for threads in [1usize, 2, 8] {
        let s = election_summary(
            0.5,
            &InitialConfig::AllLeaders,
            &topo,
            12,
            threads,
            41,
            1_000_000,
        );
        let reference =
            election_summary(0.5, &InitialConfig::AllLeaders, &topo, 12, 1, 41, 1_000_000);
        assert_eq!(
            s.rounds.sorted_values(),
            reference.rounds.sorted_values(),
            "threads = {threads}"
        );
    }
}

#[test]
fn run_trials_matches_sequential_reference() {
    let f = |seed: u64| {
        let mut net = Network::new(Bfw::new(0.5), GraphSpec::Cycle(8).topology(), seed);
        net.run(100);
        net.states().to_vec()
    };
    assert_eq!(
        run_trials(16, 4, 1000, f),
        run_trials_sequential(16, 1000, f)
    );
}

#[test]
fn network_replay_is_exact() {
    let spec = GraphSpec::RandomTree(24, 3);
    let mut first = Network::new(Bfw::new(0.3), spec.topology(), 5);
    let mut second = Network::new(Bfw::new(0.3), spec.topology(), 5);
    for round in 0..500 {
        assert_eq!(first.states(), second.states(), "round {round}");
        assert_eq!(first.beep_flags(), second.beep_flags(), "round {round}");
        first.step();
        second.step();
    }
}

#[test]
fn experiments_are_reproducible_in_quick_mode() {
    use bfw_bench::{experiments, ExpConfig};
    let mut cfg = ExpConfig::quick();
    cfg.trials = 3;
    let a = experiments::flow_audit::run(&cfg);
    let b = experiments::flow_audit::run(&cfg);
    let render = |r: &bfw_bench::ExperimentResult| r.to_markdown();
    assert_eq!(render(&a), render(&b));
}
