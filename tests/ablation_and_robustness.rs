//! Cross-crate ablation and robustness checks: the freeze state is
//! load-bearing, and BFW tolerates non-standard (but Eq. (2)-valid)
//! initial configurations.

use bfw_core::{Bfw, BfwNoFreeze, InitialConfig};
use bfw_graph::{generators, NodeId};
use bfw_sim::{run_election, ElectionConfig, Network};

#[test]
fn no_freeze_ablation_loses_all_leaders_sometimes() {
    let mut wipeouts = 0;
    let trials = 60;
    for seed in 0..trials {
        let mut net = Network::new(BfwNoFreeze::new(0.5), generators::cycle(8).into(), seed);
        for _ in 0..1_000 {
            net.step();
            if net.leader_count() == 0 {
                wipeouts += 1;
                break;
            }
        }
    }
    assert!(wipeouts > 0, "the 4-state ablation should violate Lemma 9");
}

#[test]
fn bfw_never_loses_all_leaders_same_conditions() {
    for seed in 0..60u64 {
        let mut net = Network::new(Bfw::new(0.5), generators::cycle(8).into(), seed);
        for _ in 0..1_000 {
            net.step();
            assert!(net.leader_count() >= 1, "Lemma 9 violated at seed {seed}");
        }
    }
}

#[test]
fn k_leader_initializations_all_converge() {
    let n = 16;
    for k in [1usize, 2, 4, 8, 16] {
        let protocol = Bfw::new(0.5).with_initial_config(InitialConfig::FirstK(k));
        let outcome = run_election(
            protocol,
            generators::cycle(n).into(),
            7,
            ElectionConfig::new(1_000_000).with_stability_check(1_000),
        )
        .unwrap_or_else(|e| panic!("k={k}: {e}"));
        assert!(outcome.stable, "k={k}");
        if k == 1 {
            // A single initial leader is already the winner.
            assert_eq!(outcome.converged_round, 0);
            assert_eq!(outcome.leader, NodeId::new(0));
        }
    }
}

#[test]
fn single_initial_leader_is_never_eliminated() {
    // With one leader from the start, Lemma 9 + monotonicity mean it
    // must survive forever; its waves never return to kill it.
    let protocol = Bfw::new(0.5).with_initial_config(InitialConfig::FirstK(1));
    let mut net = Network::new(protocol, generators::grid(4, 4).into(), 13);
    for _ in 0..5_000 {
        net.step();
        assert_eq!(net.unique_leader(), Some(NodeId::new(0)));
    }
}

#[test]
fn explicit_leader_positions_win_on_their_own() {
    // Leaders at two adjacent nodes: one must eliminate the other
    // quickly (distance 1 duel).
    let protocol = Bfw::new(0.5)
        .with_initial_config(InitialConfig::Nodes(vec![NodeId::new(3), NodeId::new(4)]));
    let outcome = run_election(
        protocol,
        generators::path(9).into(),
        5,
        ElectionConfig::new(100_000).with_stability_check(500),
    )
    .expect("adjacent duel resolves");
    assert!(outcome.leader == NodeId::new(3) || outcome.leader == NodeId::new(4));
    assert!(outcome.stable);
}

#[test]
fn ablation_self_elimination_mechanism_is_the_echo() {
    // Witness the precise failure mode on the 2-cycle-like smallest
    // case: a triangle. In BfwNoFreeze a lone leader CAN die: it beeps,
    // both neighbors relay, it hears them and is eliminated.
    let protocol = BfwNoFreeze::new(0.5).with_initial_config(InitialConfig::FirstK(1));
    let mut died = false;
    for seed in 0..40u64 {
        let mut net = Network::new(protocol.clone(), generators::cycle(3).into(), seed);
        for _ in 0..200 {
            net.step();
            if net.leader_count() == 0 {
                died = true;
                break;
            }
        }
        if died {
            break;
        }
    }
    assert!(
        died,
        "echo self-elimination should occur without the freeze"
    );

    // The real protocol in the identical setting never loses its leader.
    let protocol = Bfw::new(0.5).with_initial_config(InitialConfig::FirstK(1));
    for seed in 0..40u64 {
        let mut net = Network::new(protocol.clone(), generators::cycle(3).into(), seed);
        for _ in 0..200 {
            net.step();
            assert_eq!(net.leader_count(), 1, "seed {seed}");
        }
    }
}
