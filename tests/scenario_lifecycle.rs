//! Workspace tests for the scenario lifecycle verbs: step/resume
//! snapshots must be byte-identical across kernels and thread counts,
//! a stepped-then-resumed run must equal a straight run, the committed
//! snapshot fixture must stay byte-stable, and the wipeout shrinker
//! must minimize the shipped corpus classes (E15 crash-leader
//! no-rejoin, E17 phantom wave).

use bfw_bench::GraphSpec;
use bfw_graph::Graph;
use bfw_scenario::{
    resume_run_bfw_scenario, resume_step_bfw_scenario, run_bfw_scenario, shrink_wipeout,
    spec_to_json, step_bfw_scenario, validate_engine_snapshot, validate_scenario,
    validate_scenario_spec, EngineSnapshot, KernelKind, ScenarioSpec,
};

const RING_CHURN: &str = include_str!("../examples/scenarios/ring_churn.toml");
const ASYNC_STORM: &str = include_str!("../examples/scenarios/async_storm.toml");
const WIPEOUT_E17: &str = include_str!("../examples/scenarios/wipeout_e17.toml");
/// Committed snapshot of `wipeout_e17.toml` stepped to round 600.
/// Regenerate with:
/// `bfw scenario step examples/scenarios/wipeout_e17.toml --rounds 600 \
///    --out tests/fixtures/wipeout_e17_round600.snapshot.json`
const SNAPSHOT_FIXTURE: &str = include_str!("fixtures/wipeout_e17_round600.snapshot.json");

fn load(toml: &str) -> (ScenarioSpec, Graph) {
    let spec = ScenarioSpec::parse(toml).expect("shipped scenario must parse");
    let graph: GraphSpec = spec.graph.parse().unwrap();
    (spec, graph.build())
}

fn wipes(outcome: &bfw_scenario::ScenarioOutcome) -> bool {
    outcome.final_leaders.is_empty() && outcome.final_alive > 0
}

/// The execution stacks a plain synchronous BFW scenario can run on.
/// `None` inherits the file's own kernel/threads.
const STACKS: [(Option<KernelKind>, Option<usize>); 4] = [
    (None, None),
    (Some(KernelKind::Generic), None),
    (Some(KernelKind::Bit), Some(1)),
    (Some(KernelKind::Bit), Some(4)),
];

#[test]
fn step_twice_equals_straight_run_on_every_stack() {
    let (spec, graph) = load(RING_CHURN);
    for seed in [42u64, 1007] {
        let reference = run_bfw_scenario(&spec, &graph, seed).unwrap();
        let mut final_snapshots = Vec::new();
        for (kernel, threads) in STACKS {
            let half = spec.rounds / 2;
            let a = step_bfw_scenario(&spec, &graph, seed, half, kernel, threads).unwrap();
            assert_eq!(a.round, half);
            let b = resume_step_bfw_scenario(&a, spec.rounds - half, kernel, threads).unwrap();
            assert_eq!(b.round, spec.rounds);
            let outcome = resume_run_bfw_scenario(&b, kernel, threads).unwrap();
            assert_eq!(
                outcome, reference,
                "stepped run diverged on kernel {kernel:?} threads {threads:?} seed {seed}"
            );
            final_snapshots.push(b.to_json_value().render_pretty());
        }
        // The snapshot document embeds the FILE's stack, never the
        // execution override: every stack writes the same bytes.
        for (i, snap) in final_snapshots.iter().enumerate().skip(1) {
            assert_eq!(
                snap, &final_snapshots[0],
                "snapshot bytes differ between stack 0 and stack {i} at seed {seed}"
            );
        }
    }
}

#[test]
fn mid_run_snapshots_resume_across_kernels() {
    let (spec, graph) = load(RING_CHURN);
    let seed = 42;
    let reference = run_bfw_scenario(&spec, &graph, seed).unwrap();
    // Snapshot on the bit kernel, resume on the generic one — and the
    // other way around — through a JSON round-trip, as `bfw scenario
    // step --out` + `run --resume-from` would.
    for (snap_stack, resume_stack) in [
        (
            (Some(KernelKind::Bit), Some(4)),
            (Some(KernelKind::Generic), None),
        ),
        (
            (Some(KernelKind::Generic), None),
            (Some(KernelKind::Bit), Some(4)),
        ),
    ] {
        let snap =
            step_bfw_scenario(&spec, &graph, seed, 20_000, snap_stack.0, snap_stack.1).unwrap();
        let text = snap.to_json_value().render_pretty();
        let decoded = EngineSnapshot::from_json(&text).unwrap();
        let outcome = resume_run_bfw_scenario(&decoded, resume_stack.0, resume_stack.1).unwrap();
        assert_eq!(
            outcome, reference,
            "cross-kernel resume diverged: snap {snap_stack:?} -> resume {resume_stack:?}"
        );
    }
}

#[test]
fn async_scenarios_step_and_resume_with_their_scheduler() {
    let (spec, graph) = load(ASYNC_STORM);
    for seed in [42u64, 9] {
        let reference = run_bfw_scenario(&spec, &graph, seed).unwrap();
        let a = step_bfw_scenario(&spec, &graph, seed, 70_000, None, None).unwrap();
        // The scheduler half must survive the JSON round-trip, or the
        // resumed activation order silently drifts.
        let decoded = EngineSnapshot::from_json(&a.to_json_value().render_pretty()).unwrap();
        let b = resume_step_bfw_scenario(&decoded, spec.rounds - 70_000, None, None).unwrap();
        assert_eq!(b.round, spec.rounds);
        let outcome = resume_run_bfw_scenario(&b, None, None).unwrap();
        assert_eq!(
            outcome, reference,
            "async stepped run diverged at seed {seed}"
        );
    }
}

#[test]
fn pinned_snapshot_fixture_stays_byte_stable() {
    let (spec, graph) = load(WIPEOUT_E17);
    let snap = step_bfw_scenario(&spec, &graph, spec.seed, 600, None, None).unwrap();
    assert_eq!(
        snap.to_json_value().render_pretty(),
        SNAPSHOT_FIXTURE,
        "the engine-snapshot encoding changed; bump the format version or regenerate \
         tests/fixtures/wipeout_e17_round600.snapshot.json (see the constant's doc comment)"
    );

    // The committed bytes validate, decode, and resume to the wipeout
    // the scenario was written to exhibit.
    let summary = validate_engine_snapshot(SNAPSHOT_FIXTURE).unwrap();
    assert_eq!(summary.round, 600);
    assert_eq!(summary.rounds, 1500);
    assert_eq!(summary.nodes, 12);
    let decoded = EngineSnapshot::from_json(SNAPSHOT_FIXTURE).unwrap();
    let outcome = resume_run_bfw_scenario(&decoded, None, None).unwrap();
    assert!(wipes(&outcome), "{}", outcome.to_text());
    assert_eq!(outcome, run_bfw_scenario(&spec, &graph, spec.seed).unwrap());
}

#[test]
fn shrinker_minimizes_the_e17_phantom_corpus() {
    let (spec, graph) = load(WIPEOUT_E17);
    for quick in [false, true] {
        let report = shrink_wipeout(&spec, &graph, spec.seed, quick).unwrap();
        assert_eq!(report.original_events, 3);
        assert_eq!(
            report.events.len(),
            1,
            "decoy churn must be dropped (quick = {quick}):\n{}",
            report.to_text()
        );
        assert!(
            report.events[0].event.to_string().starts_with("inject"),
            "{}",
            report.to_text()
        );
        assert!(
            report.horizon < report.original_horizon,
            "{}",
            report.to_text()
        );

        // The minimized spec still validates, still wipes out, and
        // round-trips through the interchange layer.
        validate_scenario(&report.spec, &graph).unwrap();
        let outcome = run_bfw_scenario(&report.spec, &graph, spec.seed).unwrap();
        assert!(wipes(&outcome), "{}", outcome.to_text());
        let doc = spec_to_json(&report.spec, spec.seed).render_pretty();
        let summary = validate_scenario_spec(&doc).unwrap();
        assert_eq!(summary.events, 1);
    }
}

#[test]
fn shrinker_minimizes_an_e15_crash_leader_corpus() {
    // E15: the elected leader crashes and never rejoins — permanent
    // wipeout under plain BFW — buried in decoy topology churn.
    let toml = r#"
[scenario]
name = "e15 no-rejoin"
graph = "cycle:8"
rounds = 4000
stability = 20
seed = 3

[[event]]
at = 100
kind = "add-edge"
u = 0
v = 4

[[event]]
at = 2500
kind = "crash-leader"

[[event]]
at = 2600
kind = "remove-edge"
u = 0
v = 4
"#;
    let (spec, graph) = load(toml);
    let report = shrink_wipeout(&spec, &graph, spec.seed, false).unwrap();
    assert_eq!(
        report.events.len(),
        1,
        "topology decoys must be dropped:\n{}",
        report.to_text()
    );
    assert_eq!(report.events[0].event.to_string(), "crash-leader");
    assert!(
        report.horizon < report.original_horizon,
        "{}",
        report.to_text()
    );
    let outcome = run_bfw_scenario(&report.spec, &graph, spec.seed).unwrap();
    assert!(wipes(&outcome), "{}", outcome.to_text());
}
