//! **E10** — the Section 1 claim that BFW runs in a synchronous
//! stone-age model, verified as bit-for-bit trace equivalence between
//! the two runtimes.

use bfw_bench::GraphSpec;
use bfw_core::Bfw;
use bfw_sim::stone_age::{BeepingAsStoneAge, StoneAgeNetwork};
use bfw_sim::{Network, Topology};

fn assert_equivalent(topology: Topology, seed: u64, rounds: u64) {
    let mut beeping = Network::new(Bfw::new(0.5), topology.clone(), seed);
    let mut stone = StoneAgeNetwork::new(BeepingAsStoneAge::new(Bfw::new(0.5)), topology, seed);
    for round in 1..=rounds {
        beeping.step();
        stone.step();
        assert_eq!(
            beeping.states(),
            stone.states(),
            "executions diverged at round {round} (seed {seed})"
        );
    }
}

#[test]
fn bfw_identical_in_both_runtimes_across_suite() {
    for spec in GraphSpec::standard_suite(true) {
        assert_equivalent(spec.topology(), 42, 300);
    }
}

#[test]
fn bfw_identical_across_seeds_on_grid() {
    for seed in [0u64, 1, 7, 0xDEAD] {
        assert_equivalent(GraphSpec::Grid(5, 5).topology(), seed, 500);
    }
}

#[test]
fn bfw_identical_on_clique_fast_paths() {
    // Both runtimes special-case the clique; the fast paths must agree
    // with each other...
    assert_equivalent(Topology::Clique(24), 11, 300);
    // ...and with the materialized complete graph.
    let mut fast = Network::new(Bfw::new(0.5), Topology::Clique(24), 5);
    let mut slow = Network::new(Bfw::new(0.5), bfw_graph::generators::complete(24).into(), 5);
    for _ in 0..300 {
        fast.step();
        slow.step();
        assert_eq!(fast.states(), slow.states());
    }
}

#[test]
fn elections_converge_identically_in_stone_age() {
    let spec = GraphSpec::Cycle(12);
    let seed = 21;
    let mut beeping = Network::new(Bfw::new(0.5), spec.topology(), seed);
    let mut stone =
        StoneAgeNetwork::new(BeepingAsStoneAge::new(Bfw::new(0.5)), spec.topology(), seed);
    let beeping_round = beeping
        .run_until(1_000_000, |v| v.leader_count() == 1)
        .expect("beeping converges");
    let mut stone_round = None;
    for round in 0..1_000_000u64 {
        if stone.leader_count() == 1 {
            stone_round = Some(round);
            break;
        }
        stone.step();
    }
    assert_eq!(Some(beeping_round), stone_round);
    assert_eq!(beeping.states(), stone.states());
}

#[test]
fn stone_age_threshold_two_does_not_change_bfw() {
    // BFW only needs "at least one": running the adapter inside a
    // b = 1 runtime is the paper's point. A custom protocol checking
    // the clamped counts equal at thresholds 1 vs 2 would differ; BFW
    // cannot, because the adapter collapses counts to a boolean before
    // the inner transition ever sees them. We assert that executions
    // agree between the graph and its... identical copy run twice, as
    // a determinism guard for the stone-age runtime itself.
    let spec = GraphSpec::Star(9);
    let run = || {
        let mut net =
            StoneAgeNetwork::new(BeepingAsStoneAge::new(Bfw::new(0.5)), spec.topology(), 9);
        net.run(400);
        net.states().to_vec()
    };
    assert_eq!(run(), run());
}
