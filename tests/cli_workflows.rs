//! Drives the `bfw` CLI end to end through its library interface
//! (parse → execute), covering the user-facing workflows.

use bfw_cli::{execute, parse, Command};

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(str::to_owned).collect()
}

fn run_cli(line: &str) -> Result<String, String> {
    parse(&argv(line)).and_then(execute)
}

#[test]
fn run_workflow_on_cycle() {
    let out = run_cli("run --graph cycle:12 --seed 5 --stability 500").expect("run succeeds");
    assert!(out.contains("graph:            cycle:12"), "{out}");
    assert!(out.contains("leader:"), "{out}");
    assert!(out.contains("unchanged for 500 extra rounds"), "{out}");
}

#[test]
fn run_workflow_known_d_on_path() {
    let out = run_cli("run --graph path:17 --known-d --seed 2").expect("run succeeds");
    // D = 16 ⇒ p = 1/17 ≈ 0.0588...
    assert!(out.contains("p:                0.058"), "{out}");
}

#[test]
fn trace_workflow_renders_waves() {
    let out = run_cli("trace --graph path:12 --rounds 25 --seed 1").expect("trace succeeds");
    // All nodes start as leaders.
    assert!(out.contains("LLLLLLLLLLLL"), "{out}");
    // Legend present.
    assert!(out.contains("W•"), "{out}");
    assert!(out.contains("leaders remaining"), "{out}");
}

#[test]
fn duel_trace_starts_with_two_leaders() {
    let out = run_cli("trace --graph path:8 --duel --rounds 5").expect("trace succeeds");
    assert!(out.contains("L......L"), "{out}");
}

#[test]
fn graph_workflow_reports_diameter() {
    let out = run_cli("graph torus:4x4").expect("graph succeeds");
    assert!(out.contains("nodes:     16"), "{out}");
    assert!(out.contains("diameter:  4"), "{out}");
    assert!(out.contains("degrees:"), "{out}");
}

#[test]
fn experiment_workflow_runs_single_experiment() {
    let out = run_cli("experiment flow --quick --trials 2").expect("experiment runs");
    assert!(out.contains("E12-flow-audit"), "{out}");
    assert!(out.contains("| graph"), "{out}");
}

#[test]
fn error_paths_are_user_friendly() {
    assert!(run_cli("run").unwrap_err().contains("--graph"));
    assert!(run_cli("run --graph bogus:1")
        .unwrap_err()
        .contains("unknown graph kind"));
    assert!(run_cli("experiment not-an-experiment --quick")
        .unwrap_err()
        .contains("unknown experiment"));
    assert!(run_cli("run --graph cycle:8 --p 1.5")
        .unwrap_err()
        .contains("(0, 1)"));
}

#[test]
fn help_covers_all_subcommands() {
    let help = execute(Command::Help).expect("help renders");
    for cmd in ["bfw run", "bfw trace", "bfw graph", "bfw experiment"] {
        assert!(help.contains(cmd), "missing {cmd}");
    }
}
