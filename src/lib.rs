//! Umbrella crate for the BFW reproduction workspace.
//!
//! This crate only hosts the workspace-level integration tests (`tests/`)
//! and runnable examples (`examples/`). The actual library lives in the
//! `bfw-*` crates; see the README for the crate map.
