//! Offline stand-in for the subset of the `proptest` API this
//! workspace's property tests use.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors a miniature property-testing engine: deterministic seeded
//! case generation (ChaCha8 keyed by test name and case index), the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, ranges, tuples,
//! [`collection::vec`], [`prelude::Just`], `prop_oneof!`, and the
//! `proptest!` / `prop_assert!` macros. **No shrinking** is performed:
//! a failing case reports its seed and values but is not minimized.

#![forbid(unsafe_code)]

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Deterministic per-case random source.
#[derive(Debug, Clone)]
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// Creates the generator for one named test case.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(ChaCha8Rng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dst: &mut [u8]) {
        self.0.fill_bytes(dst)
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns
    /// for it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy producing always the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == hi {
                    lo
                } else if hi < <$t>::MAX {
                    rng.random_range(lo..hi + 1)
                } else {
                    // Degenerate full-width range; wrap via modulo bias-free
                    // draw of the next value up.
                    rng.random_range(lo..hi)
                }
            }
        }
    )*};
}

impl_int_range_inclusive_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let x: f64 = rng.random();
        self.start + x * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Marker for types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.random_bool(0.5)
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u32()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

/// Strategy over the full value range of `T` (see [`any`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T` (`any::<u64>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Lengths accepted by [`vec()`]: a fixed `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Samples a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.start >= self.end {
                self.start
            } else {
                rng.random_range(self.clone())
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `element` and a
    /// length drawn from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner types (`proptest::test_runner`).
pub mod test_runner {
    use std::fmt;

    /// Number of cases to run per property (the only knob this shim
    /// supports).
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Creates a config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The property does not hold; the message explains why.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}
}

/// The usual glob import: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `#[test] fn name(pat in strategy, ...)`
/// runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $( $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block )*
    ) => {
        $crate::proptest!(@impl ($config) $( $(#[$meta])* fn $name($($pat in $strat),+) $body )*);
    };
    (
        $( $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block )*
    ) => {
        $crate::proptest!(@impl (<$crate::test_runner::Config as ::core::default::Default>::default())
            $( $(#[$meta])* fn $name($($pat in $strat),+) $body )*);
    };
    (@impl ($config:expr)
        $( $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                for case in 0..u64::from(config.cases) {
                    let mut proptest_rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(
                        let $pat = $crate::Strategy::generate(&($strat), &mut proptest_rng);
                    )+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!("property {} failed at case {case}: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
}

/// Chooses uniformly among the listed strategies (all must produce the
/// same value type). Weights are not supported by this shim.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Uniform choice among boxed strategies (see `prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Creates the choice strategy.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.random_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Asserts a condition inside `proptest!`, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Asserts inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: both sides are {:?}", l);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let (a, b) = (3usize..9, 0.25f64..0.75).generate(&mut rng);
            assert!((3..9).contains(&a));
            assert!((0.25..0.75).contains(&b));
        }
    }

    #[test]
    fn oneof_uses_every_arm() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::for_case("oneof", 0);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn vec_lengths_respect_range() {
        let strat = collection::vec(any::<bool>(), 2..5);
        let mut rng = TestRng::for_case("vec", 0);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let exact = collection::vec(any::<u64>(), 7usize);
        assert_eq!(exact.generate(&mut rng).len(), 7);
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let strat = (0u32..1000, any::<u64>());
        let a = strat.generate(&mut TestRng::for_case("det", 3));
        let b = strat.generate(&mut TestRng::for_case("det", 3));
        let c = strat.generate(&mut TestRng::for_case("det", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_plumbing_works(x in 1u32..100, flip in any::<bool>()) {
            prop_assert!(x >= 1);
            prop_assert_eq!(x, x);
            if flip {
                return Ok(());
            }
            prop_assert_ne!(x, x + 1);
        }
    }
}
