//! Offline stand-in for the subset of the `criterion` API this
//! workspace's benches use.
//!
//! The build container has no access to crates.io. This shim keeps the
//! `benches/` targets compiling and runnable: each benchmark routine is
//! warmed up once and then timed over a small fixed number of
//! iterations, with the median wall-clock time printed per benchmark
//! id. It performs no statistical analysis, produces no reports, and
//! ignores command-line options — it exists so `cargo bench` gives
//! ballpark numbers and CI keeps the bench code compiling.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (deprecated upstream in
/// favor of `std::hint::black_box`, which the benches already use).
pub use std::hint::black_box;

/// Measurement driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            samples: 10,
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{id}"), 10, &mut f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples (clamped to `2..=20` in this
    /// shim).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(2, 20);
        self
    }

    /// Declares the per-iteration throughput (recorded for display
    /// only).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{id}", self.name), self.samples, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{id}", self.name), self.samples, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Finishes the group (no-op in this shim).
    pub fn finish(self) {}
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut times = Vec::with_capacity(samples);
    // One warm-up sample, discarded.
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    for _ in 0..samples {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        times.push(bencher.elapsed);
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    println!("bench {label}: median {median:?} over {samples} samples");
}

/// Timing handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times one execution of `routine` (the real criterion runs many;
    /// this shim's sampling loop lives in the group driver).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        black_box(out);
    }
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Throughput declaration (display-only in this shim).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3);
            group.bench_function("f", |b| {
                b.iter(|| {
                    calls += 1;
                })
            });
            group.finish();
        }
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut seen = 0u64;
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("f", 7), &7u64, |b, &x| {
            b.iter(|| {
                seen = x;
            })
        });
        group.finish();
        assert_eq!(seen, 7);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
