//! Offline stand-in for the `rand_chacha` crate: a self-contained
//! [`ChaCha8Rng`].
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the one generator it uses. The implementation is the real
//! ChaCha stream cipher core (D. J. Bernstein) with 8 rounds and a
//! 64-bit block counter; seeding follows the `rand` 0.9 `SeedableRng`
//! conventions (32-byte seed, SplitMix64 expansion for
//! `seed_from_u64`). Streams are bit-stable across runs and platforms —
//! the property every determinism contract in this workspace depends
//! on — though they are not byte-identical to the upstream crate's.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// A cryptographically strong, seedable, portable random generator:
/// ChaCha with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words (seed).
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current output block.
    block: [u32; 16],
    /// Next unread word index in `block` (16 = exhausted).
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Returns the stream position as `(counter, cursor)`: the block
    /// counter of the *next* block to generate and the next unread word
    /// index within the current block (16 = exhausted). Together with
    /// the seed this pins the stream exactly, so a generator can be
    /// checkpointed without serializing its key or block buffer.
    pub fn position(&self) -> (u64, usize) {
        (self.counter, self.cursor)
    }

    /// Rewinds or fast-forwards this generator to a `(counter, cursor)`
    /// position previously returned by [`position`](Self::position).
    /// The key is untouched, so this only restores positions of the
    /// *same* seed's stream; the block buffer is regenerated on demand.
    ///
    /// # Panics
    ///
    /// Panics if `cursor > 16`, or if `cursor < 16` while `counter` is
    /// 0 (a mid-block position implies at least one generated block).
    pub fn set_position(&mut self, counter: u64, cursor: usize) {
        assert!(cursor <= 16, "cursor must be at most 16 (got {cursor})");
        if cursor < 16 {
            assert!(
                counter > 0,
                "a mid-block cursor implies at least one generated block"
            );
            // `refill` rebuilds the block from `counter` and then
            // advances it, so start one block back.
            self.counter = counter - 1;
            self.refill();
            self.cursor = cursor;
        } else {
            self.counter = counter;
            self.cursor = 16;
        }
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14..16] is the (always-zero) stream id.
        let input = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.block.iter_mut().zip(state.iter().zip(input)) {
            *out = s.wrapping_add(i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dst: &mut [u8]) {
        for chunk in dst.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            for (d, s) in chunk.iter_mut().zip(word) {
                *d = s;
            }
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("chunk of 4"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            cursor: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn position_round_trips_at_every_offset() {
        // Restoring (counter, cursor) must resume the stream exactly,
        // at fresh, mid-block and block-boundary positions alike.
        for drawn in [0usize, 1, 15, 16, 17, 31, 32, 100] {
            let mut a = ChaCha8Rng::seed_from_u64(11);
            for _ in 0..drawn {
                a.next_u32();
            }
            let pos = a.position();
            let expected: Vec<u32> = (0..40).map(|_| a.next_u32()).collect();
            let mut b = ChaCha8Rng::seed_from_u64(11);
            b.set_position(pos.0, pos.1);
            let resumed: Vec<u32> = (0..40).map(|_| b.next_u32()).collect();
            assert_eq!(expected, resumed, "after {drawn} draws: {pos:?}");
        }
    }

    #[test]
    fn fresh_position_is_zero_sixteen() {
        let rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(rng.position(), (0, 16));
    }

    #[test]
    #[should_panic(expected = "mid-block cursor")]
    fn mid_block_position_needs_a_generated_block() {
        ChaCha8Rng::seed_from_u64(0).set_position(0, 3);
    }

    #[test]
    fn from_rng_derives_independent_streams() {
        let mut master = ChaCha8Rng::seed_from_u64(0);
        let mut c1 = ChaCha8Rng::from_rng(&mut master);
        let mut c2 = ChaCha8Rng::from_rng(&mut master);
        let v1: Vec<u64> = (0..10).map(|_| c1.next_u64()).collect();
        let v2: Vec<u64> = (0..10).map(|_| c2.next_u64()).collect();
        assert_ne!(v1, v2);
    }

    #[test]
    fn output_looks_uniform() {
        // Crude balance check: each of 16 buckets gets roughly 1/16 of
        // 64k draws.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut buckets = [0u32; 16];
        for _ in 0..65_536 {
            buckets[(rng.next_u32() >> 28) as usize] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((3500..=4700).contains(&b), "bucket {i}: {b}");
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn quarter_round_matches_rfc7539_example() {
        // RFC 7539 §2.1.1 test vector.
        let mut state = [0u32; 16];
        state[0] = 0x1111_1111;
        state[1] = 0x0102_0304;
        state[2] = 0x9b8d_6f43;
        state[3] = 0x0123_4567;
        quarter_round(&mut state, 0, 1, 2, 3);
        assert_eq!(state[0], 0xea2a_92f4);
        assert_eq!(state[1], 0xcb1c_f8ce);
        assert_eq!(state[2], 0x4581_472e);
        assert_eq!(state[3], 0x5881_c4bb);
    }
}
