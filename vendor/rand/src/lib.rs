//! Offline stand-in for the subset of the `rand` 0.9 API this workspace
//! uses.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors a minimal, self-contained implementation of the traits it
//! relies on: [`RngCore`], [`SeedableRng`] and the [`Rng`] extension
//! trait with `random`, `random_bool` and `random_range`. The API
//! mirrors rand 0.9 exactly for the methods provided, so swapping the
//! real crate back in is a one-line manifest change; the generated
//! *streams* are those of the vendored generators (bit-stable across
//! runs and platforms, which is all the workspace's determinism
//! contracts require).

#![forbid(unsafe_code)]

/// A source of uniformly random 32/64-bit words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dst` with random bytes.
    fn fill_bytes(&mut self, dst: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dst: &mut [u8]) {
        (**self).fill_bytes(dst)
    }
}

/// A random generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsRef<[u8]> + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64
    /// (the same construction rand 0.9 uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let x = splitmix64(&mut state);
            for (dst, src) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }

    /// Creates a generator seeded from another generator.
    fn from_rng(rng: &mut impl RngCore) -> Self {
        let mut seed = Self::Seed::default();
        rng.fill_bytes(seed.as_mut());
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable uniformly from the full value range (the analogue of
/// rand's `StandardUniform` distribution).
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable as [`Rng::random_range`] bounds.
pub trait UniformInt: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`.
    fn sample_below<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_below<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as u64).wrapping_sub(low as u64);
                debug_assert!(span > 0);
                // Unbiased rejection sampling (multiply-shift zone).
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let x = rng.next_u64();
                    if x < zone {
                        return low + (x % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

/// Ranges accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_below(self.start, self.end, rng)
    }
}

/// Convenience extension methods over any [`RngCore`] (mirrors rand 0.9's
/// `Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` uniformly (for `f64`: in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "p={p} is outside range [0.0, 1.0]"
        );
        // Compare against 2^53 scaled p so p = 1.0 is always true.
        let scale = (1u64 << 53) as f64;
        let threshold = (p * scale) as u64;
        (self.next_u64() >> 11) < threshold
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone)]
    struct XorShift(u64);

    impl RngCore for XorShift {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn fill_bytes(&mut self, dst: &mut [u8]) {
            for chunk in dst.chunks_mut(8) {
                let x = self.next_u64().to_le_bytes();
                for (d, s) in chunk.iter_mut().zip(x) {
                    *d = s;
                }
            }
        }
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = XorShift(42);
        for _ in 0..10_000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
        }
    }

    #[test]
    fn random_range_covers_all_values() {
        let mut rng = XorShift(7);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.random_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = XorShift(1);
        let _: u32 = rng.random_range(5..5);
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = XorShift(3);
        for _ in 0..100 {
            assert!(rng.random_bool(1.0));
            assert!(!rng.random_bool(0.0));
        }
    }

    #[test]
    fn random_bool_rate_is_plausible() {
        let mut rng = XorShift(9);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "outside range")]
    fn random_bool_rejects_bad_p() {
        let mut rng = XorShift(3);
        let _ = rng.random_bool(1.5);
    }

    #[test]
    fn f64_samples_are_in_unit_interval() {
        let mut rng = XorShift(11);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn dyn_rng_core_supports_extension_trait() {
        let mut rng = XorShift(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let _ = dyn_rng.random_bool(0.5);
        let _: u32 = dyn_rng.random_range(0..10);
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        #[derive(PartialEq, Debug)]
        struct S([u8; 8]);
        impl RngCore for S {
            fn next_u32(&mut self) -> u32 {
                0
            }
            fn next_u64(&mut self) -> u64 {
                0
            }
            fn fill_bytes(&mut self, _dst: &mut [u8]) {}
        }
        impl SeedableRng for S {
            type Seed = [u8; 8];
            fn from_seed(seed: [u8; 8]) -> Self {
                S(seed)
            }
        }
        assert_eq!(S::seed_from_u64(9), S::seed_from_u64(9));
        assert_ne!(S::seed_from_u64(9).0, S::seed_from_u64(10).0);
    }
}
