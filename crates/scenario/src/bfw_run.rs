//! BFW-specific wiring: injectors and the one-call scenario runner.

use crate::{Engine, InjectKind, Injector, ScenarioOutcome, ScenarioSpec};
use bfw_core::{adversarial, Bfw, BfwState};
use bfw_graph::Graph;
use bfw_sim::Network;

/// The injector resolving [`InjectKind`] into BFW configurations from
/// `bfw_core::adversarial` (Section 5 of the paper).
///
/// `PhantomWaves { waves }` resolves only when the wave-spacing
/// preconditions hold (`n ≥ 3·waves`, `waves | n`); otherwise the event
/// is skipped and logged — a scenario typo should not panic a run.
pub fn bfw_injector() -> Injector<BfwState> {
    Box::new(|kind, n| match *kind {
        InjectKind::PhantomWaves { waves } => {
            if waves == 0 || n < 3 * waves || n % waves != 0 {
                None
            } else {
                Some(adversarial::leaderless_wave_cycle(n, waves))
            }
        }
        InjectKind::Dead => Some(adversarial::dead_configuration(n)),
    })
}

/// Runs a parsed [`ScenarioSpec`] with BFW on `graph`, seeding both the
/// protocol execution and the scenario stream from `seed`.
///
/// The caller resolves the spec's `graph` string to a concrete
/// [`Graph`] (the CLI uses `bfw-bench`'s `GraphSpec` syntax); everything
/// else — protocol, timeline, injection, metrics — is wired here. Same
/// `(spec, graph, seed)` ⇒ byte-identical [`ScenarioOutcome`].
pub fn run_bfw_scenario(spec: &ScenarioSpec, graph: &Graph, seed: u64) -> ScenarioOutcome {
    let host = Network::new(Bfw::new(spec.p), graph.clone().into(), seed);
    Engine::new(
        host,
        graph,
        &spec.timeline,
        spec.rounds,
        seed,
        spec.stability,
    )
    .with_injector(bfw_injector())
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfw_graph::generators;

    const CHURN: &str = r#"
[scenario]
name = "test churn"
graph = "cycle:12"
rounds = 15000
stability = 20

[[event]]
at = 4000
kind = "crash-leader"

[[event]]
at = 4200
kind = "recover-all"
"#;

    #[test]
    fn spec_runner_measures_recovery() {
        let spec = ScenarioSpec::parse(CHURN).unwrap();
        let outcome = run_bfw_scenario(&spec, &generators::cycle(12), 42);
        assert_eq!(outcome.rounds_run, 15_000);
        assert_eq!(outcome.recoveries.len(), 1, "{outcome:?}");
        assert!(outcome.recoveries[0].recovered_at >= 4_200);
        assert_eq!(outcome.final_leaders.len(), 1);
    }

    #[test]
    fn spec_runner_is_byte_deterministic() {
        let spec = ScenarioSpec::parse(CHURN).unwrap();
        let g = generators::cycle(12);
        let a = run_bfw_scenario(&spec, &g, 7).to_text();
        let b = run_bfw_scenario(&spec, &g, 7).to_text();
        assert_eq!(a, b);
        // The report exposes only a few seed-sensitive fields (elected
        // leader identity, latencies), so any single pair of seeds can
        // collide; across several seeds the outcomes must differ.
        let distinct: std::collections::HashSet<String> = (7..15u64)
            .map(|seed| run_bfw_scenario(&spec, &g, seed).to_text())
            .collect();
        assert!(distinct.len() > 1, "seeds must matter");
    }

    #[test]
    fn injector_guards_phantom_preconditions() {
        let inj = bfw_injector();
        assert!(inj(&InjectKind::PhantomWaves { waves: 1 }, 9).is_some());
        // 10 is not a multiple of 3; 5 < 3·2.
        assert!(inj(&InjectKind::PhantomWaves { waves: 3 }, 10).is_none());
        assert!(inj(&InjectKind::PhantomWaves { waves: 2 }, 5).is_none());
        assert!(inj(&InjectKind::PhantomWaves { waves: 0 }, 9).is_none());
        let dead = inj(&InjectKind::Dead, 4).unwrap();
        assert_eq!(dead.len(), 4);
        assert!(dead.iter().all(|s| !s.is_leader()));
    }
}
