//! BFW-specific wiring: injectors and the one-call scenario runner.

use crate::{
    Engine, InjectKind, Injector, KernelKind, ProtocolKind, RuntimeKind, ScenarioEvent,
    ScenarioOutcome, ScenarioSpec, ScenarioTrace, SpecError,
};
use bfw_core::{
    adversarial, Bfw, BfwState, BitNetwork, RecoveringNetwork, RecoveringProtocol, RecoveryConfig,
    RecoveryState,
};
use bfw_graph::{algo, Graph};
use bfw_sim::stone_age::{AsyncStoneAgeNetwork, BeepingAsStoneAge};
use bfw_sim::Network;

/// The injector resolving [`InjectKind`] into BFW configurations from
/// `bfw_core::adversarial` (Section 5 of the paper).
///
/// `PhantomWaves { waves }` resolves only when the wave-spacing
/// preconditions hold (`n ≥ 3·waves`, `waves | n`); otherwise the event
/// is skipped and logged — a scenario typo should not panic a run.
pub fn bfw_injector() -> Injector<BfwState> {
    Box::new(|kind, n| match *kind {
        InjectKind::PhantomWaves { waves } => {
            if waves == 0 || n < 3 * waves || n % waves != 0 {
                None
            } else {
                Some(adversarial::leaderless_wave_cycle(n, waves))
            }
        }
        InjectKind::Dead => Some(adversarial::dead_configuration(n)),
    })
}

/// The [`bfw_injector`] lifted to the recovery layer: the same Section 5
/// configurations, wrapped into fresh [`RecoveryState`]s (normal
/// operation, detection clock reset — the runtime stamps the slot
/// parity on installation, so injection at any round stays
/// phase-synchronized).
pub fn recovering_bfw_injector() -> Injector<RecoveryState<BfwState>> {
    let base = bfw_injector();
    Box::new(move |kind, n| {
        base(kind, n).map(|states| states.into_iter().map(RecoveryState::rejoining).collect())
    })
}

/// The worst-case eccentricity the recovery layer's relay window must
/// cover for this scenario. A timeline containing distance-*stretching*
/// events can push eccentricities past the initial diameter — a window
/// sized to the intact graph would then strand distant nodes outside
/// every sweep and trigger perpetual false restarts — so those
/// scenarios use the graph-independent bound `n - 1` (no connected
/// subgraph on `n` nodes exceeds it). Stretching events are the
/// topology cuts (`remove-edge`, `partition`) **and every crash kind**:
/// a crashed node neither beeps nor relays, so heartbeat sweeps must
/// detour around it through the alive subgraph, whose distances can
/// exceed the intact diameter. Static and distance-shrinking timelines
/// keep the exact initial diameter (disconnected inputs fall back to
/// `n`).
fn eccentricity_bound(spec: &ScenarioSpec, graph: &Graph) -> u32 {
    let n = graph.node_count() as u32;
    let stretching = spec.timeline.entries().iter().any(|entry| {
        matches!(
            entry.event,
            ScenarioEvent::RemoveEdge(..)
                | ScenarioEvent::Partition { .. }
                | ScenarioEvent::CrashNode(..)
                | ScenarioEvent::CrashRandom
                | ScenarioEvent::CrashLeader
        )
    });
    if stretching {
        n.saturating_sub(1)
    } else {
        algo::diameter(graph).unwrap_or(n)
    }
}

/// Resolves a spec's recovery timing against a concrete graph: start
/// from [`RecoveryConfig::for_diameter`] over the scenario's worst-case
/// eccentricity bound — the initial diameter, or `n - 1` when the
/// timeline contains distance-stretching events (`remove-edge`,
/// `partition`), which can push eccentricities past the intact
/// diameter — and apply the spec's explicit `heartbeat` / `timeout` /
/// `grace` overrides.
///
/// # Errors
///
/// Returns a [`SpecError`] when the overridden combination violates the
/// layer's timing constraints (see [`RecoveryConfig::try_new`]), or
/// when the resulting relay window cannot cover the scenario's
/// worst-case eccentricity (a heartbeat sweep that cannot reach every
/// node would silently break the election) — a scenario typo must fail
/// with a message, not panic the run or corrupt it.
pub fn scenario_recovery_config(
    spec: &ScenarioSpec,
    graph: &Graph,
) -> Result<RecoveryConfig, SpecError> {
    let bound = eccentricity_bound(spec, graph);
    let auto = RecoveryConfig::for_diameter(bound);
    let config = RecoveryConfig::try_new(
        spec.heartbeat.unwrap_or(auto.heartbeat_period),
        spec.timeout.unwrap_or(auto.timeout),
        spec.grace.unwrap_or(auto.grace),
    )
    .map_err(|message| SpecError::new(format!("recovery timing: {message}")))?;
    if config.relay_window() < bound {
        return Err(SpecError::new(format!(
            "recovery timing: relay window {} (heartbeat {} minus the forbidden zone) \
             cannot cover this scenario's worst-case eccentricity {bound}; \
             raise heartbeat to at least {}",
            config.relay_window(),
            config.heartbeat_period,
            bound + bfw_core::recovery::FORBIDDEN_PHASES
        )));
    }
    Ok(config)
}

/// Node-count threshold above which `kernel = "auto"` picks the
/// bit-parallel kernel for plain synchronous BFW. Below it the generic
/// engine's per-node loop is already fast enough that kernel choice is
/// a wash; above it the bitplane path wins by word-level parallelism.
const AUTO_BIT_THRESHOLD: usize = 4096;

/// Resolves a spec's `kernel` key against a concrete node count:
/// explicit choices pass through; `auto` picks [`KernelKind::Bit`] for
/// plain synchronous BFW on graphs of at least 4096 nodes — **or at any
/// size when the spec carries an explicit `threads` count**, since only
/// the bit kernel shards its step and resolving to the generic engine
/// would silently ignore the requested thread count — and
/// [`KernelKind::Generic`] otherwise. The resolution never changes
/// outcomes — the kernels are byte-identical at a fixed seed.
pub fn resolved_kernel(spec: &ScenarioSpec, n: usize) -> KernelKind {
    match spec.kernel {
        KernelKind::Auto => {
            if spec.protocol == ProtocolKind::Bfw
                && spec.runtime == RuntimeKind::Sync
                && (n >= AUTO_BIT_THRESHOLD || spec.threads.is_some())
            {
                KernelKind::Bit
            } else {
                KernelKind::Generic
            }
        }
        explicit => explicit,
    }
}

/// Cap on the default worker-thread count for the bit kernel's
/// word-sharded step. Beyond ~8 shards the per-step scope spawn/join
/// overhead eats the propagation win on all but the very largest
/// graphs, so auto-detection stops there; an explicit `threads` key or
/// `--threads` flag can still ask for more.
const DEFAULT_THREAD_CAP: usize = 8;

/// Resolves a spec's `threads` key: explicit choices pass through;
/// unset picks the host's available parallelism capped at
/// `DEFAULT_THREAD_CAP` (8). The resolution never changes outcomes — the
/// bit kernel's sharded step is byte-identical at every thread count.
pub fn resolved_threads(spec: &ScenarioSpec) -> usize {
    spec.threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(DEFAULT_THREAD_CAP)
    })
}

/// Runs a parsed [`ScenarioSpec`] on `graph`, seeding both the protocol
/// execution and the scenario stream from `seed`.
///
/// The spec's `protocol` key selects the stack: plain BFW on a
/// [`Network`], or `bfw+recovery` — BFW wrapped in the self-healing
/// recovery layer — on a [`RecoveringNetwork`] (slot parity kept
/// synchronized for mid-run rejoiners), with the timing resolved by
/// [`scenario_recovery_config`]. The spec's `runtime` key selects the
/// executor: synchronous rounds (the default), or `runtime = "async"`
/// — BFW as a stone-age protocol on the [`AsyncStoneAgeNetwork`]
/// activation engine, with the spec's `scheduler` installed and every
/// timeline position (and the horizon) read in **activations**. The
/// caller resolves the spec's `graph` string to a concrete [`Graph`]
/// (the CLI uses `bfw-bench`'s `GraphSpec` syntax); everything else —
/// protocol, timeline, injection, metrics — is wired here. Same
/// `(spec, graph, seed)` ⇒ byte-identical [`ScenarioOutcome`].
///
/// # Errors
///
/// Returns a [`SpecError`] when the spec's recovery-timing overrides
/// are invalid for this graph (see [`scenario_recovery_config`]), or
/// when `runtime = "async"` is combined with `protocol =
/// "bfw+recovery"` (slot multiplexing needs synchronous rounds; the
/// parser rejects the combination, and programmatically built specs
/// fail here).
pub fn run_bfw_scenario(
    spec: &ScenarioSpec,
    graph: &Graph,
    seed: u64,
) -> Result<ScenarioOutcome, SpecError> {
    run_bfw_scenario_traced(spec, graph, seed, None).map(|(outcome, _)| outcome)
}

/// [`run_bfw_scenario`] with optional complexity instrumentation.
///
/// `trace = Some(capacity)` enables the host's instrumentation seam
/// (see [`bfw_sim::instrument`]) with a flight recorder holding the
/// last `capacity` events, and returns the resulting [`ScenarioTrace`]
/// alongside the outcome; `trace = None` runs exactly like
/// [`run_bfw_scenario`] and returns no trace. Instrumentation is
/// strictly passive — it never draws from an RNG stream — so the
/// [`ScenarioOutcome`] is byte-identical either way at the same seed.
///
/// # Errors
///
/// Same as [`run_bfw_scenario`].
pub fn run_bfw_scenario_traced(
    spec: &ScenarioSpec,
    graph: &Graph,
    seed: u64,
    trace: Option<usize>,
) -> Result<(ScenarioOutcome, Option<ScenarioTrace>), SpecError> {
    check_stack_invariants(spec)?;
    if spec.runtime == RuntimeKind::Async {
        if spec.protocol == ProtocolKind::BfwRecovery {
            return Err(SpecError::new(
                "runtime = \"async\" cannot execute protocol = \"bfw+recovery\": slot \
                 multiplexing needs synchronous rounds (did you mean protocol = \"bfw\"?)",
            ));
        }
        let mut host = AsyncStoneAgeNetwork::new(
            BeepingAsStoneAge::new(Bfw::new(spec.p)),
            graph.clone().into(),
            seed,
        );
        host.set_scheduler(spec.scheduler.unwrap_or_default());
        if let Some(capacity) = trace {
            host.enable_instrumentation(Some(capacity));
        }
        return Ok(Engine::new(
            host,
            graph,
            &spec.timeline,
            spec.rounds,
            seed,
            spec.stability,
        )
        .with_injector(bfw_injector())
        .run_traced());
    }
    Ok(match spec.protocol {
        ProtocolKind::Bfw => {
            if resolved_kernel(spec, graph.node_count()) == KernelKind::Bit {
                let mut host = BitNetwork::new(Bfw::new(spec.p), graph.clone().into(), seed);
                host.set_threads(resolved_threads(spec));
                if let Some(capacity) = trace {
                    host.enable_instrumentation(Some(capacity));
                }
                Engine::new(
                    host,
                    graph,
                    &spec.timeline,
                    spec.rounds,
                    seed,
                    spec.stability,
                )
                .with_injector(bfw_injector())
                .run_traced()
            } else {
                let mut host = Network::new(Bfw::new(spec.p), graph.clone().into(), seed);
                if let Some(capacity) = trace {
                    host.enable_instrumentation(Some(capacity));
                }
                Engine::new(
                    host,
                    graph,
                    &spec.timeline,
                    spec.rounds,
                    seed,
                    spec.stability,
                )
                .with_injector(bfw_injector())
                .run_traced()
            }
        }
        ProtocolKind::BfwRecovery => {
            let config = scenario_recovery_config(spec, graph)?;
            let protocol = RecoveringProtocol::bfw(spec.p, config);
            let mut host = RecoveringNetwork::new(protocol, graph.clone().into(), seed);
            if let Some(capacity) = trace {
                host.enable_instrumentation(Some(capacity));
            }
            Engine::new(
                host,
                graph,
                &spec.timeline,
                spec.rounds,
                seed,
                spec.stability,
            )
            .with_injector(recovering_bfw_injector())
            .run_traced()
        }
    })
}

/// The stack invariants every runner (and the `validate` verb) enforces
/// before touching a host: combinations the parser rejects in TOML must
/// fail identically on programmatically built specs instead of silently
/// running the wrong stack or dropping a key.
pub(crate) fn check_stack_invariants(spec: &ScenarioSpec) -> Result<(), SpecError> {
    if spec.runtime == RuntimeKind::Sync && spec.scheduler.is_some() {
        return Err(SpecError::new(
            "scheduler requires runtime = \"async\" (synchronous rounds have no activation \
             scheduler)",
        ));
    }
    // Mirror the parser's recovery-keys invariant for programmatically
    // built specs: overrides on a stack without a recovery layer would
    // otherwise be silently dropped.
    if spec.protocol == ProtocolKind::Bfw
        && (spec.heartbeat.is_some() || spec.timeout.is_some() || spec.grace.is_some())
    {
        return Err(SpecError::new(
            "heartbeat/timeout/grace require protocol = \"bfw+recovery\" (plain bfw has no \
             recovery layer)",
        ));
    }
    // Mirror the parser's kernel invariants too: an explicit bit kernel
    // on a stack it cannot execute must fail loudly, never silently run
    // the generic path.
    if spec.kernel == KernelKind::Bit {
        if spec.protocol == ProtocolKind::BfwRecovery {
            return Err(SpecError::new(
                "kernel = \"bit\" cannot execute protocol = \"bfw+recovery\": the bitplane \
                 kernel packs the six plain BFW states (did you mean kernel = \"generic\"?)",
            ));
        }
        if spec.runtime == RuntimeKind::Async {
            return Err(SpecError::new(
                "kernel = \"bit\" requires synchronous rounds (did you mean runtime = \
                 \"sync\"?)",
            ));
        }
    }
    // And the parser's threads invariants: only the bit kernel shards
    // its step, so a thread count on any other stack must fail loudly.
    if spec.threads.is_some()
        && (spec.kernel == KernelKind::Generic
            || spec.runtime == RuntimeKind::Async
            || spec.protocol == ProtocolKind::BfwRecovery)
    {
        return Err(SpecError::new(
            "threads requires the bit kernel on plain synchronous bfw: only the bitplane \
             kernel's word-sharded step fans out across worker threads",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfw_graph::generators;

    const CHURN: &str = r#"
[scenario]
name = "test churn"
graph = "cycle:12"
rounds = 15000
stability = 20

[[event]]
at = 4000
kind = "crash-leader"

[[event]]
at = 4200
kind = "recover-all"
"#;

    #[test]
    fn spec_runner_measures_recovery() {
        let spec = ScenarioSpec::parse(CHURN).unwrap();
        let outcome = run_bfw_scenario(&spec, &generators::cycle(12), 42).unwrap();
        assert_eq!(outcome.rounds_run, 15_000);
        // Two disruptions (crash, rejoin), each with its own window,
        // both answered by the same stable leader.
        assert_eq!(outcome.recoveries.len(), 2, "{outcome:?}");
        assert_eq!(outcome.recoveries[0].disrupted_at, 4_000);
        assert_eq!(outcome.recoveries[1].disrupted_at, 4_200);
        assert!(outcome.recoveries[0].recovered_at >= 4_200);
        assert_eq!(outcome.final_leaders.len(), 1);
    }

    #[test]
    fn spec_runner_is_byte_deterministic() {
        let spec = ScenarioSpec::parse(CHURN).unwrap();
        let g = generators::cycle(12);
        let a = run_bfw_scenario(&spec, &g, 7).unwrap().to_text();
        let b = run_bfw_scenario(&spec, &g, 7).unwrap().to_text();
        assert_eq!(a, b);
        // The report exposes only a few seed-sensitive fields (elected
        // leader identity, latencies), so any single pair of seeds can
        // collide; across several seeds the outcomes must differ.
        let distinct: std::collections::HashSet<String> = (7..15u64)
            .map(|seed| run_bfw_scenario(&spec, &g, seed).unwrap().to_text())
            .collect();
        assert!(distinct.len() > 1, "seeds must matter");
    }

    #[test]
    fn recovery_protocol_spec_runs_and_is_deterministic() {
        let text = CHURN.replace(
            "stability = 20",
            "stability = 20\nprotocol = \"bfw+recovery\"",
        );
        let spec = ScenarioSpec::parse(&text).unwrap();
        assert_eq!(spec.protocol, ProtocolKind::BfwRecovery);
        let g = generators::cycle(12);
        let a = run_bfw_scenario(&spec, &g, 42).unwrap();
        assert_eq!(a, run_bfw_scenario(&spec, &g, 42).unwrap());
        assert_eq!(a.final_leaders.len(), 1, "{}", a.to_text());
        assert_eq!(a.pending_disruption, None, "{}", a.to_text());
    }

    #[test]
    fn recovery_config_resolution_uses_diameter_and_overrides() {
        let spec = ScenarioSpec::parse(
            "[scenario]\ngraph = \"cycle:12\"\nprotocol = \"bfw+recovery\"\ntimeout = 99",
        )
        .unwrap();
        let cfg = scenario_recovery_config(&spec, &generators::cycle(12)).unwrap();
        // cycle(12) has diameter 6: auto period 11, auto grace 33.
        assert_eq!(cfg.heartbeat_period, 11);
        assert_eq!(cfg.timeout, 99, "explicit override wins");
        assert_eq!(cfg.grace, 33);
    }

    #[test]
    fn stretching_timelines_size_the_window_to_worst_case() {
        // A remove-edge (or partition) can raise eccentricities past
        // the initial diameter; the auto timing must then cover the
        // graph-independent bound n - 1 instead of the intact diameter
        // (a window sized to the intact cycle would strand the far
        // nodes outside every sweep and restart them forever).
        let text = "[scenario]\ngraph = \"cycle:12\"\nprotocol = \"bfw+recovery\"\n\
                    [[event]]\nat = 100\nkind = \"remove-edge\"\nu = 0\nv = 11";
        let spec = ScenarioSpec::parse(text).unwrap();
        let cfg = scenario_recovery_config(&spec, &generators::cycle(12)).unwrap();
        assert_eq!(
            cfg.heartbeat_period, 16,
            "sized to n - 1 = 11, not diameter 6"
        );
        assert!(cfg.relay_window() >= 11);
        // The run itself must stay stable: the cycle degrades to a
        // path, the leader survives, and nothing ever restarts
        // spuriously.
        for seed in [6u64, 9, 10] {
            let outcome = run_bfw_scenario(&spec, &generators::cycle(12), seed).unwrap();
            assert_eq!(
                outcome.final_leaders.len(),
                1,
                "seed {seed}: {}",
                outcome.to_text()
            );
            assert_eq!(outcome.pending_disruption, None, "seed {seed}");
        }
    }

    #[test]
    fn undersized_override_window_is_rejected() {
        // heartbeat = 6 gives a relay window of 2: a sweep could never
        // cover cycle:32 (diameter 16), so the election would silently
        // shatter into simultaneous restarts. Must be a hard error.
        let spec = ScenarioSpec::parse(
            "[scenario]\ngraph = \"cycle:32\"\nprotocol = \"bfw+recovery\"\n\
             heartbeat = 6\ntimeout = 20",
        )
        .unwrap();
        let err = scenario_recovery_config(&spec, &generators::cycle(32)).unwrap_err();
        assert!(err.to_string().contains("cannot cover"), "{err}");
        assert!(err.to_string().contains("raise heartbeat"), "{err}");
        let err = run_bfw_scenario(&spec, &generators::cycle(32), 1).unwrap_err();
        assert!(err.to_string().contains("eccentricity"), "{err}");
    }

    #[test]
    fn invalid_recovery_timing_is_an_error_not_a_panic() {
        // heartbeat = 3 cannot host the forbidden zone: the run must
        // fail with a message (the CLI prints it), never panic.
        let spec = ScenarioSpec::parse(
            "[scenario]\ngraph = \"cycle:8\"\nprotocol = \"bfw+recovery\"\nheartbeat = 3",
        )
        .unwrap();
        let err = run_bfw_scenario(&spec, &generators::cycle(8), 1).unwrap_err();
        assert!(err.to_string().contains("recovery timing"), "{err}");
        assert!(err.to_string().contains("forbidden zone"), "{err}");
        // timeout below the (diameter-derived) period: same treatment.
        let spec = ScenarioSpec::parse(
            "[scenario]\ngraph = \"cycle:8\"\nprotocol = \"bfw+recovery\"\ntimeout = 2",
        )
        .unwrap();
        let err = scenario_recovery_config(&spec, &generators::cycle(8)).unwrap_err();
        assert!(err.to_string().contains("must exceed"), "{err}");
    }

    #[test]
    fn async_runtime_spec_runs_and_is_deterministic() {
        let text = CHURN.replace(
            "stability = 20",
            "stability = 20\nruntime = \"async\"\nscheduler = \"uniform\"",
        );
        let spec = ScenarioSpec::parse(&text).unwrap();
        assert_eq!(spec.runtime, crate::RuntimeKind::Async);
        let g = generators::cycle(12);
        let a = run_bfw_scenario(&spec, &g, 42).unwrap();
        let b = run_bfw_scenario(&spec, &g, 42).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_text(), b.to_text());
        assert_eq!(a.rounds_run, 15_000, "horizon read in activations");
        // Different schedulers genuinely change the execution.
        let weighted = ScenarioSpec {
            scheduler: Some(bfw_sim::Scheduler::Weighted),
            ..spec.clone()
        };
        let replay = ScenarioSpec {
            scheduler: Some(bfw_sim::Scheduler::Replay),
            ..spec
        };
        let w = run_bfw_scenario(&weighted, &g, 42).unwrap();
        let r = run_bfw_scenario(&replay, &g, 42).unwrap();
        assert!(a != w || a != r, "schedulers must matter");
    }

    #[test]
    fn async_runtime_rejects_recovery_protocol_programmatically() {
        // The parser already rejects the combination; specs built in
        // code (experiments, tests) must fail the same way instead of
        // silently running the wrong stack.
        let text = CHURN.replace(
            "stability = 20",
            "stability = 20\nprotocol = \"bfw+recovery\"",
        );
        let mut spec = ScenarioSpec::parse(&text).unwrap();
        spec.runtime = crate::RuntimeKind::Async;
        let err = run_bfw_scenario(&spec, &generators::cycle(12), 1).unwrap_err();
        assert!(err.to_string().contains("synchronous rounds"), "{err}");

        // The other parser invariant gets the same programmatic
        // treatment: a Sync spec carrying a scheduler must fail loudly,
        // not silently drop the scheduler.
        let mut spec = ScenarioSpec::parse(CHURN).unwrap();
        spec.scheduler = Some(bfw_sim::Scheduler::Weighted);
        let err = run_bfw_scenario(&spec, &generators::cycle(12), 1).unwrap_err();
        assert!(
            err.to_string().contains("scheduler requires runtime"),
            "{err}"
        );

        // And recovery-timing overrides without the recovery layer
        // (async or sync) are rejected, not silently dropped.
        let mut spec = ScenarioSpec::parse(CHURN).unwrap();
        spec.runtime = crate::RuntimeKind::Async;
        spec.heartbeat = Some(40);
        let err = run_bfw_scenario(&spec, &generators::cycle(12), 1).unwrap_err();
        assert!(
            err.to_string()
                .contains("require protocol = \"bfw+recovery\""),
            "{err}"
        );
    }

    #[test]
    fn trace_does_not_perturb_outcomes() {
        // The determinism contract of the instrumentation seam: a
        // traced run's result block is byte-identical to the untraced
        // run at the same seed, on every runtime stack. Samplers only
        // read caches — they never draw from an RNG stream.
        let g = generators::cycle(12);
        let sync_spec = ScenarioSpec::parse(CHURN).unwrap();
        let recovery_spec = ScenarioSpec::parse(&CHURN.replace(
            "stability = 20",
            "stability = 20\nprotocol = \"bfw+recovery\"",
        ))
        .unwrap();
        let async_spec = ScenarioSpec::parse(
            &CHURN.replace("stability = 20", "stability = 20\nruntime = \"async\""),
        )
        .unwrap();
        for (label, spec) in [
            ("sync bfw", &sync_spec),
            ("bfw+recovery", &recovery_spec),
            ("async", &async_spec),
        ] {
            for seed in [7u64, 42] {
                let plain = run_bfw_scenario(spec, &g, seed).unwrap();
                let (traced, trace) = run_bfw_scenario_traced(spec, &g, seed, Some(64)).unwrap();
                assert_eq!(
                    plain.to_text(),
                    traced.to_text(),
                    "{label} seed {seed}: trace must not perturb the outcome"
                );
                assert_eq!(plain, traced, "{label} seed {seed}");
                let trace = trace.expect("instrumentation was on");
                assert!(trace.ledger.steps() > 0, "{label} seed {seed}");
                assert!(trace.ledger.messages() > 0, "{label} seed {seed}");
                let recorder = trace.recorder.expect("recorder was attached");
                assert!(
                    recorder.events().any(|e| e.kind == "scenario-event"),
                    "{label} seed {seed}: scenario events must be recorded"
                );
            }
        }
    }

    #[test]
    fn untraced_runner_returns_no_trace() {
        let spec = ScenarioSpec::parse(CHURN).unwrap();
        let (_, trace) = run_bfw_scenario_traced(&spec, &generators::cycle(12), 42, None).unwrap();
        assert_eq!(trace, None);
    }

    #[test]
    fn traced_runner_measures_recovery_costs() {
        let spec = ScenarioSpec::parse(CHURN).unwrap();
        let g = generators::cycle(12);
        let (outcome, trace) = run_bfw_scenario_traced(&spec, &g, 42, Some(256)).unwrap();
        let trace = trace.unwrap();
        // One cost entry per completed recovery, and recovering costs
        // channel work (the network keeps beeping through recovery).
        assert_eq!(trace.recovery_costs.len(), outcome.recoveries.len());
        assert!(
            trace.recovery_costs.iter().all(|&(b, m)| b > 0 && m > 0),
            "{:?}",
            trace.recovery_costs
        );
        // Determinism extends to the trace artifacts themselves.
        let (_, again) = run_bfw_scenario_traced(&spec, &g, 42, Some(256)).unwrap();
        assert_eq!(trace, again.unwrap());
    }

    #[test]
    fn kernel_resolution_is_size_and_stack_aware() {
        let spec = ScenarioSpec::parse(CHURN).unwrap();
        assert_eq!(spec.kernel, KernelKind::Auto);
        assert_eq!(resolved_kernel(&spec, 12), KernelKind::Generic);
        assert_eq!(resolved_kernel(&spec, 4095), KernelKind::Generic);
        assert_eq!(resolved_kernel(&spec, 4096), KernelKind::Bit);
        assert_eq!(resolved_kernel(&spec, 1_000_000), KernelKind::Bit);

        // Explicit choices pass through regardless of size.
        let bit = ScenarioSpec {
            kernel: KernelKind::Bit,
            ..spec.clone()
        };
        assert_eq!(resolved_kernel(&bit, 12), KernelKind::Bit);
        let generic = ScenarioSpec {
            kernel: KernelKind::Generic,
            ..spec.clone()
        };
        assert_eq!(resolved_kernel(&generic, 1_000_000), KernelKind::Generic);

        // Auto never picks bit on stacks that cannot run it.
        let recovery = ScenarioSpec {
            protocol: ProtocolKind::BfwRecovery,
            ..spec.clone()
        };
        assert_eq!(resolved_kernel(&recovery, 1_000_000), KernelKind::Generic);
        let asynch = ScenarioSpec {
            runtime: RuntimeKind::Async,
            ..spec
        };
        assert_eq!(resolved_kernel(&asynch, 1_000_000), KernelKind::Generic);
    }

    #[test]
    fn bit_kernel_scenario_outcomes_match_generic() {
        // The full scenario stack — churn timeline, injectors, recovery
        // windows — run on both kernels must be byte-identical.
        let base = ScenarioSpec::parse(CHURN).unwrap();
        let g = generators::cycle(12);
        for seed in [7u64, 42] {
            let generic = run_bfw_scenario(
                &ScenarioSpec {
                    kernel: KernelKind::Generic,
                    ..base.clone()
                },
                &g,
                seed,
            )
            .unwrap();
            let bit = run_bfw_scenario(
                &ScenarioSpec {
                    kernel: KernelKind::Bit,
                    ..base.clone()
                },
                &g,
                seed,
            )
            .unwrap();
            assert_eq!(generic, bit, "seed {seed}");
            assert_eq!(generic.to_text(), bit.to_text(), "seed {seed}");
        }
    }

    #[test]
    fn bit_kernel_trace_does_not_perturb_outcomes() {
        let spec = ScenarioSpec {
            kernel: KernelKind::Bit,
            ..ScenarioSpec::parse(CHURN).unwrap()
        };
        let g = generators::cycle(12);
        let plain = run_bfw_scenario(&spec, &g, 42).unwrap();
        let (traced, trace) = run_bfw_scenario_traced(&spec, &g, 42, Some(64)).unwrap();
        assert_eq!(plain, traced);
        let trace = trace.expect("instrumentation was on");
        assert!(trace.ledger.steps() > 0);
        assert!(trace.ledger.messages() > 0);
    }

    #[test]
    fn explicit_bit_kernel_rejects_incompatible_stacks_programmatically() {
        let mut spec = ScenarioSpec::parse(CHURN).unwrap();
        spec.kernel = KernelKind::Bit;
        spec.protocol = ProtocolKind::BfwRecovery;
        let err = run_bfw_scenario(&spec, &generators::cycle(12), 1).unwrap_err();
        assert!(err.to_string().contains("bitplane"), "{err}");

        let mut spec = ScenarioSpec::parse(CHURN).unwrap();
        spec.kernel = KernelKind::Bit;
        spec.runtime = RuntimeKind::Async;
        let err = run_bfw_scenario(&spec, &generators::cycle(12), 1).unwrap_err();
        assert!(err.to_string().contains("synchronous rounds"), "{err}");
    }

    #[test]
    fn thread_count_never_changes_scenario_outcomes() {
        // The tentpole determinism contract at the scenario level: the
        // bit kernel's word-sharded step is byte-identical at every
        // thread count, through the full stack — churn timeline,
        // injectors, faults, report text.
        let base = ScenarioSpec {
            kernel: KernelKind::Bit,
            ..ScenarioSpec::parse(CHURN).unwrap()
        };
        let g = generators::cycle(12);
        for seed in [7u64, 42] {
            let serial = run_bfw_scenario(&base, &g, seed).unwrap();
            for threads in [2usize, 7] {
                let spec = ScenarioSpec {
                    threads: Some(threads),
                    ..base.clone()
                };
                let sharded = run_bfw_scenario(&spec, &g, seed).unwrap();
                assert_eq!(serial, sharded, "threads={threads} seed={seed}");
                assert_eq!(
                    serial.to_text(),
                    sharded.to_text(),
                    "threads={threads} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn threads_rejects_non_bit_stacks_programmatically() {
        for mutate in [
            (|s: &mut ScenarioSpec| s.kernel = KernelKind::Generic) as fn(&mut ScenarioSpec),
            |s| s.runtime = RuntimeKind::Async,
            |s| s.protocol = ProtocolKind::BfwRecovery,
        ] {
            let mut spec = ScenarioSpec::parse(CHURN).unwrap();
            spec.threads = Some(4);
            mutate(&mut spec);
            let err = run_bfw_scenario(&spec, &generators::cycle(12), 1).unwrap_err();
            assert!(err.to_string().contains("threads requires"), "{err}");
        }
    }

    #[test]
    fn resolved_threads_defaults_to_capped_parallelism() {
        let spec = ScenarioSpec::parse(CHURN).unwrap();
        let auto = resolved_threads(&spec);
        assert!((1..=DEFAULT_THREAD_CAP).contains(&auto));
        let explicit = ScenarioSpec {
            threads: Some(13),
            ..spec
        };
        assert_eq!(resolved_threads(&explicit), 13, "explicit counts win");
    }

    #[test]
    fn injector_guards_phantom_preconditions() {
        let inj = bfw_injector();
        assert!(inj(&InjectKind::PhantomWaves { waves: 1 }, 9).is_some());
        // 10 is not a multiple of 3; 5 < 3·2.
        assert!(inj(&InjectKind::PhantomWaves { waves: 3 }, 10).is_none());
        assert!(inj(&InjectKind::PhantomWaves { waves: 2 }, 5).is_none());
        assert!(inj(&InjectKind::PhantomWaves { waves: 0 }, 9).is_none());
        let dead = inj(&InjectKind::Dead, 4).unwrap();
        assert_eq!(dead.len(), 4);
        assert!(dead.iter().all(|s| !s.is_leader()));
    }

    #[test]
    fn recovering_injector_wraps_the_same_configurations() {
        let inj = recovering_bfw_injector();
        let states = inj(&InjectKind::PhantomWaves { waves: 1 }, 9).unwrap();
        assert_eq!(states.len(), 9);
        assert!(states.iter().all(|s| !s.inner.is_leader()));
        assert!(states
            .iter()
            .all(|s| s.grace_rounds == 0 && s.since_valid == 0));
        // Same preconditions as the base injector.
        assert!(inj(&InjectKind::PhantomWaves { waves: 2 }, 5).is_none());
    }
}
