//! `bfw scenario validate`: static analysis of a spec against its
//! graph, without executing a single round.
//!
//! The runner's philosophy is "a scenario typo must not panic a run" —
//! out-of-range node ids and impossible injections are skipped and
//! logged at apply time. That is the right behavior mid-run, but it
//! means a broken spec only announces itself thousands of rounds in,
//! as a `skipped (...)` line nobody reads. `validate` front-loads every
//! check the engine would eventually make:
//!
//! * **stack invariants** — the same kernel/threads/runtime/scheduler/
//!   recovery-key rules the runner enforces (shared code, so the two
//!   can never drift);
//! * **recovery timing** — the relay-window-vs-eccentricity bound of
//!   [`crate::scenario_recovery_config`], resolved against the actual
//!   graph;
//! * **event targets** — node ids in range for `crash`/`recover`/
//!   edge events/`partition` cuts, phantom-wave preconditions
//!   (`waves | n`, `n ≥ 3·waves`) that the injector would silently
//!   skip;
//! * **timeline/horizon consistency** — events scheduled past the
//!   horizon (compiled away, so they silently never fire) and a
//!   stability window no recovery could ever complete inside.
//!
//! Hard misconfigurations are [`SpecError`]s; conditions that are legal
//! but almost certainly unintended come back as warning strings.

use crate::bfw_run::check_stack_invariants;
use crate::{
    scenario_recovery_config, InjectKind, ProtocolKind, ScenarioEvent, ScenarioSpec, Schedule,
    SpecError,
};
use bfw_graph::{algo, Graph, NodeId};

/// Statically validates `spec` against `graph`.
///
/// Returns the (possibly empty) list of warnings for a valid spec.
///
/// # Errors
///
/// A [`SpecError`] for anything the runner would reject (stack
/// invariants, recovery timing) or silently skip on every single
/// firing (out-of-range node ids, impossible injections) — if an event
/// can never do anything, scheduling it is a bug worth stopping on.
pub fn validate_scenario(spec: &ScenarioSpec, graph: &Graph) -> Result<Vec<String>, SpecError> {
    check_stack_invariants(spec)?;
    if spec.runtime == crate::RuntimeKind::Async && spec.protocol == ProtocolKind::BfwRecovery {
        return Err(SpecError::new(
            "runtime = \"async\" cannot execute protocol = \"bfw+recovery\": slot multiplexing \
             needs synchronous rounds (did you mean protocol = \"bfw\"?)",
        ));
    }
    if spec.protocol == ProtocolKind::BfwRecovery {
        scenario_recovery_config(spec, graph)?;
    }

    let n = graph.node_count();
    let in_range = |u: NodeId| u.index() < n;
    for (i, entry) in spec.timeline.entries().iter().enumerate() {
        let bad = |what: String| -> SpecError {
            SpecError::new(format!(
                "event {i} ({}): {what} (graph has {n} nodes)",
                entry.event
            ))
        };
        match &entry.event {
            ScenarioEvent::CrashNode(u) | ScenarioEvent::RecoverNode(u) if !in_range(*u) => {
                return Err(bad(format!("node {u} out of range")));
            }
            ScenarioEvent::AddEdge(u, v) | ScenarioEvent::RemoveEdge(u, v) => {
                for w in [u, v] {
                    if !in_range(*w) {
                        return Err(bad(format!("node {w} out of range")));
                    }
                }
                if u == v {
                    return Err(bad(format!("self-loop on node {u}")));
                }
            }
            ScenarioEvent::Partition { side } => {
                if let Some(w) = side.iter().find(|&&w| !in_range(w)) {
                    return Err(bad(format!("cut node {w} out of range")));
                }
                if side.is_empty() || side.len() >= n {
                    return Err(bad("cut side must be a proper nonempty subset".to_owned()));
                }
            }
            ScenarioEvent::InjectState(InjectKind::PhantomWaves { waves }) => {
                let w = *waves;
                if w == 0 || n < 3 * w || !n.is_multiple_of(w) {
                    return Err(bad(format!(
                        "phantom-waves needs waves ≥ 1, n ≥ 3·waves and waves | n \
                         (waves = {w}); the injector would skip every firing"
                    )));
                }
            }
            _ => {}
        }
    }

    let mut warnings = Vec::new();
    for (i, entry) in spec.timeline.entries().iter().enumerate() {
        let first = match entry.schedule {
            Schedule::At(round) => round,
            Schedule::Every { start, .. } | Schedule::Rate { start, .. } => start,
        };
        if first > spec.rounds {
            warnings.push(format!(
                "event {i} ({}) first fires at round {first}, past the horizon {} — it is \
                 compiled away and never applies",
                entry.event, spec.rounds
            ));
        }
        if let ScenarioEvent::NoiseBurst { rounds, .. } = entry.event {
            if first.saturating_add(rounds) > spec.rounds {
                warnings.push(format!(
                    "event {i} (noise-burst at {first} for {rounds} rounds) outlives the \
                     horizon {} — the burst never switches off inside the run",
                    spec.rounds
                ));
            }
        }
    }
    if spec.stability >= spec.rounds {
        warnings.push(format!(
            "stability window {} is not below the horizon {} — no recovery can ever be \
             recorded",
            spec.stability, spec.rounds
        ));
    }
    if algo::diameter(graph).is_none() && n > 0 {
        warnings.push(
            "graph is disconnected — BFW's eventual-election guarantee assumes a connected \
             graph (Theorem 1); components elect independently"
                .to_owned(),
        );
    }
    Ok(warnings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KernelKind, RuntimeKind};
    use bfw_graph::generators;

    fn parse(extra: &str) -> ScenarioSpec {
        ScenarioSpec::parse(&format!("[scenario]\ngraph = \"cycle:12\"\n{extra}")).unwrap()
    }

    #[test]
    fn clean_spec_validates_without_warnings() {
        let spec = parse("[[event]]\nat = 100\nkind = \"crash-leader\"");
        let warnings = validate_scenario(&spec, &generators::cycle(12)).unwrap();
        assert!(warnings.is_empty(), "{warnings:?}");
    }

    #[test]
    fn out_of_range_targets_are_hard_errors() {
        let spec = parse("[[event]]\nat = 1\nkind = \"crash\"\nnode = 99");
        let err = validate_scenario(&spec, &generators::cycle(12)).unwrap_err();
        assert!(err.to_string().contains("node 99 out of range"), "{err}");
        assert!(err.to_string().contains("12 nodes"), "{err}");

        let spec = parse("[[event]]\nat = 1\nkind = \"add-edge\"\nu = 0\nv = 50");
        let err = validate_scenario(&spec, &generators::cycle(12)).unwrap_err();
        assert!(err.to_string().contains("node 50 out of range"), "{err}");

        let spec = parse("[[event]]\nat = 1\nkind = \"partition\"\ncut = [0, 40]");
        let err = validate_scenario(&spec, &generators::cycle(12)).unwrap_err();
        assert!(err.to_string().contains("cut node 40"), "{err}");

        let spec = parse("[[event]]\nat = 1\nkind = \"remove-edge\"\nu = 3\nv = 3");
        let err = validate_scenario(&spec, &generators::cycle(12)).unwrap_err();
        assert!(err.to_string().contains("self-loop"), "{err}");
    }

    #[test]
    fn impossible_phantom_injection_is_an_error() {
        // 12 is not a multiple of 5: the injector would skip every
        // firing, so the event can never do anything.
        let spec = parse("[[event]]\nat = 1\nkind = \"inject-phantom\"\nwaves = 5");
        let err = validate_scenario(&spec, &generators::cycle(12)).unwrap_err();
        assert!(err.to_string().contains("phantom-waves"), "{err}");

        // waves = 4 divides 12 and 12 ≥ 3·4: fine.
        let spec = parse("[[event]]\nat = 1\nkind = \"inject-phantom\"\nwaves = 4");
        assert!(validate_scenario(&spec, &generators::cycle(12)).is_ok());
    }

    #[test]
    fn recovery_timing_is_checked_against_the_graph() {
        let spec = parse("protocol = \"bfw+recovery\"\nheartbeat = 6\ntimeout = 20");
        let err = validate_scenario(&spec, &generators::cycle(32)).unwrap_err();
        assert!(err.to_string().contains("cannot cover"), "{err}");
    }

    #[test]
    fn stack_invariants_are_shared_with_the_runner() {
        let mut spec = parse("");
        spec.threads = Some(4);
        spec.kernel = KernelKind::Generic;
        let err = validate_scenario(&spec, &generators::cycle(12)).unwrap_err();
        assert!(err.to_string().contains("threads requires"), "{err}");

        let mut spec = parse("");
        spec.runtime = RuntimeKind::Async;
        spec.protocol = ProtocolKind::BfwRecovery;
        let err = validate_scenario(&spec, &generators::cycle(12)).unwrap_err();
        assert!(err.to_string().contains("synchronous rounds"), "{err}");
    }

    #[test]
    fn past_horizon_events_warn() {
        let spec = parse("rounds = 1000\n[[event]]\nat = 5000\nkind = \"crash-leader\"");
        let warnings = validate_scenario(&spec, &generators::cycle(12)).unwrap();
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("never applies"), "{warnings:?}");

        let spec =
            parse("rounds = 1000\n[[event]]\nevery = 100\nstart = 2000\nkind = \"crash-random\"");
        let warnings = validate_scenario(&spec, &generators::cycle(12)).unwrap();
        assert_eq!(warnings.len(), 1, "{warnings:?}");
    }

    #[test]
    fn runaway_noise_and_oversized_stability_warn() {
        let spec = parse(
            "rounds = 1000\n[[event]]\nat = 990\nkind = \"noise-burst\"\nfn = 0.1\nrounds = 100",
        );
        let warnings = validate_scenario(&spec, &generators::cycle(12)).unwrap();
        assert!(
            warnings.iter().any(|w| w.contains("never switches off")),
            "{warnings:?}"
        );

        let spec = parse("rounds = 100\nstability = 100");
        let warnings = validate_scenario(&spec, &generators::cycle(12)).unwrap();
        assert!(
            warnings.iter().any(|w| w.contains("stability window")),
            "{warnings:?}"
        );
    }

    #[test]
    fn disconnected_graph_warns() {
        let graph = Graph::from_edges(4, [(0, 1)]).unwrap();
        let spec = parse("");
        let warnings = validate_scenario(&spec, &graph).unwrap();
        assert!(
            warnings.iter().any(|w| w.contains("disconnected")),
            "{warnings:?}"
        );
    }
}
