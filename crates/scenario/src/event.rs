//! The event vocabulary of the scenario engine.

use bfw_graph::NodeId;
use std::fmt;

/// A state configuration to inject mid-run (the Section 5 adversarial
/// configurations from `bfw_core::adversarial`, resolved by the
/// protocol-specific injector — see
/// [`Engine::with_injector`](crate::Engine::with_injector)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectKind {
    /// `k` co-directional leaderless phantom waves laid out over the
    /// node indices (exactly periodic on cycles; on other topologies the
    /// same pattern seeds an arbitrary-configuration start).
    PhantomWaves {
        /// Number of waves.
        waves: usize,
    },
    /// The all-waiting, leaderless dead configuration.
    Dead,
}

impl fmt::Display for InjectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectKind::PhantomWaves { waves } => write!(f, "phantom-waves({waves})"),
            InjectKind::Dead => write!(f, "dead-config"),
        }
    }
}

/// One perturbation of a running simulation.
///
/// Events are applied *between* rounds: an event scheduled for round `t`
/// fires after the network has completed `t` rounds and before round
/// `t + 1` executes.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioEvent {
    /// Crash a specific node (it stops beeping, hearing and
    /// transitioning).
    CrashNode(NodeId),
    /// Crash one uniformly random alive node (scenario-stream
    /// deterministic). Skipped if every node is crashed.
    CrashRandom,
    /// Crash the lowest-indexed current leader. Skipped if no leader is
    /// alive.
    CrashLeader,
    /// Recover a specific node; it rejoins in a fresh protocol-initial
    /// state (`W•` for BFW). No-op if the node is alive.
    RecoverNode(NodeId),
    /// Recover one uniformly random crashed node. Skipped if none is
    /// crashed.
    RecoverRandom,
    /// Recover every crashed node.
    RecoverAll,
    /// Insert an edge. Skipped (and logged) if the edge already exists.
    AddEdge(NodeId, NodeId),
    /// Remove an edge. Skipped (and logged) if the edge does not exist.
    RemoveEdge(NodeId, NodeId),
    /// Remove every edge between the listed nodes and the rest of the
    /// network (the removed edges are remembered for [`Heal`]).
    ///
    /// [`Heal`]: ScenarioEvent::Heal
    Partition {
        /// Nodes forming one side of the cut.
        side: Vec<NodeId>,
    },
    /// Restore every edge removed by earlier partitions.
    Heal,
    /// Enable perception noise for a bounded window: listeners miss real
    /// beeps with probability `fn_rate` and hear phantom beeps with
    /// probability `fp_rate`, for `rounds` rounds.
    NoiseBurst {
        /// False-negative (missed beep) probability, in `[0, 1)`.
        fn_rate: f64,
        /// False-positive (phantom beep) probability, in `[0, 1)`.
        fp_rate: f64,
        /// Window length in rounds.
        rounds: u64,
    },
    /// Overwrite the whole configuration with an adversarial one.
    InjectState(InjectKind),
}

impl fmt::Display for ScenarioEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioEvent::CrashNode(u) => write!(f, "crash({u})"),
            ScenarioEvent::CrashRandom => write!(f, "crash-random"),
            ScenarioEvent::CrashLeader => write!(f, "crash-leader"),
            ScenarioEvent::RecoverNode(u) => write!(f, "recover({u})"),
            ScenarioEvent::RecoverRandom => write!(f, "recover-random"),
            ScenarioEvent::RecoverAll => write!(f, "recover-all"),
            ScenarioEvent::AddEdge(u, v) => write!(f, "add-edge({u}, {v})"),
            ScenarioEvent::RemoveEdge(u, v) => write!(f, "remove-edge({u}, {v})"),
            ScenarioEvent::Partition { side } => {
                write!(f, "partition(")?;
                for (i, u) in side.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{u}")?;
                }
                write!(f, ")")
            }
            ScenarioEvent::Heal => write!(f, "heal"),
            ScenarioEvent::NoiseBurst {
                fn_rate,
                fp_rate,
                rounds,
            } => write!(
                f,
                "noise-burst(fn={fn_rate}, fp={fp_rate}, rounds={rounds})"
            ),
            ScenarioEvent::InjectState(kind) => write!(f, "inject({kind})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact_and_stable() {
        assert_eq!(
            ScenarioEvent::CrashNode(NodeId::new(3)).to_string(),
            "crash(3)"
        );
        assert_eq!(ScenarioEvent::CrashLeader.to_string(), "crash-leader");
        assert_eq!(
            ScenarioEvent::Partition {
                side: vec![NodeId::new(0), NodeId::new(2)]
            }
            .to_string(),
            "partition(0 2)"
        );
        assert_eq!(
            ScenarioEvent::NoiseBurst {
                fn_rate: 0.1,
                fp_rate: 0.0,
                rounds: 50
            }
            .to_string(),
            "noise-burst(fn=0.1, fp=0, rounds=50)"
        );
        assert_eq!(
            ScenarioEvent::InjectState(InjectKind::PhantomWaves { waves: 2 }).to_string(),
            "inject(phantom-waves(2))"
        );
        assert_eq!(
            ScenarioEvent::InjectState(InjectKind::Dead).to_string(),
            "inject(dead-config)"
        );
    }
}
