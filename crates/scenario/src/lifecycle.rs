//! Scenario lifecycle: `step`, snapshot, `resume` — a run as a value.
//!
//! `bfw scenario run` executes a spec start to finish. The lifecycle
//! verbs split that run at any round: [`step_bfw_scenario`] advances a
//! fresh scenario N rounds and captures an [`EngineSnapshot`];
//! [`resume_step_bfw_scenario`] picks a snapshot up and advances it
//! further; [`resume_run_bfw_scenario`] drives one to the horizon and
//! hands back the [`ScenarioOutcome`]. The contract is byte-exactness:
//! stepping N then M rounds produces the *identical* outcome — event
//! log, recoveries, flap counts, leaders — as one straight run of
//! N + M rounds at the same seed, on every kernel and at every thread
//! count.
//!
//! A snapshot is everything the run is: the normalized spec (compiled
//! all-`at` timeline, pinned seed), the **current** topology (events
//! may have rewired it), per-node protocol states, the fault layer's
//! crash mask and noise channels, every per-node ChaCha stream
//! position, the async scheduler half when there is one, and the
//! engine's own cursor (timeline index, partition backlog, noise
//! expiry, scenario-RNG position, event log, election-monitor state).
//! Serialized as a versioned `bfw/engine-snapshot` document
//! ([`EngineSnapshot::to_json_value`] / [`EngineSnapshot::from_json`],
//! checked by [`validate_engine_snapshot`]).
//!
//! Snapshots are **kernel- and thread-invariant**: the embedded spec
//! keeps the file's own `kernel`/`threads` keys (execution overrides
//! apply only to the run, never to the artifact), the bit kernel
//! translates its checkpoint back to original node labels, and edges
//! are emitted sorted — so the generic engine at 1 thread and the bit
//! kernel at 8 write byte-identical snapshot documents, and either can
//! resume the other's.

use crate::bfw_run::{bfw_injector, check_stack_invariants, resolved_kernel, resolved_threads};
use crate::spec_io::{config_to_json, event_to_json, normalized_spec, spec_from_doc};
use crate::{
    Engine, EngineCursor, KernelKind, MonitorState, ProtocolKind, Recovery, RuntimeKind,
    ScenarioOutcome, ScenarioSpec, SpecError,
};
use bfw_core::{Bfw, BfwState, BitNetwork};
use bfw_graph::{Graph, NodeId};
use bfw_sim::stone_age::{AsyncStoneAgeNetwork, BeepingAsStoneAge};
use bfw_sim::{EngineCheckpoint, Network, SchedulerCheckpoint};
use bfw_stats::{Doc, Envelope, JsonValue, SchemaError};

use crate::DynamicHost;

/// A paused scenario run: everything needed to continue it — or to
/// reproduce its remainder on a different kernel or thread count.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    /// The normalized run configuration: compiled all-`at` timeline,
    /// effective seed pinned, no trace request, and the *file's* kernel
    /// and threads keys (execution overrides are never embedded).
    pub spec: ScenarioSpec,
    /// The run's effective seed (duplicates `spec.seed` for cheap
    /// access).
    pub seed: u64,
    /// Rounds completed when the snapshot was taken; round `round`'s
    /// due events are applied and its leader set observed.
    pub round: u64,
    /// The topology **at the snapshot round** (timeline events may have
    /// rewired the initial graph).
    pub graph: Graph,
    /// Per-node protocol states, in original node-label order.
    pub states: Vec<BfwState>,
    /// The host engine's checkpoint: crash mask, noise channels,
    /// per-node RNG stream positions, async scheduler half.
    pub checkpoint: EngineCheckpoint,
    /// The scenario engine's cursor: timeline index, partition backlog,
    /// noise expiry, scenario-RNG position, event log, monitor state.
    pub cursor: EngineCursor,
}

/// What [`validate_engine_snapshot`] reports about a well-formed
/// document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotSummary {
    /// Scenario name from the embedded spec.
    pub name: String,
    /// Rounds completed at the snapshot.
    pub round: u64,
    /// The embedded spec's horizon.
    pub rounds: u64,
    /// Nodes in the snapshot topology.
    pub nodes: usize,
    /// Crashed nodes at the snapshot.
    pub crashed: usize,
}

/// Advances a fresh scenario `rounds` rounds (clamped to the spec's
/// horizon) and captures the resulting [`EngineSnapshot`]. `seed` is
/// the run's effective seed; `kernel`/`threads` override the spec's
/// keys **for execution only** — the snapshot embeds the spec's own
/// values, keeping the artifact kernel- and thread-invariant.
///
/// # Errors
///
/// A [`SpecError`] for stack-invariant violations, or for
/// `protocol = "bfw+recovery"` — the recovery layer's epoch-tagged
/// states have no snapshot encoding (run it with `scenario run`).
pub fn step_bfw_scenario(
    spec: &ScenarioSpec,
    graph: &Graph,
    seed: u64,
    rounds: u64,
    kernel: Option<KernelKind>,
    threads: Option<usize>,
) -> Result<EngineSnapshot, SpecError> {
    let embed = normalized_spec(spec, seed);
    let target = rounds.min(embed.rounds);
    match dispatch(&embed, kernel, threads, graph, None, target, true)? {
        Driven::Snap(snap) => Ok(*snap),
        Driven::Out(_) => unreachable!("step dispatch always snapshots"),
    }
}

/// Advances a snapshot `rounds` further rounds (clamped to its horizon)
/// and captures the new snapshot. The execution kernel and thread count
/// are free choices — any combination resumes any snapshot and the
/// bytes come out the same.
///
/// # Errors
///
/// Same as [`step_bfw_scenario`].
pub fn resume_step_bfw_scenario(
    snap: &EngineSnapshot,
    rounds: u64,
    kernel: Option<KernelKind>,
    threads: Option<usize>,
) -> Result<EngineSnapshot, SpecError> {
    let target = snap.round.saturating_add(rounds).min(snap.spec.rounds);
    match dispatch(
        &snap.spec.clone(),
        kernel,
        threads,
        &snap.graph,
        Some(snap),
        target,
        true,
    )? {
        Driven::Snap(snap) => Ok(*snap),
        Driven::Out(_) => unreachable!("step dispatch always snapshots"),
    }
}

/// Drives a snapshot to its horizon and assembles the full
/// [`ScenarioOutcome`] — byte-identical to what a straight
/// `scenario run` of the embedded spec would have produced.
///
/// # Errors
///
/// Same as [`step_bfw_scenario`].
pub fn resume_run_bfw_scenario(
    snap: &EngineSnapshot,
    kernel: Option<KernelKind>,
    threads: Option<usize>,
) -> Result<ScenarioOutcome, SpecError> {
    let target = snap.spec.rounds;
    match dispatch(
        &snap.spec.clone(),
        kernel,
        threads,
        &snap.graph,
        Some(snap),
        target,
        false,
    )? {
        Driven::Out(outcome) => Ok(outcome),
        Driven::Snap(_) => unreachable!("run dispatch never snapshots"),
    }
}

enum Driven {
    Snap(Box<EngineSnapshot>),
    Out(ScenarioOutcome),
}

/// The host seam the lifecycle needs beyond [`crate::DynamicHost`]:
/// capture and restore of the engine-level checkpoint, with states in
/// original label order on every kernel.
trait SnapshotHost: DynamicHost<State = BfwState> {
    fn capture(&self) -> (Vec<BfwState>, EngineCheckpoint);
    fn restore(&mut self, cp: &EngineCheckpoint, states: Vec<BfwState>);
}

impl SnapshotHost for Network<Bfw> {
    fn capture(&self) -> (Vec<BfwState>, EngineCheckpoint) {
        (self.states().to_vec(), self.checkpoint())
    }
    fn restore(&mut self, cp: &EngineCheckpoint, states: Vec<BfwState>) {
        self.restore_checkpoint(cp, states);
    }
}

impl SnapshotHost for BitNetwork {
    fn capture(&self) -> (Vec<BfwState>, EngineCheckpoint) {
        (self.states(), self.checkpoint())
    }
    fn restore(&mut self, cp: &EngineCheckpoint, states: Vec<BfwState>) {
        self.restore_checkpoint(cp, states);
    }
}

impl SnapshotHost for AsyncStoneAgeNetwork<BeepingAsStoneAge<Bfw>> {
    fn capture(&self) -> (Vec<BfwState>, EngineCheckpoint) {
        (self.states().to_vec(), self.checkpoint())
    }
    fn restore(&mut self, cp: &EngineCheckpoint, states: Vec<BfwState>) {
        self.restore_checkpoint(cp, states);
    }
}

/// Builds the host for `exec`, runs (or resumes) the engine to
/// `target`, and finishes as a snapshot or an outcome.
fn dispatch(
    embed: &ScenarioSpec,
    kernel: Option<KernelKind>,
    threads: Option<usize>,
    graph: &Graph,
    from: Option<&EngineSnapshot>,
    target: u64,
    want_snapshot: bool,
) -> Result<Driven, SpecError> {
    if embed.protocol != ProtocolKind::Bfw {
        return Err(SpecError::new(
            "scenario lifecycle verbs support protocol = \"bfw\" only: the recovery layer's \
             epoch-tagged states have no snapshot encoding (use 'scenario run' for \
             bfw+recovery)",
        ));
    }
    // Execution overrides apply to a scratch copy; the embedded spec —
    // and therefore the snapshot bytes — never see them.
    let exec = ScenarioSpec {
        kernel: kernel.unwrap_or(embed.kernel),
        threads: threads.or(embed.threads),
        ..embed.clone()
    };
    check_stack_invariants(&exec)?;
    if exec.runtime == RuntimeKind::Async {
        let mut host = AsyncStoneAgeNetwork::new(
            BeepingAsStoneAge::new(Bfw::new(exec.p)),
            graph.clone().into(),
            embed.seed,
        );
        host.set_scheduler(exec.scheduler.unwrap_or_default());
        return Ok(drive(host, embed, graph, from, target, want_snapshot));
    }
    if resolved_kernel(&exec, graph.node_count()) == KernelKind::Bit {
        let mut host = BitNetwork::new(Bfw::new(exec.p), graph.clone().into(), embed.seed);
        host.set_threads(resolved_threads(&exec));
        Ok(drive(host, embed, graph, from, target, want_snapshot))
    } else {
        let host = Network::new(Bfw::new(exec.p), graph.clone().into(), embed.seed);
        Ok(drive(host, embed, graph, from, target, want_snapshot))
    }
}

fn drive<H: SnapshotHost>(
    mut host: H,
    embed: &ScenarioSpec,
    graph: &Graph,
    from: Option<&EngineSnapshot>,
    target: u64,
    want_snapshot: bool,
) -> Driven {
    // Restore order matters on the async engine: the scheduler was
    // installed at construction (re-drawing the replay permutation),
    // and the checkpoint then fast-forwards its stream.
    if let Some(snap) = from {
        host.restore(&snap.checkpoint, snap.states.clone());
    }
    let mut engine = match from {
        None => Engine::new(
            host,
            graph,
            &embed.timeline,
            embed.rounds,
            embed.seed,
            embed.stability,
        ),
        Some(snap) => Engine::resume(
            host,
            graph,
            &embed.timeline,
            embed.rounds,
            embed.seed,
            snap.cursor.clone(),
        ),
    }
    .with_injector(bfw_injector());
    engine.run_until(target);
    if want_snapshot {
        let (states, checkpoint) = engine.host().capture();
        let current = engine
            .host()
            .topology_snapshot()
            .expect("lifecycle hosts expose their topology");
        Driven::Snap(Box::new(EngineSnapshot {
            spec: embed.clone(),
            seed: embed.seed,
            round: engine.host().round(),
            graph: current,
            states,
            checkpoint,
            cursor: engine.cursor(),
        }))
    } else {
        Driven::Out(engine.into_outcome().0)
    }
}

fn state_index(state: BfwState) -> u64 {
    BfwState::ALL
        .iter()
        .position(|&s| s == state)
        .expect("ALL lists every state") as u64
}

fn position_json(pos: (u64, usize)) -> JsonValue {
    JsonValue::array([JsonValue::from(pos.0), JsonValue::from(pos.1 as u64)])
}

fn position_from_doc(doc: &Doc<'_>) -> Result<(u64, usize), SchemaError> {
    let items = doc.items()?;
    if items.len() != 2 {
        return Err(doc.error("an RNG position is a [counter, cursor] pair"));
    }
    Ok((items[0].u64()?, items[1].u64()? as usize))
}

fn edge_json(u: NodeId, v: NodeId) -> JsonValue {
    let (a, b) = if u.index() <= v.index() {
        (u, v)
    } else {
        (v, u)
    };
    JsonValue::array([JsonValue::from(a.index()), JsonValue::from(b.index())])
}

fn node_from_doc(doc: &Doc<'_>) -> Result<NodeId, SchemaError> {
    let id = doc.u64()?;
    u32::try_from(id)
        .map(NodeId::from_u32)
        .map_err(|_| doc.error(format!("node id {id} exceeds u32::MAX")))
}

fn edge_from_doc(doc: &Doc<'_>) -> Result<(NodeId, NodeId), SchemaError> {
    let items = doc.items()?;
    if items.len() != 2 {
        return Err(doc.error("an edge is a [u, v] pair"));
    }
    Ok((node_from_doc(&items[0])?, node_from_doc(&items[1])?))
}

impl EngineSnapshot {
    /// Renders the snapshot as a versioned `bfw/engine-snapshot`
    /// document. Deterministic and kernel-invariant: states in label
    /// order, edges sorted, and only the embedded (file) spec — the
    /// same paused run always renders byte-identically, whichever
    /// kernel or thread count produced it.
    pub fn to_json_value(&self) -> JsonValue {
        let mut fields: Vec<(String, JsonValue)> = Envelope::entries("engine-snapshot").into();
        fields.push((
            "spec".to_owned(),
            JsonValue::object([
                ("config", config_to_json(&self.spec, self.seed)),
                (
                    "events",
                    JsonValue::array(
                        self.spec
                            .timeline
                            .compile(self.spec.rounds, self.seed)
                            .iter()
                            .map(event_to_json),
                    ),
                ),
            ]),
        ));
        fields.push(("round".to_owned(), JsonValue::from(self.round)));
        let mut edges: Vec<(NodeId, NodeId)> = self.graph.edges().collect();
        edges.sort_by_key(|&(u, v)| (u.index().min(v.index()), u.index().max(v.index())));
        fields.push((
            "graph".to_owned(),
            JsonValue::object([
                ("nodes", JsonValue::from(self.graph.node_count())),
                (
                    "edges",
                    JsonValue::array(edges.into_iter().map(|(u, v)| edge_json(u, v))),
                ),
            ]),
        ));
        fields.push((
            "states".to_owned(),
            JsonValue::array(self.states.iter().map(|&s| JsonValue::from(state_index(s)))),
        ));
        let cp = &self.checkpoint;
        fields.push((
            "engine".to_owned(),
            JsonValue::object([
                ("steps", JsonValue::from(cp.steps)),
                (
                    "crashed",
                    JsonValue::array(
                        cp.crashed
                            .iter()
                            .enumerate()
                            .filter(|&(_, &c)| c)
                            .map(|(i, _)| JsonValue::from(i)),
                    ),
                ),
                (
                    "noise",
                    JsonValue::object([
                        ("fn", JsonValue::from(cp.false_negative)),
                        ("fp", JsonValue::from(cp.false_positive)),
                    ]),
                ),
                (
                    "rng",
                    JsonValue::array(cp.rng_positions.iter().map(|&p| position_json(p))),
                ),
                (
                    "scheduler",
                    match &cp.scheduler {
                        None => JsonValue::Null,
                        Some(s) => JsonValue::object([
                            ("rng", position_json(s.rng_position)),
                            ("replay_cursor", JsonValue::from(s.replay_cursor)),
                        ]),
                    },
                ),
            ]),
        ));
        let cur = &self.cursor;
        let m = &cur.monitor;
        fields.push((
            "cursor".to_owned(),
            JsonValue::object([
                ("next_event", JsonValue::from(cur.next_event)),
                (
                    "partition_backlog",
                    JsonValue::array(cur.partition_backlog.iter().map(|&(u, v)| edge_json(u, v))),
                ),
                ("noise_off_at", JsonValue::from(cur.noise_off_at)),
                ("rng", position_json(cur.rng_position)),
                (
                    "log",
                    JsonValue::array(cur.log.iter().map(|l| JsonValue::from(l.as_str()))),
                ),
                (
                    "monitor",
                    JsonValue::object([
                        ("stability_window", JsonValue::from(m.stability_window)),
                        (
                            "open_disruptions",
                            JsonValue::array(
                                m.open_disruptions.iter().map(|&r| JsonValue::from(r)),
                            ),
                        ),
                        (
                            "streak_leader",
                            JsonValue::from(m.streak_leader.map(|u| u.index())),
                        ),
                        ("streak_len", JsonValue::from(m.streak_len)),
                        (
                            "last_unique",
                            JsonValue::from(m.last_unique.map(|u| u.index())),
                        ),
                        ("flaps", JsonValue::from(m.flaps)),
                        (
                            "recoveries",
                            JsonValue::array(m.recoveries.iter().map(|r| {
                                JsonValue::object([
                                    ("disrupted_at", JsonValue::from(r.disrupted_at)),
                                    ("recovered_at", JsonValue::from(r.recovered_at)),
                                    ("leader", JsonValue::from(r.leader.index())),
                                ])
                            })),
                        ),
                    ]),
                ),
                ("observed_through", JsonValue::from(cur.observed_through)),
            ]),
        ));
        JsonValue::object(fields)
    }

    /// Parses a `bfw/engine-snapshot` document.
    ///
    /// # Errors
    ///
    /// A [`SchemaError`] naming the first offending path, including
    /// cross-field inconsistencies (state/RNG/crash arrays must all be
    /// node-sized; the engine's step counter must equal the round).
    pub fn from_json(text: &str) -> Result<EngineSnapshot, SchemaError> {
        let value = JsonValue::parse(text).map_err(|e| SchemaError::root(e.to_string()))?;
        let doc = Doc::root(&value);
        Envelope::expect(&doc, "engine-snapshot")?;

        let spec = spec_from_doc(&doc.field("spec")?)?;
        let round = doc.field("round")?.u64()?;

        let graph_doc = doc.field("graph")?;
        let nodes = graph_doc.field("nodes")?.u64()? as usize;
        let edges_doc = graph_doc.field("edges")?;
        let mut edges = Vec::new();
        for item in edges_doc.items()? {
            let (u, v) = edge_from_doc(&item)?;
            edges.push((u.as_u32(), v.as_u32()));
        }
        let graph = Graph::from_edges(nodes, edges)
            .map_err(|e| edges_doc.error(format!("invalid edge set: {e}")))?;

        let states_doc = doc.field("states")?;
        let mut states = Vec::new();
        for item in states_doc.items()? {
            let idx = item.u64()? as usize;
            states.push(
                BfwState::ALL
                    .get(idx)
                    .copied()
                    .ok_or_else(|| item.error(format!("state index {idx} out of range (0..6)")))?,
            );
        }
        if states.len() != nodes {
            return Err(states_doc.error(format!(
                "expected {nodes} states (one per node), got {}",
                states.len()
            )));
        }

        let engine = doc.field("engine")?;
        let steps = engine.field("steps")?.u64()?;
        if steps != round {
            return Err(engine.error(format!(
                "engine steps {steps} disagree with snapshot round {round}"
            )));
        }
        let mut crashed = vec![false; nodes];
        for item in engine.field("crashed")?.items()? {
            let i = item.u64()? as usize;
            if i >= nodes {
                return Err(item.error(format!("crashed node {i} out of range ({nodes} nodes)")));
            }
            crashed[i] = true;
        }
        let noise = engine.field("noise")?;
        let false_negative = noise.field("fn")?.f64()?;
        let false_positive = noise.field("fp")?.f64()?;
        let rng_doc = engine.field("rng")?;
        let mut rng_positions = Vec::new();
        for item in rng_doc.items()? {
            rng_positions.push(position_from_doc(&item)?);
        }
        if rng_positions.len() != nodes {
            return Err(rng_doc.error(format!(
                "expected {nodes} RNG positions (one per node), got {}",
                rng_positions.len()
            )));
        }
        let scheduler = match engine.opt_field("scheduler")? {
            None => None,
            Some(s) => Some(SchedulerCheckpoint {
                rng_position: position_from_doc(&s.field("rng")?)?,
                replay_cursor: s.field("replay_cursor")?.u64()? as usize,
            }),
        };
        if (spec.runtime == RuntimeKind::Async) != scheduler.is_some() {
            return Err(engine.error(
                "scheduler state must be present exactly for runtime = \"async\" snapshots",
            ));
        }
        let checkpoint = EngineCheckpoint {
            steps,
            crashed,
            false_negative,
            false_positive,
            rng_positions,
            scheduler,
        };

        let cur = doc.field("cursor")?;
        let mut partition_backlog = Vec::new();
        for item in cur.field("partition_backlog")?.items()? {
            partition_backlog.push(edge_from_doc(&item)?);
        }
        let noise_off_at = match cur.opt_field("noise_off_at")? {
            None => None,
            Some(f) => Some(f.u64()?),
        };
        let mut log = Vec::new();
        for item in cur.field("log")?.items()? {
            log.push(item.str()?.to_owned());
        }
        let mon = cur.field("monitor")?;
        let opt_node = |key: &str| -> Result<Option<NodeId>, SchemaError> {
            match mon.opt_field(key)? {
                None => Ok(None),
                Some(f) => node_from_doc(&f).map(Some),
            }
        };
        let mut open_disruptions = Vec::new();
        for item in mon.field("open_disruptions")?.items()? {
            open_disruptions.push(item.u64()?);
        }
        let mut recoveries = Vec::new();
        for item in mon.field("recoveries")?.items()? {
            recoveries.push(Recovery {
                disrupted_at: item.field("disrupted_at")?.u64()?,
                recovered_at: item.field("recovered_at")?.u64()?,
                leader: node_from_doc(&item.field("leader")?)?,
            });
        }
        let monitor = MonitorState {
            stability_window: mon.field("stability_window")?.u64()?,
            open_disruptions,
            streak_leader: opt_node("streak_leader")?,
            streak_len: mon.field("streak_len")?.u64()?,
            last_unique: opt_node("last_unique")?,
            flaps: mon.field("flaps")?.u64()?,
            recoveries,
        };
        let observed_through = match cur.opt_field("observed_through")? {
            None => None,
            Some(f) => Some(f.u64()?),
        };
        let cursor = EngineCursor {
            next_event: cur.field("next_event")?.u64()? as usize,
            partition_backlog,
            noise_off_at,
            rng_position: position_from_doc(&cur.field("rng")?)?,
            log,
            monitor,
            observed_through,
        };

        let seed = spec.seed;
        Ok(EngineSnapshot {
            spec,
            seed,
            round,
            graph,
            states,
            checkpoint,
            cursor,
        })
    }
}

/// Validates a `bfw/engine-snapshot` document (the `bfw report
/// validate` entry point for this kind): a full decode, so every state
/// index, RNG position and monitor field is checked.
///
/// # Errors
///
/// A [`SchemaError`] naming the first offending path.
pub fn validate_engine_snapshot(text: &str) -> Result<SnapshotSummary, SchemaError> {
    let snap = EngineSnapshot::from_json(text)?;
    Ok(SnapshotSummary {
        name: snap.spec.name.clone(),
        round: snap.round,
        rounds: snap.spec.rounds,
        nodes: snap.graph.node_count(),
        crashed: snap.checkpoint.crashed.iter().filter(|&&c| c).count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_bfw_scenario;
    use bfw_graph::generators;

    const CHURN: &str = r#"
[scenario]
name = "lifecycle churn"
graph = "cycle:12"
rounds = 6000
stability = 20
seed = 42

[[event]]
at = 1500
kind = "crash-leader"

[[event]]
at = 1700
kind = "recover-all"

[[event]]
at = 2000
kind = "partition"
cut = [0, 1, 2]

[[event]]
at = 2400
kind = "heal"

[[event]]
rate = 0.001
kind = "crash-random"

[[event]]
rate = 0.002
kind = "recover-random"
"#;

    fn spec() -> ScenarioSpec {
        ScenarioSpec::parse(CHURN).unwrap()
    }

    #[test]
    fn step_then_resume_equals_straight_run() {
        let spec = spec();
        let g = generators::cycle(12);
        for seed in [7u64, 42] {
            let straight = run_bfw_scenario(&spec, &g, seed).unwrap();
            let snap = step_bfw_scenario(&spec, &g, seed, 1_800, None, None).unwrap();
            assert_eq!(snap.round, 1_800);
            let resumed = resume_run_bfw_scenario(&snap, None, None).unwrap();
            assert_eq!(straight, resumed, "seed {seed}");
            assert_eq!(straight.to_text(), resumed.to_text(), "seed {seed}");
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let spec = spec();
        let g = generators::cycle(12);
        let snap = step_bfw_scenario(&spec, &g, 42, 2_100, None, None).unwrap();
        let rendered = snap.to_json_value().render_pretty();
        let summary = validate_engine_snapshot(&rendered).unwrap();
        assert_eq!(summary.name, "lifecycle churn");
        assert_eq!(summary.round, 2_100);
        assert_eq!(summary.nodes, 12);

        let back = EngineSnapshot::from_json(&rendered).unwrap();
        assert_eq!(back.to_json_value().render_pretty(), rendered);
        // A deserialized snapshot resumes to the same outcome.
        assert_eq!(
            resume_run_bfw_scenario(&back, None, None).unwrap(),
            resume_run_bfw_scenario(&snap, None, None).unwrap()
        );
    }

    #[test]
    fn snapshots_are_kernel_and_thread_invariant() {
        let spec = spec();
        let g = generators::cycle(12);
        let generic = step_bfw_scenario(&spec, &g, 42, 2_100, Some(KernelKind::Generic), None)
            .unwrap()
            .to_json_value()
            .render_pretty();
        for threads in [1usize, 4] {
            let bit = step_bfw_scenario(&spec, &g, 42, 2_100, Some(KernelKind::Bit), Some(threads))
                .unwrap()
                .to_json_value()
                .render_pretty();
            assert_eq!(generic, bit, "threads {threads}");
        }
    }

    #[test]
    fn cross_kernel_resume_is_byte_identical() {
        let spec = spec();
        let g = generators::cycle(12);
        let straight = run_bfw_scenario(&spec, &g, 42).unwrap();
        let snap =
            step_bfw_scenario(&spec, &g, 42, 2_100, Some(KernelKind::Generic), None).unwrap();
        // Resume the generic snapshot on the bit kernel, sharded.
        let resumed = resume_run_bfw_scenario(&snap, Some(KernelKind::Bit), Some(4)).unwrap();
        assert_eq!(straight, resumed);
    }

    #[test]
    fn chained_steps_compose() {
        let spec = spec();
        let g = generators::cycle(12);
        let one = step_bfw_scenario(&spec, &g, 42, 3_000, None, None).unwrap();
        let a = step_bfw_scenario(&spec, &g, 42, 1_000, None, None).unwrap();
        let b = resume_step_bfw_scenario(&a, 1_000, None, None).unwrap();
        let c = resume_step_bfw_scenario(&b, 1_000, None, None).unwrap();
        assert_eq!(c.round, 3_000);
        assert_eq!(
            one.to_json_value().render_pretty(),
            c.to_json_value().render_pretty()
        );
    }

    #[test]
    fn async_snapshots_carry_the_scheduler_half_and_resume() {
        let text = CHURN.replace(
            "seed = 42",
            "seed = 42\nruntime = \"async\"\nscheduler = \"uniform\"",
        );
        let spec = ScenarioSpec::parse(&text).unwrap();
        let g = generators::cycle(12);
        let straight = run_bfw_scenario(&spec, &g, 42).unwrap();
        let snap = step_bfw_scenario(&spec, &g, 42, 2_500, None, None).unwrap();
        assert!(snap.checkpoint.scheduler.is_some());
        let rendered = snap.to_json_value().render_pretty();
        let back = EngineSnapshot::from_json(&rendered).unwrap();
        let resumed = resume_run_bfw_scenario(&back, None, None).unwrap();
        assert_eq!(straight, resumed);
    }

    #[test]
    fn step_past_horizon_clamps() {
        let spec = spec();
        let g = generators::cycle(12);
        let snap = step_bfw_scenario(&spec, &g, 42, 1_000_000, None, None).unwrap();
        assert_eq!(snap.round, 6_000);
        // Resuming a horizon snapshot produces the straight outcome.
        let outcome = resume_run_bfw_scenario(&snap, None, None).unwrap();
        assert_eq!(outcome, run_bfw_scenario(&spec, &g, 42).unwrap());
    }

    #[test]
    fn recovery_protocol_is_rejected() {
        let text = CHURN.replace("seed = 42", "seed = 42\nprotocol = \"bfw+recovery\"");
        let spec = ScenarioSpec::parse(&text).unwrap();
        let err =
            step_bfw_scenario(&spec, &generators::cycle(12), 42, 100, None, None).unwrap_err();
        assert!(err.to_string().contains("no snapshot encoding"), "{err}");
    }

    #[test]
    fn corrupt_documents_are_rejected_with_pointers() {
        let spec = spec();
        let g = generators::cycle(12);
        let snap = step_bfw_scenario(&spec, &g, 42, 500, None, None).unwrap();
        let good = snap.to_json_value().render_pretty();

        let wrong_kind = good.replace("engine-snapshot", "snapshot");
        assert!(validate_engine_snapshot(&wrong_kind).is_err());

        let bad_round = good.replace("\"round\": 500", "\"round\": 501");
        let err = validate_engine_snapshot(&bad_round).unwrap_err();
        assert!(err.to_string().contains("disagree"), "{err}");

        let err = validate_engine_snapshot("{}").unwrap_err();
        assert!(err.to_string().contains("format"), "{err}");
    }
}
