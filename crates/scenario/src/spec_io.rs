//! The `bfw/scenario-spec` document: a compiled scenario as data.
//!
//! `bfw scenario export <file>` turns a TOML scenario into a versioned
//! JSON document whose timeline is the **compiled** event list — every
//! `every`/`rate` schedule expanded into concrete `at` rounds at the
//! effective seed — so a spec document names exactly the perturbations
//! one run will apply, with no schedule semantics left to interpret:
//!
//! ```json
//! {
//!   "format": "bfw/scenario-spec",
//!   "version": 1,
//!   "config": { "name": "ring churn", "graph": "cycle:32", ... },
//!   "events": [ { "at": 2000, "kind": "crash-leader" }, ... ]
//! }
//! ```
//!
//! Event objects mirror the TOML field names (`node`, `u`/`v`, `cut`,
//! `fn`/`fp`/`rounds`, `waves`), so a document reads like the file it
//! came from. Re-importing ([`spec_from_json`]) yields a spec whose
//! all-`at` timeline recompiles to the identical event list — compiled
//! specs are fixpoints, which is what makes them exchangeable: the
//! shrinker emits its minimal reproducers in this format, and an
//! engine snapshot embeds one as its run configuration.

use crate::{
    InjectKind, KernelKind, ProtocolKind, RuntimeKind, ScenarioEvent, ScenarioSpec, ScheduledEvent,
    Timeline,
};
use bfw_graph::NodeId;
use bfw_sim::Scheduler;
use bfw_stats::{Doc, Envelope, JsonValue, SchemaError};

/// Renders a spec as a `bfw/scenario-spec` document, compiling the
/// timeline against the spec's horizon at `seed` (the run's effective
/// seed — a CLI `--seed` override, or the spec's own `seed` key). The
/// emitted config carries `seed` so the document pins the exact run.
/// Deterministic rendering: same `(spec, seed)` ⇒ byte-identical text.
pub fn spec_to_json(spec: &ScenarioSpec, seed: u64) -> JsonValue {
    let mut fields: Vec<(String, JsonValue)> = Envelope::entries("scenario-spec").into();
    fields.push(("config".to_owned(), config_to_json(spec, seed)));
    fields.push((
        "events".to_owned(),
        JsonValue::array(
            spec.timeline
                .compile(spec.rounds, seed)
                .iter()
                .map(event_to_json),
        ),
    ));
    JsonValue::object(fields)
}

/// Parses a `bfw/scenario-spec` document back into a [`ScenarioSpec`]
/// whose timeline is the document's `at`-event list (compiled specs are
/// fixpoints: recompiling that list reproduces it exactly). The spec's
/// `trace` is `None` — trace requests are a property of a run, not of
/// the interchange form.
///
/// # Errors
///
/// A [`SchemaError`] naming the first offending path.
pub fn spec_from_json(text: &str) -> Result<ScenarioSpec, SchemaError> {
    let value = JsonValue::parse(text).map_err(|e| SchemaError::root(e.to_string()))?;
    let doc = Doc::root(&value);
    Envelope::expect(&doc, "scenario-spec")?;
    spec_from_doc(&doc)
}

/// What [`validate_scenario_spec`] reports about a well-formed document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecSummary {
    /// Scenario name from the config block.
    pub name: String,
    /// Workload spec string.
    pub graph: String,
    /// Round horizon.
    pub rounds: u64,
    /// Compiled events in the document.
    pub events: usize,
}

/// Validates a `bfw/scenario-spec` document (the `bfw report validate`
/// entry point for this kind): full decode, so every enum value and
/// event field is checked, not just the envelope.
///
/// # Errors
///
/// A [`SchemaError`] naming the first offending path.
pub fn validate_scenario_spec(text: &str) -> Result<SpecSummary, SchemaError> {
    let spec = spec_from_json(text)?;
    Ok(SpecSummary {
        name: spec.name.clone(),
        graph: spec.graph.clone(),
        rounds: spec.rounds,
        events: spec.timeline.entries().len(),
    })
}

/// A spec with its timeline replaced by the compiled `at`-list at
/// `seed`, its `seed` pinned, and its `trace` dropped — the
/// normalization shared by spec export and engine snapshots. The
/// normalized spec runs byte-identically to the original at `seed`:
/// compilation is deterministic and stable-sorted, so the all-`at`
/// timeline recompiles to the identical [`ScheduledEvent`] list.
pub(crate) fn normalized_spec(spec: &ScenarioSpec, seed: u64) -> ScenarioSpec {
    let mut timeline = Timeline::new();
    for ev in spec.timeline.compile(spec.rounds, seed) {
        timeline = timeline.at(ev.round, ev.event);
    }
    ScenarioSpec {
        seed,
        timeline,
        trace: None,
        ..spec.clone()
    }
}

/// The `config` object of a spec document (also embedded by engine
/// snapshots). Every [`ScenarioSpec`] field except the timeline and the
/// trace request, unset optionals rendered as `null`.
pub(crate) fn config_to_json(spec: &ScenarioSpec, seed: u64) -> JsonValue {
    JsonValue::object([
        ("name", JsonValue::from(spec.name.as_str())),
        ("graph", JsonValue::from(spec.graph.as_str())),
        ("p", JsonValue::from(spec.p)),
        ("rounds", JsonValue::from(spec.rounds)),
        ("stability", JsonValue::from(spec.stability)),
        ("seed", JsonValue::from(seed)),
        ("protocol", JsonValue::from(spec.protocol.to_string())),
        ("runtime", JsonValue::from(spec.runtime.to_string())),
        (
            "scheduler",
            JsonValue::from(spec.scheduler.map(|s| s.to_string())),
        ),
        ("kernel", JsonValue::from(spec.kernel.to_string())),
        ("threads", JsonValue::from(spec.threads.map(|t| t as u64))),
        ("heartbeat", JsonValue::from(spec.heartbeat)),
        ("timeout", JsonValue::from(spec.timeout)),
        ("grace", JsonValue::from(spec.grace)),
    ])
}

/// One compiled event as a JSON object: `at`, `kind`, and the kind's
/// TOML field names.
pub(crate) fn event_to_json(ev: &ScheduledEvent) -> JsonValue {
    let mut fields: Vec<(&str, JsonValue)> = vec![("at", JsonValue::from(ev.round))];
    let kind = match &ev.event {
        ScenarioEvent::CrashNode(u) => {
            fields.push(("node", JsonValue::from(u.index())));
            "crash"
        }
        ScenarioEvent::CrashRandom => "crash-random",
        ScenarioEvent::CrashLeader => "crash-leader",
        ScenarioEvent::RecoverNode(u) => {
            fields.push(("node", JsonValue::from(u.index())));
            "recover"
        }
        ScenarioEvent::RecoverRandom => "recover-random",
        ScenarioEvent::RecoverAll => "recover-all",
        ScenarioEvent::AddEdge(u, v) => {
            fields.push(("u", JsonValue::from(u.index())));
            fields.push(("v", JsonValue::from(v.index())));
            "add-edge"
        }
        ScenarioEvent::RemoveEdge(u, v) => {
            fields.push(("u", JsonValue::from(u.index())));
            fields.push(("v", JsonValue::from(v.index())));
            "remove-edge"
        }
        ScenarioEvent::Partition { side } => {
            fields.push((
                "cut",
                JsonValue::array(side.iter().map(|u| JsonValue::from(u.index()))),
            ));
            "partition"
        }
        ScenarioEvent::Heal => "heal",
        ScenarioEvent::NoiseBurst {
            fn_rate,
            fp_rate,
            rounds,
        } => {
            fields.push(("fn", JsonValue::from(*fn_rate)));
            fields.push(("fp", JsonValue::from(*fp_rate)));
            fields.push(("rounds", JsonValue::from(*rounds)));
            "noise-burst"
        }
        ScenarioEvent::InjectState(InjectKind::PhantomWaves { waves }) => {
            fields.push(("waves", JsonValue::from(*waves as u64)));
            "inject-phantom"
        }
        ScenarioEvent::InjectState(InjectKind::Dead) => "inject-dead",
    };
    fields.push(("kind", JsonValue::from(kind)));
    JsonValue::object(fields)
}

fn node_field(doc: &Doc<'_>, key: &str) -> Result<NodeId, SchemaError> {
    let field = doc.field(key)?;
    let id = field.u64()?;
    u32::try_from(id)
        .map(NodeId::from_u32)
        .map_err(|_| field.error(format!("node id {id} exceeds u32::MAX")))
}

/// Decodes one event object back into a [`ScheduledEvent`].
pub(crate) fn event_from_doc(doc: &Doc<'_>) -> Result<ScheduledEvent, SchemaError> {
    let round = doc.field("at")?.u64()?;
    let kind_field = doc.field("kind")?;
    let kind = kind_field.str()?;
    let event = match kind {
        "crash" => ScenarioEvent::CrashNode(node_field(doc, "node")?),
        "crash-random" => ScenarioEvent::CrashRandom,
        "crash-leader" => ScenarioEvent::CrashLeader,
        "recover" => ScenarioEvent::RecoverNode(node_field(doc, "node")?),
        "recover-random" => ScenarioEvent::RecoverRandom,
        "recover-all" => ScenarioEvent::RecoverAll,
        "add-edge" => ScenarioEvent::AddEdge(node_field(doc, "u")?, node_field(doc, "v")?),
        "remove-edge" => ScenarioEvent::RemoveEdge(node_field(doc, "u")?, node_field(doc, "v")?),
        "partition" => {
            let mut side = Vec::new();
            for item in doc.field("cut")?.items()? {
                let id = item.u64()?;
                side.push(
                    u32::try_from(id)
                        .map(NodeId::from_u32)
                        .map_err(|_| item.error(format!("node id {id} exceeds u32::MAX")))?,
                );
            }
            ScenarioEvent::Partition { side }
        }
        "heal" => ScenarioEvent::Heal,
        "noise-burst" => ScenarioEvent::NoiseBurst {
            fn_rate: doc.field("fn")?.f64()?,
            fp_rate: doc.field("fp")?.f64()?,
            rounds: doc.field("rounds")?.u64()?,
        },
        "inject-phantom" => ScenarioEvent::InjectState(InjectKind::PhantomWaves {
            waves: doc.field("waves")?.u64()? as usize,
        }),
        "inject-dead" => ScenarioEvent::InjectState(InjectKind::Dead),
        other => return Err(kind_field.error(format!("unknown event kind '{other}'"))),
    };
    Ok(ScheduledEvent { round, event })
}

/// Decodes a spec body (`config` + `events` fields on `doc`) into a
/// [`ScenarioSpec`] with an all-`at` timeline.
pub(crate) fn spec_from_doc(doc: &Doc<'_>) -> Result<ScenarioSpec, SchemaError> {
    let config = doc.field("config")?;
    let protocol_field = config.field("protocol")?;
    let protocol = match protocol_field.str()? {
        "bfw" => ProtocolKind::Bfw,
        "bfw+recovery" => ProtocolKind::BfwRecovery,
        other => return Err(protocol_field.error(format!("unknown protocol '{other}'"))),
    };
    let runtime_field = config.field("runtime")?;
    let runtime = match runtime_field.str()? {
        "sync" => RuntimeKind::Sync,
        "async" => RuntimeKind::Async,
        other => return Err(runtime_field.error(format!("unknown runtime '{other}'"))),
    };
    let scheduler = match config.opt_field("scheduler")? {
        None => None,
        Some(field) => Some(match field.str()? {
            "uniform" => Scheduler::Uniform,
            "weighted" => Scheduler::Weighted,
            "replay" => Scheduler::Replay,
            other => return Err(field.error(format!("unknown scheduler '{other}'"))),
        }),
    };
    let kernel_field = config.field("kernel")?;
    let kernel = match kernel_field.str()? {
        "auto" => KernelKind::Auto,
        "generic" => KernelKind::Generic,
        "bit" => KernelKind::Bit,
        other => return Err(kernel_field.error(format!("unknown kernel '{other}'"))),
    };
    let threads = match config.opt_field("threads")? {
        None => None,
        Some(field) => Some(field.u64()? as usize),
    };
    let u32_opt = |key: &str| -> Result<Option<u32>, SchemaError> {
        match config.opt_field(key)? {
            None => Ok(None),
            Some(field) => {
                let v = field.u64()?;
                u32::try_from(v)
                    .map(Some)
                    .map_err(|_| field.error(format!("{key} {v} exceeds u32::MAX")))
            }
        }
    };
    let heartbeat = u32_opt("heartbeat")?;
    let timeout = u32_opt("timeout")?;
    let grace = u32_opt("grace")?;

    let mut timeline = Timeline::new();
    for item in doc.field("events")?.items()? {
        let ev = event_from_doc(&item)?;
        timeline = timeline.at(ev.round, ev.event);
    }
    Ok(ScenarioSpec {
        name: config.field("name")?.str()?.to_owned(),
        graph: config.field("graph")?.str()?.to_owned(),
        p: config.field("p")?.f64()?,
        rounds: config.field("rounds")?.u64()?,
        stability: config.field("stability")?.u64()?,
        seed: config.field("seed")?.u64()?,
        protocol,
        heartbeat,
        timeout,
        grace,
        runtime,
        scheduler,
        kernel,
        threads,
        timeline,
        trace: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_bfw_scenario;
    use bfw_graph::generators;

    const MIXED: &str = r#"
[scenario]
name = "mixed schedules"
graph = "cycle:12"
rounds = 4000
stability = 20
seed = 9

[[event]]
at = 500
kind = "crash-leader"

[[event]]
every = 800
start = 1000
count = 2
kind = "crash-random"

[[event]]
rate = 0.002
kind = "recover-random"

[[event]]
at = 2000
kind = "partition"
cut = [0, 1, 2]

[[event]]
at = 2200
kind = "heal"

[[event]]
at = 2500
kind = "noise-burst"
fn = 0.1
fp = 0.01
rounds = 50
"#;

    #[test]
    fn export_compiles_and_round_trips() {
        let spec = ScenarioSpec::parse(MIXED).unwrap();
        let rendered = spec_to_json(&spec, spec.seed).render_pretty();
        let summary = validate_scenario_spec(&rendered).unwrap();
        assert_eq!(summary.name, "mixed schedules");
        assert_eq!(summary.graph, "cycle:12");
        assert_eq!(summary.rounds, 4_000);
        // Every/rate schedules expanded into concrete events.
        assert_eq!(
            summary.events,
            spec.timeline.compile(spec.rounds, spec.seed).len()
        );

        let back = spec_from_json(&rendered).unwrap();
        assert_eq!(back.name, spec.name);
        assert_eq!(back.p, spec.p);
        assert_eq!(back.seed, spec.seed);
        // The imported all-at timeline compiles to the identical list.
        assert_eq!(
            back.timeline.compile(back.rounds, back.seed),
            spec.timeline.compile(spec.rounds, spec.seed)
        );
    }

    #[test]
    fn exported_spec_is_a_fixpoint() {
        // Export → import → export must be byte-identical: the compiled
        // form has no schedule semantics left to expand.
        let spec = ScenarioSpec::parse(MIXED).unwrap();
        let first = spec_to_json(&spec, spec.seed).render_pretty();
        let back = spec_from_json(&first).unwrap();
        let second = spec_to_json(&back, back.seed).render_pretty();
        assert_eq!(first, second);
    }

    #[test]
    fn imported_spec_runs_identically_to_the_original() {
        let spec = ScenarioSpec::parse(MIXED).unwrap();
        let g = generators::cycle(12);
        let original = run_bfw_scenario(&spec, &g, spec.seed).unwrap();
        let rendered = spec_to_json(&spec, spec.seed).render_pretty();
        let back = spec_from_json(&rendered).unwrap();
        let reran = run_bfw_scenario(&back, &g, back.seed).unwrap();
        assert_eq!(original, reran);
        assert_eq!(original.to_text(), reran.to_text());
    }

    #[test]
    fn every_event_kind_round_trips() {
        use bfw_graph::NodeId;
        let n = |i: usize| NodeId::new(i);
        let events = [
            ScenarioEvent::CrashNode(n(3)),
            ScenarioEvent::CrashRandom,
            ScenarioEvent::CrashLeader,
            ScenarioEvent::RecoverNode(n(4)),
            ScenarioEvent::RecoverRandom,
            ScenarioEvent::RecoverAll,
            ScenarioEvent::AddEdge(n(0), n(5)),
            ScenarioEvent::RemoveEdge(n(1), n(2)),
            ScenarioEvent::Partition {
                side: vec![n(0), n(1)],
            },
            ScenarioEvent::Heal,
            ScenarioEvent::NoiseBurst {
                fn_rate: 0.25,
                fp_rate: 0.0,
                rounds: 10,
            },
            ScenarioEvent::InjectState(InjectKind::PhantomWaves { waves: 2 }),
            ScenarioEvent::InjectState(InjectKind::Dead),
        ];
        for (i, event) in events.into_iter().enumerate() {
            let ev = ScheduledEvent {
                round: (i as u64 + 1) * 10,
                event,
            };
            let rendered = event_to_json(&ev).render();
            let value = JsonValue::parse(&rendered).unwrap();
            let back = event_from_doc(&Doc::root(&value)).unwrap();
            assert_eq!(back, ev, "{rendered}");
        }
    }

    #[test]
    fn validation_rejects_with_pointers() {
        let spec = ScenarioSpec::parse(MIXED).unwrap();
        let good = spec_to_json(&spec, spec.seed);

        let wrong_kind = good.render_pretty().replace("scenario-spec", "spec");
        let err = validate_scenario_spec(&wrong_kind).unwrap_err();
        assert!(err.to_string().contains("format"), "{err}");

        let bad_event = good.render_pretty().replace("crash-leader", "explode");
        let err = validate_scenario_spec(&bad_event).unwrap_err();
        assert!(err.to_string().contains("unknown event kind"), "{err}");
        assert!(err.pointer().contains("/events/"), "{}", err.pointer());

        let bad_kernel = good.render_pretty().replace("\"auto\"", "\"turbo\"");
        let err = validate_scenario_spec(&bad_kernel).unwrap_err();
        assert!(err.to_string().contains("unknown kernel"), "{err}");

        let err = validate_scenario_spec("{}").unwrap_err();
        assert!(err.to_string().contains("format"), "{err}");
    }

    #[test]
    fn normalized_spec_runs_identically() {
        let spec = ScenarioSpec::parse(MIXED).unwrap();
        let g = generators::cycle(12);
        for seed in [9u64, 42] {
            let norm = normalized_spec(&spec, seed);
            assert_eq!(norm.seed, seed);
            assert_eq!(norm.trace, None);
            assert_eq!(
                run_bfw_scenario(&spec, &g, seed).unwrap(),
                run_bfw_scenario(&norm, &g, seed).unwrap()
            );
            // Normalization is idempotent.
            let again = normalized_spec(&norm, seed);
            assert_eq!(
                again.timeline.compile(again.rounds, seed),
                norm.timeline.compile(norm.rounds, seed)
            );
        }
    }
}
