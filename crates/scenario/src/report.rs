//! The `bfw/scenario-report` document: one structure, two views.
//!
//! A [`RunReport`] bundles everything one scenario run produced — the
//! resolved configuration, the [`ScenarioOutcome`], and the optional
//! [`ScenarioTrace`] — and renders it two ways:
//!
//! * [`RunReport::to_text`] — the CLI's pinned stdout block, byte
//!   identical to what `bfw scenario run` has always printed (the
//!   determinism smoke tests `cmp` it across runs);
//! * [`RunReport::to_json_value`] — the versioned interchange document
//!   written by `--trace FILE` and checked by `bfw report validate`:
//!
//! ```json
//! {
//!   "format": "bfw/scenario-report",
//!   "version": 1,
//!   "config": { "scenario": "ring churn", "graph": "cycle:32", ... },
//!   "result": { "rounds_run": 20000, "recoveries": [ ... ], ... },
//!   "trace": { "ledger": { ... }, "flight_recorder": { ... }, ... }
//! }
//! ```
//!
//! Both views come from the same struct, so they cannot drift: the
//! text block and the JSON report of a run always describe the same
//! execution. [`validate_run_report`] checks the document structure
//! with JSON-pointer error paths.

use crate::{
    resolved_kernel, KernelKind, ProtocolKind, RuntimeKind, ScenarioOutcome, ScenarioSpec,
    ScenarioTrace,
};
use bfw_sim::Scheduler;
use bfw_stats::{Doc, Envelope, JsonValue, SchemaError};
use std::fmt::Write as _;

/// Everything one scenario run produced, ready to render as the pinned
/// text block or the versioned JSON report.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Scenario name (the spec's `name`).
    pub scenario: String,
    /// Workload spec string the graph was built from (e.g. `"cycle:32"`).
    pub graph: String,
    /// Protocol stack that ran.
    pub protocol: ProtocolKind,
    /// Runtime that executed the run.
    pub runtime: RuntimeKind,
    /// Activation scheduler (meaningful only under
    /// [`RuntimeKind::Async`]; `None` = uniform).
    pub scheduler: Option<Scheduler>,
    /// The *resolved* execution kernel. `Some` exactly when a kernel
    /// choice exists (plain synchronous BFW) — which is also when the
    /// text view prints its `kernel:` line.
    pub kernel: Option<KernelKind>,
    /// Explicitly configured worker-thread count for the bit kernel's
    /// word-sharded step. `Some` only when the spec set `threads` *and*
    /// the resolved kernel is the bit kernel — which is also when the
    /// text view prints its `threads:` line; an unset key keeps the
    /// pinned stdout byte-identical to what it always was. The count
    /// never changes the result block (the sharded step is
    /// byte-identical at every thread count).
    pub threads: Option<usize>,
    /// BFW beep probability.
    pub p: f64,
    /// The seed the run actually used (CLI override already applied).
    pub seed: u64,
    /// Stability window in rounds.
    pub stability: u64,
    /// The measured outcome.
    pub outcome: ScenarioOutcome,
    /// Instrumentation results, when tracing was on.
    pub trace: Option<ScenarioTrace>,
}

impl RunReport {
    /// Assembles the report for a completed run of `spec` on a graph
    /// with `node_count` nodes (needed to resolve `kernel = "auto"`).
    /// `seed` is the effective seed — pass the CLI override when one
    /// was given.
    pub fn new(
        spec: &ScenarioSpec,
        graph: String,
        node_count: usize,
        seed: u64,
        outcome: ScenarioOutcome,
        trace: Option<ScenarioTrace>,
    ) -> Self {
        let kernel = (spec.runtime == RuntimeKind::Sync && spec.protocol == ProtocolKind::Bfw)
            .then(|| resolved_kernel(spec, node_count));
        let threads = (kernel == Some(KernelKind::Bit))
            .then_some(spec.threads)
            .flatten();
        RunReport {
            scenario: spec.name.clone(),
            graph,
            protocol: spec.protocol,
            runtime: spec.runtime,
            scheduler: spec.scheduler,
            kernel,
            threads,
            p: spec.p,
            seed,
            stability: spec.stability,
            outcome,
            trace,
        }
    }

    /// The pinned plain-text view: the configuration header, the
    /// outcome block, and — for traced runs — the appended complexity
    /// summary and recovery-cost table.
    ///
    /// An untraced run's output is a byte prefix of the traced run's at
    /// the same seed (tracing is passive); the CI smoke test `cmp`s
    /// exactly that.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "scenario:          {}", self.scenario);
        let _ = writeln!(out, "graph:             {}", self.graph);
        let _ = writeln!(out, "protocol:          {}", self.protocol);
        match self.runtime {
            RuntimeKind::Sync => {
                let _ = writeln!(out, "runtime:           sync");
                // The kernel line only exists where a kernel choice
                // exists (plain sync BFW); it is stripped by the CI
                // equivalence smoke, and never affects the result
                // block.
                if let Some(kernel) = self.kernel {
                    let _ = writeln!(out, "kernel:            {kernel}");
                }
                // Likewise the threads line: only for an explicitly
                // configured count on the bit kernel, also stripped by
                // the CI equivalence smoke, never affecting the result
                // block.
                if let Some(threads) = self.threads {
                    let _ = writeln!(out, "threads:           {threads}");
                }
            }
            RuntimeKind::Async => {
                let _ = writeln!(
                    out,
                    "runtime:           async (scheduler: {}; timeline positions in activations)",
                    self.scheduler.unwrap_or_default()
                );
            }
        }
        let _ = writeln!(out, "p:                 {}", self.p);
        let _ = writeln!(out, "seed:              {}", self.seed);
        let _ = writeln!(out, "stability window:  {}", self.stability);
        out.push_str(&self.outcome.to_text());
        if let Some(mean) = self.outcome.mean_latency() {
            let _ = writeln!(out, "mean re-election latency: {mean:.1} rounds");
        }
        // Trace reporting is strictly appended *after* the pinned
        // result block — including the blank separator line, so the
        // prefix property survives the binary's final `println!`
        // newline and can be checked on captured files with `cmp`.
        if let Some(trace) = &self.trace {
            let _ = writeln!(out, "\n{}", trace.summary_line());
            if let Some(table) = trace.recovery_table(&self.outcome) {
                let _ = writeln!(out, "\nrecoveries (channel cost):\n{}", table.to_markdown());
            }
        }
        out
    }

    /// The versioned JSON view (`bfw/scenario-report`): the envelope,
    /// a `config` object, a `result` object, and the `trace` object
    /// (`null` for untraced runs). Deterministic rendering — rerunning
    /// the same scenario produces a byte-identical document.
    pub fn to_json_value(&self) -> JsonValue {
        let mut fields: Vec<(String, JsonValue)> = Envelope::entries("scenario-report").into();
        fields.push(("config".to_owned(), self.config_json()));
        fields.push(("result".to_owned(), self.result_json()));
        fields.push((
            "trace".to_owned(),
            match &self.trace {
                Some(trace) => trace.to_json_value(),
                None => JsonValue::Null,
            },
        ));
        JsonValue::object(fields)
    }

    fn config_json(&self) -> JsonValue {
        JsonValue::object([
            ("scenario", JsonValue::from(self.scenario.as_str())),
            ("graph", JsonValue::from(self.graph.as_str())),
            ("protocol", JsonValue::from(self.protocol.to_string())),
            ("runtime", JsonValue::from(self.runtime.to_string())),
            (
                "scheduler",
                JsonValue::from(self.scheduler.map(|s| s.to_string())),
            ),
            (
                "kernel",
                JsonValue::from(self.kernel.map(|k| k.to_string())),
            ),
            ("threads", JsonValue::from(self.threads.map(|t| t as u64))),
            ("p", JsonValue::from(self.p)),
            ("seed", JsonValue::from(self.seed)),
            ("stability", JsonValue::from(self.stability)),
        ])
    }

    fn result_json(&self) -> JsonValue {
        let outcome = &self.outcome;
        JsonValue::object([
            ("rounds_run", JsonValue::from(outcome.rounds_run)),
            (
                "event_log",
                JsonValue::array(
                    outcome
                        .event_log
                        .iter()
                        .map(|line| JsonValue::from(line.as_str())),
                ),
            ),
            ("leader_flaps", JsonValue::from(outcome.leader_flaps)),
            (
                "recoveries",
                JsonValue::array(outcome.recoveries.iter().map(|r| {
                    JsonValue::object([
                        ("disrupted_at", JsonValue::from(r.disrupted_at)),
                        ("recovered_at", JsonValue::from(r.recovered_at)),
                        ("leader", JsonValue::from(r.leader.index())),
                    ])
                })),
            ),
            (
                "pending_disruption",
                JsonValue::from(outcome.pending_disruption),
            ),
            (
                "final_leaders",
                JsonValue::array(
                    outcome
                        .final_leaders
                        .iter()
                        .map(|u| JsonValue::from(u.index())),
                ),
            ),
            ("final_alive", JsonValue::from(outcome.final_alive)),
            ("final_edges", JsonValue::from(outcome.final_edges)),
            ("mean_latency", JsonValue::from(outcome.mean_latency())),
        ])
    }
}

/// What [`validate_run_report`] reports about a well-formed document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// Scenario name from the config block.
    pub scenario: String,
    /// Rounds the run executed.
    pub rounds_run: u64,
    /// Whether the document carries a trace block.
    pub traced: bool,
}

/// Validates a `bfw/scenario-report` document: the envelope, the
/// config and result blocks, and — when present — the trace block's
/// ledger, flight recorder and recovery costs.
///
/// # Errors
///
/// A [`SchemaError`] naming the first offending path.
pub fn validate_run_report(text: &str) -> Result<RunSummary, SchemaError> {
    let value = JsonValue::parse(text).map_err(|e| SchemaError::root(e.to_string()))?;
    let doc = Doc::root(&value);
    Envelope::expect(&doc, "scenario-report")?;

    let config = doc.field("config")?;
    let scenario = config.field("scenario")?.str()?.to_owned();
    config.field("graph")?.str()?;
    config.field("protocol")?.str()?;
    config.field("runtime")?.str()?;
    if let Some(scheduler) = config.opt_field("scheduler")? {
        scheduler.str()?;
    }
    if let Some(kernel) = config.opt_field("kernel")? {
        kernel.str()?;
    }
    if let Some(threads) = config.opt_field("threads")? {
        threads.u64()?;
    }
    config.field("p")?.f64()?;
    config.field("seed")?.u64()?;
    config.field("stability")?.u64()?;

    let result = doc.field("result")?;
    let rounds_run = result.field("rounds_run")?.u64()?;
    for line in result.field("event_log")?.items()? {
        line.str()?;
    }
    result.field("leader_flaps")?.u64()?;
    for recovery in result.field("recoveries")?.items()? {
        recovery.field("disrupted_at")?.u64()?;
        recovery.field("recovered_at")?.u64()?;
        recovery.field("leader")?.u64()?;
    }
    if let Some(pending) = result.opt_field("pending_disruption")? {
        pending.u64()?;
    }
    for leader in result.field("final_leaders")?.items()? {
        leader.u64()?;
    }
    result.field("final_alive")?.u64()?;
    result.field("final_edges")?.u64()?;
    if let Some(mean) = result.opt_field("mean_latency")? {
        mean.f64()?;
    }

    let trace = doc.field("trace")?;
    let traced = !matches!(trace.value(), JsonValue::Null);
    if traced {
        let ledger = trace.field("ledger")?;
        for key in ["steps", "beeps_sent", "beeps_heard", "bits", "messages"] {
            ledger.field(key)?.u64()?;
        }
        if let Some(recorder) = trace.opt_field("flight_recorder")? {
            for event in recorder.field("events")?.items()? {
                event.field("step")?.u64()?;
                event.field("kind")?.str()?;
            }
        }
        for cost in trace.field("recovery_costs")?.items()? {
            cost.field("bits")?.u64()?;
            cost.field("messages")?.u64()?;
        }
    }

    Ok(RunSummary {
        scenario,
        rounds_run,
        traced,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_bfw_scenario_traced, Recovery};
    use bfw_graph::NodeId;

    fn spec(extra: &str) -> ScenarioSpec {
        ScenarioSpec::parse(&format!(
            "[scenario]\nname = \"report test\"\ngraph = \"cycle:8\"\nrounds = 4000\n\
             stability = 20\n{extra}\n\
             [[event]]\nat = 1500\nkind = \"crash-leader\"\n\n\
             [[event]]\nat = 1600\nkind = \"recover-all\"\n"
        ))
        .unwrap()
    }

    fn sample_outcome() -> ScenarioOutcome {
        ScenarioOutcome {
            rounds_run: 4000,
            event_log: vec!["@1500 crash-leader -> crashed leader 2".to_owned()],
            recoveries: vec![Recovery {
                disrupted_at: 1500,
                recovered_at: 1700,
                leader: NodeId::new(3),
            }],
            pending_disruption: None,
            leader_flaps: 1,
            final_leaders: vec![NodeId::new(3)],
            final_alive: 8,
            final_edges: 8,
        }
    }

    #[test]
    fn text_and_json_views_describe_the_same_run() {
        let spec = spec("");
        let report = RunReport::new(&spec, "cycle:8".to_owned(), 8, 7, sample_outcome(), None);
        let text = report.to_text();
        assert!(text.contains("scenario:          report test"), "{text}");
        assert!(text.contains("kernel:            generic"), "{text}");
        assert!(
            text.contains("mean re-election latency: 200.0 rounds"),
            "{text}"
        );

        let value = report.to_json_value();
        let rendered = value.render_pretty();
        let summary = validate_run_report(&rendered).unwrap();
        assert_eq!(
            summary,
            RunSummary {
                scenario: "report test".to_owned(),
                rounds_run: 4000,
                traced: false,
            }
        );
        // Parse–render–parse fixpoint.
        assert_eq!(JsonValue::parse(&rendered).unwrap(), value);
        // The two views agree on the numbers.
        let result = value.get("result").unwrap();
        assert_eq!(
            result.get("rounds_run").and_then(JsonValue::as_number),
            Some(4000.0)
        );
        assert_eq!(
            result.get("mean_latency").and_then(JsonValue::as_number),
            Some(200.0)
        );
        assert_eq!(
            value
                .get("config")
                .and_then(|c| c.get("kernel"))
                .and_then(JsonValue::as_str),
            Some("generic")
        );
    }

    #[test]
    fn traced_run_report_carries_the_trace_block() {
        let spec = spec("");
        let graph = bfw_graph::generators::cycle(8);
        let (outcome, trace) = run_bfw_scenario_traced(&spec, &graph, 42, Some(64)).unwrap();
        let report = RunReport::new(&spec, "cycle:8".to_owned(), 8, 42, outcome, trace);
        assert!(report.trace.is_some());

        let rendered = report.to_json_value().render_pretty();
        let summary = validate_run_report(&rendered).unwrap();
        assert!(summary.traced);
        let value = JsonValue::parse(&rendered).unwrap();
        let trace = value.get("trace").unwrap();
        assert!(
            trace
                .get("ledger")
                .and_then(|l| l.get("steps"))
                .and_then(JsonValue::as_number)
                .unwrap()
                > 0.0
        );
        assert!(trace
            .get("flight_recorder")
            .and_then(|r| r.get("events"))
            .and_then(JsonValue::as_array)
            .is_some());
        // The untraced text is a byte prefix of the traced text.
        let untraced = RunReport {
            trace: None,
            ..report.clone()
        };
        assert!(report.to_text().starts_with(&untraced.to_text()));
    }

    #[test]
    fn threads_line_appears_only_when_configured_on_the_bit_kernel() {
        // Default spec on a small graph: generic kernel, no threads
        // key — the pinned stdout stays exactly as it always was.
        let plain = RunReport::new(
            &spec(""),
            "cycle:8".to_owned(),
            8,
            7,
            sample_outcome(),
            None,
        );
        assert_eq!(plain.threads, None);
        assert!(!plain.to_text().contains("threads:"), "{}", plain.to_text());

        // Explicit bit kernel + threads: the line renders, 19-column
        // aligned like every other header line, and the JSON config
        // carries the count.
        let spec = spec("kernel = \"bit\"\nthreads = 4");
        let report = RunReport::new(&spec, "cycle:8".to_owned(), 8, 7, sample_outcome(), None);
        assert_eq!(report.threads, Some(4));
        let text = report.to_text();
        assert!(text.contains("kernel:            bit"), "{text}");
        assert!(text.contains("threads:           4"), "{text}");
        let rendered = report.to_json_value().render_pretty();
        validate_run_report(&rendered).unwrap();
        let value = JsonValue::parse(&rendered).unwrap();
        assert_eq!(
            value
                .get("config")
                .and_then(|c| c.get("threads"))
                .and_then(JsonValue::as_number),
            Some(4.0)
        );

        // An explicit threads key under kernel = "auto" forces the bit
        // kernel even on a small graph (the only kernel that shards its
        // step), so the report must surface both resolved values
        // instead of silently misreporting a generic run.
        let auto = ScenarioSpec {
            kernel: KernelKind::Auto,
            threads: Some(4),
            ..ScenarioSpec::parse("[scenario]\ngraph = \"cycle:8\"").unwrap()
        };
        let report = RunReport::new(&auto, "cycle:8".to_owned(), 8, 7, sample_outcome(), None);
        assert_eq!(report.kernel, Some(KernelKind::Bit));
        assert_eq!(report.threads, Some(4));
    }

    #[test]
    fn async_report_records_scheduler_and_no_kernel() {
        let spec = spec("runtime = \"async\"\nscheduler = \"replay\"");
        let report = RunReport::new(&spec, "cycle:8".to_owned(), 8, 7, sample_outcome(), None);
        assert_eq!(report.kernel, None);
        let text = report.to_text();
        assert!(
            text.contains(
                "runtime:           async (scheduler: replay; timeline positions in activations)"
            ),
            "{text}"
        );
        assert!(!text.contains("kernel:"), "{text}");
        let value = report.to_json_value();
        let config = value.get("config").unwrap();
        assert_eq!(
            config.get("scheduler").and_then(JsonValue::as_str),
            Some("replay")
        );
        assert_eq!(config.get("kernel"), Some(&JsonValue::Null));
    }

    #[test]
    fn validation_rejects_with_pointers() {
        let report = RunReport::new(
            &spec(""),
            "cycle:8".to_owned(),
            8,
            7,
            sample_outcome(),
            None,
        );
        let good = report.to_json_value();

        let cases: Vec<(JsonValue, &str)> = vec![
            (JsonValue::from("nope"), ""),
            (
                {
                    let mut v = good.clone();
                    if let JsonValue::Object(map) = &mut v {
                        map.insert("format".to_owned(), JsonValue::from("bfw/graph"));
                    }
                    v
                },
                "",
            ),
            (
                {
                    let mut v = good.clone();
                    if let JsonValue::Object(map) = &mut v {
                        map.remove("result");
                    }
                    v
                },
                "",
            ),
            (
                {
                    let mut v = good.clone();
                    if let JsonValue::Object(map) = &mut v {
                        if let Some(JsonValue::Object(result)) = map.get_mut("result") {
                            result.insert("rounds_run".to_owned(), JsonValue::from("many"));
                        }
                    }
                    v
                },
                "/result/rounds_run",
            ),
            (
                {
                    let mut v = good.clone();
                    if let JsonValue::Object(map) = &mut v {
                        if let Some(JsonValue::Object(config)) = map.get_mut("config") {
                            config.insert("p".to_owned(), JsonValue::Null);
                        }
                    }
                    v
                },
                "/config/p",
            ),
        ];
        for (value, pointer) in cases {
            let err = validate_run_report(&value.render()).unwrap_err();
            assert_eq!(err.pointer(), pointer, "{err}");
        }
    }
}
