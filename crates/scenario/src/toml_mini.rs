//! A minimal TOML-subset parser for scenario specs.
//!
//! The workspace vendors its dependencies, so rather than pulling a
//! full TOML implementation we parse exactly the subset the scenario
//! format uses:
//!
//! * `[section]` and repeatable `[[section]]` headers,
//! * `key = value` pairs with string (`"..."`), boolean, integer,
//!   float, and flat array (`[1, 2, 3]`) values,
//! * `#` comments and blank lines.
//!
//! Nested tables, dotted keys, multi-line values and datetimes are
//! rejected with a line-numbered error.

use std::fmt;

/// A parsed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A flat array of values.
    Array(Vec<Value>),
}

impl Value {
    /// Returns the string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the value as a float (integers widen).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// A `key = value` table (order-preserving).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    entries: Vec<(String, Value)>,
}

impl Table {
    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Returns all entries in file order.
    pub fn entries(&self) -> &[(String, Value)] {
        &self.entries
    }
}

/// A parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TOML parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// One `[section]` or `[[section]]` occurrence, in file order. Keys
/// before the first header land in a section with an empty name.
#[derive(Debug, Clone, PartialEq)]
pub struct Section {
    /// Section name (without brackets).
    pub name: String,
    /// The key/value pairs.
    pub table: Table,
}

/// Parses a TOML-subset document into its sections, preserving order
/// and `[[...]]` repetitions.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line for any input
/// outside the supported subset.
pub fn parse(input: &str) -> Result<Vec<Section>, ParseError> {
    let mut sections: Vec<Section> = Vec::new();
    let mut current: Option<Section> = None;
    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[").and_then(|r| r.strip_suffix("]]")) {
            if let Some(done) = current.take() {
                sections.push(done);
            }
            current = Some(Section {
                name: header.trim().to_owned(),
                table: Table::default(),
            });
        } else if let Some(header) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            if header.starts_with('[') || header.ends_with(']') {
                return Err(ParseError {
                    line: line_no,
                    message: format!("malformed section header '{line}'"),
                });
            }
            if let Some(done) = current.take() {
                sections.push(done);
            }
            current = Some(Section {
                name: header.trim().to_owned(),
                table: Table::default(),
            });
        } else if let Some((key, value)) = line.split_once('=') {
            let key = key.trim();
            if key.is_empty() || key.contains(char::is_whitespace) {
                return Err(ParseError {
                    line: line_no,
                    message: format!("malformed key '{key}'"),
                });
            }
            let value = parse_value(value.trim(), line_no)?;
            let section = current.get_or_insert_with(|| Section {
                name: String::new(),
                table: Table::default(),
            });
            if section.table.get(key).is_some() {
                return Err(ParseError {
                    line: line_no,
                    message: format!("duplicate key '{key}'"),
                });
            }
            section.table.entries.push((key.to_owned(), value));
        } else {
            return Err(ParseError {
                line: line_no,
                message: format!("expected 'key = value' or a section header, got '{line}'"),
            });
        }
    }
    if let Some(done) = current.take() {
        sections.push(done);
    }
    Ok(sections)
}

fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str, line: usize) -> Result<Value, ParseError> {
    let err = |message: String| ParseError { line, message };
    if let Some(inner) = text.strip_prefix('"') {
        let Some(body) = inner.strip_suffix('"') else {
            return Err(err(format!("unterminated string {text}")));
        };
        if body.contains('"') || body.contains('\\') {
            return Err(err("escapes and embedded quotes are unsupported".into()));
        }
        return Ok(Value::Str(body.to_owned()));
    }
    if let Some(inner) = text.strip_prefix('[') {
        let Some(body) = inner.strip_suffix(']') else {
            return Err(err(format!("unterminated array {text}")));
        };
        let body = body.trim();
        if body.is_empty() {
            return Ok(Value::Array(Vec::new()));
        }
        return body
            .split(',')
            .map(|item| parse_value(item.trim(), line))
            .collect::<Result<Vec<_>, _>>()
            .map(Value::Array);
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Ok(i) = text.replace('_', "").parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(x) = text.parse::<f64>() {
        return Ok(Value::Float(x));
    }
    Err(err(format!("unsupported value '{text}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_keys_and_values() {
        let doc = r#"
# a scenario
[scenario]
name = "ring churn"   # trailing comment
rounds = 20_000
p = 0.5
quick = false

[[event]]
at = 500
kind = "crash-leader"

[[event]]
at = 900
cut = [0, 1, 2]
"#;
        let sections = parse(doc).unwrap();
        assert_eq!(sections.len(), 3);
        assert_eq!(sections[0].name, "scenario");
        assert_eq!(
            sections[0].table.get("name").unwrap().as_str(),
            Some("ring churn")
        );
        assert_eq!(
            sections[0].table.get("rounds").unwrap().as_int(),
            Some(20_000)
        );
        assert_eq!(sections[0].table.get("p").unwrap().as_float(), Some(0.5));
        assert_eq!(sections[0].table.get("quick").unwrap(), &Value::Bool(false));
        assert_eq!(sections[1].name, "event");
        assert_eq!(sections[2].name, "event");
        let cut = sections[2].table.get("cut").unwrap().as_array().unwrap();
        assert_eq!(cut.len(), 3);
        assert_eq!(cut[1].as_int(), Some(1));
    }

    #[test]
    fn keys_before_sections_and_int_as_float() {
        let sections = parse("x = 3\n[s]\ny = 4").unwrap();
        assert_eq!(sections[0].name, "");
        assert_eq!(sections[0].table.get("x").unwrap().as_float(), Some(3.0));
        assert_eq!(sections[1].name, "s");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("[ok]\nwhat even is this").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));

        let err = parse("[s]\nk = \"unterminated").unwrap_err();
        assert!(err.message.contains("unterminated string"));

        let err = parse("[s]\nk = [1, 2").unwrap_err();
        assert!(err.message.contains("unterminated array"));

        let err = parse("[s]\nk = nope").unwrap_err();
        assert!(err.message.contains("unsupported value"));

        let err = parse("[s]\nk = 1\nk = 2").unwrap_err();
        assert!(err.message.contains("duplicate key"));

        let err = parse("[s]\nbad key = 1").unwrap_err();
        assert!(err.message.contains("malformed key"));
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let sections = parse("[s]\nk = \"a # b\"").unwrap();
        assert_eq!(sections[0].table.get("k").unwrap().as_str(), Some("a # b"));
    }

    #[test]
    fn empty_array_and_negative_numbers() {
        let sections = parse("[s]\na = []\nb = -7\nc = -0.25").unwrap();
        assert_eq!(
            sections[0].table.get("a").unwrap().as_array(),
            Some(&[][..])
        );
        assert_eq!(sections[0].table.get("b").unwrap().as_int(), Some(-7));
        assert_eq!(sections[0].table.get("c").unwrap().as_float(), Some(-0.25));
    }
}
