//! Post-run trace artifacts: the complexity ledger, the flight
//! recorder, and per-recovery channel costs — the `trace` block of the
//! versioned `bfw/scenario-report` document (see [`crate::RunReport`]).
//!
//! A [`ScenarioTrace`] is produced by
//! [`Engine::run_traced`](crate::Engine::run_traced) when the host's
//! instrumentation is on. It is strictly *additive* observability:
//! instrumentation never draws from an RNG stream, so the
//! [`ScenarioOutcome`](crate::ScenarioOutcome) of a traced run is
//! byte-identical to the untraced run at the same seed (asserted by the
//! `trace_does_not_perturb_outcomes` tests).

use crate::ScenarioOutcome;
use bfw_sim::{ComplexityLedger, FlightRecorder};
use bfw_stats::{JsonValue, Table};

/// Everything a traced scenario run measured beyond its
/// [`ScenarioOutcome`](crate::ScenarioOutcome).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioTrace {
    /// Whole-run complexity counters, accumulated by the host engine.
    pub ledger: ComplexityLedger,
    /// The ring buffer of recent trace events, if a recorder was
    /// attached.
    pub recorder: Option<FlightRecorder>,
    /// Channel cost of each completed recovery, aligned index-for-index
    /// with [`ScenarioOutcome::recoveries`]: `(bits, messages)` spent
    /// from the disruption until the recovery's stable window was
    /// *confirmed* — i.e. including the stability window itself, since
    /// the cost of a recovery is only known once stability is
    /// established.
    pub recovery_costs: Vec<(u64, u64)>,
}

impl ScenarioTrace {
    /// The trace as a [`JsonValue`] — the `trace` block of the
    /// `bfw/scenario-report` document (see [`crate::RunReport`]): the
    /// ledger, the flight-recorder dump (or `null`), and the
    /// per-recovery channel costs. The instrumentation types render
    /// their own JSON strings (no serde in the vendor set); parsing
    /// them back here keeps one JSON model end to end.
    pub fn to_json_value(&self) -> JsonValue {
        let ledger = JsonValue::parse(&self.ledger.to_json())
            .expect("ComplexityLedger::to_json emits valid JSON");
        let recorder = match &self.recorder {
            Some(recorder) => JsonValue::parse(&recorder.to_json())
                .expect("FlightRecorder::to_json emits valid JSON"),
            None => JsonValue::Null,
        };
        let costs = JsonValue::array(self.recovery_costs.iter().map(|&(bits, messages)| {
            JsonValue::object([
                ("bits", JsonValue::from(bits)),
                ("messages", JsonValue::from(messages)),
            ])
        }));
        JsonValue::object([
            ("ledger", ledger),
            ("flight_recorder", recorder),
            ("recovery_costs", costs),
        ])
    }

    /// The [`ElectionMonitor`](crate::ElectionMonitor) report with
    /// bit/message columns: one row per completed recovery —
    /// disruption round, stable-from round, latency, and the channel
    /// cost ([`recovery_costs`](Self::recovery_costs)) of getting
    /// there. `None` when the run completed no recoveries.
    pub fn recovery_table(&self, outcome: &ScenarioOutcome) -> Option<Table> {
        if outcome.recoveries.is_empty() {
            return None;
        }
        let mut table =
            Table::with_columns(&["disrupted", "stable from", "latency", "bits", "messages"]);
        for (i, r) in outcome.recoveries.iter().enumerate() {
            let (bits, messages) = self
                .recovery_costs
                .get(i)
                .map_or(("?".to_owned(), "?".to_owned()), |&(b, m)| {
                    (b.to_string(), m.to_string())
                });
            table.push_row(vec![
                r.disrupted_at.to_string(),
                r.recovered_at.to_string(),
                r.latency().to_string(),
                bits,
                messages,
            ]);
        }
        Some(table)
    }

    /// One-line plain-text summary of the ledger (the CLI prints this
    /// after the pinned result block).
    pub fn summary_line(&self) -> String {
        format!(
            "complexity: steps={} beeps_sent={} beeps_heard={} bits={} messages={} state={}B/node",
            self.ledger.steps(),
            self.ledger.beeps_sent(),
            self.ledger.beeps_heard(),
            self.ledger.bits(),
            self.ledger.messages(),
            self.ledger.state_bytes_per_node(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recovery;
    use bfw_graph::NodeId;
    use bfw_sim::RoundSample;
    use bfw_stats::JsonValue;

    fn sample_trace() -> ScenarioTrace {
        let mut ledger = ComplexityLedger::new();
        ledger.record(
            RoundSample {
                emitters: 3,
                heard: 5,
                bits: 3,
                messages: 6,
            },
            8,
            4,
        );
        let mut recorder = FlightRecorder::new(4);
        recorder.record(bfw_sim::TraceEvent {
            step: 2,
            kind: "scenario-event".to_owned(),
            detail: "@2 crash-leader -> crashed leader 1".to_owned(),
        });
        ScenarioTrace {
            ledger,
            recorder: Some(recorder),
            recovery_costs: vec![(120, 240)],
        }
    }

    #[test]
    fn json_report_is_versioned_and_round_trips() {
        let trace = sample_trace();
        let value = trace.to_json_value();
        let ledger = value.get("ledger").unwrap();
        assert_eq!(ledger.get("bits").and_then(JsonValue::as_number), Some(3.0));
        let events = value
            .get("flight_recorder")
            .and_then(|r| r.get("events"))
            .and_then(JsonValue::as_array)
            .unwrap();
        assert_eq!(events.len(), 1);
        let costs = value
            .get("recovery_costs")
            .and_then(JsonValue::as_array)
            .unwrap();
        assert_eq!(
            costs[0].get("messages").and_then(JsonValue::as_number),
            Some(240.0)
        );
        // render → parse fixpoint.
        let reparsed = JsonValue::parse(&value.render()).unwrap();
        assert_eq!(reparsed, value);
    }

    #[test]
    fn recorderless_trace_renders_null() {
        let trace = ScenarioTrace {
            recorder: None,
            ..sample_trace()
        };
        let value = trace.to_json_value();
        assert_eq!(value.get("flight_recorder"), Some(&JsonValue::Null));
    }

    #[test]
    fn recovery_table_aligns_costs_with_recoveries() {
        let trace = sample_trace();
        let outcome = ScenarioOutcome {
            rounds_run: 100,
            event_log: vec![],
            recoveries: vec![
                Recovery {
                    disrupted_at: 10,
                    recovered_at: 30,
                    leader: NodeId::new(2),
                },
                Recovery {
                    disrupted_at: 40,
                    recovered_at: 60,
                    leader: NodeId::new(2),
                },
            ],
            pending_disruption: None,
            leader_flaps: 0,
            final_leaders: vec![NodeId::new(2)],
            final_alive: 8,
            final_edges: 8,
        };
        let table = trace.recovery_table(&outcome).unwrap();
        assert_eq!(table.row_count(), 2);
        let md = table.to_markdown();
        assert!(md.contains("bits"), "{md}");
        assert!(md.contains("120"), "{md}");
        // The second recovery has no measured cost: rendered as '?'.
        assert!(md.contains('?'), "{md}");

        let empty = ScenarioOutcome {
            recoveries: vec![],
            ..outcome
        };
        assert!(trace.recovery_table(&empty).is_none());
    }

    #[test]
    fn summary_line_shows_every_counter() {
        let line = sample_trace().summary_line();
        assert!(line.contains("steps=1"), "{line}");
        assert!(line.contains("bits=3"), "{line}");
        assert!(line.contains("state=4B/node"), "{line}");
    }
}
