//! `bfw scenario shrink`: minimal reproducers for wipeout timelines.
//!
//! A **wipeout** is the failure mode the paper's Section 5 warns about:
//! a perturbation sequence leaves the network permanently leaderless —
//! every node sits in a follower state, nobody beeps, and plain BFW has
//! no transition that ever creates a new leader. The recovery bench
//! (E15/E17) finds such timelines, but the specs it finds them in carry
//! decoy events: crashes that rejoined, partitions that healed, noise
//! bursts that did nothing. The shrinker strips a spec down to the
//! events that *cause* the wipeout.
//!
//! Three greedy passes, in order:
//!
//! 1. **drop** — remove one event at a time (last first), keep the
//!    removal if the wipeout still reproduces; repeated to a fixpoint;
//! 2. **horizon trim** — binary-search the earliest round at which the
//!    network is already leaderless. Sound because plain BFW's leader
//!    set is monotone nonincreasing once no more events fire: leaderless
//!    at `h` implies leaderless at every `h' ≥ h`;
//! 3. **retime** (skipped by `quick`) — binary-search each surviving
//!    event downward toward its predecessor, accepting any earlier
//!    firing round that still reproduces.
//!
//! Every candidate is checked by *replaying* the scenario — there is no
//! static shortcut for "does this still wipe out". What makes that
//! affordable is the snapshot layer from [`crate::step_bfw_scenario`]:
//! the shrinker keeps a ladder of [`EngineSnapshot`]s just below each
//! event round, and a candidate that only changes the timeline from
//! round `r` onward resumes from the last snapshot before `r` instead
//! of re-running from round zero. Candidate outcomes are
//! kernel-invariant, so replays run on the generic kernel regardless of
//! what the spec requests; the minimized spec keeps the original
//! kernel/threads keys.
//!
//! [`EngineSnapshot`]: crate::EngineSnapshot

use crate::bfw_run::run_bfw_scenario;
use crate::lifecycle::{
    resume_run_bfw_scenario, resume_step_bfw_scenario, step_bfw_scenario, EngineSnapshot,
};
use crate::spec_io::normalized_spec;
use crate::{
    KernelKind, ProtocolKind, RuntimeKind, ScenarioOutcome, ScenarioSpec, ScheduledEvent,
    SpecError, Timeline,
};
use bfw_graph::Graph;

/// What [`shrink_wipeout`] did to a spec.
#[derive(Debug, Clone)]
pub struct ShrinkReport {
    /// Events in the compiled original timeline.
    pub original_events: usize,
    /// Events surviving the shrink.
    pub events: Vec<ScheduledEvent>,
    /// The original horizon.
    pub original_horizon: u64,
    /// The trimmed horizon: the earliest round at which the network is
    /// already (and therefore permanently) leaderless.
    pub horizon: u64,
    /// Scenario replays spent (snapshot-accelerated resumes and full
    /// runs both count as one).
    pub replays: usize,
    /// The minimized spec: the original configuration with the
    /// surviving all-`at` timeline and the trimmed horizon. Still wipes
    /// out at its pinned seed, and exports/validates like any other
    /// spec.
    pub spec: ScenarioSpec,
}

impl ShrinkReport {
    /// The pinned stdout block for `bfw scenario shrink`.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "shrink \"{}\": wipeout reproduced with {} of {} events\n",
            self.spec.name,
            self.events.len(),
            self.original_events
        ));
        out.push_str(&format!(
            "horizon: {} -> {}   replays: {}\n",
            self.original_horizon, self.horizon, self.replays
        ));
        for ev in &self.events {
            out.push_str(&format!("  @{} {}\n", ev.round, ev.event));
        }
        out
    }
}

/// `true` when the outcome is a wipeout: alive nodes exist but none of
/// them is a leader (and in plain BFW none ever will be again).
fn wipes(outcome: &ScenarioOutcome) -> bool {
    outcome.final_leaders.is_empty() && outcome.final_alive > 0
}

/// Rebuilds a runnable spec from an explicit all-`at` event list.
fn with_events(base: &ScenarioSpec, events: &[ScheduledEvent], rounds: u64) -> ScenarioSpec {
    let mut timeline = Timeline::new();
    for ev in events {
        timeline = timeline.at(ev.round, ev.event.clone());
    }
    ScenarioSpec {
        timeline,
        rounds,
        ..base.clone()
    }
}

/// Snapshot-accelerated candidate replayer: resumes from the deepest
/// still-valid ladder snapshot strictly before the first round where
/// the candidate diverges from the timeline the ladder was built for.
struct Replayer<'a> {
    base: &'a ScenarioSpec,
    graph: &'a Graph,
    seed: u64,
    ladder: Vec<EngineSnapshot>,
    replays: usize,
}

impl Replayer<'_> {
    fn outcome(
        &mut self,
        events: &[ScheduledEvent],
        horizon: u64,
        first_changed: u64,
    ) -> Result<ScenarioOutcome, SpecError> {
        self.replays += 1;
        let candidate = with_events(self.base, events, horizon);
        let snap = self
            .ladder
            .iter()
            .rev()
            .find(|s| s.round < first_changed && s.round <= horizon);
        match snap {
            Some(snap) => {
                let mut s = snap.clone();
                // The prefix up to the snapshot round is shared with the
                // candidate, so only the spec and the timeline cursor
                // need rewriting; states, RNG streams and monitor carry
                // over unchanged.
                s.cursor.next_event = events.iter().filter(|e| e.round <= s.round).count();
                s.spec = candidate;
                resume_run_bfw_scenario(&s, None, None)
            }
            None => run_bfw_scenario(&candidate, self.graph, self.seed),
        }
    }

    /// Drops ladder entries invalidated by an accepted timeline change
    /// at `from_round`.
    fn invalidate(&mut self, from_round: u64) {
        self.ladder.retain(|s| s.round < from_round);
    }
}

/// Shrinks `spec` to a minimal timeline that still wipes the network
/// out at `seed`. `quick` skips the retime pass and settles for one
/// drop pass — a few replays instead of a few dozen.
///
/// # Errors
///
/// A [`SpecError`] if the spec is not plain synchronous BFW (the only
/// stack with both a snapshot encoding and the monotone-leader-set
/// argument the horizon trim relies on), or if the full scenario does
/// not wipe out at `seed` — there is nothing to shrink then.
pub fn shrink_wipeout(
    spec: &ScenarioSpec,
    graph: &Graph,
    seed: u64,
    quick: bool,
) -> Result<ShrinkReport, SpecError> {
    if spec.protocol != ProtocolKind::Bfw || spec.runtime != RuntimeKind::Sync {
        return Err(SpecError::new(
            "scenario shrink supports plain synchronous bfw only: the horizon trim relies on \
             the monotone leader set of the plain protocol",
        ));
    }
    // Replays run on the generic kernel (outcomes are kernel-invariant);
    // the original kernel/threads keys are restored on the way out.
    let mut base = normalized_spec(spec, seed);
    base.kernel = KernelKind::Generic;
    base.threads = None;

    let original: Vec<ScheduledEvent> = base.timeline.compile(base.rounds, seed);
    let original_horizon = base.rounds;
    let mut replayer = Replayer {
        base: &base,
        graph,
        seed,
        ladder: Vec::new(),
        replays: 0,
    };

    let full = replayer.outcome(&original, original_horizon, 0)?;
    if !wipes(&full) {
        return Err(SpecError::new(format!(
            "scenario \"{}\" does not wipe out at seed {seed} (final leaders: {}); nothing to \
             shrink",
            spec.name,
            full.final_leaders.len()
        )));
    }

    // Ladder: one snapshot just below each distinct event round, each
    // built by resuming the previous one — the whole ladder costs one
    // pass over the event window, not one run per rung.
    let mut targets: Vec<u64> = original
        .iter()
        .filter(|e| e.round > 0)
        .map(|e| e.round - 1)
        .collect();
    targets.dedup();
    let mut prev: Option<EngineSnapshot> = None;
    for target in targets {
        let snap = match &prev {
            None => step_bfw_scenario(&base, graph, seed, target, None, None)?,
            Some(p) => resume_step_bfw_scenario(p, target - p.round, None, None)?,
        };
        replayer.ladder.push(snap.clone());
        prev = Some(snap);
    }

    // Drop pass: remove events last-first, to a fixpoint (quick: one
    // pass). Dropping late events first keeps the deep ladder rungs
    // valid longest.
    let mut events = original.clone();
    let mut horizon = original_horizon;
    loop {
        let mut dropped = false;
        let mut k = events.len();
        while k > 0 {
            k -= 1;
            let mut cand = events.clone();
            let changed = cand.remove(k).round;
            if wipes(&replayer.outcome(&cand, horizon, changed)?) {
                events = cand;
                replayer.invalidate(changed);
                dropped = true;
            }
        }
        if quick || !dropped {
            break;
        }
    }

    // Horizon trim: earliest round (at or after the last event) that is
    // already leaderless. The predicate is monotone in the probe round,
    // so binary search applies.
    let r_last = events.last().map_or(0, |e| e.round);
    let mut lo = r_last;
    let mut hi = horizon;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if wipes(&replayer.outcome(&events, mid, u64::MAX)?) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    horizon = hi;

    if !quick {
        // Retime pass: pull each event toward its predecessor. The
        // probe accepts any earlier firing that still reproduces, so
        // the result is always sound; binary search just finds a good
        // one in O(log gap) replays.
        for i in 0..events.len() {
            let floor = if i == 0 { 0 } else { events[i - 1].round };
            let mut lo = floor;
            let mut hi = events[i].round;
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                let mut cand = events.clone();
                cand[i].round = mid;
                if wipes(&replayer.outcome(&cand, horizon, mid)?) {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            if hi < events[i].round {
                events[i].round = hi;
                replayer.invalidate(hi);
            }
        }
        // Earlier events may allow an earlier horizon.
        let r_last = events.last().map_or(0, |e| e.round);
        let mut lo = r_last;
        let mut hi = horizon;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if wipes(&replayer.outcome(&events, mid, u64::MAX)?) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        horizon = hi;
    }

    let replays = replayer.replays;
    let mut minimized = with_events(&base, &events, horizon);
    minimized.kernel = spec.kernel;
    minimized.threads = spec.threads;
    Ok(ShrinkReport {
        original_events: original.len(),
        events,
        original_horizon,
        horizon,
        replays,
        spec: minimized,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScenarioEvent;
    use bfw_graph::generators;

    /// E17's phantom-wave wipeout plus decoy churn that has nothing to
    /// do with it: the crash rejoins, the noise burst expires.
    const PHANTOM: &str = r#"
[scenario]
name = "phantom wipeout"
graph = "cycle:12"
rounds = 4000
stability = 20
seed = 7

[[event]]
at = 150
kind = "crash-random"

[[event]]
at = 250
kind = "recover-all"

[[event]]
at = 400
kind = "noise-burst"
fn = 0.05
rounds = 50

[[event]]
at = 800
kind = "inject-phantom"
waves = 1
"#;

    #[test]
    fn phantom_wipeout_shrinks_to_the_injection() {
        let spec = ScenarioSpec::parse(PHANTOM).unwrap();
        let g = generators::cycle(12);
        let report = shrink_wipeout(&spec, &g, 7, false).unwrap();
        assert_eq!(report.original_events, 4);
        // Only the injection causes the wipeout.
        assert_eq!(report.events.len(), 1, "{}", report.to_text());
        assert!(matches!(
            report.events[0].event,
            ScenarioEvent::InjectState(_)
        ));
        assert!(report.horizon < report.original_horizon);
        // The minimized spec still reproduces.
        let outcome = run_bfw_scenario(&report.spec, &g, 7).unwrap();
        assert!(wipes(&outcome), "{}", outcome.to_text());
        // ... and still passes static validation.
        crate::validate_scenario(&report.spec, &g).unwrap();
    }

    #[test]
    fn quick_mode_still_reproduces() {
        let spec = ScenarioSpec::parse(PHANTOM).unwrap();
        let g = generators::cycle(12);
        let quick = shrink_wipeout(&spec, &g, 7, true).unwrap();
        assert!(quick.events.len() <= 2, "{}", quick.to_text());
        let outcome = run_bfw_scenario(&quick.spec, &g, 7).unwrap();
        assert!(wipes(&outcome));
        let thorough = shrink_wipeout(&spec, &g, 7, false).unwrap();
        assert!(thorough.replays >= quick.replays);
        assert!(thorough.horizon <= quick.horizon);
    }

    /// E15's crash-the-leader-forever wipeout: the leader crashes and
    /// never rejoins, so its frozen neighborhood stays leaderless.
    #[test]
    fn crash_leader_wipeout_shrinks() {
        let text = r#"
[scenario]
name = "crash wipeout"
graph = "cycle:8"
rounds = 6000
stability = 20
seed = 3

[[event]]
at = 50
kind = "add-edge"
u = 0
v = 4

[[event]]
at = 2500
kind = "crash-leader"

[[event]]
at = 2600
kind = "remove-edge"
u = 0
v = 4
"#;
        let spec = ScenarioSpec::parse(text).unwrap();
        let g = generators::cycle(8);
        let report = shrink_wipeout(&spec, &g, 3, false).unwrap();
        // The decoy edge churn drops; the crash survives.
        assert!(
            report
                .events
                .iter()
                .any(|e| matches!(e.event, ScenarioEvent::CrashLeader)),
            "{}",
            report.to_text()
        );
        assert!(report.events.len() < 3);
        let outcome = run_bfw_scenario(&report.spec, &g, 3).unwrap();
        assert!(wipes(&outcome));
    }

    #[test]
    fn non_wipeout_is_refused() {
        let text = "[scenario]\ngraph = \"cycle:8\"\nrounds = 5000\nseed = 1";
        let spec = ScenarioSpec::parse(text).unwrap();
        let err = shrink_wipeout(&spec, &generators::cycle(8), 1, true).unwrap_err();
        assert!(err.to_string().contains("does not wipe out"), "{err}");
    }

    #[test]
    fn unsupported_stacks_are_refused() {
        let text = "[scenario]\ngraph = \"cycle:8\"\nruntime = \"async\"\nscheduler = \"uniform\"";
        let spec = ScenarioSpec::parse(text).unwrap();
        let err = shrink_wipeout(&spec, &generators::cycle(8), 1, true).unwrap_err();
        assert!(err.to_string().contains("plain synchronous bfw"), "{err}");
    }

    #[test]
    fn shrunk_spec_round_trips_through_the_interchange_layer() {
        let spec = ScenarioSpec::parse(PHANTOM).unwrap();
        let g = generators::cycle(12);
        let report = shrink_wipeout(&spec, &g, 7, true).unwrap();
        let rendered = crate::spec_to_json(&report.spec, 7).render_pretty();
        let back = crate::spec_from_json(&rendered).unwrap();
        let a = run_bfw_scenario(&report.spec, &g, 7).unwrap();
        let b = run_bfw_scenario(&back, &g, 7).unwrap();
        assert_eq!(a, b);
    }
}
