//! Scheduling: when events fire.

use crate::ScenarioEvent;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// When a timeline entry fires.
#[derive(Debug, Clone, PartialEq)]
pub enum Schedule {
    /// Fire once, after the network has completed `round` rounds.
    At(u64),
    /// Fire at `start`, `start + period`, ... for `count` occurrences
    /// (`count = 0` means "until the horizon").
    Every {
        /// First firing round.
        start: u64,
        /// Rounds between firings (must be ≥ 1).
        period: u64,
        /// Number of firings (0 = unbounded).
        count: u64,
    },
    /// Seeded-random arrivals: each round in `[start, horizon]` fires
    /// independently with probability `per_round` (a Bernoulli arrival
    /// process, deterministic given the scenario seed).
    Rate {
        /// Per-round firing probability, in `[0, 1)`.
        per_round: f64,
        /// First eligible round.
        start: u64,
    },
}

/// One event bound to its schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEntry {
    /// When to fire.
    pub schedule: Schedule,
    /// What fires.
    pub event: ScenarioEvent,
}

/// An event scheduled at a concrete round (the output of
/// [`Timeline::compile`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledEvent {
    /// Firing round (the event applies after this many completed
    /// rounds).
    pub round: u64,
    /// The event.
    pub event: ScenarioEvent,
}

/// A declarative schedule of perturbations, compiled to a concrete
/// per-round event list before a run.
///
/// # Example
///
/// ```
/// use bfw_scenario::{ScenarioEvent, Timeline};
/// use bfw_graph::NodeId;
///
/// let timeline = Timeline::new()
///     .at(100, ScenarioEvent::CrashLeader)
///     .every(200, 100, 3, ScenarioEvent::CrashRandom)
///     .at(900, ScenarioEvent::RecoverAll);
/// let compiled = timeline.compile(1_000, 42);
/// assert_eq!(compiled.len(), 5);
/// assert!(compiled.windows(2).all(|w| w[0].round <= w[1].round));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    entries: Vec<TimelineEntry>,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Returns the declarative entries.
    pub fn entries(&self) -> &[TimelineEntry] {
        &self.entries
    }

    /// Adds an entry with an explicit [`Schedule`].
    pub fn schedule(mut self, schedule: Schedule, event: ScenarioEvent) -> Self {
        self.entries.push(TimelineEntry { schedule, event });
        self
    }

    /// Fires `event` once at `round`.
    pub fn at(self, round: u64, event: ScenarioEvent) -> Self {
        self.schedule(Schedule::At(round), event)
    }

    /// Fires `event` at `start`, then every `period` rounds, `count`
    /// times (0 = until the horizon).
    pub fn every(self, start: u64, period: u64, count: u64, event: ScenarioEvent) -> Self {
        self.schedule(
            Schedule::Every {
                start,
                period,
                count,
            },
            event,
        )
    }

    /// Appends every entry of `other` after this timeline's entries
    /// (tie rounds fire in entry order, so `self`'s events keep
    /// priority; `Rate` entries keep per-entry streams, which shift
    /// with the entry index).
    pub fn merge(mut self, other: Timeline) -> Self {
        self.entries.extend(other.entries);
        self
    }

    /// Fires `event` with probability `per_round` each round (seeded
    /// Bernoulli arrivals).
    pub fn random(self, per_round: f64, event: ScenarioEvent) -> Self {
        self.schedule(
            Schedule::Rate {
                per_round,
                start: 1,
            },
            event,
        )
    }

    /// Expands every schedule into concrete `(round, event)` firings up
    /// to and including `horizon`, sorted by round. Ties fire in entry
    /// order. Random arrivals draw from a ChaCha stream derived from
    /// `seed` and the entry index, so the compiled timeline is a pure
    /// function of `(timeline, horizon, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if an [`Schedule::Every`] period is zero or a
    /// [`Schedule::Rate`] probability is outside `[0, 1)`.
    pub fn compile(&self, horizon: u64, seed: u64) -> Vec<ScheduledEvent> {
        let mut compiled: Vec<(u64, usize, ScenarioEvent)> = Vec::new();
        for (index, entry) in self.entries.iter().enumerate() {
            match &entry.schedule {
                Schedule::At(round) => {
                    if *round <= horizon {
                        compiled.push((*round, index, entry.event.clone()));
                    }
                }
                Schedule::Every {
                    start,
                    period,
                    count,
                } => {
                    assert!(
                        *period >= 1,
                        "periodic schedules need a period of at least 1"
                    );
                    let mut fired = 0u64;
                    let mut round = *start;
                    while round <= horizon && (*count == 0 || fired < *count) {
                        compiled.push((round, index, entry.event.clone()));
                        fired += 1;
                        round += period;
                    }
                }
                Schedule::Rate { per_round, start } => {
                    assert!(
                        (0.0..1.0).contains(per_round),
                        "arrival probability must be in [0, 1), got {per_round}"
                    );
                    // Derive an independent stream per entry so adding an
                    // entry does not shift the arrivals of the others. The
                    // domain constant keeps every stream distinct from the
                    // host network's master stream, which is keyed from
                    // the bare seed.
                    let mut rng = ChaCha8Rng::seed_from_u64(
                        seed ^ 0x07A1_E11E_50DD_5EED_u64
                            ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    for round in *start..=horizon {
                        if rng.random_bool(*per_round) {
                            compiled.push((round, index, entry.event.clone()));
                        }
                    }
                }
            }
        }
        compiled.sort_by_key(|&(round, index, _)| (round, index));
        compiled
            .into_iter()
            .map(|(round, _, event)| ScheduledEvent { round, event })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_and_every_expand_in_order() {
        let t = Timeline::new()
            .every(10, 10, 0, ScenarioEvent::CrashRandom)
            .at(15, ScenarioEvent::Heal);
        let c = t.compile(40, 0);
        let rounds: Vec<u64> = c.iter().map(|e| e.round).collect();
        assert_eq!(rounds, [10, 15, 20, 30, 40]);
        assert_eq!(c[1].event, ScenarioEvent::Heal);
    }

    #[test]
    fn count_limits_periodic_firings() {
        let t = Timeline::new().every(5, 5, 3, ScenarioEvent::CrashRandom);
        assert_eq!(t.compile(1_000, 0).len(), 3);
    }

    #[test]
    fn events_beyond_horizon_are_dropped() {
        let t = Timeline::new()
            .at(5, ScenarioEvent::Heal)
            .at(50, ScenarioEvent::Heal);
        assert_eq!(t.compile(10, 0).len(), 1);
    }

    #[test]
    fn ties_preserve_entry_order() {
        let t = Timeline::new()
            .at(7, ScenarioEvent::CrashLeader)
            .at(7, ScenarioEvent::RecoverAll);
        let c = t.compile(10, 0);
        assert_eq!(c[0].event, ScenarioEvent::CrashLeader);
        assert_eq!(c[1].event, ScenarioEvent::RecoverAll);
    }

    #[test]
    fn merge_appends_entries_in_order() {
        let ambient = Timeline::new().at(5, ScenarioEvent::CrashRandom);
        let class = Timeline::new()
            .at(5, ScenarioEvent::Heal)
            .at(9, ScenarioEvent::RecoverAll);
        let merged = ambient.merge(class);
        assert_eq!(merged.entries().len(), 3);
        let c = merged.compile(10, 0);
        // Tie at round 5: the left timeline's entry fires first.
        assert_eq!(c[0].event, ScenarioEvent::CrashRandom);
        assert_eq!(c[1].event, ScenarioEvent::Heal);
        assert_eq!(c[2].event, ScenarioEvent::RecoverAll);
    }

    #[test]
    fn random_arrivals_are_seed_deterministic() {
        let t = Timeline::new().random(0.05, ScenarioEvent::CrashRandom);
        let a = t.compile(2_000, 9);
        let b = t.compile(2_000, 9);
        assert_eq!(a, b);
        let c = t.compile(2_000, 10);
        assert_ne!(a, c, "different seeds should move the arrivals");
        // Arrival count is near 0.05 × 2000 = 100.
        assert!((40..=180).contains(&a.len()), "{}", a.len());
    }

    #[test]
    fn rate_entries_use_independent_streams() {
        let solo = Timeline::new().random(0.05, ScenarioEvent::CrashRandom);
        let paired = Timeline::new()
            .random(0.05, ScenarioEvent::CrashRandom)
            .random(0.5, ScenarioEvent::RecoverRandom);
        let solo_rounds: Vec<u64> = solo.compile(500, 3).iter().map(|e| e.round).collect();
        let paired_rounds: Vec<u64> = paired
            .compile(500, 3)
            .iter()
            .filter(|e| e.event == ScenarioEvent::CrashRandom)
            .map(|e| e.round)
            .collect();
        assert_eq!(solo_rounds, paired_rounds);
    }

    #[test]
    #[should_panic(expected = "period of at least 1")]
    fn zero_period_rejected() {
        let _ = Timeline::new()
            .every(0, 0, 1, ScenarioEvent::Heal)
            .compile(10, 0);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn bad_rate_rejected() {
        let _ = Timeline::new()
            .random(1.5, ScenarioEvent::Heal)
            .compile(10, 0);
    }
}
