//! The runtime abstraction the engine drives.
//!
//! [`DynamicHost`] is the seam between the scenario engine and the
//! simulators in `bfw-sim`: anything that can step rounds, swap its
//! adjacency, mask nodes and report leaders can be perturbed by a
//! [`Timeline`](crate::Timeline). Both the beeping [`Network`] and the
//! [`StoneAgeNetwork`] implement it, so one scenario drives all models.

use bfw_graph::{Graph, NodeId};
use bfw_sim::stone_age::{StoneAgeLeaderElection, StoneAgeNetwork};
use bfw_sim::{LeaderElection, Network, Topology};

/// A synchronous runtime the scenario engine can perturb mid-run.
pub trait DynamicHost {
    /// Per-node protocol state (for [`InjectState`] events).
    ///
    /// [`InjectState`]: crate::ScenarioEvent::InjectState
    type State: Clone;

    /// Number of nodes (fixed for the lifetime of the run; crashes mask
    /// nodes rather than removing them).
    fn node_count(&self) -> usize;

    /// Completed rounds.
    fn round(&self) -> u64;

    /// Advances one synchronous round.
    fn step(&mut self);

    /// Replaces the communication graph.
    fn set_graph(&mut self, graph: Graph);

    /// Crashes a node (idempotent).
    fn crash(&mut self, u: NodeId);

    /// Recovers a crashed node into a fresh protocol-initial state
    /// (no-op on alive nodes).
    fn recover(&mut self, u: NodeId);

    /// Returns `true` if `u` is crashed.
    fn is_crashed(&self, u: NodeId) -> bool;

    /// Sets perception noise (false-negative, false-positive). Returns
    /// `false` if this runtime has no noise model (the event is then
    /// recorded as skipped).
    fn set_perception_noise(&mut self, false_negative: f64, false_positive: f64) -> bool;

    /// Replaces the whole configuration.
    fn set_states(&mut self, states: Vec<Self::State>);

    /// Identifiers of all alive leaders.
    fn leaders(&self) -> Vec<NodeId>;
}

impl<P: LeaderElection> DynamicHost for Network<P> {
    type State = P::State;

    fn node_count(&self) -> usize {
        Network::node_count(self)
    }

    fn round(&self) -> u64 {
        Network::round(self)
    }

    fn step(&mut self) {
        Network::step(self);
    }

    fn set_graph(&mut self, graph: Graph) {
        Network::set_topology(self, Topology::Graph(graph));
    }

    fn crash(&mut self, u: NodeId) {
        Network::crash_node(self, u);
    }

    fn recover(&mut self, u: NodeId) {
        Network::recover_node(self, u);
    }

    fn is_crashed(&self, u: NodeId) -> bool {
        Network::is_crashed(self, u)
    }

    fn set_perception_noise(&mut self, false_negative: f64, false_positive: f64) -> bool {
        Network::set_noise(self, false_negative, false_positive);
        true
    }

    fn set_states(&mut self, states: Vec<P::State>) {
        Network::set_states(self, states);
    }

    fn leaders(&self) -> Vec<NodeId> {
        Network::leaders(self)
    }
}

impl<P: StoneAgeLeaderElection> DynamicHost for StoneAgeNetwork<P> {
    type State = P::State;

    fn node_count(&self) -> usize {
        StoneAgeNetwork::node_count(self)
    }

    fn round(&self) -> u64 {
        StoneAgeNetwork::round(self)
    }

    fn step(&mut self) {
        StoneAgeNetwork::step(self);
    }

    fn set_graph(&mut self, graph: Graph) {
        StoneAgeNetwork::set_topology(self, Topology::Graph(graph));
    }

    fn crash(&mut self, u: NodeId) {
        StoneAgeNetwork::crash_node(self, u);
    }

    fn recover(&mut self, u: NodeId) {
        StoneAgeNetwork::recover_node(self, u);
    }

    fn is_crashed(&self, u: NodeId) -> bool {
        StoneAgeNetwork::is_crashed(self, u)
    }

    fn set_perception_noise(&mut self, _false_negative: f64, _false_positive: f64) -> bool {
        // Beep-perception noise is specific to the beeping model; the
        // stone-age observation model has no analogous single knob.
        false
    }

    fn set_states(&mut self, states: Vec<P::State>) {
        StoneAgeNetwork::set_states(self, states);
    }

    fn leaders(&self) -> Vec<NodeId> {
        StoneAgeNetwork::leaders(self)
    }
}
