//! The runtime abstraction the engine drives.
//!
//! [`DynamicHost`] is the seam between the scenario engine and the
//! simulators in `bfw-sim`: anything that can step rounds, apply
//! topology deltas, mask nodes and report leaders can be perturbed by a
//! [`Timeline`](crate::Timeline). Since the beeping [`Network`] and the
//! [`StoneAgeNetwork`] are both model adapters over the shared
//! [`TickEngine`], a **single blanket impl** covers every runtime: one
//! scenario drives all models, and every fault hook — crashes,
//! topology deltas, perception noise — behaves identically across
//! them by construction.
//!
//! [`Network`]: bfw_sim::Network
//! [`StoneAgeNetwork`]: bfw_sim::stone_age::StoneAgeNetwork
//! [`TickEngine`]: bfw_sim::TickEngine

use bfw_graph::{Graph, NodeId, TopologyDelta};
use bfw_sim::{
    ActivationEngine, ActivationLeaderModel, BitEngine, BitModel, ComplexityLedger, FlightRecorder,
    LeaderModel, TickEngine,
};

/// A runtime the scenario engine can perturb mid-run.
///
/// "Round" is the host's own notion of time: synchronous hosts step
/// whole rounds, the asynchronous [`ActivationEngine`] steps single
/// activations — so a timeline driving an asynchronous host has its
/// positions interpreted **in activations**.
pub trait DynamicHost {
    /// Per-node protocol state (for [`InjectState`] events).
    ///
    /// [`InjectState`]: crate::ScenarioEvent::InjectState
    type State: Clone;

    /// Number of nodes (fixed for the lifetime of the run; crashes mask
    /// nodes rather than removing them).
    fn node_count(&self) -> usize;

    /// Completed rounds.
    fn round(&self) -> u64;

    /// Advances one synchronous round.
    fn step(&mut self);

    /// Applies a batch of edge mutations to the communication graph in
    /// `O(deg)` per edge (the delta must be valid against the host's
    /// current edge set).
    fn apply_delta(&mut self, delta: &TopologyDelta);

    /// Crashes a node (idempotent).
    fn crash(&mut self, u: NodeId);

    /// Recovers a crashed node into a fresh protocol-initial state
    /// (no-op on alive nodes).
    fn recover(&mut self, u: NodeId);

    /// Returns `true` if `u` is crashed.
    fn is_crashed(&self, u: NodeId) -> bool;

    /// Sets perception noise (false-negative, false-positive). Returns
    /// `false` if this runtime has no noise model (the event is then
    /// recorded as skipped).
    fn set_perception_noise(&mut self, false_negative: f64, false_positive: f64) -> bool;

    /// Replaces the whole configuration.
    fn set_states(&mut self, states: Vec<Self::State>);

    /// Identifiers of all alive leaders.
    fn leaders(&self) -> Vec<NodeId>;

    /// Materializes the host's **current** communication graph, if the
    /// runtime can expose it (`None` otherwise). The engine uses this
    /// in debug builds to assert, after every topology event, that its
    /// own [`DynamicGraph`](bfw_graph::DynamicGraph) mirror and the
    /// host's edge set have not diverged — the two track the same edges
    /// independently, and a silent divergence would invalidate every
    /// event validated against the mirror from that point on.
    fn topology_snapshot(&self) -> Option<Graph> {
        None
    }

    /// Returns `true` when the host's complexity instrumentation is on
    /// (see [`bfw_sim::instrument`]). The engine uses this to skip all
    /// trace bookkeeping — leader-set diffing, ledger snapshots — on
    /// untraced runs. Hosts without an instrumentation seam report
    /// `false`.
    fn instrumentation_enabled(&self) -> bool {
        false
    }

    /// Returns the host's accumulated complexity counters, if
    /// instrumentation is on (`None` for uninstrumented hosts).
    fn complexity_ledger(&self) -> Option<&ComplexityLedger> {
        None
    }

    /// Returns the host's flight recorder, if one is attached.
    fn flight_recorder(&self) -> Option<&FlightRecorder> {
        None
    }

    /// Records an event into the host's flight recorder, stamped with
    /// the host's own notion of time (rounds or activations). A no-op
    /// on hosts without a recorder — the engine calls this
    /// unconditionally for every applied scenario event.
    fn record_trace_event(&mut self, _kind: &str, _detail: String) {}
}

impl<M: LeaderModel> DynamicHost for TickEngine<M> {
    type State = M::State;

    fn node_count(&self) -> usize {
        TickEngine::node_count(self)
    }

    fn round(&self) -> u64 {
        TickEngine::round(self)
    }

    fn step(&mut self) {
        TickEngine::step(self);
    }

    fn apply_delta(&mut self, delta: &TopologyDelta) {
        TickEngine::apply_topology_delta(self, delta);
    }

    fn crash(&mut self, u: NodeId) {
        TickEngine::crash_node(self, u);
    }

    fn recover(&mut self, u: NodeId) {
        TickEngine::recover_node(self, u);
    }

    fn is_crashed(&self, u: NodeId) -> bool {
        TickEngine::is_crashed(self, u)
    }

    fn set_perception_noise(&mut self, false_negative: f64, false_positive: f64) -> bool {
        // The noise model lives in the engine's shared fault layer, so
        // every TickEngine runtime supports it.
        TickEngine::set_noise(self, false_negative, false_positive);
        true
    }

    fn set_states(&mut self, states: Vec<M::State>) {
        TickEngine::set_states(self, states);
    }

    fn leaders(&self) -> Vec<NodeId> {
        TickEngine::leaders(self)
    }

    fn topology_snapshot(&self) -> Option<Graph> {
        Some(self.topology().to_graph())
    }

    fn instrumentation_enabled(&self) -> bool {
        TickEngine::instrumentation_enabled(self)
    }

    fn complexity_ledger(&self) -> Option<&ComplexityLedger> {
        TickEngine::complexity_ledger(self)
    }

    fn flight_recorder(&self) -> Option<&FlightRecorder> {
        TickEngine::flight_recorder(self)
    }

    fn record_trace_event(&mut self, kind: &str, detail: String) {
        TickEngine::record_trace_event(self, kind, detail);
    }
}

impl<M: BitModel> DynamicHost for BitEngine<M> {
    type State = M::State;

    fn node_count(&self) -> usize {
        BitEngine::node_count(self)
    }

    fn round(&self) -> u64 {
        BitEngine::round(self)
    }

    fn step(&mut self) {
        BitEngine::step(self);
    }

    fn apply_delta(&mut self, delta: &TopologyDelta) {
        BitEngine::apply_topology_delta(self, delta);
    }

    fn crash(&mut self, u: NodeId) {
        BitEngine::crash_node(self, u);
    }

    fn recover(&mut self, u: NodeId) {
        BitEngine::recover_node(self, u);
    }

    fn is_crashed(&self, u: NodeId) -> bool {
        BitEngine::is_crashed(self, u)
    }

    fn set_perception_noise(&mut self, false_negative: f64, false_positive: f64) -> bool {
        // Same shared fault layer as the generic engines: always
        // supported, and drawn from the same per-node streams.
        BitEngine::set_noise(self, false_negative, false_positive);
        true
    }

    fn set_states(&mut self, states: Vec<M::State>) {
        BitEngine::set_states(self, states);
    }

    fn leaders(&self) -> Vec<NodeId> {
        BitEngine::leaders(self)
    }

    fn topology_snapshot(&self) -> Option<Graph> {
        Some(self.topology().to_graph())
    }

    fn instrumentation_enabled(&self) -> bool {
        BitEngine::instrumentation_enabled(self)
    }

    fn complexity_ledger(&self) -> Option<&ComplexityLedger> {
        BitEngine::complexity_ledger(self)
    }

    fn flight_recorder(&self) -> Option<&FlightRecorder> {
        BitEngine::flight_recorder(self)
    }

    fn record_trace_event(&mut self, kind: &str, detail: String) {
        BitEngine::record_trace_event(self, kind, detail);
    }
}

impl<M: ActivationLeaderModel> DynamicHost for ActivationEngine<M> {
    type State = M::State;

    fn node_count(&self) -> usize {
        ActivationEngine::node_count(self)
    }

    /// Completed **activations** — the asynchronous runtime's unit of
    /// time. Timelines driving this host fire at activation positions.
    fn round(&self) -> u64 {
        self.activations()
    }

    /// One scheduler-chosen activation (a no-op only when every node is
    /// crashed).
    fn step(&mut self) {
        self.activate_next();
    }

    fn apply_delta(&mut self, delta: &TopologyDelta) {
        ActivationEngine::apply_topology_delta(self, delta);
    }

    fn crash(&mut self, u: NodeId) {
        ActivationEngine::crash_node(self, u);
    }

    fn recover(&mut self, u: NodeId) {
        ActivationEngine::recover_node(self, u);
    }

    fn is_crashed(&self, u: NodeId) -> bool {
        ActivationEngine::is_crashed(self, u)
    }

    fn set_perception_noise(&mut self, false_negative: f64, false_positive: f64) -> bool {
        // Same shared fault layer as the synchronous engine, so the
        // asynchronous runtime supports the noise events too.
        ActivationEngine::set_noise(self, false_negative, false_positive);
        true
    }

    fn set_states(&mut self, states: Vec<M::State>) {
        ActivationEngine::set_states(self, states);
    }

    fn leaders(&self) -> Vec<NodeId> {
        ActivationEngine::leaders(self)
    }

    fn topology_snapshot(&self) -> Option<Graph> {
        Some(self.topology().to_graph())
    }

    fn instrumentation_enabled(&self) -> bool {
        ActivationEngine::instrumentation_enabled(self)
    }

    fn complexity_ledger(&self) -> Option<&ComplexityLedger> {
        ActivationEngine::complexity_ledger(self)
    }

    fn flight_recorder(&self) -> Option<&FlightRecorder> {
        ActivationEngine::flight_recorder(self)
    }

    fn record_trace_event(&mut self, kind: &str, detail: String) {
        ActivationEngine::record_trace_event(self, kind, detail);
    }
}
