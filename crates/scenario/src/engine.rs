//! The scenario engine: applies a compiled timeline to a running host.

use crate::{
    DynamicHost, ElectionMonitor, InjectKind, MonitorState, Recovery, ScenarioEvent, ScenarioTrace,
    ScheduledEvent, Timeline,
};
use bfw_graph::{DynamicGraph, Graph, NodeId, TopologyDelta};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;

/// Resolves an [`InjectKind`] into a concrete configuration for the
/// host's protocol (`None` = unsupported, the event is skipped).
pub type Injector<S> = Box<dyn Fn(&InjectKind, usize) -> Option<Vec<S>>>;

/// Drives a [`DynamicHost`] through a perturbed execution.
///
/// The engine owns a [`DynamicGraph`] mirror of the host's topology
/// (used to *validate* edge events and enumerate partition cuts in
/// `O(log deg)`), the compiled timeline, a dedicated ChaCha stream for
/// the randomized event targets (`CrashRandom`, `RecoverRandom`), and
/// the [`ElectionMonitor`] measuring re-election latency and leader
/// flaps. Validated edge events are forwarded to the host as
/// [`TopologyDelta`] batches, applied in `O(deg)` per edge — the CSR
/// is never rebuilt per event, so per-round churn stays cheap even on
/// graphs with tens of thousands of nodes (see the `churn-scale`
/// experiment). Everything is a pure function of the initial graph,
/// the timeline, and the two seeds (host seed, scenario seed) —
/// running the same scenario twice produces bit-identical event logs
/// and outcomes.
pub struct Engine<H: DynamicHost> {
    host: H,
    graph: DynamicGraph,
    events: Vec<ScheduledEvent>,
    next_event: usize,
    horizon: u64,
    rng: ChaCha8Rng,
    monitor: ElectionMonitor,
    injector: Option<Injector<H::State>>,
    partition_backlog: Vec<(NodeId, NodeId)>,
    noise_off_at: Option<u64>,
    log: Vec<String>,
    /// Highest round whose due events have been applied and whose
    /// leader set has been observed (`None` = no round processed yet).
    /// [`run_until`](Self::run_until) consults it so a resumed engine
    /// never re-applies the snapshot round's events or double-feeds its
    /// leader set to the monitor (which would corrupt the stability
    /// streak).
    observed_through: Option<u64>,
}

/// The engine's own resumable state, beyond what the host carries: the
/// timeline cursor, the partition backlog, the pending noise-burst
/// expiry, the scenario RNG stream position, the event log so far, and
/// the [`MonitorState`]. Captured by [`Engine::cursor`] after a
/// [`Engine::run_until`], restored by [`Engine::resume`]; together with
/// a host checkpoint (see `bfw_sim::EngineCheckpoint`) it makes a
/// mid-run scenario byte-identically resumable.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineCursor {
    /// Index of the next compiled timeline event to fire.
    pub next_event: usize,
    /// Edges removed by partitions and not yet healed.
    pub partition_backlog: Vec<(NodeId, NodeId)>,
    /// Round at which the active noise burst switches off, if any.
    pub noise_off_at: Option<u64>,
    /// `(counter, cursor)` position of the scenario ChaCha8 stream.
    pub rng_position: (u64, usize),
    /// Event-log lines emitted so far (a resumed run's outcome must
    /// list the pre-snapshot events too).
    pub log: Vec<String>,
    /// The election monitor's full state.
    pub monitor: MonitorState,
    /// Highest round already applied and observed (the snapshot round).
    pub observed_through: Option<u64>,
}

/// Result of a completed scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Rounds executed.
    pub rounds_run: u64,
    /// One line per applied (or skipped) event, in firing order.
    pub event_log: Vec<String>,
    /// Completed disruption → stable-leader recoveries.
    pub recoveries: Vec<Recovery>,
    /// Round of the earliest disruption still unanswered when the run
    /// ended.
    pub pending_disruption: Option<u64>,
    /// Unique-leader identity changes across the run.
    pub leader_flaps: u64,
    /// Alive leaders at the end of the run.
    pub final_leaders: Vec<NodeId>,
    /// Alive (non-crashed) nodes at the end of the run.
    pub final_alive: usize,
    /// Edges in the final topology.
    pub final_edges: usize,
}

impl ScenarioOutcome {
    /// Renders the outcome as a deterministic plain-text report (the
    /// CLI's output; byte-identical across runs with the same inputs).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "rounds run:        {}", self.rounds_run);
        let _ = writeln!(out, "events applied:    {}", self.event_log.len());
        for line in &self.event_log {
            let _ = writeln!(out, "  {line}");
        }
        let _ = writeln!(out, "leader flaps:      {}", self.leader_flaps);
        let _ = writeln!(out, "recoveries:        {}", self.recoveries.len());
        for r in &self.recoveries {
            let _ = writeln!(
                out,
                "  disrupted @{} -> leader {} stable from @{} (latency {})",
                r.disrupted_at,
                r.leader,
                r.recovered_at,
                r.latency()
            );
        }
        match self.pending_disruption {
            Some(round) => {
                let _ = writeln!(out, "pending disruption: @{round} (never re-stabilized)");
            }
            None => {
                let _ = writeln!(out, "pending disruption: none");
            }
        }
        let leaders: Vec<String> = self.final_leaders.iter().map(|u| u.to_string()).collect();
        let _ = writeln!(
            out,
            "final leaders:     [{}] ({} alive, {} edges)",
            leaders.join(", "),
            self.final_alive,
            self.final_edges
        );
        out
    }

    /// Mean re-election latency over completed recoveries, if any.
    pub fn mean_latency(&self) -> Option<f64> {
        if self.recoveries.is_empty() {
            return None;
        }
        let total: u64 = self.recoveries.iter().map(Recovery::latency).sum();
        Some(total as f64 / self.recoveries.len() as f64)
    }
}

impl<H: DynamicHost> Engine<H> {
    /// Creates an engine around `host`, whose current topology must be
    /// `graph`.
    ///
    /// `timeline` is compiled against `horizon` (events past it never
    /// fire); `scenario_seed` drives random event targets and arrival
    /// processes; `stability_window` configures the re-election metric
    /// (see [`ElectionMonitor`]).
    ///
    /// # Panics
    ///
    /// Panics if `graph` and `host` disagree on the node count.
    pub fn new(
        host: H,
        graph: &Graph,
        timeline: &Timeline,
        horizon: u64,
        scenario_seed: u64,
        stability_window: u64,
    ) -> Self {
        assert_eq!(
            graph.node_count(),
            host.node_count(),
            "engine graph must match the host topology"
        );
        Engine {
            host,
            graph: DynamicGraph::from_graph(graph),
            events: timeline.compile(horizon, scenario_seed),
            next_event: 0,
            horizon,
            rng: ChaCha8Rng::seed_from_u64(scenario_seed ^ 0x5CE9_A210),
            monitor: ElectionMonitor::new(stability_window),
            injector: None,
            partition_backlog: Vec::new(),
            noise_off_at: None,
            log: Vec::new(),
            observed_through: None,
        }
    }

    /// Rebuilds an engine mid-run from a snapshot: `host` must already
    /// be restored to the snapshot's states and fault checkpoint, and
    /// `graph` must be its **current** topology at the snapshot round
    /// (not the initial one — topology events may have fired already).
    /// `timeline`, `horizon` and `scenario_seed` must be the original
    /// run's; the scenario RNG is re-seeded and fast-forwarded to the
    /// cursor's stream position.
    ///
    /// # Panics
    ///
    /// Panics if `graph` and `host` disagree on the node count.
    pub fn resume(
        host: H,
        graph: &Graph,
        timeline: &Timeline,
        horizon: u64,
        scenario_seed: u64,
        cursor: EngineCursor,
    ) -> Self {
        assert_eq!(
            graph.node_count(),
            host.node_count(),
            "engine graph must match the host topology"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(scenario_seed ^ 0x5CE9_A210);
        rng.set_position(cursor.rng_position.0, cursor.rng_position.1);
        Engine {
            host,
            graph: DynamicGraph::from_graph(graph),
            events: timeline.compile(horizon, scenario_seed),
            next_event: cursor.next_event,
            horizon,
            rng,
            monitor: ElectionMonitor::from_state(cursor.monitor),
            injector: None,
            partition_backlog: cursor.partition_backlog,
            noise_off_at: cursor.noise_off_at,
            log: cursor.log,
            observed_through: cursor.observed_through,
        }
    }

    /// Captures the engine's resumable state (see [`EngineCursor`]).
    /// Meaningful after [`run_until`](Self::run_until); pair it with
    /// the host's own checkpoint to snapshot a run.
    pub fn cursor(&self) -> EngineCursor {
        EngineCursor {
            next_event: self.next_event,
            partition_backlog: self.partition_backlog.clone(),
            noise_off_at: self.noise_off_at,
            rng_position: self.rng.position(),
            log: self.log.clone(),
            monitor: self.monitor.snapshot(),
            observed_through: self.observed_through,
        }
    }

    /// Installs the protocol-specific resolver for
    /// [`ScenarioEvent::InjectState`] events (see
    /// [`crate::bfw_injector`] for the BFW one).
    pub fn with_injector(mut self, injector: Injector<H::State>) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Returns the host (e.g. to inspect states after a run).
    pub fn host(&self) -> &H {
        &self.host
    }

    /// Runs the scenario to the horizon given at construction and
    /// reports the outcome.
    ///
    /// Events scheduled for round `t` apply after the host has completed
    /// `t` rounds; the monitor then observes the post-event leader set
    /// of that round.
    pub fn run(self) -> ScenarioOutcome {
        self.run_with_host().0
    }

    /// Like [`run`](Self::run), but also hands back the host so callers
    /// can inspect its final configuration (e.g. the recovery layer's
    /// per-node epoch counters).
    pub fn run_with_host(self) -> (ScenarioOutcome, H) {
        let (outcome, host, _) = self.run_all();
        (outcome, host)
    }

    /// Like [`run`](Self::run), but also returns the
    /// [`ScenarioTrace`] — complexity ledger, flight-recorder dump and
    /// per-recovery channel costs — when the host's instrumentation is
    /// on (`None` on uninstrumented hosts; enable it on the concrete
    /// engine before constructing the `Engine`).
    ///
    /// Tracing is purely passive: the outcome of a traced run is
    /// byte-identical to the untraced run at the same seed.
    pub fn run_traced(self) -> (ScenarioOutcome, Option<ScenarioTrace>) {
        let (outcome, host, recovery_costs) = self.run_all();
        let trace = host.complexity_ledger().map(|ledger| ScenarioTrace {
            ledger: ledger.clone(),
            recorder: host.flight_recorder().cloned(),
            recovery_costs,
        });
        (outcome, trace)
    }

    /// Advances the run until the host has completed `target` rounds,
    /// with `target`'s due events applied and its leader set observed
    /// (so a snapshot taken here resumes cleanly). On a fresh engine
    /// this processes rounds `0..=target`; on a resumed engine it picks
    /// up right after the snapshot round without re-applying it.
    /// Untraced (lifecycle verbs never instrument); byte-equivalent to
    /// the [`run`](Self::run) loop over the same rounds.
    pub fn run_until(&mut self, target: u64) {
        loop {
            let round = self.host.round();
            if self.observed_through != Some(round) {
                self.apply_due_events(round);
                let leaders = self.host.leaders();
                self.monitor.observe(round, &leaders);
                self.observed_through = Some(round);
            }
            if round >= target {
                break;
            }
            self.host.step();
        }
    }

    /// Consumes the engine and assembles the outcome of the rounds run
    /// so far (the tail of every runner). After a
    /// [`run_until`](Self::run_until) to the horizon, this equals what
    /// [`run_with_host`](Self::run_with_host) would have produced.
    pub fn into_outcome(self) -> (ScenarioOutcome, H) {
        let final_leaders = self.host.leaders();
        let final_alive = (0..self.host.node_count())
            .filter(|&i| !self.host.is_crashed(NodeId::new(i)))
            .count();
        let outcome = ScenarioOutcome {
            rounds_run: self.host.round(),
            event_log: self.log,
            recoveries: self.monitor.recoveries().to_vec(),
            pending_disruption: self.monitor.pending_disruption(),
            leader_flaps: self.monitor.flaps(),
            final_leaders,
            final_alive,
            final_edges: self.graph.edge_count(),
        };
        (outcome, self.host)
    }

    /// The run loop shared by every public runner. The third component
    /// is the per-recovery `(bits, messages)` cost vector, aligned with
    /// the outcome's recoveries (empty on untraced runs).
    fn run_all(mut self) -> (ScenarioOutcome, H, Vec<(u64, u64)>) {
        let tracing = self.host.instrumentation_enabled();
        let mut prev_leaders: Option<Vec<NodeId>> = None;
        // (disruption round, bits so far, messages so far): ledger
        // snapshots taken when each disruption opens, so the channel
        // cost of the recovery answering it is a subtraction.
        let mut disruption_marks: Vec<(u64, u64, u64)> = Vec::new();
        let mut recovery_costs: Vec<(u64, u64)> = Vec::new();
        loop {
            let round = self.host.round();
            self.apply_due_events(round);
            if tracing {
                // Snapshot before observe(): a zero stability window
                // can answer a disruption in its own round.
                let (bits, messages) = self.ledger_totals();
                for i in 0..self.monitor.pending_disruptions().len() {
                    let d = self.monitor.pending_disruptions()[i];
                    if !disruption_marks.iter().any(|&(r, _, _)| r == d) {
                        disruption_marks.push((d, bits, messages));
                    }
                }
            }
            let leaders = self.host.leaders();
            if tracing && prev_leaders.as_deref() != Some(&leaders) {
                let ids: Vec<String> = leaders.iter().map(NodeId::to_string).collect();
                self.host
                    .record_trace_event("leader-set", format!("[{}]", ids.join(", ")));
                prev_leaders = Some(leaders.clone());
            }
            self.monitor.observe(round, &leaders);
            if tracing {
                while recovery_costs.len() < self.monitor.recoveries().len() {
                    let r = self.monitor.recoveries()[recovery_costs.len()];
                    let (bits, messages) = self.ledger_totals();
                    let (b0, m0) = disruption_marks
                        .iter()
                        .find(|&&(d, _, _)| d == r.disrupted_at)
                        .map_or((0, 0), |&(_, b, m)| (b, m));
                    recovery_costs.push((bits - b0, messages - m0));
                }
            }
            if round >= self.horizon {
                break;
            }
            self.host.step();
        }
        let final_leaders = self.host.leaders();
        let final_alive = (0..self.host.node_count())
            .filter(|&i| !self.host.is_crashed(NodeId::new(i)))
            .count();
        let outcome = ScenarioOutcome {
            rounds_run: self.host.round(),
            event_log: self.log,
            recoveries: self.monitor.recoveries().to_vec(),
            pending_disruption: self.monitor.pending_disruption(),
            leader_flaps: self.monitor.flaps(),
            final_leaders,
            final_alive,
            final_edges: self.graph.edge_count(),
        };
        (outcome, self.host, recovery_costs)
    }

    /// Current `(bits, messages)` totals of the host ledger (zeros when
    /// instrumentation is off).
    fn ledger_totals(&self) -> (u64, u64) {
        self.host
            .complexity_ledger()
            .map_or((0, 0), |l| (l.bits(), l.messages()))
    }

    fn apply_due_events(&mut self, round: u64) {
        if let Some(off_at) = self.noise_off_at {
            if round >= off_at {
                self.host.set_perception_noise(0.0, 0.0);
                self.noise_off_at = None;
                let line = format!("@{round} noise-burst ends");
                if self.host.instrumentation_enabled() {
                    self.host.record_trace_event("scenario-event", line.clone());
                }
                self.log.push(line);
                self.monitor.mark_disruption(round);
            }
        }
        while self.next_event < self.events.len() && self.events[self.next_event].round <= round {
            let event = self.events[self.next_event].event.clone();
            self.next_event += 1;
            let (note, applied) = self.apply(round, &event);
            let line = format!("@{round} {event} -> {note}");
            if self.host.instrumentation_enabled() {
                self.host.record_trace_event("scenario-event", line.clone());
            }
            self.log.push(line);
            // Only events that changed something count as disruptions;
            // a skipped no-op must not reset the stability streak or
            // arm the re-election metric.
            if applied {
                self.monitor.mark_disruption(round);
            }
            #[cfg(debug_assertions)]
            if applied && touches_topology(&event) {
                self.assert_mirror_matches_host(round, &event);
            }
        }
    }

    /// Debug-build divergence guard: the engine's [`DynamicGraph`]
    /// mirror and the host's actual topology track the same edge set
    /// through independent code paths (mirror mutation vs. forwarded
    /// [`TopologyDelta`]s); a bug in either — or a future event type
    /// forwarding something the mirror does not — would silently
    /// invalidate every subsequently validated event. Checked after
    /// every applied topology event, in debug builds only (the
    /// materialization is `O(n + m)`).
    #[cfg(debug_assertions)]
    fn assert_mirror_matches_host(&self, round: u64, event: &ScenarioEvent) {
        let Some(host_graph) = self.host.topology_snapshot() else {
            return;
        };
        assert_eq!(
            host_graph.node_count(),
            self.graph.node_count(),
            "@{round} after {event}: node counts diverged"
        );
        assert_eq!(
            host_graph.edge_count(),
            self.graph.edge_count(),
            "@{round} after {event}: edge counts diverged (mirror {}, host {})",
            self.graph.edge_count(),
            host_graph.edge_count()
        );
        for (u, v) in self.graph.edges() {
            assert!(
                host_graph.has_edge(u, v),
                "@{round} after {event}: mirror edge ({u}, {v}) is absent from the host topology"
            );
        }
    }

    /// Forwards one validated edge mutation to the host as a
    /// single-edge delta.
    fn push_edge(&mut self, u: NodeId, v: NodeId, add: bool) {
        let mut delta = TopologyDelta::new();
        if add {
            delta.add_edge(u, v);
        } else {
            delta.remove_edge(u, v);
        }
        self.host.apply_delta(&delta);
    }

    /// Applies one event, returning the log note and whether the event
    /// actually changed the system (skipped no-ops return `false`).
    fn apply(&mut self, round: u64, event: &ScenarioEvent) -> (String, bool) {
        let n = self.host.node_count();
        match event {
            ScenarioEvent::CrashNode(u) => {
                if u.index() >= n {
                    return (format!("skipped (node {u} out of range, {n} nodes)"), false);
                }
                if self.host.is_crashed(*u) {
                    return (format!("skipped (node {u} already crashed)"), false);
                }
                self.host.crash(*u);
                (format!("crashed node {u}"), true)
            }
            ScenarioEvent::CrashRandom => {
                let alive: Vec<NodeId> = (0..self.host.node_count())
                    .map(NodeId::new)
                    .filter(|&u| !self.host.is_crashed(u))
                    .collect();
                if alive.is_empty() {
                    return ("skipped (no alive node)".to_owned(), false);
                }
                let u = alive[self.rng.random_range(0..alive.len())];
                self.host.crash(u);
                (format!("crashed node {u}"), true)
            }
            ScenarioEvent::CrashLeader => match self.host.leaders().first() {
                Some(&u) => {
                    self.host.crash(u);
                    (format!("crashed leader {u}"), true)
                }
                None => ("skipped (no leader alive)".to_owned(), false),
            },
            ScenarioEvent::RecoverNode(u) => {
                if u.index() >= n {
                    (format!("skipped (node {u} out of range, {n} nodes)"), false)
                } else if self.host.is_crashed(*u) {
                    self.host.recover(*u);
                    (format!("recovered node {u}"), true)
                } else {
                    (format!("skipped (node {u} alive)"), false)
                }
            }
            ScenarioEvent::RecoverRandom => {
                let crashed: Vec<NodeId> = (0..self.host.node_count())
                    .map(NodeId::new)
                    .filter(|&u| self.host.is_crashed(u))
                    .collect();
                if crashed.is_empty() {
                    return ("skipped (no crashed node)".to_owned(), false);
                }
                let u = crashed[self.rng.random_range(0..crashed.len())];
                self.host.recover(u);
                (format!("recovered node {u}"), true)
            }
            ScenarioEvent::RecoverAll => {
                let crashed: Vec<NodeId> = (0..self.host.node_count())
                    .map(NodeId::new)
                    .filter(|&u| self.host.is_crashed(u))
                    .collect();
                for &u in &crashed {
                    self.host.recover(u);
                }
                (
                    format!("recovered {} node(s)", crashed.len()),
                    !crashed.is_empty(),
                )
            }
            ScenarioEvent::AddEdge(u, v) => match self.graph.add_edge(*u, *v) {
                Ok(()) => {
                    self.push_edge(*u, *v, true);
                    (format!("added edge ({u}, {v})"), true)
                }
                Err(e) => (format!("skipped ({e})"), false),
            },
            ScenarioEvent::RemoveEdge(u, v) => match self.graph.remove_edge(*u, *v) {
                Ok(()) => {
                    self.push_edge(*u, *v, false);
                    (format!("removed edge ({u}, {v})"), true)
                }
                Err(e) => (format!("skipped ({e})"), false),
            },
            ScenarioEvent::Partition { side } => {
                let mut flags = vec![false; self.graph.node_count()];
                let mut ignored = 0usize;
                for u in side {
                    if u.index() < flags.len() {
                        flags[u.index()] = true;
                    } else {
                        ignored += 1;
                    }
                }
                let removed = self.graph.remove_cut(&flags);
                let count = removed.len();
                if count > 0 {
                    let mut delta = TopologyDelta::new();
                    for &(u, v) in &removed {
                        delta.remove_edge(u, v);
                    }
                    self.host.apply_delta(&delta);
                }
                self.partition_backlog.extend(removed);
                let note = if ignored > 0 {
                    format!("cut {count} edge(s), ignored {ignored} out-of-range node id(s)")
                } else {
                    format!("cut {count} edge(s)")
                };
                (note, count > 0)
            }
            ScenarioEvent::Heal => {
                let backlog = std::mem::take(&mut self.partition_backlog);
                let mut delta = TopologyDelta::new();
                for (u, v) in backlog {
                    // A backlog edge can have reappeared through an
                    // AddEdge event in the meantime; restore only what
                    // is still missing.
                    if self.graph.add_edge(u, v).is_ok() {
                        delta.add_edge(u, v);
                    }
                }
                let restored = delta.len();
                if restored > 0 {
                    self.host.apply_delta(&delta);
                }
                (format!("restored {restored} edge(s)"), restored > 0)
            }
            ScenarioEvent::NoiseBurst {
                fn_rate,
                fp_rate,
                rounds,
            } => {
                if self.host.set_perception_noise(*fn_rate, *fp_rate) {
                    self.noise_off_at = Some(round + rounds);
                    (format!("noise on for {rounds} round(s)"), true)
                } else {
                    ("skipped (runtime has no noise model)".to_owned(), false)
                }
            }
            ScenarioEvent::InjectState(kind) => {
                let n = self.host.node_count();
                match self.injector.as_ref().and_then(|inj| inj(kind, n)) {
                    Some(states) => {
                        self.host.set_states(states);
                        (format!("injected {kind}"), true)
                    }
                    None => (format!("skipped (no injector for {kind})"), false),
                }
            }
        }
    }
}

/// `true` for events that mutate the communication graph (the ones the
/// mirror-consistency guard must run after).
#[cfg(debug_assertions)]
fn touches_topology(event: &ScenarioEvent) -> bool {
    matches!(
        event,
        ScenarioEvent::AddEdge(..)
            | ScenarioEvent::RemoveEdge(..)
            | ScenarioEvent::Partition { .. }
            | ScenarioEvent::Heal
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfw_core::Bfw;
    use bfw_graph::generators;
    use bfw_sim::Network;

    fn engine_on_cycle(
        n: usize,
        timeline: Timeline,
        horizon: u64,
        seed: u64,
    ) -> Engine<Network<Bfw>> {
        let graph = generators::cycle(n);
        let net = Network::new(Bfw::new(0.5), graph.clone().into(), seed);
        Engine::new(net, &graph, &timeline, horizon, seed, 10)
    }

    #[test]
    fn unperturbed_run_elects_and_records_nothing() {
        let outcome = engine_on_cycle(8, Timeline::new(), 5_000, 1).run();
        assert_eq!(outcome.rounds_run, 5_000);
        assert!(outcome.event_log.is_empty());
        assert!(outcome.recoveries.is_empty());
        assert_eq!(outcome.final_leaders.len(), 1);
        assert_eq!(outcome.final_alive, 8);
    }

    #[test]
    fn crash_leader_then_recover_measures_re_election() {
        // Crash the leader once elected, then recover the node later:
        // the recovered node rejoins in W• and must win again. The
        // crash and the rejoin are *separate* disruptions, each with
        // its own recovery window answered by the same stable leader.
        let timeline = Timeline::new()
            .at(3_000, ScenarioEvent::CrashLeader)
            .at(3_100, ScenarioEvent::RecoverAll);
        let outcome = engine_on_cycle(8, timeline, 20_000, 7).run();
        assert_eq!(outcome.event_log.len(), 2);
        assert!(
            outcome.event_log[0].contains("crashed leader"),
            "{:?}",
            outcome.event_log
        );
        assert_eq!(outcome.recoveries.len(), 2, "{outcome:?}");
        let (crash, rejoin) = (outcome.recoveries[0], outcome.recoveries[1]);
        assert_eq!(crash.disrupted_at, 3_000);
        assert_eq!(rejoin.disrupted_at, 3_100);
        assert_eq!(crash.recovered_at, rejoin.recovered_at);
        assert!(crash.recovered_at >= 3_100, "{crash:?}");
        assert_eq!(crash.latency(), rejoin.latency() + 100);
        assert_eq!(outcome.pending_disruption, None);
        assert_eq!(outcome.final_leaders.len(), 1);
    }

    #[test]
    fn crashing_the_only_leader_without_recovery_never_stabilizes() {
        // BFW is not self-stabilizing: with the unique leader crashed
        // and nobody recovered, no new leader can appear (Section 5).
        let timeline = Timeline::new().at(5_000, ScenarioEvent::CrashLeader);
        let outcome = engine_on_cycle(6, timeline, 8_000, 3).run();
        assert_eq!(outcome.pending_disruption, Some(5_000));
        assert!(outcome.final_leaders.is_empty());
        assert_eq!(outcome.final_alive, 5);
    }

    #[test]
    fn partition_and_heal_round_trip_edges() {
        let timeline = Timeline::new()
            .at(
                10,
                ScenarioEvent::Partition {
                    side: vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)],
                },
            )
            .at(20, ScenarioEvent::Heal);
        let outcome = engine_on_cycle(8, timeline, 30, 5).run();
        assert!(outcome.event_log[0].contains("cut 2 edge(s)"));
        assert!(outcome.event_log[1].contains("restored 2 edge(s)"));
        assert_eq!(outcome.final_edges, 8);
    }

    #[test]
    fn inject_phantom_waves_goes_leaderless_forever() {
        let timeline = Timeline::new().at(
            100,
            ScenarioEvent::InjectState(InjectKind::PhantomWaves { waves: 1 }),
        );
        let graph = generators::cycle(9);
        let net = Network::new(Bfw::new(0.5), graph.clone().into(), 2);
        let engine =
            Engine::new(net, &graph, &timeline, 2_000, 2, 10).with_injector(crate::bfw_injector());
        let outcome = engine.run();
        assert!(outcome.event_log[0].contains("injected phantom-waves(1)"));
        assert!(outcome.final_leaders.is_empty());
        assert_eq!(outcome.pending_disruption, Some(100));
    }

    #[test]
    fn out_of_range_node_events_are_skipped_not_panics() {
        let timeline = Timeline::new()
            .at(10, ScenarioEvent::CrashNode(NodeId::new(99)))
            .at(20, ScenarioEvent::RecoverNode(NodeId::new(99)))
            .at(
                30,
                ScenarioEvent::Partition {
                    side: vec![NodeId::new(0), NodeId::new(50)],
                },
            )
            .at(40, ScenarioEvent::AddEdge(NodeId::new(0), NodeId::new(77)));
        let outcome = engine_on_cycle(8, timeline, 100, 1).run();
        assert!(
            outcome.event_log[0].contains("skipped (node 99 out of range, 8 nodes)"),
            "{:?}",
            outcome.event_log
        );
        assert!(
            outcome.event_log[1].contains("skipped (node 99 out of range"),
            "{:?}",
            outcome.event_log
        );
        assert!(
            outcome.event_log[2].contains("ignored 1 out-of-range node id(s)"),
            "{:?}",
            outcome.event_log
        );
        assert!(
            outcome.event_log[3].contains("skipped (node 77 out of range"),
            "{:?}",
            outcome.event_log
        );
    }

    #[test]
    fn skipped_no_op_events_do_not_arm_the_monitor() {
        // A recover of an alive node near the horizon changes nothing;
        // it must not leave a phantom "pending disruption" or suppress
        // the stability verdict.
        let timeline = Timeline::new().at(4_950, ScenarioEvent::RecoverNode(NodeId::new(0)));
        let outcome = engine_on_cycle(8, timeline, 5_000, 1).run();
        assert!(
            outcome.event_log[0].contains("skipped (node 0 alive)"),
            "{:?}",
            outcome.event_log
        );
        assert_eq!(outcome.pending_disruption, None, "{}", outcome.to_text());
        assert!(outcome.recoveries.is_empty());
    }

    #[test]
    fn injection_without_injector_is_skipped() {
        let timeline = Timeline::new().at(10, ScenarioEvent::InjectState(InjectKind::Dead));
        let outcome = engine_on_cycle(6, timeline, 5_000, 4).run();
        assert!(outcome.event_log[0].contains("skipped (no injector"));
        // The election itself is unaffected.
        assert_eq!(outcome.final_leaders.len(), 1);
    }

    #[test]
    fn noise_burst_switches_off_after_window() {
        let timeline = Timeline::new().at(
            50,
            ScenarioEvent::NoiseBurst {
                fn_rate: 0.2,
                fp_rate: 0.05,
                rounds: 100,
            },
        );
        let outcome = engine_on_cycle(8, timeline, 10_000, 6).run();
        assert!(outcome.event_log[0].contains("noise on for 100 round(s)"));
        assert!(outcome.event_log[1].contains("noise-burst ends"));
        // Noise can legitimately wipe out every leader (Section 3's
        // guarantees assume reliable hearing); what must hold is that
        // the count never exceeds one after the long quiet tail.
        assert!(outcome.final_leaders.len() <= 1);
    }

    #[test]
    fn run_is_bit_deterministic() {
        let mk = || {
            let timeline = Timeline::new()
                .every(500, 500, 6, ScenarioEvent::CrashRandom)
                .every(700, 500, 6, ScenarioEvent::RecoverRandom)
                .random(
                    0.001,
                    ScenarioEvent::RemoveEdge(NodeId::new(0), NodeId::new(1)),
                );
            engine_on_cycle(10, timeline, 8_000, 11).run().to_text()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn outcome_text_lists_everything() {
        let timeline = Timeline::new().at(1_000, ScenarioEvent::CrashLeader);
        let text = engine_on_cycle(8, timeline, 3_000, 1).run().to_text();
        assert!(text.contains("rounds run:        3000"), "{text}");
        assert!(text.contains("events applied:    1"), "{text}");
        assert!(text.contains("leader flaps:"), "{text}");
        assert!(text.contains("pending disruption:"), "{text}");
    }

    #[test]
    fn mean_latency_averages_recoveries() {
        let outcome = ScenarioOutcome {
            rounds_run: 0,
            event_log: vec![],
            recoveries: vec![
                Recovery {
                    disrupted_at: 0,
                    recovered_at: 10,
                    leader: NodeId::new(0),
                },
                Recovery {
                    disrupted_at: 100,
                    recovered_at: 130,
                    leader: NodeId::new(1),
                },
            ],
            pending_disruption: None,
            leader_flaps: 0,
            final_leaders: vec![],
            final_alive: 0,
            final_edges: 0,
        };
        assert_eq!(outcome.mean_latency(), Some(20.0));
        let empty = ScenarioOutcome {
            recoveries: vec![],
            ..outcome
        };
        assert_eq!(empty.mean_latency(), None);
    }
}
