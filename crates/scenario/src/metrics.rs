//! Scenario observers: re-election latency and leader stability.

use bfw_graph::NodeId;

/// One measured recovery: a disruption followed by the return of a
/// unique leader that stayed stable for the configured window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recovery {
    /// Round of the disruption this recovery answers.
    pub disrupted_at: u64,
    /// First round of the stable single-leader window.
    pub recovered_at: u64,
    /// The re-elected leader.
    pub leader: NodeId,
}

impl Recovery {
    /// Rounds from disruption to the start of the stable window.
    pub fn latency(&self) -> u64 {
        self.recovered_at - self.disrupted_at
    }
}

/// The full serializable state of an [`ElectionMonitor`], captured by
/// [`ElectionMonitor::snapshot`] and restored by
/// [`ElectionMonitor::from_state`]. Part of the scenario snapshot
/// format: resuming a run must continue open recovery windows and
/// stability streaks exactly where the snapshot left them, or the
/// resumed outcome would diverge from the straight run.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorState {
    /// Stable rounds required before a recovery is recorded.
    pub stability_window: u64,
    /// Rounds of disruptions whose recovery windows are still open.
    pub open_disruptions: Vec<u64>,
    /// Leader of the stability streak in progress, if any.
    pub streak_leader: Option<NodeId>,
    /// Length of the stability streak in progress.
    pub streak_len: u64,
    /// Last observed unique leader (for flap counting).
    pub last_unique: Option<NodeId>,
    /// Unique-leader identity changes observed so far.
    pub flaps: u64,
    /// Completed recoveries so far.
    pub recoveries: Vec<Recovery>,
}

/// Tracks leader dynamics across a perturbed run.
///
/// * **Re-election latency** — every disruption opens its *own* window:
///   the monitor records one [`Recovery`] per open disruption at the
///   first round from which a unique leader persists unchanged for
///   `stability_window` consecutive rounds. A second disruption
///   arriving while earlier windows are still open is **not** merged
///   into them — it gets its own latency, measured from its own round
///   (disruptions landing in the same round are one disturbance and
///   share a window). The completing stable leader answers all open
///   windows at once, so `recoveries()` may contain several entries
///   with the same `recovered_at` and distinct `disrupted_at`s.
/// * **Leader flaps** — the number of times the unique-leader identity
///   changes across the run (`a → b` counts one flap, regardless of
///   leaderless gaps in between; the initial appearance is not a flap).
#[derive(Debug, Clone)]
pub struct ElectionMonitor {
    stability_window: u64,
    open_disruptions: Vec<u64>,
    streak_leader: Option<NodeId>,
    streak_len: u64,
    last_unique: Option<NodeId>,
    flaps: u64,
    recoveries: Vec<Recovery>,
}

impl ElectionMonitor {
    /// Creates a monitor requiring `stability_window` unchanged rounds
    /// before a recovery is recorded (0 means "any single-leader round
    /// counts").
    pub fn new(stability_window: u64) -> Self {
        ElectionMonitor {
            stability_window,
            open_disruptions: Vec::new(),
            streak_leader: None,
            streak_len: 0,
            last_unique: None,
            flaps: 0,
            recoveries: Vec::new(),
        }
    }

    /// Marks a disruption at `round` (called by the engine when it
    /// applies events). Several disruptions in the same round count as
    /// one disturbance; a disruption at a later round opens a separate
    /// recovery window.
    pub fn mark_disruption(&mut self, round: u64) {
        if self.open_disruptions.last() != Some(&round) {
            self.open_disruptions.push(round);
        }
        // A disruption breaks any stability streak in progress.
        self.streak_leader = None;
        self.streak_len = 0;
    }

    /// Feeds the leader set of one round.
    pub fn observe(&mut self, round: u64, leaders: &[NodeId]) {
        let unique = if leaders.len() == 1 {
            Some(leaders[0])
        } else {
            None
        };

        if let Some(u) = unique {
            if let Some(prev) = self.last_unique {
                if prev != u {
                    self.flaps += 1;
                }
            }
            self.last_unique = Some(u);
        }

        match (unique, self.streak_leader) {
            (Some(u), Some(s)) if u == s => self.streak_len += 1,
            (Some(u), _) => {
                self.streak_leader = Some(u);
                self.streak_len = 1;
            }
            (None, _) => {
                self.streak_leader = None;
                self.streak_len = 0;
            }
        }

        if let Some(leader) = self.streak_leader {
            if !self.open_disruptions.is_empty() && self.streak_len > self.stability_window {
                let recovered_at = round + 1 - self.streak_len;
                for &disrupted_at in &self.open_disruptions {
                    self.recoveries.push(Recovery {
                        disrupted_at,
                        recovered_at,
                        leader,
                    });
                }
                self.open_disruptions.clear();
            }
        }
    }

    /// Returns the completed recoveries, in order.
    pub fn recoveries(&self) -> &[Recovery] {
        &self.recoveries
    }

    /// Returns the number of unique-leader identity changes observed.
    pub fn flaps(&self) -> u64 {
        self.flaps
    }

    /// Returns the round of the earliest disruption whose recovery
    /// window is still open (if any).
    pub fn pending_disruption(&self) -> Option<u64> {
        self.open_disruptions.first().copied()
    }

    /// Returns the rounds of all disruptions whose recovery windows are
    /// still open, in arrival order.
    pub fn pending_disruptions(&self) -> &[u64] {
        &self.open_disruptions
    }

    /// Captures the monitor's full state for a scenario snapshot.
    pub fn snapshot(&self) -> MonitorState {
        MonitorState {
            stability_window: self.stability_window,
            open_disruptions: self.open_disruptions.clone(),
            streak_leader: self.streak_leader,
            streak_len: self.streak_len,
            last_unique: self.last_unique,
            flaps: self.flaps,
            recoveries: self.recoveries.clone(),
        }
    }

    /// Rebuilds a monitor from a captured [`MonitorState`] (the inverse
    /// of [`snapshot`](Self::snapshot)).
    pub fn from_state(state: MonitorState) -> Self {
        ElectionMonitor {
            stability_window: state.stability_window,
            open_disruptions: state.open_disruptions,
            streak_leader: state.streak_leader,
            streak_len: state.streak_len,
            last_unique: state.last_unique,
            flaps: state.flaps,
            recoveries: state.recoveries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn overlapping_disruptions_get_their_own_windows() {
        // A second disruption while the first window is open must not
        // be merged: each gets a Recovery with its own latency.
        let mut m = ElectionMonitor::new(2);
        m.observe(0, &[n(0)]);
        m.mark_disruption(1);
        m.observe(1, &[]); // leaderless
        m.mark_disruption(2); // second disruption while armed
        m.observe(2, &[]);
        m.observe(3, &[n(4)]);
        m.observe(4, &[n(4)]);
        m.observe(5, &[n(4)]); // streak of 3 > window of 2
        assert_eq!(
            m.recoveries(),
            &[
                Recovery {
                    disrupted_at: 1,
                    recovered_at: 3,
                    leader: n(4)
                },
                Recovery {
                    disrupted_at: 2,
                    recovered_at: 3,
                    leader: n(4)
                }
            ]
        );
        assert_eq!(m.recoveries()[0].latency(), 2);
        assert_eq!(m.recoveries()[1].latency(), 1);
        assert_eq!(m.pending_disruption(), None);
        assert!(m.pending_disruptions().is_empty());
    }

    #[test]
    fn same_round_disruptions_share_one_window() {
        let mut m = ElectionMonitor::new(0);
        m.mark_disruption(5);
        m.mark_disruption(5); // e.g. a crash and an edge cut in round 5
        m.observe(5, &[]);
        m.observe(6, &[n(2)]);
        assert_eq!(
            m.recoveries(),
            &[Recovery {
                disrupted_at: 5,
                recovered_at: 6,
                leader: n(2)
            }]
        );
    }

    #[test]
    fn unstable_leaders_do_not_count_as_recovery() {
        let mut m = ElectionMonitor::new(3);
        m.mark_disruption(0);
        for round in 0..20 {
            // Leader alternates every round: never 4 stable rounds.
            m.observe(round, &[n((round % 2) as usize)]);
        }
        assert!(m.recoveries().is_empty());
        assert_eq!(m.pending_disruption(), Some(0));
        assert_eq!(m.flaps(), 19);
    }

    #[test]
    fn flaps_count_identity_changes_across_gaps() {
        let mut m = ElectionMonitor::new(0);
        m.observe(0, &[n(1)]);
        m.observe(1, &[]); // gap
        m.observe(2, &[n(1)]); // same leader: no flap
        m.observe(3, &[n(2)]); // flap
        m.observe(4, &[n(2), n(3)]); // not unique: ignored
        m.observe(5, &[n(3)]); // flap
        assert_eq!(m.flaps(), 2);
    }

    #[test]
    fn zero_window_records_first_single_round() {
        let mut m = ElectionMonitor::new(0);
        m.mark_disruption(5);
        m.observe(5, &[]);
        m.observe(6, &[n(2)]);
        assert_eq!(
            m.recoveries(),
            &[Recovery {
                disrupted_at: 5,
                recovered_at: 6,
                leader: n(2)
            }]
        );
    }

    #[test]
    fn disruption_resets_running_streak() {
        let mut m = ElectionMonitor::new(2);
        m.mark_disruption(0);
        m.observe(0, &[n(1)]);
        m.observe(1, &[n(1)]);
        // Disruption right before the streak would complete.
        m.mark_disruption(2);
        m.observe(2, &[n(1)]);
        m.observe(3, &[n(1)]);
        m.observe(4, &[n(1)]);
        // Streak restarted at round 2; completes at round 4 and answers
        // both open windows, each with its own latency.
        assert_eq!(
            m.recoveries(),
            &[
                Recovery {
                    disrupted_at: 0,
                    recovered_at: 2,
                    leader: n(1)
                },
                Recovery {
                    disrupted_at: 2,
                    recovered_at: 2,
                    leader: n(1)
                }
            ]
        );
    }

    #[test]
    fn stable_run_without_disruption_records_nothing() {
        let mut m = ElectionMonitor::new(1);
        for round in 0..10 {
            m.observe(round, &[n(0)]);
        }
        assert!(m.recoveries().is_empty());
        assert_eq!(m.pending_disruption(), None);
    }
}
