//! Scenario observers: re-election latency and leader stability.

use bfw_graph::NodeId;

/// One measured recovery: a disruption followed by the return of a
/// unique leader that stayed stable for the configured window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recovery {
    /// Round of the earliest disruption this recovery answers.
    pub disrupted_at: u64,
    /// First round of the stable single-leader window.
    pub recovered_at: u64,
    /// The re-elected leader.
    pub leader: NodeId,
}

impl Recovery {
    /// Rounds from disruption to the start of the stable window.
    pub fn latency(&self) -> u64 {
        self.recovered_at - self.disrupted_at
    }
}

/// Tracks leader dynamics across a perturbed run.
///
/// * **Re-election latency** — when a disruption occurs, the monitor
///   arms; it records a [`Recovery`] at the first round from which a
///   unique leader persists unchanged for `stability_window` consecutive
///   rounds. Disruptions arriving while armed keep the *earliest*
///   unanswered disruption round (latency is measured from the first
///   moment the network was disturbed).
/// * **Leader flaps** — the number of times the unique-leader identity
///   changes across the run (`a → b` counts one flap, regardless of
///   leaderless gaps in between; the initial appearance is not a flap).
#[derive(Debug, Clone)]
pub struct ElectionMonitor {
    stability_window: u64,
    open_disruption: Option<u64>,
    streak_leader: Option<NodeId>,
    streak_len: u64,
    last_unique: Option<NodeId>,
    flaps: u64,
    recoveries: Vec<Recovery>,
}

impl ElectionMonitor {
    /// Creates a monitor requiring `stability_window` unchanged rounds
    /// before a recovery is recorded (0 means "any single-leader round
    /// counts").
    pub fn new(stability_window: u64) -> Self {
        ElectionMonitor {
            stability_window,
            open_disruption: None,
            streak_leader: None,
            streak_len: 0,
            last_unique: None,
            flaps: 0,
            recoveries: Vec::new(),
        }
    }

    /// Marks a disruption at `round` (called by the engine when it
    /// applies events).
    pub fn mark_disruption(&mut self, round: u64) {
        if self.open_disruption.is_none() {
            self.open_disruption = Some(round);
        }
        // A disruption breaks any stability streak in progress.
        self.streak_leader = None;
        self.streak_len = 0;
    }

    /// Feeds the leader set of one round.
    pub fn observe(&mut self, round: u64, leaders: &[NodeId]) {
        let unique = if leaders.len() == 1 {
            Some(leaders[0])
        } else {
            None
        };

        if let Some(u) = unique {
            if let Some(prev) = self.last_unique {
                if prev != u {
                    self.flaps += 1;
                }
            }
            self.last_unique = Some(u);
        }

        match (unique, self.streak_leader) {
            (Some(u), Some(s)) if u == s => self.streak_len += 1,
            (Some(u), _) => {
                self.streak_leader = Some(u);
                self.streak_len = 1;
            }
            (None, _) => {
                self.streak_leader = None;
                self.streak_len = 0;
            }
        }

        if let (Some(disrupted_at), Some(leader)) = (self.open_disruption, self.streak_leader) {
            if self.streak_len > self.stability_window {
                let recovered_at = round + 1 - self.streak_len;
                self.recoveries.push(Recovery {
                    disrupted_at,
                    recovered_at,
                    leader,
                });
                self.open_disruption = None;
            }
        }
    }

    /// Returns the completed recoveries, in order.
    pub fn recoveries(&self) -> &[Recovery] {
        &self.recoveries
    }

    /// Returns the number of unique-leader identity changes observed.
    pub fn flaps(&self) -> u64 {
        self.flaps
    }

    /// Returns the round of the earliest disruption that has not yet
    /// been answered by a stable leader (if any).
    pub fn pending_disruption(&self) -> Option<u64> {
        self.open_disruption
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn recovery_measures_from_first_disruption() {
        let mut m = ElectionMonitor::new(2);
        m.observe(0, &[n(0)]);
        m.mark_disruption(1);
        m.observe(1, &[]); // leaderless
        m.mark_disruption(2); // second disruption while armed
        m.observe(2, &[]);
        m.observe(3, &[n(4)]);
        m.observe(4, &[n(4)]);
        m.observe(5, &[n(4)]); // streak of 3 > window of 2
        assert_eq!(
            m.recoveries(),
            &[Recovery {
                disrupted_at: 1,
                recovered_at: 3,
                leader: n(4)
            }]
        );
        assert_eq!(m.recoveries()[0].latency(), 2);
        assert_eq!(m.pending_disruption(), None);
    }

    #[test]
    fn unstable_leaders_do_not_count_as_recovery() {
        let mut m = ElectionMonitor::new(3);
        m.mark_disruption(0);
        for round in 0..20 {
            // Leader alternates every round: never 4 stable rounds.
            m.observe(round, &[n((round % 2) as usize)]);
        }
        assert!(m.recoveries().is_empty());
        assert_eq!(m.pending_disruption(), Some(0));
        assert_eq!(m.flaps(), 19);
    }

    #[test]
    fn flaps_count_identity_changes_across_gaps() {
        let mut m = ElectionMonitor::new(0);
        m.observe(0, &[n(1)]);
        m.observe(1, &[]); // gap
        m.observe(2, &[n(1)]); // same leader: no flap
        m.observe(3, &[n(2)]); // flap
        m.observe(4, &[n(2), n(3)]); // not unique: ignored
        m.observe(5, &[n(3)]); // flap
        assert_eq!(m.flaps(), 2);
    }

    #[test]
    fn zero_window_records_first_single_round() {
        let mut m = ElectionMonitor::new(0);
        m.mark_disruption(5);
        m.observe(5, &[]);
        m.observe(6, &[n(2)]);
        assert_eq!(
            m.recoveries(),
            &[Recovery {
                disrupted_at: 5,
                recovered_at: 6,
                leader: n(2)
            }]
        );
    }

    #[test]
    fn disruption_resets_running_streak() {
        let mut m = ElectionMonitor::new(2);
        m.mark_disruption(0);
        m.observe(0, &[n(1)]);
        m.observe(1, &[n(1)]);
        // Disruption right before the streak would complete.
        m.mark_disruption(2);
        m.observe(2, &[n(1)]);
        m.observe(3, &[n(1)]);
        m.observe(4, &[n(1)]);
        // Streak restarted at round 2; completes at round 4 with
        // disrupted_at still 0 (earliest unanswered).
        assert_eq!(
            m.recoveries(),
            &[Recovery {
                disrupted_at: 0,
                recovered_at: 2,
                leader: n(1)
            }]
        );
    }
}
