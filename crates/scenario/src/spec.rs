//! The TOML scenario format.
//!
//! A scenario file has one `[scenario]` header and any number of
//! `[[event]]` entries:
//!
//! ```toml
//! [scenario]
//! name = "ring churn"
//! graph = "cycle:32"     # resolved by the caller (CLI: GraphSpec syntax)
//! p = 0.5                # BFW beep probability
//! rounds = 20000         # horizon
//! stability = 50         # stable rounds required to count a recovery
//! protocol = "bfw"       # or "bfw+recovery" (self-healing layer)
//!
//! [[event]]
//! at = 2000              # or: every/start/count, or: rate
//! kind = "crash-leader"
//!
//! [[event]]
//! at = 2200
//! kind = "recover-all"
//! ```
//!
//! Event kinds and their fields:
//!
//! | `kind` | fields |
//! |--------|--------|
//! | `crash` | `node` |
//! | `crash-random` | — |
//! | `crash-leader` | — |
//! | `recover` | `node` |
//! | `recover-random` | — |
//! | `recover-all` | — |
//! | `add-edge` / `remove-edge` | `u`, `v` |
//! | `partition` | `cut` (array of node ids) |
//! | `heal` | — |
//! | `noise-burst` | `fn`, `fp`, `rounds` |
//! | `inject-phantom` | `waves` |
//! | `inject-dead` | — |
//!
//! Scheduling fields (exactly one form per event): `at = N`;
//! `every = PERIOD` with optional `start = N`, `count = N`; or
//! `rate = P` with optional `start = N`.
//!
//! An optional `[trace]` section turns on complexity instrumentation
//! (see [`bfw_sim::instrument`]) for every run of the scenario:
//!
//! ```toml
//! [trace]
//! file = "trace.json"    # where the CLI writes the JSON report
//! last = 256             # flight-recorder capacity (default 256)
//! ```
//!
//! Both keys are optional (`[trace]` alone enables tracing with the
//! defaults); the CLI's `--trace` / `--trace-last` flags override them.
//!
//! `runtime = "async"` executes the scenario on the asynchronous
//! `ActivationEngine` runtime (BFW as a stone-age protocol under
//! activation-based scheduling) instead of synchronous rounds; every
//! timeline position and the `rounds` horizon are then read in
//! **activations**. The optional `scheduler` key picks the activation
//! scheduler (`uniform` | `weighted` | `replay`) and is only legal
//! under `runtime = "async"`. The recovery layer needs synchronous
//! slot multiplexing, so `runtime = "async"` with
//! `protocol = "bfw+recovery"` is a hard error.
//!
//! The optional `kernel` key (`"auto"` | `"generic"` | `"bit"`,
//! default `"auto"`) picks the execution kernel for synchronous BFW
//! rounds: the generic per-node `TickEngine` or the bitplane
//! `BitEngine` fast path. `"auto"` selects the bit kernel for plain
//! synchronous BFW on large graphs; the choice never changes outcomes
//! (the kernels are byte-identical at a fixed seed). An explicit
//! `kernel = "bit"` with `protocol = "bfw+recovery"` or
//! `runtime = "async"` is a hard error.
//!
//! The optional `threads` key (a positive integer) sets the worker
//! count for the bit kernel's word-sharded parallel step; unset leaves
//! the runner's default (the host's available parallelism, capped).
//! The thread count never changes outcomes — the sharded step is
//! byte-identical to the serial one at a fixed seed. Combining
//! `threads` with `kernel = "generic"`, `runtime = "async"` or
//! `protocol = "bfw+recovery"` is a hard error, since only the bit
//! kernel shards its step.
//!
//! With `protocol = "bfw+recovery"` the optional `[scenario]` keys
//! `heartbeat`, `timeout` and `grace` override the recovery layer's
//! diameter-derived timing (heartbeat period and detection timeout in
//! heartbeat slots, grace window in election slots); unset keys keep
//! the `RecoveryConfig::for_diameter` defaults. They are rejected under
//! plain `protocol = "bfw"`, where they would be silently meaningless.
//!
//! Every unknown section, key or event kind is a hard [`SpecError`]
//! (never silently ignored), with a "did you mean" hint when a known
//! name is close.

use crate::toml_mini::{self, Table, Value};
use crate::{InjectKind, ScenarioEvent, Schedule, Timeline};
use bfw_graph::NodeId;
use bfw_sim::Scheduler;
use std::fmt;

/// A parsed scenario file, before graph resolution.
///
/// The `graph` field stays a string: workload-spec parsing
/// (`"cycle:32"`) lives in `bfw-bench` and the CLI resolves it; tests
/// and library users may supply any graph they like alongside the
/// spec's timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Human-readable scenario name.
    pub name: String,
    /// Workload spec string (e.g. `"cycle:32"`), resolved by the caller.
    pub graph: String,
    /// BFW beep probability.
    pub p: f64,
    /// Round horizon.
    pub rounds: u64,
    /// Stable rounds required before a recovery is recorded.
    pub stability: u64,
    /// Default seed (a CLI `--seed` overrides it).
    pub seed: u64,
    /// Which protocol stack drives the run.
    pub protocol: ProtocolKind,
    /// Recovery-layer heartbeat period override, in heartbeat slots
    /// (`None` = diameter-derived; only with [`ProtocolKind::BfwRecovery`]).
    pub heartbeat: Option<u32>,
    /// Recovery-layer detection timeout override, in heartbeat slots.
    pub timeout: Option<u32>,
    /// Recovery-layer grace window override, in election slots.
    pub grace: Option<u32>,
    /// Which runtime executes the scenario (`runtime` key).
    pub runtime: RuntimeKind,
    /// Activation scheduler override (`scheduler` key; only with
    /// [`RuntimeKind::Async`], `None` = uniform). This is
    /// `bfw_sim::Scheduler` directly — the spec names map 1:1 onto the
    /// engine's schedulers.
    pub scheduler: Option<Scheduler>,
    /// Which execution kernel runs the rounds (`kernel` key).
    pub kernel: KernelKind,
    /// Worker-thread count for the bit kernel's word-sharded step
    /// (`threads` key; `None` = the runner's default, currently the
    /// host's available parallelism capped at 8). Thread count never
    /// changes outcomes — the sharded step is byte-identical to the
    /// serial one at a fixed seed. Only meaningful on the bit kernel:
    /// combining it with `kernel = "generic"`, `runtime = "async"` or
    /// `protocol = "bfw+recovery"` is a hard error.
    pub threads: Option<usize>,
    /// The declarative event schedule.
    pub timeline: Timeline,
    /// Complexity-instrumentation request (`[trace]` section), `None`
    /// when the scenario does not ask for tracing.
    pub trace: Option<TraceSpec>,
}

/// The `[trace]` section: asks every run of the scenario to enable
/// complexity instrumentation and a flight recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpec {
    /// Destination for the JSON report (`file` key). `None` leaves the
    /// destination to the caller (the CLI's `--trace` flag).
    pub file: Option<String>,
    /// Flight-recorder ring-buffer capacity (`last` key).
    pub last: usize,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            file: None,
            last: 256,
        }
    }
}

/// The runtime a scenario executes on (`runtime` key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RuntimeKind {
    /// Synchronous rounds (the default): the beeping `TickEngine`
    /// runtime; timeline positions are rounds.
    #[default]
    Sync,
    /// Asynchronous activations: the stone-age `ActivationEngine`
    /// runtime (BFW through the `BeepingAsStoneAge` adapter); timeline
    /// positions — `at`, `every`, `start`, noise-burst `rounds`, and
    /// the `[scenario]` horizon — are interpreted in **activations**.
    Async,
}

impl fmt::Display for RuntimeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RuntimeKind::Sync => "sync",
            RuntimeKind::Async => "async",
        })
    }
}

/// The execution kernel a scenario's rounds run on (`kernel` key, or
/// the CLI's `--kernel` flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelKind {
    /// Pick automatically (the default): the bit-parallel kernel for
    /// plain synchronous BFW at large `n`, the generic engine
    /// otherwise. The choice never changes outcomes — the two kernels
    /// are byte-identical at a fixed seed (see the
    /// `bit_kernel_equivalence` workspace tests).
    #[default]
    Auto,
    /// The generic per-node [`bfw_sim::TickEngine`] path.
    Generic,
    /// The bitplane [`bfw_sim::BitEngine`] fast path. Only plain
    /// synchronous BFW supports it; requesting it with
    /// `protocol = "bfw+recovery"` or `runtime = "async"` is a hard
    /// error.
    Bit,
}

impl fmt::Display for KernelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            KernelKind::Auto => "auto",
            KernelKind::Generic => "generic",
            KernelKind::Bit => "bit",
        })
    }
}

/// The protocol stack a scenario runs (`protocol` key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProtocolKind {
    /// Plain BFW (the paper's Figure 1 protocol).
    #[default]
    Bfw,
    /// BFW wrapped in the self-healing recovery layer
    /// (`bfw_core::RecoveringProtocol`): heartbeat-based leaderless
    /// detection plus epoch-tagged restart.
    BfwRecovery,
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ProtocolKind::Bfw => "bfw",
            ProtocolKind::BfwRecovery => "bfw+recovery",
        })
    }
}

/// Error parsing a scenario file.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError(String);

impl SpecError {
    /// Crate-internal constructor (spec parsing and recovery-timing
    /// resolution both produce these).
    pub(crate) fn new(message: impl Into<String>) -> Self {
        SpecError(message.into())
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

impl From<toml_mini::ParseError> for SpecError {
    fn from(e: toml_mini::ParseError) -> Self {
        SpecError(e.to_string())
    }
}

fn err(message: impl Into<String>) -> SpecError {
    SpecError(message.into())
}

/// Levenshtein distance (iterative two-row DP) — small inputs only.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Returns ` (did you mean 'x'?)` when a known name is within edit
/// distance 2 of `given` (ties resolved toward the closest, then the
/// first listed), or an empty string otherwise.
fn did_you_mean(given: &str, known: &[&str]) -> String {
    known
        .iter()
        .map(|k| (edit_distance(given, k), *k))
        .filter(|&(d, _)| d <= 2)
        .min_by_key(|&(d, _)| d)
        .map(|(_, k)| format!(" (did you mean '{k}'?)"))
        .unwrap_or_default()
}

impl ScenarioSpec {
    /// Parses a scenario from TOML text.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] for syntax errors, missing required
    /// fields (`graph`), out-of-range probabilities, or unknown event
    /// kinds/fields.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let sections = toml_mini::parse(text)?;
        let mut spec = ScenarioSpec {
            name: "unnamed scenario".to_owned(),
            graph: String::new(),
            p: 0.5,
            rounds: 10_000,
            stability: 50,
            seed: 0,
            protocol: ProtocolKind::Bfw,
            heartbeat: None,
            timeout: None,
            grace: None,
            runtime: RuntimeKind::Sync,
            scheduler: None,
            kernel: KernelKind::Auto,
            threads: None,
            timeline: Timeline::new(),
            trace: None,
        };
        let mut saw_scenario = false;
        for section in &sections {
            match section.name.as_str() {
                "scenario" => {
                    if saw_scenario {
                        return Err(err("duplicate [scenario] section"));
                    }
                    saw_scenario = true;
                    spec.read_scenario_table(&section.table)?;
                }
                "event" => {
                    let (schedule, event) = parse_event(&section.table)?;
                    spec.timeline = spec.timeline.schedule(schedule, event);
                }
                "trace" => {
                    if spec.trace.is_some() {
                        return Err(err("duplicate [trace] section"));
                    }
                    spec.trace = Some(read_trace_table(&section.table)?);
                }
                "" => return Err(err("keys are only allowed inside sections")),
                other => {
                    let hint = did_you_mean(other, &["scenario", "event", "trace"]);
                    return Err(err(format!("unknown section [{other}]{hint}")));
                }
            }
        }
        if !saw_scenario {
            return Err(err("missing [scenario] section"));
        }
        if spec.graph.is_empty() {
            return Err(err("[scenario] must set graph = \"<spec>\""));
        }
        if !(spec.p > 0.0 && spec.p < 1.0) {
            return Err(err(format!("p must be in (0, 1), got {}", spec.p)));
        }
        if spec.protocol == ProtocolKind::Bfw {
            for (key, value) in [
                ("heartbeat", spec.heartbeat),
                ("timeout", spec.timeout),
                ("grace", spec.grace),
            ] {
                if value.is_some() {
                    return Err(err(format!(
                        "{key} requires protocol = \"bfw+recovery\" (plain bfw has no recovery layer)"
                    )));
                }
            }
        }
        if spec.runtime == RuntimeKind::Async && spec.protocol == ProtocolKind::BfwRecovery {
            return Err(err(
                "runtime = \"async\" cannot execute protocol = \"bfw+recovery\": the recovery \
                 layer multiplexes election and heartbeat slots over round parity, which only \
                 exists under synchronous rounds (did you mean protocol = \"bfw\"?)",
            ));
        }
        if spec.runtime == RuntimeKind::Sync && spec.scheduler.is_some() {
            return Err(err(
                "scheduler requires runtime = \"async\" (synchronous rounds have no activation \
                 scheduler)",
            ));
        }
        if spec.kernel == KernelKind::Bit {
            if spec.protocol == ProtocolKind::BfwRecovery {
                return Err(err(
                    "kernel = \"bit\" cannot execute protocol = \"bfw+recovery\": the bitplane \
                     kernel packs the six plain BFW states; the recovery layer's epoch-tagged \
                     states do not fit (did you mean kernel = \"generic\"?)",
                ));
            }
            if spec.runtime == RuntimeKind::Async {
                return Err(err(
                    "kernel = \"bit\" requires synchronous rounds: the bitplane kernel advances \
                     whole words per round, which has no meaning under activation-based \
                     scheduling (did you mean runtime = \"sync\"?)",
                ));
            }
        }
        if spec.threads.is_some() {
            if spec.kernel == KernelKind::Generic {
                return Err(err(
                    "threads requires the bit kernel: the generic engine steps nodes one at a \
                     time; only the bitplane kernel's word-sharded step fans out across worker \
                     threads (did you mean kernel = \"bit\"?)",
                ));
            }
            if spec.runtime == RuntimeKind::Async {
                return Err(err(
                    "threads requires synchronous rounds: only the bitplane kernel's \
                     word-sharded step fans out across worker threads, and it has no meaning \
                     under activation-based scheduling (did you mean runtime = \"sync\"?)",
                ));
            }
            if spec.protocol == ProtocolKind::BfwRecovery {
                return Err(err(
                    "threads requires protocol = \"bfw\": the recovery layer runs on the \
                     generic engine, which steps nodes one at a time (only the bitplane \
                     kernel's word-sharded step fans out across worker threads)",
                ));
            }
        }
        Ok(spec)
    }

    fn read_scenario_table(&mut self, table: &Table) -> Result<(), SpecError> {
        for (key, value) in table.entries() {
            match key.as_str() {
                "name" => {
                    self.name = value
                        .as_str()
                        .ok_or_else(|| err("name must be a string"))?
                        .to_owned();
                }
                "graph" => {
                    self.graph = value
                        .as_str()
                        .ok_or_else(|| err("graph must be a string"))?
                        .to_owned();
                }
                "p" => {
                    self.p = value.as_float().ok_or_else(|| err("p must be a number"))?;
                }
                "rounds" => self.rounds = read_u64(value, "rounds")?,
                "stability" => self.stability = read_u64(value, "stability")?,
                "seed" => self.seed = read_u64(value, "seed")?,
                "protocol" => {
                    let name = value
                        .as_str()
                        .ok_or_else(|| err("protocol must be a string"))?;
                    self.protocol = match name {
                        "bfw" => ProtocolKind::Bfw,
                        "bfw+recovery" => ProtocolKind::BfwRecovery,
                        other => {
                            let hint = did_you_mean(other, &["bfw", "bfw+recovery"]);
                            return Err(err(format!(
                                "unknown protocol '{other}'{hint}; valid: \"bfw\", \"bfw+recovery\""
                            )));
                        }
                    };
                }
                "runtime" => {
                    let name = value
                        .as_str()
                        .ok_or_else(|| err("runtime must be a string"))?;
                    self.runtime = match name {
                        "sync" => RuntimeKind::Sync,
                        "async" => RuntimeKind::Async,
                        other => {
                            let hint = did_you_mean(other, &["sync", "async"]);
                            return Err(err(format!(
                                "unknown runtime '{other}'{hint}; valid: \"sync\", \"async\""
                            )));
                        }
                    };
                }
                "scheduler" => {
                    let name = value
                        .as_str()
                        .ok_or_else(|| err("scheduler must be a string"))?;
                    self.scheduler = Some(match name {
                        "uniform" => Scheduler::Uniform,
                        "weighted" => Scheduler::Weighted,
                        "replay" => Scheduler::Replay,
                        other => {
                            let hint = did_you_mean(other, &["uniform", "weighted", "replay"]);
                            return Err(err(format!(
                                "unknown scheduler '{other}'{hint}; valid: \"uniform\", \
                                 \"weighted\", \"replay\""
                            )));
                        }
                    });
                }
                "kernel" => {
                    let name = value
                        .as_str()
                        .ok_or_else(|| err("kernel must be a string"))?;
                    self.kernel = match name {
                        "auto" => KernelKind::Auto,
                        "generic" => KernelKind::Generic,
                        "bit" => KernelKind::Bit,
                        other => {
                            let hint = did_you_mean(other, &["auto", "generic", "bit"]);
                            return Err(err(format!(
                                "unknown kernel '{other}'{hint}; valid: \"auto\", \"generic\", \
                                 \"bit\""
                            )));
                        }
                    };
                }
                "threads" => {
                    let threads = read_u64(value, "threads")?;
                    if threads == 0 {
                        return Err(err("threads must be at least 1"));
                    }
                    self.threads = Some(
                        usize::try_from(threads)
                            .map_err(|_| err(format!("threads: {threads} exceeds usize::MAX")))?,
                    );
                }
                "heartbeat" => self.heartbeat = Some(read_u32(value, "heartbeat")?),
                "timeout" => self.timeout = Some(read_u32(value, "timeout")?),
                "grace" => self.grace = Some(read_u32(value, "grace")?),
                other => {
                    let hint = did_you_mean(other, SCENARIO_KEYS);
                    return Err(err(format!("unknown [scenario] key '{other}'{hint}")));
                }
            }
        }
        Ok(())
    }
}

/// Parses the `[trace]` section into a [`TraceSpec`].
fn read_trace_table(table: &Table) -> Result<TraceSpec, SpecError> {
    let mut trace = TraceSpec::default();
    for (key, value) in table.entries() {
        match key.as_str() {
            "file" => {
                trace.file = Some(
                    value
                        .as_str()
                        .ok_or_else(|| err("file must be a string"))?
                        .to_owned(),
                );
            }
            "last" => {
                let last = read_u64(value, "last")?;
                if last == 0 {
                    return Err(err("last must be at least 1"));
                }
                trace.last = usize::try_from(last)
                    .map_err(|_| err(format!("last: {last} exceeds usize::MAX")))?;
            }
            other => {
                let hint = did_you_mean(other, TRACE_KEYS);
                return Err(err(format!("unknown [trace] key '{other}'{hint}")));
            }
        }
    }
    Ok(trace)
}

/// The legal `[trace]` keys (for "did you mean" hints).
const TRACE_KEYS: &[&str] = &["file", "last"];

/// The legal `[scenario]` keys (for "did you mean" hints).
const SCENARIO_KEYS: &[&str] = &[
    "name",
    "graph",
    "p",
    "rounds",
    "stability",
    "seed",
    "protocol",
    "runtime",
    "scheduler",
    "kernel",
    "threads",
    "heartbeat",
    "timeout",
    "grace",
];

/// The legal `kind` values (for "did you mean" hints).
const EVENT_KINDS: &[&str] = &[
    "crash",
    "crash-random",
    "crash-leader",
    "recover",
    "recover-random",
    "recover-all",
    "add-edge",
    "remove-edge",
    "partition",
    "heal",
    "noise-burst",
    "inject-phantom",
    "inject-dead",
];

fn read_u64(value: &Value, key: &str) -> Result<u64, SpecError> {
    value
        .as_int()
        .and_then(|i| u64::try_from(i).ok())
        .ok_or_else(|| err(format!("{key} must be a non-negative integer")))
}

fn read_u32(value: &Value, key: &str) -> Result<u32, SpecError> {
    read_u64(value, key)
        .and_then(|v| u32::try_from(v).map_err(|_| err(format!("{key}: {v} exceeds u32::MAX"))))
}

fn node_id(id: u64, key: &str) -> Result<NodeId, SpecError> {
    u32::try_from(id)
        .map(NodeId::from_u32)
        .map_err(|_| err(format!("{key}: node id {id} exceeds u32::MAX")))
}

fn read_node(table: &Table, key: &str, kind: &str) -> Result<NodeId, SpecError> {
    let value = table
        .get(key)
        .ok_or_else(|| err(format!("{kind} needs {key} = <node id>")))?;
    node_id(read_u64(value, key)?, key)
}

fn read_prob(table: &Table, key: &str, default: f64) -> Result<f64, SpecError> {
    let Some(value) = table.get(key) else {
        return Ok(default);
    };
    let p = value
        .as_float()
        .ok_or_else(|| err(format!("{key} must be a number")))?;
    if !(0.0..1.0).contains(&p) {
        return Err(err(format!("{key} must be in [0, 1), got {p}")));
    }
    Ok(p)
}

fn parse_schedule(table: &Table) -> Result<Schedule, SpecError> {
    let at = table.get("at");
    let every = table.get("every");
    let rate = table.get("rate");
    match (at, every, rate) {
        (Some(v), None, None) => Ok(Schedule::At(read_u64(v, "at")?)),
        (None, Some(v), None) => {
            let period = read_u64(v, "every")?;
            if period == 0 {
                return Err(err("every must be at least 1"));
            }
            let start = match table.get("start") {
                Some(s) => read_u64(s, "start")?,
                None => period,
            };
            let count = match table.get("count") {
                Some(c) => read_u64(c, "count")?,
                None => 0,
            };
            Ok(Schedule::Every {
                start,
                period,
                count,
            })
        }
        (None, None, Some(v)) => {
            let per_round = v.as_float().ok_or_else(|| err("rate must be a number"))?;
            if !(0.0..1.0).contains(&per_round) {
                return Err(err(format!("rate must be in [0, 1), got {per_round}")));
            }
            let start = match table.get("start") {
                Some(s) => read_u64(s, "start")?,
                None => 1,
            };
            Ok(Schedule::Rate { per_round, start })
        }
        _ => Err(err(
            "each [[event]] needs exactly one of: at = N, every = PERIOD, rate = P",
        )),
    }
}

fn parse_event(table: &Table) -> Result<(Schedule, ScenarioEvent), SpecError> {
    let schedule = parse_schedule(table)?;
    let kind = table
        .get("kind")
        .and_then(Value::as_str)
        .ok_or_else(|| err("each [[event]] needs kind = \"<event kind>\""))?;
    // Only the keys of the schedule form actually used are legal, so a
    // stray `count` on an `at` event errors instead of being ignored.
    let mut allowed: Vec<&str> = vec!["kind"];
    match &schedule {
        Schedule::At(_) => allowed.push("at"),
        Schedule::Every { .. } => allowed.extend(["every", "start", "count"]),
        Schedule::Rate { .. } => allowed.extend(["rate", "start"]),
    }
    let event = match kind {
        "crash" => {
            allowed.push("node");
            ScenarioEvent::CrashNode(read_node(table, "node", kind)?)
        }
        "crash-random" => ScenarioEvent::CrashRandom,
        "crash-leader" => ScenarioEvent::CrashLeader,
        "recover" => {
            allowed.push("node");
            ScenarioEvent::RecoverNode(read_node(table, "node", kind)?)
        }
        "recover-random" => ScenarioEvent::RecoverRandom,
        "recover-all" => ScenarioEvent::RecoverAll,
        "add-edge" | "remove-edge" => {
            allowed.extend(["u", "v"]);
            let u = read_node(table, "u", kind)?;
            let v = read_node(table, "v", kind)?;
            if kind == "add-edge" {
                ScenarioEvent::AddEdge(u, v)
            } else {
                ScenarioEvent::RemoveEdge(u, v)
            }
        }
        "partition" => {
            allowed.push("cut");
            let cut = table
                .get("cut")
                .and_then(Value::as_array)
                .ok_or_else(|| err("partition needs cut = [node ids]"))?;
            let side = cut
                .iter()
                .map(|v| read_u64(v, "cut").and_then(|id| node_id(id, "cut")))
                .collect::<Result<Vec<_>, _>>()?;
            ScenarioEvent::Partition { side }
        }
        "heal" => ScenarioEvent::Heal,
        "noise-burst" => {
            allowed.extend(["fn", "fp", "rounds"]);
            ScenarioEvent::NoiseBurst {
                fn_rate: read_prob(table, "fn", 0.0)?,
                fp_rate: read_prob(table, "fp", 0.0)?,
                rounds: match table.get("rounds") {
                    Some(v) => read_u64(v, "rounds")?,
                    None => return Err(err("noise-burst needs rounds = N")),
                },
            }
        }
        "inject-phantom" => {
            allowed.push("waves");
            let waves = match table.get("waves") {
                Some(v) => read_u64(v, "waves")? as usize,
                None => 1,
            };
            ScenarioEvent::InjectState(InjectKind::PhantomWaves { waves })
        }
        "inject-dead" => ScenarioEvent::InjectState(InjectKind::Dead),
        other => {
            let hint = did_you_mean(other, EVENT_KINDS);
            return Err(err(format!("unknown event kind '{other}'{hint}")));
        }
    };
    for (key, _) in table.entries() {
        if !allowed.contains(&key.as_str()) {
            let hint = did_you_mean(key, &allowed);
            return Err(err(format!("event '{kind}' has unknown key '{key}'{hint}")));
        }
    }
    Ok((schedule, event))
}

#[cfg(test)]
mod tests {
    use super::*;

    const RING_CHURN: &str = r#"
[scenario]
name = "ring churn"
graph = "cycle:16"
p = 0.5
rounds = 9000
stability = 25
seed = 7

[[event]]
at = 2000
kind = "crash-leader"

[[event]]
at = 2300
kind = "recover-all"

[[event]]
every = 1500
start = 3000
count = 2
kind = "crash-random"

[[event]]
rate = 0.001
kind = "recover-random"

[[event]]
at = 4000
kind = "partition"
cut = [0, 1, 2, 3]

[[event]]
at = 4500
kind = "heal"

[[event]]
at = 6000
kind = "noise-burst"
fn = 0.1
fp = 0.01
rounds = 200
"#;

    #[test]
    fn full_spec_round_trips() {
        let spec = ScenarioSpec::parse(RING_CHURN).unwrap();
        assert_eq!(spec.name, "ring churn");
        assert_eq!(spec.graph, "cycle:16");
        assert_eq!(spec.p, 0.5);
        assert_eq!(spec.rounds, 9_000);
        assert_eq!(spec.stability, 25);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.timeline.entries().len(), 7);
        assert_eq!(spec.timeline.entries()[0].event, ScenarioEvent::CrashLeader);
        assert_eq!(
            spec.timeline.entries()[2].schedule,
            Schedule::Every {
                start: 3_000,
                period: 1_500,
                count: 2
            }
        );
        assert_eq!(
            spec.timeline.entries()[6].event,
            ScenarioEvent::NoiseBurst {
                fn_rate: 0.1,
                fp_rate: 0.01,
                rounds: 200
            }
        );
    }

    #[test]
    fn defaults_are_sensible() {
        let spec = ScenarioSpec::parse("[scenario]\ngraph = \"path:4\"").unwrap();
        assert_eq!(spec.p, 0.5);
        assert_eq!(spec.rounds, 10_000);
        assert_eq!(spec.stability, 50);
        assert_eq!(spec.seed, 0);
        assert!(spec.timeline.entries().is_empty());
    }

    #[test]
    fn inject_events_parse() {
        let text = "[scenario]\ngraph = \"cycle:9\"\n\
                    [[event]]\nat = 5\nkind = \"inject-phantom\"\nwaves = 2\n\
                    [[event]]\nat = 9\nkind = \"inject-dead\"";
        let spec = ScenarioSpec::parse(text).unwrap();
        assert_eq!(
            spec.timeline.entries()[0].event,
            ScenarioEvent::InjectState(InjectKind::PhantomWaves { waves: 2 })
        );
        assert_eq!(
            spec.timeline.entries()[1].event,
            ScenarioEvent::InjectState(InjectKind::Dead)
        );
    }

    #[test]
    fn trace_section_round_trips() {
        // No [trace] section: no tracing requested.
        let spec = ScenarioSpec::parse("[scenario]\ngraph = \"path:4\"").unwrap();
        assert_eq!(spec.trace, None);

        // Bare [trace]: defaults (no file, capacity 256).
        let spec = ScenarioSpec::parse("[scenario]\ngraph = \"path:4\"\n[trace]").unwrap();
        assert_eq!(spec.trace, Some(TraceSpec::default()));
        assert_eq!(spec.trace.unwrap().last, 256);

        // Explicit keys.
        let spec = ScenarioSpec::parse(
            "[scenario]\ngraph = \"path:4\"\n[trace]\nfile = \"out.json\"\nlast = 32",
        )
        .unwrap();
        assert_eq!(
            spec.trace,
            Some(TraceSpec {
                file: Some("out.json".to_owned()),
                last: 32,
            })
        );
    }

    #[test]
    fn trace_section_errors_are_specific() {
        let dup =
            ScenarioSpec::parse("[scenario]\ngraph = \"path:4\"\n[trace]\n[trace]").unwrap_err();
        assert!(dup.to_string().contains("duplicate [trace]"), "{dup}");

        let zero =
            ScenarioSpec::parse("[scenario]\ngraph = \"path:4\"\n[trace]\nlast = 0").unwrap_err();
        assert!(zero.to_string().contains("at least 1"), "{zero}");

        let bad_key =
            ScenarioSpec::parse("[scenario]\ngraph = \"path:4\"\n[trace]\nlst = 9").unwrap_err();
        assert!(
            bad_key
                .to_string()
                .contains("unknown [trace] key 'lst' (did you mean 'last'?)"),
            "{bad_key}"
        );

        // Misspelled section name hints at [trace] too.
        let bad_section =
            ScenarioSpec::parse("[scenario]\ngraph = \"path:4\"\n[tracee]\nlast = 9").unwrap_err();
        assert!(
            bad_section.to_string().contains("did you mean 'trace'?"),
            "{bad_section}"
        );
    }

    #[test]
    fn protocol_key_round_trips() {
        let spec = ScenarioSpec::parse("[scenario]\ngraph = \"path:4\"").unwrap();
        assert_eq!(spec.protocol, ProtocolKind::Bfw);
        assert_eq!(spec.heartbeat, None);

        let spec = ScenarioSpec::parse(
            "[scenario]\ngraph = \"path:4\"\nprotocol = \"bfw+recovery\"\n\
             heartbeat = 12\ntimeout = 40\ngrace = 36",
        )
        .unwrap();
        assert_eq!(spec.protocol, ProtocolKind::BfwRecovery);
        assert_eq!(spec.heartbeat, Some(12));
        assert_eq!(spec.timeout, Some(40));
        assert_eq!(spec.grace, Some(36));
        assert_eq!(spec.protocol.to_string(), "bfw+recovery");
        assert_eq!(ProtocolKind::Bfw.to_string(), "bfw");
    }

    #[test]
    fn runtime_and_scheduler_keys_round_trip() {
        let spec = ScenarioSpec::parse("[scenario]\ngraph = \"path:4\"").unwrap();
        assert_eq!(spec.runtime, RuntimeKind::Sync);
        assert_eq!(spec.scheduler, None);
        assert_eq!(RuntimeKind::Sync.to_string(), "sync");

        let spec = ScenarioSpec::parse(
            "[scenario]\ngraph = \"path:4\"\nruntime = \"async\"\nscheduler = \"replay\"",
        )
        .unwrap();
        assert_eq!(spec.runtime, RuntimeKind::Async);
        assert_eq!(spec.scheduler, Some(Scheduler::Replay));
        assert_eq!(spec.runtime.to_string(), "async");

        // runtime = "sync" is accepted explicitly.
        let spec =
            ScenarioSpec::parse("[scenario]\ngraph = \"path:4\"\nruntime = \"sync\"").unwrap();
        assert_eq!(spec.runtime, RuntimeKind::Sync);
    }

    #[test]
    fn kernel_key_round_trips() {
        let spec = ScenarioSpec::parse("[scenario]\ngraph = \"path:4\"").unwrap();
        assert_eq!(spec.kernel, KernelKind::Auto);
        assert_eq!(KernelKind::Auto.to_string(), "auto");

        for (name, kind) in [
            ("auto", KernelKind::Auto),
            ("generic", KernelKind::Generic),
            ("bit", KernelKind::Bit),
        ] {
            let spec = ScenarioSpec::parse(&format!(
                "[scenario]\ngraph = \"path:4\"\nkernel = \"{name}\""
            ))
            .unwrap();
            assert_eq!(spec.kernel, kind);
            assert_eq!(spec.kernel.to_string(), name);
        }
    }

    #[test]
    fn bit_kernel_rejects_incompatible_stacks() {
        let e = ScenarioSpec::parse(
            "[scenario]\ngraph = \"path:4\"\nkernel = \"bit\"\nprotocol = \"bfw+recovery\"",
        )
        .unwrap_err();
        assert!(e.to_string().contains("epoch-tagged states"), "{e}");
        assert!(
            e.to_string().contains("did you mean kernel = \"generic\"?"),
            "{e}"
        );

        let e = ScenarioSpec::parse(
            "[scenario]\ngraph = \"path:4\"\nkernel = \"bit\"\nruntime = \"async\"",
        )
        .unwrap_err();
        assert!(e.to_string().contains("requires synchronous rounds"), "{e}");

        // Auto never errors: it resolves to generic for these stacks.
        let spec =
            ScenarioSpec::parse("[scenario]\ngraph = \"path:4\"\nprotocol = \"bfw+recovery\"")
                .unwrap();
        assert_eq!(spec.kernel, KernelKind::Auto);
    }

    #[test]
    fn threads_key_round_trips() {
        let spec = ScenarioSpec::parse("[scenario]\ngraph = \"path:4\"").unwrap();
        assert_eq!(spec.threads, None);

        let spec =
            ScenarioSpec::parse("[scenario]\ngraph = \"path:4\"\nkernel = \"bit\"\nthreads = 4")
                .unwrap();
        assert_eq!(spec.threads, Some(4));

        // The default (auto) kernel accepts threads too: auto resolves
        // to the bit kernel whenever the stack allows it.
        let spec = ScenarioSpec::parse("[scenario]\ngraph = \"path:4\"\nthreads = 2").unwrap();
        assert_eq!(spec.threads, Some(2));
        assert_eq!(spec.kernel, KernelKind::Auto);
    }

    #[test]
    fn threads_rejects_zero_and_incompatible_stacks() {
        let e = ScenarioSpec::parse("[scenario]\ngraph = \"path:4\"\nthreads = 0").unwrap_err();
        assert!(e.to_string().contains("threads must be at least 1"), "{e}");

        let e = ScenarioSpec::parse(
            "[scenario]\ngraph = \"path:4\"\nkernel = \"generic\"\nthreads = 4",
        )
        .unwrap_err();
        assert!(
            e.to_string().contains("did you mean kernel = \"bit\"?"),
            "{e}"
        );

        let e =
            ScenarioSpec::parse("[scenario]\ngraph = \"path:4\"\nruntime = \"async\"\nthreads = 4")
                .unwrap_err();
        assert!(
            e.to_string().contains("did you mean runtime = \"sync\"?"),
            "{e}"
        );

        let e = ScenarioSpec::parse(
            "[scenario]\ngraph = \"path:4\"\nprotocol = \"bfw+recovery\"\nthreads = 4",
        )
        .unwrap_err();
        assert!(
            e.to_string()
                .contains("threads requires protocol = \"bfw\""),
            "{e}"
        );
    }

    #[test]
    fn unknown_kernel_value_gets_hint() {
        let e =
            ScenarioSpec::parse("[scenario]\ngraph = \"path:4\"\nkernel = \"bits\"").unwrap_err();
        assert!(
            e.to_string()
                .contains("unknown kernel 'bits' (did you mean 'bit'?)"),
            "{e}"
        );
        let e = ScenarioSpec::parse("[scenario]\ngraph = \"path:4\"\nkernl = \"bit\"").unwrap_err();
        assert!(e.to_string().contains("did you mean 'kernel'?"), "{e}");
    }

    #[test]
    fn async_runtime_rejects_recovery_protocol() {
        // Slot multiplexing needs synchronous rounds: the combination
        // is a hard error with a "did you mean" hint, in either key
        // order.
        for text in [
            "[scenario]\ngraph = \"path:4\"\nruntime = \"async\"\nprotocol = \"bfw+recovery\"",
            "[scenario]\ngraph = \"path:4\"\nprotocol = \"bfw+recovery\"\nruntime = \"async\"",
        ] {
            let e = ScenarioSpec::parse(text).unwrap_err();
            assert!(e.to_string().contains("synchronous rounds"), "{e}");
            assert!(
                e.to_string().contains("did you mean protocol = \"bfw\"?"),
                "{e}"
            );
        }
    }

    #[test]
    fn scheduler_key_requires_async_runtime() {
        let e = ScenarioSpec::parse("[scenario]\ngraph = \"path:4\"\nscheduler = \"uniform\"")
            .unwrap_err();
        assert!(
            e.to_string()
                .contains("scheduler requires runtime = \"async\""),
            "{e}"
        );
    }

    #[test]
    fn unknown_runtime_and_scheduler_values_get_hints() {
        let e =
            ScenarioSpec::parse("[scenario]\ngraph = \"path:4\"\nruntime = \"asink\"").unwrap_err();
        assert!(
            e.to_string()
                .contains("unknown runtime 'asink' (did you mean 'async'?)"),
            "{e}"
        );
        let e = ScenarioSpec::parse(
            "[scenario]\ngraph = \"path:4\"\nruntime = \"async\"\nscheduler = \"unifrm\"",
        )
        .unwrap_err();
        assert!(
            e.to_string()
                .contains("unknown scheduler 'unifrm' (did you mean 'uniform'?)"),
            "{e}"
        );
        let e = ScenarioSpec::parse(
            "[scenario]\ngraph = \"path:4\"\nruntime = \"async\"\nscheduler = \"weigted\"",
        )
        .unwrap_err();
        assert!(e.to_string().contains("did you mean 'weighted'?"), "{e}");
        // Misspelled key names hit the generic key hinting.
        let e =
            ScenarioSpec::parse("[scenario]\ngraph = \"path:4\"\nruntme = \"async\"").unwrap_err();
        assert!(e.to_string().contains("did you mean 'runtime'?"), "{e}");
    }

    #[test]
    fn recovery_keys_require_recovery_protocol() {
        let e = ScenarioSpec::parse("[scenario]\ngraph = \"path:4\"\nheartbeat = 10").unwrap_err();
        assert!(
            e.to_string()
                .contains("requires protocol = \"bfw+recovery\""),
            "{e}"
        );
        let e =
            ScenarioSpec::parse("[scenario]\ngraph = \"path:4\"\nprotocol = \"bfw\"\ntimeout = 10")
                .unwrap_err();
        assert!(e.to_string().contains("timeout requires protocol"), "{e}");
    }

    #[test]
    fn unknown_names_get_did_you_mean_hints() {
        // Misspelled [scenario] key: hard error with a hint, never
        // silently ignored.
        let e =
            ScenarioSpec::parse("[scenario]\ngraph = \"path:4\"\nprotcol = \"bfw\"").unwrap_err();
        assert!(
            e.to_string()
                .contains("unknown [scenario] key 'protcol' (did you mean 'protocol'?)"),
            "{e}"
        );

        let e = ScenarioSpec::parse("[scenario]\ngraph = \"path:4\"\nstabilty = 5").unwrap_err();
        assert!(e.to_string().contains("did you mean 'stability'?"), "{e}");

        // Misspelled protocol value.
        let e = ScenarioSpec::parse("[scenario]\ngraph = \"path:4\"\nprotocol = \"bfw-recovery\"")
            .unwrap_err();
        assert!(
            e.to_string()
                .contains("unknown protocol 'bfw-recovery' (did you mean 'bfw+recovery'?)"),
            "{e}"
        );

        // Misspelled event kind and event key.
        let e = ScenarioSpec::parse(
            "[scenario]\ngraph = \"path:4\"\n[[event]]\nat = 1\nkind = \"crash-leadr\"",
        )
        .unwrap_err();
        assert!(
            e.to_string().contains("did you mean 'crash-leader'?"),
            "{e}"
        );
        let e = ScenarioSpec::parse(
            "[scenario]\ngraph = \"path:4\"\n[[event]]\nat = 1\nkind = \"crash\"\nnode = 3\nnodee = 4",
        )
        .unwrap_err();
        assert!(e.to_string().contains("did you mean 'node'?"), "{e}");

        // Misspelled section name.
        let e = ScenarioSpec::parse("[scenaro]\ngraph = \"path:4\"").unwrap_err();
        assert!(e.to_string().contains("did you mean 'scenario'?"), "{e}");

        // Nothing close: no hint.
        let e = ScenarioSpec::parse("[scenario]\ngraph = \"path:4\"\nxyzzy = 1").unwrap_err();
        assert!(!e.to_string().contains("did you mean"), "{e}");
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(did_you_mean("zzzzzz", &["heal"]), "");
    }

    #[test]
    fn errors_are_specific() {
        let missing_graph = ScenarioSpec::parse("[scenario]\nname = \"x\"").unwrap_err();
        assert!(missing_graph.to_string().contains("graph"));

        let no_section = ScenarioSpec::parse("graph = \"path:4\"").unwrap_err();
        assert!(no_section.to_string().contains("inside sections"));

        let bad_kind = ScenarioSpec::parse(
            "[scenario]\ngraph = \"path:4\"\n[[event]]\nat = 1\nkind = \"explode\"",
        )
        .unwrap_err();
        assert!(bad_kind.to_string().contains("unknown event kind"));

        let no_schedule =
            ScenarioSpec::parse("[scenario]\ngraph = \"path:4\"\n[[event]]\nkind = \"heal\"")
                .unwrap_err();
        assert!(no_schedule.to_string().contains("exactly one of"));

        let two_schedules = ScenarioSpec::parse(
            "[scenario]\ngraph = \"path:4\"\n[[event]]\nat = 1\nrate = 0.1\nkind = \"heal\"",
        )
        .unwrap_err();
        assert!(two_schedules.to_string().contains("exactly one of"));

        let stray_key = ScenarioSpec::parse(
            "[scenario]\ngraph = \"path:4\"\n[[event]]\nat = 1\nkind = \"heal\"\nnode = 3",
        )
        .unwrap_err();
        assert!(stray_key.to_string().contains("unknown key 'node'"));

        // Schedule keys from the *other* forms are rejected too: a
        // `count` on an `at` event would otherwise be silently ignored.
        let stray_count = ScenarioSpec::parse(
            "[scenario]\ngraph = \"path:4\"\n[[event]]\nat = 1\ncount = 3\nkind = \"crash-random\"",
        )
        .unwrap_err();
        assert!(
            stray_count.to_string().contains("unknown key 'count'"),
            "{stray_count}"
        );
        let stray_start = ScenarioSpec::parse(
            "[scenario]\ngraph = \"path:4\"\n[[event]]\nrate = 0.1\ncount = 2\nkind = \"heal\"",
        )
        .unwrap_err();
        assert!(
            stray_start.to_string().contains("unknown key 'count'"),
            "{stray_start}"
        );

        let bad_p = ScenarioSpec::parse("[scenario]\ngraph = \"path:4\"\np = 1.5").unwrap_err();
        assert!(bad_p.to_string().contains("p must be in (0, 1)"));

        // Node ids beyond u32::MAX must error, not panic.
        let huge = ScenarioSpec::parse(
            "[scenario]\ngraph = \"path:4\"\n[[event]]\nat = 1\nkind = \"crash\"\nnode = 4294967296",
        )
        .unwrap_err();
        assert!(huge.to_string().contains("exceeds u32::MAX"), "{huge}");
        let huge_cut = ScenarioSpec::parse(
            "[scenario]\ngraph = \"path:4\"\n[[event]]\nat = 1\nkind = \"partition\"\ncut = [4294967296]",
        )
        .unwrap_err();
        assert!(
            huge_cut.to_string().contains("exceeds u32::MAX"),
            "{huge_cut}"
        );

        let bad_section =
            ScenarioSpec::parse("[scenario]\ngraph = \"path:4\"\n[wat]\nx = 1").unwrap_err();
        assert!(bad_section.to_string().contains("unknown section"));
    }
}
