//! Deterministic fault-injection and dynamic-topology scenarios for the
//! BFW simulators.
//!
//! The paper (Vacus & Ziccardi, PODC 2025) proves BFW solves *eventual*
//! leader election on a **fixed** connected graph, and its Section 5
//! explains why the protocol is not self-stabilizing. This crate builds
//! the environment those statements are about — and then changes it
//! mid-run: nodes crash and rejoin (in fresh `W•`), edges churn,
//! partitions open and heal, perception noise flares up, and the
//! Section 5 adversarial configurations can be injected verbatim.
//!
//! Pieces:
//!
//! * [`ScenarioEvent`] — the perturbation vocabulary (crash / recover /
//!   edge churn / partition / heal / noise bursts / state injection);
//! * [`Timeline`] — fire-at-round, periodic and seeded-random schedules,
//!   compiled deterministically ([`Timeline::compile`]);
//! * [`DynamicHost`] — the runtime seam; one blanket impl covers every
//!   `TickEngine` runtime (the beeping `Network`, the
//!   `StoneAgeNetwork`, and any future model adapter), so one engine
//!   drives all models and every fault hook behaves identically across
//!   them;
//! * [`Engine`] — applies the timeline, maintains the mutable topology,
//!   and measures **re-election latency** (disruption → next
//!   unique-stable-leader) and **leader flaps** via [`ElectionMonitor`];
//! * [`ScenarioSpec`] — a small TOML format (`bfw scenario run
//!   <file>` in the CLI) parsed by an in-crate TOML-subset parser;
//! * [`RunReport`] — one structure, two views of a completed run: the
//!   pinned stdout block ([`RunReport::to_text`]) and the versioned
//!   `bfw/scenario-report` interchange document
//!   ([`RunReport::to_json_value`], checked by [`validate_run_report`]);
//! * [`run_bfw_scenario`] — the one-call BFW runner used by the CLI,
//!   the `churn` bench experiment and the `churn_storm` example.
//!
//! Everything is ChaCha-deterministic: the same spec, graph and seed
//! produce a byte-identical event log and outcome, regardless of
//! platform.
//!
//! # Example
//!
//! ```
//! use bfw_scenario::{Engine, ScenarioEvent, Timeline, bfw_injector};
//! use bfw_core::Bfw;
//! use bfw_graph::generators;
//! use bfw_sim::Network;
//!
//! let graph = generators::cycle(16);
//! let timeline = Timeline::new()
//!     .at(2_000, ScenarioEvent::CrashLeader)
//!     .at(2_200, ScenarioEvent::RecoverAll);
//! let net = Network::new(Bfw::new(0.5), graph.clone().into(), 42);
//! let outcome = Engine::new(net, &graph, &timeline, 20_000, 42, 50)
//!     .with_injector(bfw_injector())
//!     .run();
//! assert_eq!(outcome.final_leaders.len(), 1);
//! // Two disruptions (the crash and the rejoin), each answered by its
//! // own per-disruption recovery window.
//! assert_eq!(outcome.recoveries.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bfw_run;
mod engine;
mod event;
mod host;
mod lifecycle;
mod metrics;
mod report;
mod shrink;
mod spec;
mod spec_io;
mod timeline;
pub mod toml_mini;
mod trace;
mod validate;

pub use bfw_run::{
    bfw_injector, recovering_bfw_injector, resolved_kernel, resolved_threads, run_bfw_scenario,
    run_bfw_scenario_traced, scenario_recovery_config,
};
pub use bfw_sim::Scheduler;
pub use engine::{Engine, EngineCursor, Injector, ScenarioOutcome};
pub use event::{InjectKind, ScenarioEvent};
pub use host::DynamicHost;
pub use lifecycle::{
    resume_run_bfw_scenario, resume_step_bfw_scenario, step_bfw_scenario, validate_engine_snapshot,
    EngineSnapshot, SnapshotSummary,
};
pub use metrics::{ElectionMonitor, MonitorState, Recovery};
pub use report::{validate_run_report, RunReport, RunSummary};
pub use shrink::{shrink_wipeout, ShrinkReport};
pub use spec::{KernelKind, ProtocolKind, RuntimeKind, ScenarioSpec, SpecError, TraceSpec};
pub use spec_io::{spec_from_json, spec_to_json, validate_scenario_spec, SpecSummary};
pub use timeline::{Schedule, ScheduledEvent, Timeline, TimelineEntry};
pub use trace::ScenarioTrace;
pub use validate::validate_scenario;
