//! A synchronous message-passing runtime (LOCAL-style, `Θ(log n)`-bit
//! messages).
//!
//! The paper's Table 1 compares BFW against algorithms in *stronger*
//! models. This module provides the strongest reasonable reference
//! point: per round each node may broadcast one small message to all
//! neighbors and reads all received messages. `FloodMax` (in
//! `bfw-baselines`) uses it to realize the `Θ(D)` lower-bound curve
//! against which the weak-model protocols are measured.
//!
//! # Example
//!
//! ```
//! use bfw_sim::message_passing::{MessagePassingNetwork, MessageProtocol};
//! use bfw_sim::NodeCtx;
//! use bfw_graph::generators;
//!
//! /// Every node repeats the largest value it has seen.
//! #[derive(Debug, Clone)]
//! struct Max;
//! impl MessageProtocol for Max {
//!     type State = u64;
//!     type Msg = u64;
//!     fn initial_state(&self, ctx: NodeCtx) -> u64 { ctx.node.index() as u64 }
//!     fn send(&self, s: &u64) -> Option<u64> { Some(*s) }
//!     fn receive(&self, s: &u64, inbox: &[u64], _rng: &mut dyn rand::RngCore) -> u64 {
//!         inbox.iter().copied().fold(*s, u64::max)
//!     }
//! }
//!
//! let mut net = MessagePassingNetwork::new(Max, generators::path(5).into(), 0);
//! net.run(4); // diameter rounds suffice
//! assert!(net.states().iter().all(|&s| s == 4));
//! ```

use crate::{NodeCtx, Topology};
use bfw_graph::NodeId;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A protocol for the synchronous message-passing model.
pub trait MessageProtocol {
    /// Per-node state.
    type State: Clone + PartialEq + std::fmt::Debug;
    /// Message type; a faithful LOCAL-with-small-messages model keeps
    /// this within `O(log n)` bits (e.g. `u64`).
    type Msg: Clone + std::fmt::Debug;

    /// Returns the initial state of a node.
    fn initial_state(&self, ctx: NodeCtx) -> Self::State;

    /// Returns the message broadcast to all neighbors this round, or
    /// `None` to stay silent.
    fn send(&self, state: &Self::State) -> Option<Self::Msg>;

    /// Computes the next state from the received messages (arbitrary
    /// neighbor order; protocols must not rely on it).
    fn receive(
        &self,
        state: &Self::State,
        inbox: &[Self::Msg],
        rng: &mut dyn RngCore,
    ) -> Self::State;
}

/// Leader designation for message-passing protocols.
pub trait MessageLeaderElection: MessageProtocol {
    /// Returns `true` if `state` belongs to the leader set.
    fn is_leader(&self, state: &Self::State) -> bool;
}

/// Synchronous executor of a [`MessageProtocol`] on a [`Topology`].
#[derive(Debug, Clone)]
pub struct MessagePassingNetwork<P: MessageProtocol> {
    protocol: P,
    topology: Topology,
    states: Vec<P::State>,
    rngs: Vec<ChaCha8Rng>,
    round: u64,
}

impl<P: MessageProtocol> MessagePassingNetwork<P> {
    /// Creates a network in round 0 (same seeding scheme as
    /// [`Network`](crate::Network)).
    pub fn new(protocol: P, topology: Topology, seed: u64) -> Self {
        let n = topology.node_count();
        let mut master = ChaCha8Rng::seed_from_u64(seed);
        let rngs: Vec<ChaCha8Rng> = (0..n).map(|_| ChaCha8Rng::from_rng(&mut master)).collect();
        let states: Vec<P::State> = (0..n)
            .map(|i| {
                protocol.initial_state(NodeCtx {
                    node: NodeId::new(i),
                    node_count: n,
                })
            })
            .collect();
        MessagePassingNetwork {
            protocol,
            topology,
            states,
            rngs,
            round: 0,
        }
    }

    /// Returns the current round.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Returns the number of nodes.
    pub fn node_count(&self) -> usize {
        self.states.len()
    }

    /// Returns the protocol.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Returns all node states.
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// Returns the state of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn state(&self, u: NodeId) -> &P::State {
        &self.states[u.index()]
    }

    /// Advances one synchronous round: all sends happen against the
    /// round-`t` states, then all receives apply simultaneously.
    pub fn step(&mut self) {
        let n = self.states.len();
        let outbox: Vec<Option<P::Msg>> =
            self.states.iter().map(|s| self.protocol.send(s)).collect();
        let mut next = Vec::with_capacity(n);
        let mut inbox: Vec<P::Msg> = Vec::new();
        match &self.topology {
            Topology::Clique(_) => {
                let all: Vec<(usize, P::Msg)> = outbox
                    .iter()
                    .enumerate()
                    .filter_map(|(i, m)| m.clone().map(|m| (i, m)))
                    .collect();
                for u in 0..n {
                    inbox.clear();
                    inbox.extend(all.iter().filter(|(i, _)| *i != u).map(|(_, m)| m.clone()));
                    next.push(
                        self.protocol
                            .receive(&self.states[u], &inbox, &mut self.rngs[u]),
                    );
                }
            }
            graph_backed => {
                for u in 0..n {
                    inbox.clear();
                    graph_backed.for_each_neighbor(NodeId::new(u), |v| {
                        if let Some(m) = &outbox[v.index()] {
                            inbox.push(m.clone());
                        }
                    });
                    next.push(
                        self.protocol
                            .receive(&self.states[u], &inbox, &mut self.rngs[u]),
                    );
                }
            }
        }
        self.states = next;
        self.round += 1;
    }

    /// Advances `rounds` rounds.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Advances until `stop` returns `true` (checked before each step,
    /// including round 0) or the budget runs out; returns the round at
    /// which the predicate fired.
    pub fn run_until<F>(&mut self, max_rounds: u64, mut stop: F) -> Option<u64>
    where
        F: FnMut(&Self) -> bool,
    {
        loop {
            if stop(self) {
                return Some(self.round);
            }
            if self.round >= max_rounds {
                return None;
            }
            self.step();
        }
    }
}

impl<P: MessageLeaderElection> MessagePassingNetwork<P> {
    /// Returns the number of nodes in the leader set.
    pub fn leader_count(&self) -> usize {
        self.states
            .iter()
            .filter(|s| self.protocol.is_leader(s))
            .count()
    }

    /// Returns the unique leader, or `None` if there are zero or several
    /// leaders.
    pub fn unique_leader(&self) -> Option<NodeId> {
        let mut found = None;
        for (i, s) in self.states.iter().enumerate() {
            if self.protocol.is_leader(s) {
                if found.is_some() {
                    return None;
                }
                found = Some(NodeId::new(i));
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfw_graph::generators;

    #[derive(Debug, Clone)]
    struct MaxFlood;

    impl MessageProtocol for MaxFlood {
        type State = u64;
        type Msg = u64;

        fn initial_state(&self, ctx: NodeCtx) -> u64 {
            ctx.node.index() as u64
        }

        fn send(&self, s: &u64) -> Option<u64> {
            Some(*s)
        }

        fn receive(&self, s: &u64, inbox: &[u64], _rng: &mut dyn RngCore) -> u64 {
            inbox.iter().copied().fold(*s, u64::max)
        }
    }

    impl MessageLeaderElection for MaxFlood {
        fn is_leader(&self, s: &u64) -> bool {
            // Not meaningful here; used only to exercise the trait.
            *s == 0
        }
    }

    #[test]
    fn max_floods_in_diameter_rounds_on_path() {
        let n = 9;
        let mut net = MessagePassingNetwork::new(MaxFlood, generators::path(n).into(), 0);
        net.run((n - 1) as u64);
        assert!(net.states().iter().all(|&s| s == (n - 1) as u64));
    }

    #[test]
    fn max_floods_in_one_round_on_clique() {
        let mut net = MessagePassingNetwork::new(MaxFlood, Topology::Clique(20), 0);
        net.step();
        assert!(net.states().iter().all(|&s| s == 19));
    }

    #[test]
    fn flood_needs_full_diameter() {
        let n = 9;
        let mut net = MessagePassingNetwork::new(MaxFlood, generators::path(n).into(), 0);
        net.run((n - 2) as u64);
        // Node 0 is at distance n-1 from the max; one round short.
        assert_eq!(*net.state(NodeId::new(0)), (n - 2) as u64);
    }

    #[test]
    fn silent_nodes_send_nothing() {
        #[derive(Debug, Clone)]
        struct Mute;
        impl MessageProtocol for Mute {
            type State = usize; // messages received so far
            type Msg = ();
            fn initial_state(&self, _ctx: NodeCtx) -> usize {
                0
            }
            fn send(&self, _s: &usize) -> Option<()> {
                None
            }
            fn receive(&self, s: &usize, inbox: &[()], _rng: &mut dyn RngCore) -> usize {
                s + inbox.len()
            }
        }
        let mut net = MessagePassingNetwork::new(Mute, generators::complete(5).into(), 0);
        net.run(3);
        assert!(net.states().iter().all(|&s| s == 0));
    }

    #[test]
    fn run_until_stops_at_predicate() {
        let mut net = MessagePassingNetwork::new(MaxFlood, generators::path(6).into(), 0);
        let r = net.run_until(100, |n| n.states().iter().all(|&s| s == 5));
        assert_eq!(r, Some(5));
    }

    #[test]
    fn leader_helpers() {
        let net = MessagePassingNetwork::new(MaxFlood, generators::path(4).into(), 0);
        assert_eq!(net.leader_count(), 1);
        assert_eq!(net.unique_leader(), Some(NodeId::new(0)));
    }

    #[test]
    fn clique_excludes_own_message() {
        #[derive(Debug, Clone)]
        struct CountInbox;
        impl MessageProtocol for CountInbox {
            type State = usize;
            type Msg = ();
            fn initial_state(&self, _ctx: NodeCtx) -> usize {
                0
            }
            fn send(&self, _s: &usize) -> Option<()> {
                Some(())
            }
            fn receive(&self, _s: &usize, inbox: &[()], _rng: &mut dyn RngCore) -> usize {
                inbox.len()
            }
        }
        let mut net = MessagePassingNetwork::new(CountInbox, Topology::Clique(7), 0);
        net.step();
        assert!(net.states().iter().all(|&s| s == 6));
    }
}
