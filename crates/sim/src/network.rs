use crate::fault::FaultLayer;
use crate::instrument::{fanout_mask, RoundSample};
use crate::tick::{LeaderModel, TickEngine, TickModel};
use crate::{BeepingProtocol, LeaderElection, NodeCtx, Topology};
use bfw_graph::NodeId;

/// Synchronous executor of a [`BeepingProtocol`] on a [`Topology`]: the
/// beeping-model adapter over the shared [`TickEngine`].
///
/// The executor implements the beeping model exactly as defined in
/// Section 1.1 of the paper: in round `t`, the set of beeping nodes is
/// `B_t = {u : state(u) ∈ Q_b}`; node `u`'s next state is sampled from
/// `δ⊤` iff `u ∈ B_t` or some neighbor of `u` is in `B_t`, and from `δ⊥`
/// otherwise. All nodes update simultaneously.
///
/// Every node draws from its own ChaCha stream derived deterministically
/// from the run seed, so executions are reproducible and independent of
/// iteration order. Crash masking, dynamic topology and the two-channel
/// perception-noise model are inherited from the engine and therefore
/// behave identically in the stone-age runtime.
///
/// # Example
///
/// ```
/// use bfw_sim::{Network, Topology};
/// use bfw_graph::generators;
/// # use bfw_sim::{BeepingProtocol, NodeCtx};
/// # #[derive(Debug, Clone)]
/// # struct Silent;
/// # impl BeepingProtocol for Silent {
/// #     type State = u8;
/// #     fn initial_state(&self, _ctx: NodeCtx) -> u8 { 0 }
/// #     fn beeps(&self, _s: &u8) -> bool { false }
/// #     fn transition(&self, s: &u8, _h: bool, _r: &mut dyn rand::RngCore) -> u8 { s + 1 }
/// # }
///
/// let mut net = Network::new(Silent, generators::path(5).into(), 7);
/// net.run(10);
/// assert_eq!(net.round(), 10);
/// assert!(net.states().iter().all(|&s| s == 10));
/// ```
pub type Network<P> = TickEngine<BeepingModel<P>>;

/// The beeping communication model: nodes emit boolean beeps; a node
/// perceives the single signal "I beeped or some neighbor beeped".
///
/// This is the [`TickModel`] behind [`Network`]; it owns the protocol
/// and the per-round beep/heard caches, nothing else.
#[derive(Debug, Clone)]
pub struct BeepingModel<P: BeepingProtocol> {
    pub(crate) protocol: P,
    pub(crate) beeps: Vec<bool>,
    heard: Vec<bool>,
    /// Per-node degrees, maintained only while instrumentation is on
    /// (see [`TickModel::refresh_sampler_caches`]): message accounting
    /// charges each emitter `deg(u)` messages every round, and a dense
    /// `u32` dot product halves the memory traffic of walking the CSR
    /// offsets. Empty means "not instrumented" or "regular graph".
    degrees: Vec<u32>,
    /// `Some(d)` when every node has degree `d` (cycles, tori, cliques,
    /// hypercubes — most of the experiment workloads): message
    /// accounting then collapses to `emitters × d` and the sampler's
    /// only per-node work is two vectorized boolean counts.
    uniform_degree: Option<u64>,
}

impl<P: BeepingProtocol> BeepingModel<P> {
    pub(crate) fn new(protocol: P) -> Self {
        BeepingModel {
            protocol,
            beeps: Vec::new(),
            heard: Vec::new(),
            degrees: Vec::new(),
            uniform_degree: None,
        }
    }
}

impl<P: BeepingProtocol> TickModel for BeepingModel<P> {
    type State = P::State;

    fn initial_state(&self, ctx: NodeCtx) -> P::State {
        self.protocol.initial_state(ctx)
    }

    fn init_caches(&mut self, n: usize) {
        self.beeps = vec![false; n];
        self.heard = vec![false; n];
    }

    fn refresh_node(&mut self, i: usize, state: &P::State, crashed: bool) {
        self.beeps[i] = self.protocol.beeps(state) && !crashed;
    }

    fn advance(&mut self, topology: &Topology, states: &mut [P::State], faults: &mut FaultLayer) {
        topology.compute_heard(&self.beeps, &mut self.heard);
        if faults.has_noise() {
            // Unreliable perception (extension): a listener misses a
            // real beep with probability `fn`, and hears a phantom beep
            // during silence with probability `fp`. A beeping node
            // always registers its own beep; crashed nodes perceive
            // nothing and draw nothing.
            for i in 0..self.heard.len() {
                if self.beeps[i] || faults.is_crashed(i) {
                    continue;
                }
                self.heard[i] = faults.filter_signal(i, self.heard[i]);
            }
        }
        for (i, state) in states.iter_mut().enumerate() {
            if faults.is_crashed(i) {
                continue;
            }
            *state = self
                .protocol
                .transition(state, self.heard[i], faults.rng(i));
        }
        for (i, s) in states.iter().enumerate() {
            self.beeps[i] = self.protocol.beeps(s) && !faults.is_crashed(i);
        }
    }

    fn emission_sample(&self, topology: &Topology, _faults: &FaultLayer) -> Option<RoundSample> {
        // `beeps` holds B_t, already crash-masked by `refresh_node` /
        // `advance`. One beep carries one bit; each beep is delivered
        // to every neighbor of its emitter.
        let (emitters, messages) = if let Some(d) = self.uniform_degree {
            let emitters = self.beeps.iter().filter(|&&b| b).count() as u64;
            (emitters, emitters * d)
        } else if self.degrees.len() == self.beeps.len() && !self.beeps.is_empty() {
            // Irregular graph: fused branchless pass — the all-ones /
            // all-zeros select mask turns `deg(u) if beeping` into an
            // AND, which the autovectorizer handles where a widening
            // bool × u32 multiply defeats it.
            let mut emitters = 0u64;
            let mut messages = 0u64;
            for (&d, &b) in self.degrees.iter().zip(&self.beeps) {
                let select = 0u32.wrapping_sub(u32::from(b));
                emitters += u64::from(b);
                messages += u64::from(d & select);
            }
            (emitters, messages)
        } else {
            fanout_mask(topology, &self.beeps)
        };
        Some(RoundSample {
            emitters,
            heard: 0,
            bits: emitters,
            messages,
        })
    }

    fn perceived_count(&self, faults: &FaultLayer) -> Option<u64> {
        // After `advance`, `heard` holds this round's post-noise
        // perceptions; crashed nodes perceive nothing. Fault-free runs
        // (the instrumented hot path) take the vectorizable count.
        if faults.alive_count() == self.heard.len() {
            return Some(self.heard.iter().filter(|&&h| h).count() as u64);
        }
        Some(
            self.heard
                .iter()
                .zip(faults.flags())
                .filter(|&(&h, &crashed)| h && !crashed)
                .count() as u64,
        )
    }

    fn refresh_sampler_caches(&mut self, topology: &Topology) {
        self.degrees.clear();
        self.uniform_degree = None;
        match topology {
            Topology::Clique(n) => {
                self.uniform_degree = Some((*n as u64).saturating_sub(1));
            }
            Topology::Graph(g) => {
                // Static CSR graphs answer regularity in one offsets
                // scan (shared with the word-packed adjacency view);
                // only irregular ones pay for the dense degree cache.
                match g.uniform_degree() {
                    Some(d) => self.uniform_degree = Some(d as u64),
                    None => {
                        self.degrees.extend(g.nodes().map(|u| g.degree(u) as u32));
                    }
                }
            }
            graph_backed => {
                let n = topology.node_count();
                self.degrees.reserve(n);
                for i in 0..n {
                    self.degrees
                        .push(graph_backed.degree(NodeId::new(i)) as u32);
                }
                if let Some((&first, rest)) = self.degrees.split_first() {
                    if rest.iter().all(|&d| d == first) {
                        self.uniform_degree = Some(u64::from(first));
                        self.degrees = Vec::new();
                    }
                }
            }
        }
    }
}

impl<P: LeaderElection> LeaderModel for BeepingModel<P> {
    fn is_leader(&self, state: &P::State) -> bool {
        self.protocol.is_leader(state)
    }
}

impl<P: BeepingProtocol> TickEngine<BeepingModel<P>> {
    /// Creates a network in round 0 with every node in its initial
    /// state.
    ///
    /// `seed` determines the entire execution: node `i` draws from a
    /// ChaCha8 stream carved deterministically out of `seed`.
    pub fn new(protocol: P, topology: Topology, seed: u64) -> Self {
        TickEngine::from_model(BeepingModel::new(protocol), topology, seed)
    }

    /// Creates a network in round 0 from an **explicit** configuration,
    /// bypassing the protocol's initial state.
    ///
    /// This is the entry point for self-stabilization studies: the
    /// paper's Section 5 discusses why BFW cannot recover from
    /// *arbitrary* configurations (leaderless persistent waves exist —
    /// see `bfw_core::adversarial`), and this constructor lets those
    /// configurations be built and executed.
    ///
    /// # Panics
    ///
    /// Panics if `states.len()` differs from the topology's node count.
    pub fn with_states(protocol: P, topology: Topology, seed: u64, states: Vec<P::State>) -> Self {
        TickEngine::from_parts(BeepingModel::new(protocol), topology, seed, states)
    }

    /// Enables **unreliable hearing** — an extension beyond the paper's
    /// model: each round, a *listening* node that would hear a beep
    /// misses it independently with probability `q` (a node always
    /// registers its own beep). `q = 0` restores the exact beeping
    /// model, including bit-identical RNG streams.
    ///
    /// The paper's Section 3 guarantees (wave directionality, Lemma 9)
    /// assume reliable hearing; the `noise` experiment measures how
    /// they degrade.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0, 1)`.
    pub fn with_hearing_noise(mut self, q: f64) -> Self {
        self.set_noise(q, self.spurious_beep_prob());
        self
    }

    /// Returns the protocol driving this network.
    pub fn protocol(&self) -> &P {
        &self.model.protocol
    }

    /// Returns the beep flags of the current round (`u ∈ B_t`), indexed
    /// by node.
    pub fn beep_flags(&self) -> &[bool] {
        &self.model.beeps
    }

    /// Returns how many nodes beep in the current round (`|B_t|`).
    pub fn beeping_node_count(&self) -> usize {
        self.model.beeps.iter().filter(|&&b| b).count()
    }

    /// Returns a borrowed snapshot of the current round, as handed to
    /// [`Observer`](crate::Observer)s.
    pub fn view(&self) -> RoundView<'_, P> {
        RoundView {
            round: self.round,
            protocol: &self.model.protocol,
            states: &self.states,
            beeps: &self.model.beeps,
            crashed: self.faults.flags(),
        }
    }

    /// Advances until `stop(&view)` returns `true` (checked *before*
    /// each step, including round 0) or until `max_rounds` is reached.
    ///
    /// Returns the round at which the predicate fired, or `None` if the
    /// budget ran out.
    pub fn run_until<F>(&mut self, max_rounds: u64, mut stop: F) -> Option<u64>
    where
        F: FnMut(&RoundView<'_, P>) -> bool,
    {
        loop {
            if stop(&self.view()) {
                return Some(self.round);
            }
            if self.round >= max_rounds {
                return None;
            }
            self.step();
        }
    }
}

/// Immutable snapshot of a round, handed to observers and stop
/// predicates.
#[derive(Debug)]
pub struct RoundView<'a, P: BeepingProtocol> {
    /// The round number `t`.
    pub round: u64,
    /// The protocol (for interpreting states).
    pub protocol: &'a P,
    /// Per-node states in round `t`.
    pub states: &'a [P::State],
    /// Per-node beep flags: `beeps[u] ⇔ u ∈ B_t`.
    pub beeps: &'a [bool],
    /// Per-node crash flags (all `false` unless a scenario crashed
    /// nodes; a crashed node's state is its last state before the
    /// crash).
    pub crashed: &'a [bool],
}

impl<P: LeaderElection> RoundView<'_, P> {
    /// Returns the number of alive leaders in this round.
    pub fn leader_count(&self) -> usize {
        self.states
            .iter()
            .zip(self.crashed)
            .filter(|(s, &c)| !c && self.protocol.is_leader(s))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfw_graph::{generators, NodeId, TopologyDelta};
    use rand::Rng;

    /// Deterministic "wave" protocol: state counts rounds since a beep
    /// was heard; node 0 beeps once at round 0.
    #[derive(Debug, Clone)]
    struct OneShot;

    #[derive(Debug, Clone, PartialEq)]
    enum OneShotState {
        Origin,
        Idle,
        Beeped,
    }

    impl BeepingProtocol for OneShot {
        type State = OneShotState;

        fn initial_state(&self, ctx: NodeCtx) -> OneShotState {
            if ctx.node.index() == 0 {
                OneShotState::Origin
            } else {
                OneShotState::Idle
            }
        }

        fn beeps(&self, s: &OneShotState) -> bool {
            matches!(s, OneShotState::Origin)
        }

        fn transition(
            &self,
            s: &OneShotState,
            heard: bool,
            _rng: &mut dyn rand::RngCore,
        ) -> OneShotState {
            match (s, heard) {
                (OneShotState::Origin, _) => OneShotState::Beeped,
                (OneShotState::Idle, true) => OneShotState::Beeped,
                (s, _) => s.clone(),
            }
        }
    }

    impl LeaderElection for OneShot {
        fn is_leader(&self, s: &OneShotState) -> bool {
            matches!(s, OneShotState::Origin)
        }
    }

    #[test]
    fn round_zero_state() {
        let net = Network::new(OneShot, generators::path(4).into(), 0);
        assert_eq!(net.round(), 0);
        assert_eq!(net.beeping_node_count(), 1);
        assert_eq!(net.leader_count(), 1);
        assert_eq!(net.unique_leader(), Some(NodeId::new(0)));
        assert_eq!(net.leaders(), vec![NodeId::new(0)]);
    }

    #[test]
    fn beep_reaches_neighbors_only() {
        let mut net = Network::new(OneShot, generators::path(4).into(), 0);
        net.step();
        // Node 0 transitioned out; node 1 heard and became Beeped; nodes
        // 2, 3 heard nothing.
        assert_eq!(*net.state(NodeId::new(0)), OneShotState::Beeped);
        assert_eq!(*net.state(NodeId::new(1)), OneShotState::Beeped);
        assert_eq!(*net.state(NodeId::new(2)), OneShotState::Idle);
        assert_eq!(*net.state(NodeId::new(3)), OneShotState::Idle);
        assert_eq!(net.leader_count(), 0);
        assert_eq!(net.unique_leader(), None);
    }

    #[test]
    fn run_until_fires_at_round_zero() {
        let mut net = Network::new(OneShot, generators::path(3).into(), 0);
        let r = net.run_until(100, |v| v.leader_count() == 1);
        assert_eq!(r, Some(0));
        assert_eq!(net.round(), 0);
    }

    #[test]
    fn run_until_exhausts_budget() {
        let mut net = Network::new(OneShot, generators::path(3).into(), 0);
        let r = net.run_until(5, |_| false);
        assert_eq!(r, None);
        assert_eq!(net.round(), 5);
    }

    #[test]
    fn clique_topology_runs() {
        let mut net = Network::new(OneShot, Topology::Clique(64), 1);
        net.step();
        // Every node heard node 0 and became Beeped.
        assert!(net.states().iter().all(|s| *s == OneShotState::Beeped));
    }

    /// Randomized protocol used to check determinism and stream
    /// independence.
    #[derive(Debug, Clone)]
    struct CoinFlipper;

    impl BeepingProtocol for CoinFlipper {
        type State = u32;

        fn initial_state(&self, _ctx: NodeCtx) -> u32 {
            0
        }

        fn beeps(&self, _s: &u32) -> bool {
            false
        }

        fn transition(&self, s: &u32, _heard: bool, rng: &mut dyn rand::RngCore) -> u32 {
            s.wrapping_mul(31).wrapping_add(rng.random_range(0..1000))
        }
    }

    #[test]
    fn same_seed_same_execution() {
        let mk = || {
            let mut net = Network::new(CoinFlipper, generators::cycle(10).into(), 99);
            net.run(50);
            net.states().to_vec()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed| {
            let mut net = Network::new(CoinFlipper, generators::cycle(10).into(), seed);
            net.run(10);
            net.states().to_vec()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn node_streams_are_independent() {
        // With one shared stream, two nodes would draw identical values
        // in lockstep only if the iteration interleaves perfectly; with
        // per-node streams the sequences must differ between nodes.
        let mut net = Network::new(CoinFlipper, generators::path(2).into(), 5);
        net.run(20);
        assert_ne!(net.state(NodeId::new(0)), net.state(NodeId::new(1)));
    }

    #[test]
    fn view_exposes_round_data() {
        let net = Network::new(OneShot, generators::path(3).into(), 0);
        let view = net.view();
        assert_eq!(view.round, 0);
        assert_eq!(view.states.len(), 3);
        assert_eq!(view.beeps, &[true, false, false]);
    }

    #[test]
    fn with_states_overrides_initial_configuration() {
        let states = vec![OneShotState::Idle, OneShotState::Origin, OneShotState::Idle];
        let net = Network::with_states(OneShot, generators::path(3).into(), 0, states);
        assert_eq!(*net.state(NodeId::new(1)), OneShotState::Origin);
        assert_eq!(net.beeping_node_count(), 1);
        assert_eq!(net.unique_leader(), Some(NodeId::new(1)));
    }

    #[test]
    #[should_panic(expected = "one state per node")]
    fn with_states_validates_length() {
        let _ = Network::with_states(OneShot, generators::path(3).into(), 0, vec![]);
    }

    #[test]
    fn zero_noise_preserves_exact_model() {
        let run = |noisy: bool| {
            let mut net = Network::new(CoinFlipper, generators::cycle(8).into(), 3);
            if noisy {
                net = net.with_hearing_noise(0.0);
            }
            net.run(50);
            net.states().to_vec()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn noise_changes_hearing() {
        // With q close to 1, the wave from node 0 almost never
        // propagates on a path; with q = 0 it always reaches node 1.
        let mut missed = 0;
        for seed in 0..50u64 {
            let mut net =
                Network::new(OneShot, generators::path(3).into(), seed).with_hearing_noise(0.95);
            net.step();
            if *net.state(NodeId::new(1)) == OneShotState::Idle {
                missed += 1;
            }
        }
        assert!(
            missed > 30,
            "only {missed} of 50 beeps were dropped at q = 0.95"
        );
    }

    #[test]
    fn beeping_node_always_hears_itself_under_noise() {
        // AlwaysBeep-like check: Origin transitions via δ⊤ regardless of
        // noise because its own beep cannot be missed.
        for seed in 0..20u64 {
            let mut net =
                Network::new(OneShot, generators::path(2).into(), seed).with_hearing_noise(0.99);
            net.step();
            assert_eq!(*net.state(NodeId::new(0)), OneShotState::Beeped);
        }
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn noise_probability_validated() {
        let _ = Network::new(OneShot, generators::path(2).into(), 0).with_hearing_noise(1.0);
    }

    /// Every node beeps in every round — exercises crash masking.
    #[derive(Debug, Clone)]
    struct AlwaysBeep;

    impl BeepingProtocol for AlwaysBeep {
        type State = u32;
        fn initial_state(&self, _ctx: NodeCtx) -> u32 {
            0
        }
        fn beeps(&self, _s: &u32) -> bool {
            true
        }
        fn transition(&self, s: &u32, _h: bool, _r: &mut dyn rand::RngCore) -> u32 {
            s + 1
        }
    }

    #[test]
    fn crashed_node_never_beeps_and_never_transitions() {
        let mut net = Network::new(AlwaysBeep, generators::cycle(5).into(), 0);
        net.crash_node(NodeId::new(2));
        assert!(net.is_crashed(NodeId::new(2)));
        assert_eq!(net.alive_count(), 4);
        for _ in 0..10 {
            assert!(!net.beep_flags()[2], "crashed node must stay silent");
            net.step();
        }
        // Frozen at its pre-crash state while the others advanced.
        assert_eq!(*net.state(NodeId::new(2)), 0);
        assert_eq!(*net.state(NodeId::new(1)), 10);
    }

    #[test]
    fn recover_node_reboots_with_initial_state() {
        let mut net = Network::new(AlwaysBeep, generators::cycle(5).into(), 0);
        net.run(7);
        net.crash_node(NodeId::new(3));
        net.run(5);
        net.recover_node(NodeId::new(3));
        assert!(!net.is_crashed(NodeId::new(3)));
        // Fresh initial state (0), beeping again.
        assert_eq!(*net.state(NodeId::new(3)), 0);
        assert!(net.beep_flags()[3]);
        // Recovering an alive node is a no-op.
        net.recover_node(NodeId::new(0));
        assert_eq!(*net.state(NodeId::new(0)), 12);
    }

    #[test]
    fn crashed_leader_is_not_counted() {
        let mut net = Network::new(OneShot, generators::path(4).into(), 0);
        assert_eq!(net.leader_count(), 1);
        net.crash_node(NodeId::new(0));
        assert_eq!(net.leader_count(), 0);
        assert_eq!(net.unique_leader(), None);
        assert!(net.leaders().is_empty());
        assert_eq!(net.view().leader_count(), 0);
    }

    #[test]
    fn crash_silences_the_wave_source() {
        // Crashing node 0 before stepping prevents its beep from ever
        // reaching node 1.
        let mut net = Network::new(OneShot, generators::path(3).into(), 0);
        net.crash_node(NodeId::new(0));
        net.run(5);
        assert_eq!(*net.state(NodeId::new(1)), OneShotState::Idle);
    }

    #[test]
    fn set_topology_changes_hearing() {
        // On a path 0-1-2, node 2 never hears node 0's one-shot beep;
        // after rewiring to a triangle it would. Rewire before stepping.
        let mut net = Network::new(OneShot, generators::path(3).into(), 0);
        net.set_topology(generators::cycle(3).into());
        net.step();
        assert_eq!(*net.state(NodeId::new(2)), OneShotState::Beeped);
    }

    #[test]
    fn apply_topology_delta_changes_hearing() {
        // Same rewiring as `set_topology_changes_hearing`, but through
        // the O(deg) delta path: add the chord (0, 2) to the path.
        let mut net = Network::new(OneShot, generators::path(3).into(), 0);
        let mut delta = TopologyDelta::new();
        delta.add_edge(NodeId::new(0), NodeId::new(2));
        net.apply_topology_delta(&delta);
        net.step();
        assert_eq!(*net.state(NodeId::new(2)), OneShotState::Beeped);
        assert_eq!(net.topology().to_graph().edge_count(), 3);
    }

    #[test]
    #[should_panic(expected = "preserve the node count")]
    fn set_topology_validates_node_count() {
        let mut net = Network::new(OneShot, generators::path(3).into(), 0);
        net.set_topology(generators::path(4).into());
    }

    #[test]
    fn set_node_state_updates_beep_flag() {
        let mut net = Network::new(OneShot, generators::path(3).into(), 0);
        net.set_node_state(NodeId::new(2), OneShotState::Origin);
        assert_eq!(net.beeping_node_count(), 2);
        net.set_states(vec![OneShotState::Idle; 3]);
        assert_eq!(net.beeping_node_count(), 0);
    }

    #[test]
    fn spurious_beeps_wake_silent_networks() {
        // All-idle network: without noise nothing ever happens; with a
        // high false-positive rate, nodes hear phantom beeps and
        // transition.
        let mut woke = 0;
        for seed in 0..20u64 {
            let mut net = Network::with_states(
                OneShot,
                generators::path(3).into(),
                seed,
                vec![OneShotState::Idle; 3],
            );
            net.set_noise(0.0, 0.8);
            net.run(5);
            if net.states().contains(&OneShotState::Beeped) {
                woke += 1;
            }
        }
        assert!(woke > 15, "only {woke}/20 runs saw a phantom beep");
    }

    #[test]
    fn noise_reset_restores_silence() {
        let mut net = Network::new(CoinFlipper, generators::cycle(4).into(), 1);
        net.set_noise(0.3, 0.3);
        assert_eq!(net.hearing_failure_prob(), 0.3);
        assert_eq!(net.spurious_beep_prob(), 0.3);
        net.set_noise(0.0, 0.0);
        assert_eq!(net.hearing_failure_prob(), 0.0);
        assert_eq!(net.spurious_beep_prob(), 0.0);
    }

    #[test]
    #[should_panic(expected = "spurious-beep probability")]
    fn spurious_probability_validated() {
        let mut net = Network::new(OneShot, generators::path(2).into(), 0);
        net.set_noise(0.0, 1.0);
    }
}
