//! Round observers for the synchronous beeping runtime — and their
//! bridge to the engine-level instrumentation seam.
//!
//! There are two observation mechanisms in this crate, with distinct
//! scopes:
//!
//! * **[`Observer`]s** (this module) are external hooks driven by
//!   [`observe_run`]: they see a full [`RoundView`] per round, can
//!   inspect protocol states, and exist only for the synchronous
//!   beeping runtime. Use them for protocol-level bookkeeping —
//!   convergence rounds, state histograms, full traces.
//! * **[`Instrumentation`](crate::Instrumentation)** (the
//!   [`instrument`](crate::instrument) seam) lives *inside* both
//!   [`TickEngine`](crate::TickEngine) and
//!   [`ActivationEngine`](crate::ActivationEngine): it is model-blind,
//!   zero-cost when off, and counts channel complexity (beeps, bits,
//!   messages) uniformly across every runtime, including the
//!   asynchronous one that observers cannot see.
//!
//! [`ComplexityObserver`] is the adapter joining the two stories: an
//! [`Observer`] that accumulates the same
//! [`ComplexityLedger`](crate::ComplexityLedger) the engines produce,
//! for code already structured around `observe_run`. Its per-round
//! emission counts agree exactly with the engine's own ledger (see the
//! `complexity_observer_matches_engine_ledger` test); only perception
//! events (`beeps_heard`) are engine-only, because a [`RoundView`]
//! exposes the beep set `B_t` but not what each node heard through the
//! noise channels.

use crate::instrument::{fanout_mask, ComplexityLedger, RoundSample};
use crate::{BeepingProtocol, LeaderElection, RoundView, Topology};
use std::collections::HashMap;

/// A hook that inspects every round of an execution.
///
/// Observers receive the [`RoundView`] of round 0 once (via
/// [`Observer::on_round`]) and then the view of each subsequent round.
/// They power the metrics, invariant checkers and trace recorders used
/// by the experiments.
pub trait Observer<P: BeepingProtocol> {
    /// Called with the snapshot of each round, starting at round 0.
    fn on_round(&mut self, view: &RoundView<'_, P>);
}

/// Runs a network while feeding every round to an observer.
///
/// This free function is the composition point between
/// [`Network`](crate::Network) and [`Observer`]s; it steps the network
/// `max_rounds` times (observing round 0 first) unless `stop` fires.
pub fn observe_run<P, O, F>(
    net: &mut crate::Network<P>,
    observer: &mut O,
    max_rounds: u64,
    mut stop: F,
) -> Option<u64>
where
    P: BeepingProtocol,
    O: Observer<P>,
    F: FnMut(&RoundView<'_, P>) -> bool,
{
    loop {
        let view = net.view();
        observer.on_round(&view);
        if stop(&view) {
            return Some(view.round);
        }
        if net.round() >= max_rounds {
            return None;
        }
        net.step();
    }
}

/// Detects the convergence round of a leader-election execution: the
/// first round in which exactly one node is in the leader set.
///
/// For protocols whose leader count never increases (BFW: no transition
/// re-enters the leader half of the state machine) this is exactly the
/// `T` of Definition 1.
#[derive(Debug, Clone, Default)]
pub struct ConvergenceDetector {
    first_single: Option<u64>,
    leaders_ever_increased: bool,
    last_count: Option<usize>,
    min_count: usize,
}

impl ConvergenceDetector {
    /// Creates a fresh detector.
    pub fn new() -> Self {
        ConvergenceDetector {
            first_single: None,
            leaders_ever_increased: false,
            last_count: None,
            min_count: usize::MAX,
        }
    }

    /// Returns the first round with exactly one leader, if seen.
    pub fn converged_round(&self) -> Option<u64> {
        self.first_single
    }

    /// Returns `true` if the leader count ever grew between consecutive
    /// observed rounds (a violation for monotone protocols like BFW).
    pub fn leader_count_increased(&self) -> bool {
        self.leaders_ever_increased
    }

    /// Returns the smallest leader count observed so far (`usize::MAX`
    /// before any observation).
    pub fn min_leader_count(&self) -> usize {
        self.min_count
    }
}

impl<P: LeaderElection> Observer<P> for ConvergenceDetector {
    fn on_round(&mut self, view: &RoundView<'_, P>) {
        let count = view.leader_count();
        if let Some(prev) = self.last_count {
            if count > prev {
                self.leaders_ever_increased = true;
            }
        }
        self.last_count = Some(count);
        self.min_count = self.min_count.min(count);
        if count == 1 && self.first_single.is_none() {
            self.first_single = Some(view.round);
        }
    }
}

/// Tracks `N_beep_t(u)`: the number of rounds `s ≤ t` with `u ∈ B_s`
/// (the central bookkeeping of the paper's Section 2).
#[derive(Debug, Clone)]
pub struct BeepCounter {
    counts: Vec<u64>,
    rounds_observed: u64,
}

impl BeepCounter {
    /// Creates a counter for `n` nodes.
    pub fn new(n: usize) -> Self {
        BeepCounter {
            counts: vec![0; n],
            rounds_observed: 0,
        }
    }

    /// Returns `N_beep_t(u)` for the last observed round `t`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn count(&self, u: usize) -> u64 {
        self.counts[u]
    }

    /// Returns all counts, indexed by node.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Returns the number of observed rounds (including round 0).
    pub fn rounds_observed(&self) -> u64 {
        self.rounds_observed
    }

    /// Returns the total number of beeps across all nodes and rounds —
    /// the "energy" consumed by the execution.
    pub fn total_beeps(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl<P: BeepingProtocol> Observer<P> for BeepCounter {
    fn on_round(&mut self, view: &RoundView<'_, P>) {
        debug_assert_eq!(view.beeps.len(), self.counts.len());
        for (c, &b) in self.counts.iter_mut().zip(view.beeps) {
            *c += u64::from(b);
        }
        self.rounds_observed += 1;
    }
}

/// Counts how many distinct protocol states each node has visited, and
/// how many distinct states appeared anywhere in the execution.
///
/// This measures the "States" column of the paper's Table 1 empirically
/// (BFW must never exceed 6; ID-based baselines grow with `n`).
#[derive(Debug, Clone, Default)]
pub struct StateHistogram {
    /// Debug-format key → number of node-rounds spent in that state.
    by_state: HashMap<String, u64>,
}

impl StateHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the number of distinct states observed.
    pub fn distinct_states(&self) -> usize {
        self.by_state.len()
    }

    /// Returns the number of node-rounds spent in `state_key`
    /// (the `Debug` rendering of the state).
    pub fn occupancy(&self, state_key: &str) -> u64 {
        self.by_state.get(state_key).copied().unwrap_or(0)
    }

    /// Returns `(state, node-rounds)` pairs sorted by descending
    /// occupancy.
    pub fn sorted(&self) -> Vec<(String, u64)> {
        let mut v: Vec<_> = self.by_state.iter().map(|(k, &c)| (k.clone(), c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }
}

impl<P: BeepingProtocol> Observer<P> for StateHistogram {
    fn on_round(&mut self, view: &RoundView<'_, P>) {
        for s in view.states {
            *self.by_state.entry(format!("{s:?}")).or_insert(0) += 1;
        }
    }
}

/// Records the full execution: per round, the states and beep flags.
///
/// Memory is `O(rounds · n)`; intended for visualization and for the
/// beeping ↔ stone-age equivalence tests, not for long Monte-Carlo
/// sweeps.
#[derive(Debug, Clone)]
pub struct TraceRecorder<S> {
    states: Vec<Vec<S>>,
    beeps: Vec<Vec<bool>>,
}

impl<S: Clone> TraceRecorder<S> {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        TraceRecorder {
            states: Vec::new(),
            beeps: Vec::new(),
        }
    }

    /// Returns the number of recorded rounds.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Returns the states of recorded round `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` rounds have not been recorded.
    pub fn states_at(&self, t: usize) -> &[S] {
        &self.states[t]
    }

    /// Returns the beep flags of recorded round `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` rounds have not been recorded.
    pub fn beeps_at(&self, t: usize) -> &[bool] {
        &self.beeps[t]
    }

    /// Returns all recorded rounds of states.
    pub fn all_states(&self) -> &[Vec<S>] {
        &self.states
    }
}

impl<S: Clone> Default for TraceRecorder<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: BeepingProtocol> Observer<P> for TraceRecorder<P::State> {
    fn on_round(&mut self, view: &RoundView<'_, P>) {
        self.states.push(view.states.to_vec());
        self.beeps.push(view.beeps.to_vec());
    }
}

/// An [`Observer`] accumulating the engine-style
/// [`ComplexityLedger`] — the adapter between the legacy sync-only
/// observer machinery and the [`instrument`](crate::instrument) seam
/// (see the module docs).
///
/// The observer needs its own copy of the topology because a
/// [`RoundView`] carries only node-indexed flags; pass the same
/// topology the network runs on. Emission accounting (beeps sent,
/// bits, messages) matches the engine ledger row for row; perception
/// events stay 0 here (engine-only, see the module docs). One
/// [`on_round`](Observer::on_round) call accounts one round, so drive
/// it once per round *before* the corresponding step — observing the
/// final view too (as [`observe_run`] does) adds one extra row.
#[derive(Debug, Clone)]
pub struct ComplexityObserver {
    topology: Topology,
    ledger: ComplexityLedger,
}

impl ComplexityObserver {
    /// Creates an observer counting over `topology`.
    pub fn new(topology: Topology) -> Self {
        ComplexityObserver {
            topology,
            ledger: ComplexityLedger::new(),
        }
    }

    /// Returns the accumulated counters.
    pub fn ledger(&self) -> &ComplexityLedger {
        &self.ledger
    }

    /// Unwraps the accumulated counters.
    pub fn into_ledger(self) -> ComplexityLedger {
        self.ledger
    }
}

impl<P: BeepingProtocol> Observer<P> for ComplexityObserver {
    fn on_round(&mut self, view: &RoundView<'_, P>) {
        // `view.beeps` is `B_t`, already crash-masked by the engine.
        let (emitters, messages) = fanout_mask(&self.topology, view.beeps);
        let sample = RoundSample {
            emitters,
            heard: 0,
            bits: emitters,
            messages,
        };
        self.ledger
            .record(sample, view.states.len(), std::mem::size_of::<P::State>());
    }
}

/// Combines two observers into one (build trees of `ObserverSet` for
/// more).
#[derive(Debug, Clone, Default)]
pub struct ObserverSet<A, B> {
    /// First observer.
    pub first: A,
    /// Second observer.
    pub second: B,
}

impl<A, B> ObserverSet<A, B> {
    /// Pairs two observers.
    pub fn new(first: A, second: B) -> Self {
        ObserverSet { first, second }
    }
}

impl<P, A, B> Observer<P> for ObserverSet<A, B>
where
    P: BeepingProtocol,
    A: Observer<P>,
    B: Observer<P>,
{
    fn on_round(&mut self, view: &RoundView<'_, P>) {
        self.first.on_round(view);
        self.second.on_round(view);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Network, NodeCtx, Topology};
    use bfw_graph::generators;

    /// n-round countdown: node u is a "leader" for u+1 rounds, beeping
    /// on even rounds.
    #[derive(Debug, Clone)]
    struct Countdown;

    impl BeepingProtocol for Countdown {
        type State = (u32, u32); // (remaining, age)

        fn initial_state(&self, ctx: NodeCtx) -> (u32, u32) {
            (ctx.node.index() as u32, 0)
        }

        fn beeps(&self, s: &(u32, u32)) -> bool {
            s.0 > 0 && s.1.is_multiple_of(2)
        }

        fn transition(&self, s: &(u32, u32), _h: bool, _r: &mut dyn rand::RngCore) -> (u32, u32) {
            (s.0.saturating_sub(1), s.1 + 1)
        }
    }

    impl LeaderElection for Countdown {
        fn is_leader(&self, s: &(u32, u32)) -> bool {
            s.0 > 0
        }
    }

    #[test]
    fn convergence_detector_finds_single_leader_round() {
        // Leaders at round t: nodes with id > t. Single leader once only
        // node 3 remains, i.e. at round 2 (nodes 0..=2 have 0 remaining
        // at rounds 0, 1, 2 resp.).
        let mut net = Network::new(Countdown, Topology::Graph(generators::path(4)), 0);
        let mut det = ConvergenceDetector::new();
        let r = observe_run(&mut net, &mut det, 100, |v| v.leader_count() <= 1);
        assert_eq!(r, Some(2));
        assert_eq!(det.converged_round(), Some(2));
        assert!(!det.leader_count_increased());
        assert_eq!(det.min_leader_count(), 1);
    }

    #[test]
    fn beep_counter_counts_rounds_in_beep_state() {
        let mut net = Network::new(Countdown, Topology::Graph(generators::path(3)), 0);
        let mut counter = BeepCounter::new(3);
        observe_run(&mut net, &mut counter, 5, |_| false);
        // Node 0 never beeps; node 1 beeps at round 0 only; node 2 beeps
        // at rounds 0 (age 0) — age 1 is odd — so 1 beep... wait: node 2
        // has remaining=2, so it can beep at ages 0 and... age must be
        // even and remaining > 0: round 0 (rem 2, age 0) beeps; round 1
        // (rem 1, age 1) no; round 2 (rem 0) no. So 1 beep.
        assert_eq!(counter.counts(), &[0, 1, 1]);
        assert_eq!(counter.rounds_observed(), 6); // rounds 0..=5
        assert_eq!(counter.total_beeps(), 2);
        assert_eq!(counter.count(2), 1);
    }

    #[test]
    fn state_histogram_counts_distinct_states() {
        let mut net = Network::new(Countdown, Topology::Graph(generators::path(2)), 0);
        let mut hist = StateHistogram::new();
        observe_run(&mut net, &mut hist, 2, |_| false);
        // Rounds 0,1,2 × 2 nodes = 6 node-rounds.
        let total: u64 = hist.sorted().iter().map(|(_, c)| c).sum();
        assert_eq!(total, 6);
        assert!(hist.distinct_states() >= 3);
        assert_eq!(hist.occupancy("(0, 0)"), 1);
        assert_eq!(hist.occupancy("missing"), 0);
    }

    #[test]
    fn trace_recorder_replays_execution() {
        let mut net = Network::new(Countdown, Topology::Graph(generators::path(2)), 0);
        let mut trace = TraceRecorder::new();
        assert!(trace.is_empty());
        observe_run(&mut net, &mut trace, 3, |_| false);
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.states_at(0), &[(0, 0), (1, 0)]);
        assert_eq!(trace.beeps_at(0), &[false, true]);
        assert_eq!(trace.states_at(1), &[(0, 1), (0, 1)]);
        assert_eq!(trace.all_states().len(), 4);
    }

    #[test]
    fn complexity_observer_matches_engine_ledger() {
        // Drive observer and engine instrumentation over the same
        // execution: one on_round call per step, sampled pre-step so
        // both see the same B_t.
        let topology: Topology = generators::grid(3, 3).into();
        let mut net = Network::new(Countdown, topology.clone(), 0);
        net.enable_instrumentation(None);
        let mut obs = ComplexityObserver::new(topology);
        for _ in 0..12 {
            obs.on_round(&net.view());
            net.step();
        }
        let engine = net.complexity_ledger().expect("instrumentation on");
        let observed = obs.ledger();
        assert_eq!(observed.steps(), engine.steps());
        assert_eq!(observed.beeps_sent(), engine.beeps_sent());
        assert_eq!(observed.bits(), engine.bits());
        assert_eq!(observed.messages(), engine.messages());
        assert_eq!(observed.nodes(), engine.nodes());
        assert_eq!(
            observed.state_bytes_per_node(),
            engine.state_bytes_per_node()
        );
        assert!(observed.beeps_sent() > 0, "countdown protocol beeps");
        // Perception is engine-only (see module docs).
        assert_eq!(observed.beeps_heard(), 0);
        assert!(engine.beeps_heard() > 0);
        let _ = obs.clone().into_ledger();
    }

    #[test]
    fn observer_set_feeds_both() {
        let mut net = Network::new(Countdown, Topology::Graph(generators::path(3)), 0);
        let mut set = ObserverSet::new(BeepCounter::new(3), ConvergenceDetector::new());
        observe_run(&mut net, &mut set, 10, |_| false);
        assert!(set.first.total_beeps() > 0);
        assert!(set.second.converged_round().is_some());
    }
}
