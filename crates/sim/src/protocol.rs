use bfw_graph::NodeId;
use rand::RngCore;

/// Per-node construction context passed to
/// [`BeepingProtocol::initial_state`].
///
/// A *uniform* protocol in the paper's sense (Section 1.1) must ignore
/// everything in this struct: its initial state may not depend on the
/// node's identity nor on the size of the graph. The context exists so
/// that the *non-uniform* baselines (which the paper's Table 1 compares
/// against) can receive unique identifiers and `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeCtx {
    /// The node being initialized. Protocols that use this as an
    /// identifier are not anonymous.
    pub node: NodeId,
    /// Number of nodes in the network. Protocols that use this are not
    /// uniform.
    pub node_count: usize,
}

/// A protocol for the beeping model: the probabilistic state machine
/// `M = (Q_ℓ, Q_b, q_s, δ⊥, δ⊤)` of the paper's Section 1.1.
///
/// * `Q_b` is encoded by [`beeps`](Self::beeps) returning `true`;
/// * `q_s` is [`initial_state`](Self::initial_state);
/// * [`transition`](Self::transition) is `δ⊤` when `heard` is `true` and
///   `δ⊥` otherwise. The executor computes `heard` exactly as the model
///   prescribes: a node "hears" in round `t` iff it beeps itself or at
///   least one neighbor beeps in round `t`.
///
/// Implementations should be cheap to clone and `Send + Sync` so that
/// Monte-Carlo runs can share them across threads.
pub trait BeepingProtocol {
    /// Per-node protocol state (a member of `Q_ℓ ∪ Q_b`).
    type State: Clone + PartialEq + std::fmt::Debug;

    /// Returns the initial state of a node. Uniform anonymous protocols
    /// ignore `ctx`.
    fn initial_state(&self, ctx: NodeCtx) -> Self::State;

    /// Returns `true` if `state` belongs to the beeping set `Q_b`.
    fn beeps(&self, state: &Self::State) -> bool;

    /// Samples the next state: `δ⊤(state)` if `heard`, else `δ⊥(state)`.
    ///
    /// By the model's definition, when `self.beeps(state)` is `true` the
    /// executor always passes `heard = true` (a beeping node hears its
    /// own beep).
    fn transition(&self, state: &Self::State, heard: bool, rng: &mut dyn RngCore) -> Self::State;
}

/// A beeping protocol that designates a leader subset `L ⊆ Q` of its
/// states (Definition 1 of the paper).
///
/// Eventual leader election is solved when, from some round `T` on,
/// exactly one node's state lies in `L`.
pub trait LeaderElection: BeepingProtocol {
    /// Returns `true` if `state` belongs to the leader set `L`.
    fn is_leader(&self, state: &Self::State) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A protocol that alternates beep/listen deterministically; used to
    /// exercise the trait plumbing.
    #[derive(Debug, Clone)]
    struct Blinker;

    impl BeepingProtocol for Blinker {
        type State = bool;

        fn initial_state(&self, ctx: NodeCtx) -> bool {
            // Odd nodes start beeping (non-uniform on purpose for the
            // test).
            ctx.node.index() % 2 == 1
        }

        fn beeps(&self, state: &bool) -> bool {
            *state
        }

        fn transition(&self, state: &bool, _heard: bool, _rng: &mut dyn RngCore) -> bool {
            !state
        }
    }

    impl LeaderElection for Blinker {
        fn is_leader(&self, state: &bool) -> bool {
            *state
        }
    }

    #[test]
    fn trait_methods_work_through_generics() {
        fn exercise<P: LeaderElection>(p: &P, ctx: NodeCtx) -> (bool, bool) {
            let s = p.initial_state(ctx);
            (p.beeps(&s), p.is_leader(&s))
        }
        let ctx = NodeCtx {
            node: NodeId::new(3),
            node_count: 10,
        };
        assert_eq!(exercise(&Blinker, ctx), (true, true));
        let ctx0 = NodeCtx {
            node: NodeId::new(0),
            node_count: 10,
        };
        assert_eq!(exercise(&Blinker, ctx0), (false, false));
    }

    #[test]
    fn transition_through_dyn_rng() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        let next = Blinker.transition(&true, true, &mut rng);
        assert!(!next);
    }
}
