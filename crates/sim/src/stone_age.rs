//! A synchronous variant of the stone-age model (Emek & Wattenhofer,
//! PODC 2013), as a model adapter over the shared
//! [`TickEngine`].
//!
//! In the stone-age model, each node displays a symbol from a finite
//! alphabet `Σ`. When activated, a node observes, for every symbol
//! `σ ∈ Σ`, the number of neighbors currently displaying `σ` — but only
//! up to a fixed threshold `b ≥ 1` ("one-two-many" counting). The
//! paper remarks (Section 1) that BFW "can also be implemented in a
//! synchronous version of the stone-age model"; this module provides
//! that synchronous runtime and the [`BeepingAsStoneAge`] adapter that
//! proves the claim executable: with alphabet `{silent, beep}` and
//! `b = 1`, the adapter reproduces beeping-model executions
//! bit-for-bit (see the `model_equivalence` integration test) — now
//! including crash masking and perception noise, because both live in
//! the engine's shared fault layer rather than in either runtime.
//!
//! # Perception noise
//!
//! The engine's two noise channels act on the **presence bit** of each
//! non-quiescent symbol channel: for an alive node `u` and each symbol
//! `σ ≥ 1` that `u` is not itself displaying, an observed `σ` (clamped
//! count ≥ 1) is lost with probability `fn` (the count reads 0) and an
//! unobserved `σ` is hallucinated with probability `fp` (the count
//! reads 1). Symbol 0 is the conventional quiescent symbol and is
//! noise-free, and a node's own displayed symbol cannot be missed or
//! hallucinated — the stone-age analogue of "a node always registers
//! its own beep". Under the [`BeepingAsStoneAge`] adapter this
//! reproduces the beeping noise model draw-for-draw.
//!
//! # Example
//!
//! ```
//! use bfw_sim::stone_age::{StoneAgeNetwork, BeepingAsStoneAge};
//! use bfw_sim::{BeepingProtocol, NodeCtx};
//! use bfw_graph::generators;
//!
//! #[derive(Debug, Clone)]
//! struct AlwaysBeep;
//! impl BeepingProtocol for AlwaysBeep {
//!     type State = ();
//!     fn initial_state(&self, _ctx: NodeCtx) {}
//!     fn beeps(&self, _s: &()) -> bool { true }
//!     fn transition(&self, _s: &(), heard: bool, _r: &mut dyn rand::RngCore) {
//!         assert!(heard);
//!     }
//! }
//!
//! let adapter = BeepingAsStoneAge::new(AlwaysBeep);
//! let mut net = StoneAgeNetwork::new(adapter, generators::cycle(6).into(), 3);
//! net.step();
//! assert_eq!(net.round(), 1);
//! ```

use crate::activation::{ActivationEngine, ActivationLeaderModel, ActivationModel};
use crate::fault::FaultLayer;
use crate::instrument::{bits_per_symbol, fanout, RoundSample};
use crate::tick::{LeaderModel, TickEngine, TickModel};
use crate::{BeepingProtocol, LeaderElection, NodeCtx, Topology};
use bfw_graph::NodeId;
use rand::RngCore;

/// A protocol for the synchronous stone-age model.
///
/// Symbols are represented as `usize` indices in
/// `0..`[`alphabet_size`](Self::alphabet_size). By convention symbol 0
/// is the quiescent symbol (exempt from perception noise).
pub trait StoneAgeProtocol {
    /// Per-node state.
    type State: Clone + PartialEq + std::fmt::Debug;

    /// Number of symbols in the display alphabet `Σ`.
    fn alphabet_size(&self) -> usize;

    /// The counting threshold `b ≥ 1`: observations are clamped to
    /// `min(count, b)`.
    fn counting_threshold(&self) -> u8 {
        1
    }

    /// Returns the initial state of a node.
    fn initial_state(&self, ctx: NodeCtx) -> Self::State;

    /// Returns the symbol a node in `state` displays.
    fn displayed_symbol(&self, state: &Self::State) -> usize;

    /// Samples the next state given the clamped per-symbol neighbor
    /// counts: `observed[σ] = min(#neighbors displaying σ, b)`.
    fn transition(
        &self,
        state: &Self::State,
        observed: &[u8],
        rng: &mut dyn RngCore,
    ) -> Self::State;
}

/// Synchronous executor of a [`StoneAgeProtocol`] on a [`Topology`]:
/// the stone-age adapter over the shared [`TickEngine`].
///
/// Mirrors [`Network`](crate::Network): all nodes observe the displayed
/// symbols of round `t` and transition simultaneously to round `t + 1`.
/// Crash masking, dynamic topology (including
/// [`apply_topology_delta`](TickEngine::apply_topology_delta)) and
/// perception noise ([`set_noise`](TickEngine::set_noise)) come from
/// the engine and behave identically to the beeping runtime.
pub type StoneAgeNetwork<P> = TickEngine<StoneAgeModel<P>>;

/// The stone-age communication model: nodes display alphabet symbols; a
/// node perceives per-symbol neighbor counts clamped at the threshold.
///
/// This is the [`TickModel`] behind [`StoneAgeNetwork`]; it owns the
/// protocol, the displayed-symbol cache and the observation scratch.
#[derive(Debug, Clone)]
pub struct StoneAgeModel<P: StoneAgeProtocol> {
    protocol: P,
    symbols: Vec<usize>,
    observed: Vec<u8>,
}

impl<P: StoneAgeProtocol> StoneAgeModel<P> {
    fn new(protocol: P) -> Self {
        StoneAgeModel {
            protocol,
            symbols: Vec::new(),
            observed: Vec::new(),
        }
    }

    fn tally(&mut self, v: usize, b: u8, sigma: usize) {
        let s = self.symbols[v];
        assert!(
            s < sigma,
            "displayed symbol {s} outside alphabet of size {sigma}"
        );
        if self.observed[s] < b {
            self.observed[s] += 1;
        }
    }

    /// Applies the presence-bit noise channels to node `u`'s
    /// observation vector (see the module docs).
    fn apply_noise(&mut self, u: usize, faults: &mut FaultLayer) {
        apply_presence_noise(self.symbols[u], &mut self.observed, u, faults);
    }
}

/// The presence-bit noise rule shared by the synchronous and
/// asynchronous stone-age models: for each non-quiescent symbol `s ≥ 1`
/// that node `u` is not itself displaying (`own`), the observed
/// presence bit passes through the fault layer's two noise channels —
/// lost with probability `fn`, hallucinated with probability `fp`.
/// Symbol 0 is the conventional quiescent symbol and is noise-free, and
/// a node's own displayed symbol cannot be missed or hallucinated.
fn apply_presence_noise(own: usize, observed: &mut [u8], u: usize, faults: &mut FaultLayer) {
    for (s, slot) in observed.iter_mut().enumerate().skip(1) {
        if s == own {
            continue;
        }
        let present = *slot > 0;
        let filtered = faults.filter_signal(u, present);
        if filtered != present {
            *slot = u8::from(filtered);
        }
    }
}

impl<P: StoneAgeProtocol> TickModel for StoneAgeModel<P> {
    type State = P::State;

    fn initial_state(&self, ctx: NodeCtx) -> P::State {
        self.protocol.initial_state(ctx)
    }

    fn init_caches(&mut self, n: usize) {
        self.symbols = vec![0; n];
    }

    fn refresh_node(&mut self, i: usize, state: &P::State, _crashed: bool) {
        // Crash visibility is enforced at observation time (a crashed
        // node's symbol is skipped), so the cache always mirrors the
        // state.
        self.symbols[i] = self.protocol.displayed_symbol(state);
    }

    fn advance(&mut self, topology: &Topology, states: &mut [P::State], faults: &mut FaultLayer) {
        let sigma = self.protocol.alphabet_size();
        let b = self.protocol.counting_threshold();
        assert!(b >= 1, "counting threshold must be at least 1");
        self.observed.resize(sigma, 0);
        let noisy = faults.has_noise();
        match topology {
            Topology::Clique(_) => {
                // Count each symbol globally once (alive nodes only),
                // then per node subtract its own contribution —
                // O(n·|Σ|) instead of O(n²).
                let mut totals = vec![0usize; sigma];
                for (u, &s) in self.symbols.iter().enumerate() {
                    assert!(
                        s < sigma,
                        "displayed symbol {s} outside alphabet of size {sigma}"
                    );
                    if !faults.is_crashed(u) {
                        totals[s] += 1;
                    }
                }
                for (u, state) in states.iter_mut().enumerate() {
                    if faults.is_crashed(u) {
                        continue;
                    }
                    for (s, &total) in totals.iter().enumerate() {
                        let count = total - usize::from(self.symbols[u] == s);
                        self.observed[s] = count.min(b as usize) as u8;
                    }
                    if noisy {
                        self.apply_noise(u, faults);
                    }
                    *state = self
                        .protocol
                        .transition(state, &self.observed, faults.rng(u));
                }
            }
            graph_backed => {
                for (u, state) in states.iter_mut().enumerate() {
                    if faults.is_crashed(u) {
                        continue;
                    }
                    self.observed.fill(0);
                    graph_backed.for_each_neighbor(NodeId::new(u), |v| {
                        if !faults.is_crashed(v.index()) {
                            self.tally(v.index(), b, sigma);
                        }
                    });
                    if noisy {
                        self.apply_noise(u, faults);
                    }
                    *state = self
                        .protocol
                        .transition(state, &self.observed, faults.rng(u));
                }
            }
        }
        for (symbol, state) in self.symbols.iter_mut().zip(states.iter()) {
            *symbol = self.protocol.displayed_symbol(state);
        }
    }

    // Unlike the beeping model, `symbols` always mirrors the states even
    // for crashed nodes (crash visibility is enforced at observation
    // time), so alive-ness is re-checked here. A transmission is any
    // alive node displaying a non-quiescent symbol; each carries
    // ⌈log₂ |Σ|⌉ bits. The per-symbol observation scratch is reused
    // across nodes within `advance`, so per-node perception events are
    // not recoverable post-hoc: `perceived_count` stays at its `None`
    // default and the ledger's `beeps_heard` column reads 0 for
    // stone-age runs.
    fn emission_sample(&self, topology: &Topology, faults: &FaultLayer) -> Option<RoundSample> {
        let (emitters, messages) =
            fanout(topology, |i| self.symbols[i] != 0 && !faults.is_crashed(i));
        Some(RoundSample {
            emitters,
            heard: 0,
            bits: emitters * bits_per_symbol(self.protocol.alphabet_size()),
            messages,
        })
    }
}

impl<P: StoneAgeLeaderElection> LeaderModel for StoneAgeModel<P> {
    fn is_leader(&self, state: &P::State) -> bool {
        self.protocol.is_leader(state)
    }
}

impl<P: StoneAgeProtocol> TickEngine<StoneAgeModel<P>> {
    /// Creates a network in round 0.
    ///
    /// Seeding matches [`Network::new`](crate::Network::new): the same
    /// `seed` gives every node the same ChaCha stream in both runtimes.
    pub fn new(protocol: P, topology: Topology, seed: u64) -> Self {
        TickEngine::from_model(StoneAgeModel::new(protocol), topology, seed)
    }

    /// Returns the protocol.
    pub fn protocol(&self) -> &P {
        &self.model.protocol
    }

    /// Returns the symbols currently displayed, indexed by node.
    pub fn displayed_symbols(&self) -> &[usize] {
        &self.model.symbols
    }
}

/// Leader designation for stone-age protocols (the analogue of
/// [`LeaderElection`] trait of the beeping runtime).
pub trait StoneAgeLeaderElection: StoneAgeProtocol {
    /// Returns `true` if `state` belongs to the leader set.
    fn is_leader(&self, state: &Self::State) -> bool;
}

/// Runs any [`BeepingProtocol`] inside the stone-age runtime.
///
/// The adapter displays symbol [`SYM_BEEP`](Self::SYM_BEEP) when the
/// wrapped protocol beeps and [`SYM_SILENT`](Self::SYM_SILENT)
/// otherwise, and reconstructs the beeping model's hearing predicate as
/// `heard = beeps(own state) ∨ observed[SYM_BEEP] ≥ 1`. Threshold
/// `b = 1` suffices — this is exactly the paper's claim that BFW needs
/// no counting beyond "at least one".
#[derive(Debug, Clone)]
pub struct BeepingAsStoneAge<P> {
    inner: P,
}

impl<P> BeepingAsStoneAge<P> {
    /// Symbol displayed by silent nodes.
    pub const SYM_SILENT: usize = 0;
    /// Symbol displayed by beeping nodes.
    pub const SYM_BEEP: usize = 1;

    /// Wraps a beeping protocol.
    pub fn new(inner: P) -> Self {
        BeepingAsStoneAge { inner }
    }

    /// Returns the wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Unwraps the adapter.
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P: BeepingProtocol> StoneAgeProtocol for BeepingAsStoneAge<P> {
    type State = P::State;

    fn alphabet_size(&self) -> usize {
        2
    }

    fn counting_threshold(&self) -> u8 {
        1
    }

    fn initial_state(&self, ctx: NodeCtx) -> P::State {
        self.inner.initial_state(ctx)
    }

    fn displayed_symbol(&self, state: &P::State) -> usize {
        if self.inner.beeps(state) {
            Self::SYM_BEEP
        } else {
            Self::SYM_SILENT
        }
    }

    fn transition(&self, state: &P::State, observed: &[u8], rng: &mut dyn RngCore) -> P::State {
        let heard = self.inner.beeps(state) || observed[Self::SYM_BEEP] >= 1;
        self.inner.transition(state, heard, rng)
    }
}

impl<P: LeaderElection> StoneAgeLeaderElection for BeepingAsStoneAge<P> {
    fn is_leader(&self, state: &Self::State) -> bool {
        self.inner.is_leader(state)
    }
}

/// **Asynchronous** executor of a [`StoneAgeProtocol`]: nodes are
/// activated one at a time by a pluggable scheduler (uniformly random
/// by default — the randomized fair scheduler common in
/// self-stabilization work; the original stone-age model of Emek &
/// Wattenhofer is asynchronous). This is the asynchronous adapter over
/// the shared [`ActivationEngine`].
///
/// The paper is careful to claim BFW only for a *synchronous* version
/// of the stone-age model. This executor exists to probe why: under
/// asynchronous activation a displayed beep persists until its node is
/// next activated, wave timing desynchronizes, and the freeze no
/// longer shields a leader from its own (now smeared-out) wave. The
/// `async` experiments use it exploratorily; no correctness claim from
/// the paper applies here. Since the engine embeds the same
/// [`FaultLayer`] as the synchronous runtimes, crashes, perception
/// noise, delta-applied dynamic topology and scenario timelines (with
/// positions read in activations) all work here too — see
/// [`Scheduler`](crate::Scheduler) for the available schedulers.
pub type AsyncStoneAgeNetwork<P> = ActivationEngine<AsyncStoneAgeModel<P>>;

/// The asynchronous stone-age communication model: one activated node
/// observes the *current* displayed symbols of its alive neighbors
/// (clamped at the counting threshold) and transitions.
///
/// This is the [`ActivationModel`] behind [`AsyncStoneAgeNetwork`]; it
/// owns the protocol, the displayed-symbol cache and the observation
/// scratch. Perception noise acts on the same per-symbol presence bits
/// as in the synchronous [`StoneAgeModel`] (see the module docs): for
/// the activated node, each non-quiescent symbol it is not itself
/// displaying can be lost or hallucinated; symbol 0 and the node's own
/// symbol are noise-free.
#[derive(Debug, Clone)]
pub struct AsyncStoneAgeModel<P: StoneAgeProtocol> {
    protocol: P,
    symbols: Vec<usize>,
    observed: Vec<u8>,
}

impl<P: StoneAgeProtocol> ActivationModel for AsyncStoneAgeModel<P> {
    type State = P::State;

    fn initial_state(&self, ctx: NodeCtx) -> P::State {
        self.protocol.initial_state(ctx)
    }

    fn init_caches(&mut self, n: usize) {
        self.symbols = vec![0; n];
    }

    fn refresh_node(&mut self, i: usize, state: &P::State, _crashed: bool) {
        // As in the synchronous model, crash visibility is enforced at
        // observation time (a crashed node's symbol is skipped), so the
        // cache always mirrors the state.
        self.symbols[i] = self.protocol.displayed_symbol(state);
    }

    fn activate(
        &mut self,
        topology: &Topology,
        u: usize,
        states: &mut [P::State],
        faults: &mut FaultLayer,
    ) {
        let sigma = self.protocol.alphabet_size();
        let b = self.protocol.counting_threshold();
        assert!(b >= 1, "counting threshold must be at least 1");
        self.observed.clear();
        self.observed.resize(sigma, 0);
        topology.for_each_neighbor(NodeId::new(u), |v| {
            let s = self.symbols[v.index()];
            assert!(s < sigma, "displayed symbol {s} outside alphabet");
            if !faults.is_crashed(v.index()) && self.observed[s] < b {
                self.observed[s] += 1;
            }
        });
        if faults.has_noise() {
            apply_presence_noise(self.symbols[u], &mut self.observed, u, faults);
        }
        states[u] = self
            .protocol
            .transition(&states[u], &self.observed, faults.rng(u));
        self.symbols[u] = self.protocol.displayed_symbol(&states[u]);
    }

    // In the asynchronous (pull-style) model the activated node reads
    // each alive neighbor's display: every such read is one message.
    // The node itself is the only possible transmitter of the
    // activation — it counts as an emitter if it displays a
    // non-quiescent symbol, carrying ⌈log₂ |Σ|⌉ bits.
    fn activation_sample(
        &self,
        topology: &Topology,
        u: usize,
        faults: &FaultLayer,
    ) -> Option<RoundSample> {
        let mut alive_neighbors = 0u64;
        topology.for_each_neighbor(NodeId::new(u), |v| {
            if !faults.is_crashed(v.index()) {
                alive_neighbors += 1;
            }
        });
        let emitters = u64::from(self.symbols[u] != 0);
        Some(RoundSample {
            emitters,
            heard: 0,
            bits: emitters * bits_per_symbol(self.protocol.alphabet_size()),
            messages: alive_neighbors,
        })
    }

    // The observation scratch still holds the activated node's
    // post-noise view when this is called (immediately after
    // `activate`): a perception event is any non-quiescent symbol seen.
    fn perceived_after(&self, _u: usize) -> Option<u64> {
        Some(u64::from(self.observed.iter().skip(1).any(|&c| c > 0)))
    }
}

impl<P: StoneAgeLeaderElection> ActivationLeaderModel for AsyncStoneAgeModel<P> {
    fn is_leader(&self, state: &P::State) -> bool {
        self.protocol.is_leader(state)
    }
}

impl<P: StoneAgeProtocol> ActivationEngine<AsyncStoneAgeModel<P>> {
    /// Creates a network with zero activations performed, under the
    /// default uniform scheduler.
    ///
    /// Seeding carves the node streams exactly as
    /// [`StoneAgeNetwork::new`] does, then one scheduler stream — the
    /// carving order of the pre-engine asynchronous runtime, so its
    /// pinned traces reproduce bit-for-bit (see the
    /// `activation_engine_equivalence` workspace test).
    pub fn new(protocol: P, topology: Topology, seed: u64) -> Self {
        ActivationEngine::from_model(
            AsyncStoneAgeModel {
                protocol,
                symbols: Vec::new(),
                observed: Vec::new(),
            },
            topology,
            seed,
        )
    }

    /// Returns the protocol.
    pub fn protocol(&self) -> &P {
        &self.model.protocol
    }

    /// Returns the symbols currently displayed, indexed by node.
    pub fn displayed_symbols(&self) -> &[usize] {
        &self.model.symbols
    }

    /// Activates one uniformly scheduler-chosen node (the historical
    /// name of [`activate_next`](ActivationEngine::activate_next)).
    pub fn activate_random(&mut self) {
        self.activate_next();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Network;
    use bfw_graph::generators;
    use rand::Rng;

    /// Counts neighbors displaying symbol 1, clamped at b = 2.
    #[derive(Debug, Clone)]
    struct CountTwo;

    impl StoneAgeProtocol for CountTwo {
        type State = u8; // last observation of symbol 1

        fn alphabet_size(&self) -> usize {
            2
        }

        fn counting_threshold(&self) -> u8 {
            2
        }

        fn initial_state(&self, ctx: NodeCtx) -> u8 {
            // Node 0 displays symbol 0 forever; others display symbol 1.
            if ctx.node.index() == 0 {
                200 // sentinel: display symbol 0
            } else {
                100 // sentinel: display symbol 1
            }
        }

        fn displayed_symbol(&self, s: &u8) -> usize {
            usize::from(*s < 200)
        }

        fn transition(&self, s: &u8, observed: &[u8], _rng: &mut dyn RngCore) -> u8 {
            if *s >= 200 {
                // Track the clamped observation in 200 + x for node 0.
                200 + observed[1]
            } else {
                100
            }
        }
    }

    #[test]
    fn counting_clamps_at_threshold() {
        // Star with 5 leaves, all displaying symbol 1: the hub observes
        // min(5, 2) = 2.
        let mut net = StoneAgeNetwork::new(CountTwo, generators::star(6).into(), 0);
        net.step();
        assert_eq!(*net.state(NodeId::new(0)), 202);

        // Path: hub observes exactly 1 neighbor.
        let mut net = StoneAgeNetwork::new(CountTwo, generators::path(2).into(), 0);
        net.step();
        assert_eq!(*net.state(NodeId::new(0)), 201);
    }

    /// Randomized beeping protocol for equivalence testing: beep with
    /// probability 1/2 unless heard, then stay silent 1 round.
    #[derive(Debug, Clone)]
    struct RandomBeeper;

    impl BeepingProtocol for RandomBeeper {
        type State = i8; // 1 = beeping, 0 = idle, -1 = muted

        fn initial_state(&self, _ctx: NodeCtx) -> i8 {
            0
        }

        fn beeps(&self, s: &i8) -> bool {
            *s == 1
        }

        fn transition(&self, s: &i8, heard: bool, rng: &mut dyn RngCore) -> i8 {
            match (*s, heard) {
                (1, _) => -1,
                (-1, _) => 0,
                (0, true) => 0,
                (0, false) => i8::from(rng.random_bool(0.5)),
                _ => unreachable!(),
            }
        }
    }

    impl LeaderElection for RandomBeeper {
        fn is_leader(&self, s: &i8) -> bool {
            *s == 1
        }
    }

    #[test]
    fn adapter_reproduces_beeping_execution_exactly() {
        let g = generators::grid(4, 5);
        for seed in [0u64, 1, 42, 1234] {
            let mut beeping = Network::new(RandomBeeper, g.clone().into(), seed);
            let mut stone =
                StoneAgeNetwork::new(BeepingAsStoneAge::new(RandomBeeper), g.clone().into(), seed);
            for _ in 0..200 {
                beeping.step();
                stone.step();
                assert_eq!(beeping.states(), stone.states(), "seed {seed}");
            }
        }
    }

    #[test]
    fn adapter_reproduces_clique_execution() {
        for seed in [7u64, 8] {
            let mut beeping = Network::new(RandomBeeper, Topology::Clique(12), seed);
            let mut stone = StoneAgeNetwork::new(
                BeepingAsStoneAge::new(RandomBeeper),
                Topology::Clique(12),
                seed,
            );
            for _ in 0..100 {
                beeping.step();
                stone.step();
                assert_eq!(beeping.states(), stone.states());
            }
        }
    }

    #[test]
    fn adapter_reproduces_noisy_execution_exactly() {
        // Both noise channels on: the shared fault layer must draw in
        // the same per-node pattern in both runtimes, so the traces
        // stay bit-identical even under perception noise.
        let g = generators::grid(3, 4);
        for seed in [0u64, 5, 21] {
            let mut beeping = Network::new(RandomBeeper, g.clone().into(), seed);
            let mut stone =
                StoneAgeNetwork::new(BeepingAsStoneAge::new(RandomBeeper), g.clone().into(), seed);
            beeping.set_noise(0.2, 0.1);
            stone.set_noise(0.2, 0.1);
            for _ in 0..150 {
                beeping.step();
                stone.step();
                assert_eq!(beeping.states(), stone.states(), "seed {seed}");
            }
        }
    }

    #[test]
    fn stone_age_noise_drops_and_hallucinates_observations() {
        // Hub of a path(2) observes its one displaying neighbor; with
        // fn ≈ 1 the observation is almost always lost.
        let mut lost = 0;
        for seed in 0..30u64 {
            let mut net = StoneAgeNetwork::new(CountTwo, generators::path(2).into(), seed);
            net.set_noise(0.95, 0.0);
            net.step();
            if *net.state(NodeId::new(0)) == 200 {
                lost += 1;
            }
        }
        assert!(lost > 20, "only {lost}/30 observations were dropped");

        // An isolated pair of silent-displaying nodes: with fp ≈ 1 the
        // hub hallucinates symbol 1 although nobody displays it.
        #[derive(Debug, Clone)]
        struct AllZero;
        impl StoneAgeProtocol for AllZero {
            type State = u8;
            fn alphabet_size(&self) -> usize {
                2
            }
            fn initial_state(&self, _ctx: NodeCtx) -> u8 {
                0
            }
            fn displayed_symbol(&self, _s: &u8) -> usize {
                0
            }
            fn transition(&self, _s: &u8, observed: &[u8], _rng: &mut dyn RngCore) -> u8 {
                observed[1]
            }
        }
        let mut ghosts = 0;
        for seed in 0..30u64 {
            let mut net = StoneAgeNetwork::new(AllZero, generators::path(2).into(), seed);
            net.set_noise(0.0, 0.95);
            net.step();
            if *net.state(NodeId::new(0)) == 1 {
                ghosts += 1;
            }
        }
        assert!(ghosts > 20, "only {ghosts}/30 runs hallucinated a symbol");
    }

    #[test]
    fn stone_age_zero_noise_draws_nothing() {
        let run = |noisy: bool| {
            let mut net = StoneAgeNetwork::new(
                BeepingAsStoneAge::new(RandomBeeper),
                generators::cycle(8).into(),
                3,
            );
            if noisy {
                net.set_noise(0.0, 0.0);
            }
            net.run(50);
            net.states().to_vec()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn adapter_exposes_inner() {
        let a = BeepingAsStoneAge::new(RandomBeeper);
        let _: &RandomBeeper = a.inner();
        let _: RandomBeeper = a.into_inner();
    }

    #[test]
    fn leader_count_through_adapter() {
        let net = StoneAgeNetwork::new(
            BeepingAsStoneAge::new(RandomBeeper),
            generators::path(5).into(),
            0,
        );
        assert_eq!(net.leader_count(), 0);
        assert_eq!(net.node_count(), 5);
        assert_eq!(net.displayed_symbols(), &[0, 0, 0, 0, 0]);
    }

    #[test]
    fn async_activation_touches_one_node() {
        let adapter = BeepingAsStoneAge::new(RandomBeeper);
        let mut net = AsyncStoneAgeNetwork::new(adapter, generators::cycle(6).into(), 4);
        let before = net.states().to_vec();
        net.activate(NodeId::new(2));
        let after = net.states();
        let changed: Vec<usize> = (0..6).filter(|&i| before[i] != after[i]).collect();
        assert!(changed.is_empty() || changed == [2], "{changed:?}");
        assert_eq!(net.activations(), 1);
    }

    #[test]
    fn async_scheduler_is_seed_deterministic() {
        let run = |seed| {
            let adapter = BeepingAsStoneAge::new(RandomBeeper);
            let mut net = AsyncStoneAgeNetwork::new(adapter, generators::cycle(8).into(), seed);
            net.run_activations(200);
            net.states().to_vec()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn async_leader_count_works() {
        let adapter = BeepingAsStoneAge::new(RandomBeeper);
        let mut net = AsyncStoneAgeNetwork::new(adapter, generators::cycle(8).into(), 1);
        assert_eq!(net.leader_count(), 0);
        net.run_activations(500);
        assert_eq!(net.node_count(), 8);
        // RandomBeeper's "leaders" are the currently-beeping nodes;
        // count is whatever it is, but never exceeds n.
        assert!(net.leader_count() <= 8);
    }

    #[test]
    fn crashed_node_is_invisible_and_inert() {
        // All nodes display symbol 1 except node 0 (CountTwo). Crash a
        // leaf of the star: the hub then observes one fewer displayer.
        let mut net = StoneAgeNetwork::new(CountTwo, generators::star(3).into(), 0);
        net.crash_node(NodeId::new(2));
        assert!(net.is_crashed(NodeId::new(2)));
        net.step();
        // Hub saw only leaf 1 (leaf 2 crashed): clamped count 1.
        assert_eq!(*net.state(NodeId::new(0)), 201);
        // Crashed node did not transition.
        assert_eq!(*net.state(NodeId::new(2)), 100);
        net.recover_node(NodeId::new(2));
        assert!(!net.is_crashed(NodeId::new(2)));
        net.step();
        assert_eq!(*net.state(NodeId::new(0)), 202);
    }

    #[test]
    fn clique_fast_path_ignores_crashed_nodes() {
        let mut graph_net = StoneAgeNetwork::new(CountTwo, generators::complete(5).into(), 0);
        let mut clique_net = StoneAgeNetwork::new(CountTwo, Topology::Clique(5), 0);
        for net in [&mut graph_net, &mut clique_net] {
            net.crash_node(NodeId::new(3));
            net.crash_node(NodeId::new(4));
            net.step();
        }
        assert_eq!(graph_net.states(), clique_net.states());
        // Node 0 observed 2 alive displayers of symbol 1 (nodes 1, 2).
        assert_eq!(*graph_net.state(NodeId::new(0)), 202);
    }

    #[test]
    fn stone_age_set_topology_swaps_adjacency() {
        let mut net = StoneAgeNetwork::new(CountTwo, generators::path(3).into(), 0);
        // On the path 0-1-2 the hub (node 0) has one neighbor; after
        // rewiring to a star centered at 0 it has two.
        net.set_topology(generators::star(3).into());
        net.step();
        assert_eq!(*net.state(NodeId::new(0)), 202);
    }

    #[test]
    fn stone_age_apply_delta_edits_adjacency() {
        use bfw_graph::TopologyDelta;
        let mut net = StoneAgeNetwork::new(CountTwo, generators::path(3).into(), 0);
        // Same rewiring as above, through the O(deg) delta path: add the
        // chord (0, 2) so the hub gains a second displaying neighbor.
        let mut delta = TopologyDelta::new();
        delta.add_edge(NodeId::new(0), NodeId::new(2));
        net.apply_topology_delta(&delta);
        net.step();
        assert_eq!(*net.state(NodeId::new(0)), 202);
    }

    #[test]
    fn async_clique_counts_neighbors_not_self() {
        // In a clique of 2, an activated node observes exactly its one
        // peer's symbol.
        #[derive(Debug, Clone)]
        struct RecordObs;
        impl StoneAgeProtocol for RecordObs {
            type State = u8;
            fn alphabet_size(&self) -> usize {
                2
            }
            fn initial_state(&self, ctx: NodeCtx) -> u8 {
                // Node 0 displays symbol 1; node 1 displays symbol 0.
                u8::from(ctx.node.index() == 0)
            }
            fn displayed_symbol(&self, s: &u8) -> usize {
                usize::from(*s == 1)
            }
            fn transition(&self, s: &u8, observed: &[u8], _rng: &mut dyn RngCore) -> u8 {
                // Keep own display, but record what was seen in bit 1.
                (s & 1) | (observed[1] << 1)
            }
        }
        let mut net = AsyncStoneAgeNetwork::new(RecordObs, Topology::Clique(2), 0);
        net.activate(NodeId::new(1));
        // Node 1 saw node 0's symbol (1).
        assert_eq!(net.states()[1] & 0b10, 0b10);
        net.activate(NodeId::new(0));
        // Node 0 saw node 1's symbol (0): bit not set.
        assert_eq!(net.states()[0] & 0b10, 0);
    }
}
