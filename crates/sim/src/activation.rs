//! The activation engine: one fault substrate and one scheduling loop
//! for asynchronous runtimes — the activation-based sibling of
//! [`TickEngine`](crate::TickEngine).
//!
//! The paper is careful to claim BFW only for *synchronous* weak
//! models; the asynchronous stone-age executor exists to probe why
//! (see [`AsyncStoneAgeNetwork`](crate::stone_age::AsyncStoneAgeNetwork)).
//! Before this engine existed, that runtime was a bare scheduler with
//! no fault vocabulary: no crashes, no perception noise, no dynamic
//! topology. [`ActivationEngine`] closes that gap by embedding the same
//! [`FaultLayer`] the synchronous engine uses — the crash bitmask, the
//! per-node ChaCha8 streams and the two noise channels exist once and
//! behave identically under rounds and under activations — while an
//! [`ActivationModel`] contributes only what an asynchronous
//! communication model defines: how one *activation* of one node
//! perceives and transitions.
//!
//! Determinism contract: the master stream carves `n` node streams in
//! index order, then one scheduler stream — exactly the carving order
//! of the pre-engine asynchronous runtime, so its pinned traces
//! reproduce bit-for-bit (see the `activation_engine_equivalence`
//! workspace test). The [uniform](Scheduler::Uniform) scheduler rejects
//! draws that land on crashed nodes instead of renumbering the alive
//! set, so the scheduler stream itself never shifts when the crash mask
//! changes.

use crate::fault::FaultLayer;
use crate::instrument::{ComplexityLedger, FlightRecorder, Instrumentation, RoundSample};
use crate::snapshot::{EngineCheckpoint, SchedulerCheckpoint};
use crate::{NodeCtx, Topology};
use bfw_graph::{NodeId, TopologyDelta};
use rand::Rng as _;
use rand_chacha::ChaCha8Rng;

/// An asynchronous communication model, pluggable into
/// [`ActivationEngine`].
///
/// A model owns the protocol and its emission caches (displayed
/// symbols, …) and defines how one activation of one node works; the
/// engine owns everything else — topology, crash mask, RNG streams,
/// noise channels, the scheduler and the activation counter.
/// Implementation:
/// [`AsyncStoneAgeModel`](crate::stone_age::AsyncStoneAgeModel).
pub trait ActivationModel {
    /// Per-node protocol state.
    type State: Clone + PartialEq + std::fmt::Debug;

    /// Returns the protocol's initial state for one node.
    fn initial_state(&self, ctx: NodeCtx) -> Self::State;

    /// Sizes the model's per-node emission caches for `n` nodes.
    fn init_caches(&mut self, n: usize);

    /// Refreshes node `i`'s emission cache after its state or crash
    /// flag changed.
    fn refresh_node(&mut self, i: usize, state: &Self::State, crashed: bool);

    /// Normalizes an externally supplied state before it is installed
    /// (mirrors [`TickModel::adopt_state`](crate::TickModel)). The
    /// default is a no-op.
    fn adopt_state(&self, _state: &mut Self::State) {}

    /// Executes one activation of node `u` in place: observe the
    /// current emissions over `topology` (honoring the crash mask and
    /// noise channels in `faults`), transition `u` using its RNG
    /// stream, and refresh its emission cache. Every other node is
    /// untouched.
    fn activate(
        &mut self,
        topology: &Topology,
        u: usize,
        states: &mut [Self::State],
        faults: &mut FaultLayer,
    );

    /// Samples what one activation of `u` would transmit (called by an
    /// instrumented engine immediately before
    /// [`activate`](Self::activate); see [`crate::instrument`] for the
    /// accounting conventions). Must only read the model's existing
    /// caches — never draw from an RNG stream. The default (`None`)
    /// opts a model out of complexity accounting; the engine then
    /// records an all-zero sample.
    fn activation_sample(
        &self,
        _topology: &Topology,
        _u: usize,
        _faults: &FaultLayer,
    ) -> Option<RoundSample> {
        None
    }

    /// Reports whether node `u` perceived a non-quiescent signal in the
    /// activation [`activate`](Self::activate) just executed
    /// (post-noise): `Some(1)` if it did, `Some(0)` if not, `None` if
    /// the model does not track it.
    fn perceived_after(&self, _u: usize) -> Option<u64> {
        None
    }
}

/// An [`ActivationModel`] whose protocol designates a leader subset of
/// its states — the seam the scenario engine's election metrics need
/// (the asynchronous analogue of [`LeaderModel`](crate::LeaderModel)).
pub trait ActivationLeaderModel: ActivationModel {
    /// Returns `true` if `state` belongs to the protocol's leader set.
    fn is_leader(&self, state: &Self::State) -> bool;
}

/// How the engine picks the next node to activate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// One uniformly random alive node per step — the randomized fair
    /// scheduler common in self-stabilization work. Draws landing on a
    /// crashed node are rejected and redrawn from the same stream
    /// (never renumbered), so crashing a node perturbs the schedule of
    /// the survivors as little as possible.
    #[default]
    Uniform,
    /// Degree-weighted random: an alive node is activated with
    /// probability proportional to `deg(u) + 1` in the current
    /// topology — a contention model where well-connected nodes are
    /// scheduled more often. Costs `O(n + m)` per draw.
    Weighted,
    /// Seeded adversarial replay: a fixed ChaCha-derived permutation of
    /// the nodes, swept cyclically (crashed nodes are skipped within
    /// the sweep). The permutation is drawn once from the scheduler
    /// stream when this scheduler is installed, so the same seed
    /// replays the same adversarial order forever — the deterministic
    /// round-robin adversary of asynchronous lower bounds.
    Replay,
}

impl std::fmt::Display for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Scheduler::Uniform => "uniform",
            Scheduler::Weighted => "weighted",
            Scheduler::Replay => "replay",
        })
    }
}

/// Asynchronous executor generic over the communication model.
///
/// Use the model-specific alias and constructor —
/// [`AsyncStoneAgeNetwork`](crate::stone_age::AsyncStoneAgeNetwork) for
/// the asynchronous stone-age model; everything documented here is
/// model-independent. The engine shares the [`FaultLayer`] with the
/// synchronous [`TickEngine`](crate::TickEngine), so crash masking,
/// perception noise and delta-applied dynamic topology behave
/// identically across both. Time is measured in **activations** (one
/// node transition per step); the scenario engine drives this executor
/// with timeline positions interpreted in activations.
#[derive(Debug, Clone)]
pub struct ActivationEngine<M: ActivationModel> {
    pub(crate) model: M,
    topology: Topology,
    states: Vec<M::State>,
    faults: FaultLayer,
    scheduler_rng: ChaCha8Rng,
    scheduler: Scheduler,
    replay_order: Vec<NodeId>,
    replay_cursor: usize,
    weight_scratch: Vec<u64>,
    activations: u64,
    instr: Instrumentation,
}

impl<M: ActivationModel> ActivationEngine<M> {
    /// Builds an engine with zero activations performed and every node
    /// in the model's initial state, under the default
    /// [uniform](Scheduler::Uniform) scheduler.
    pub(crate) fn from_model(mut model: M, topology: Topology, seed: u64) -> Self {
        let n = topology.node_count();
        let (faults, scheduler_rng) = FaultLayer::with_scheduler(n, seed);
        let states: Vec<M::State> = (0..n)
            .map(|i| {
                model.initial_state(NodeCtx {
                    node: NodeId::new(i),
                    node_count: n,
                })
            })
            .collect();
        model.init_caches(n);
        for (i, s) in states.iter().enumerate() {
            model.refresh_node(i, s, false);
        }
        ActivationEngine {
            model,
            topology,
            states,
            faults,
            scheduler_rng,
            scheduler: Scheduler::Uniform,
            replay_order: Vec::new(),
            replay_cursor: 0,
            weight_scratch: Vec::new(),
            activations: 0,
            instr: Instrumentation::off(),
        }
    }

    /// Returns the number of nodes.
    pub fn node_count(&self) -> usize {
        self.states.len()
    }

    /// Returns the number of activations performed so far.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Returns the topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Returns the current state of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn state(&self, u: NodeId) -> &M::State {
        &self.states[u.index()]
    }

    /// Returns all node states, indexed by node.
    pub fn states(&self) -> &[M::State] {
        &self.states
    }

    /// Returns the installed scheduler.
    pub fn scheduler(&self) -> Scheduler {
        self.scheduler
    }

    /// Installs a scheduler for all subsequent
    /// [`activate_next`](Self::activate_next) steps.
    ///
    /// Installing [`Scheduler::Replay`] draws the replay permutation
    /// from the scheduler stream at this point (a Fisher–Yates shuffle)
    /// and resets the sweep cursor, so the adversarial order is a pure
    /// function of the seed and the moment of installation.
    pub fn set_scheduler(&mut self, scheduler: Scheduler) {
        self.scheduler = scheduler;
        self.replay_order.clear();
        self.replay_cursor = 0;
        if scheduler == Scheduler::Replay {
            let n = self.states.len();
            let mut order: Vec<NodeId> = (0..n).map(NodeId::new).collect();
            for i in (1..n).rev() {
                let j = self.scheduler_rng.random_range(0..i + 1);
                order.swap(i, j);
            }
            self.replay_order = order;
        }
    }

    /// Activates one scheduler-chosen alive node and returns it. If
    /// every node is crashed, no node transitions and no RNG draw
    /// happens, but the activation counter still advances — time keeps
    /// passing over a fully crashed network, exactly as rounds keep
    /// elapsing in the synchronous engine — and `None` is returned.
    /// Crash-masked nodes are never activated, under any scheduler.
    pub fn activate_next(&mut self) -> Option<NodeId> {
        let n = self.states.len();
        if self.faults.alive_count() == 0 {
            self.activations += 1;
            return None;
        }
        let u = match self.scheduler {
            Scheduler::Uniform => loop {
                let u = self.scheduler_rng.random_range(0..n);
                if !self.faults.is_crashed(u) {
                    break NodeId::new(u);
                }
            },
            Scheduler::Weighted => {
                // Weight alive node u by deg(u) + 1 in the current
                // topology (the +1 keeps isolated nodes schedulable).
                let mut weights = std::mem::take(&mut self.weight_scratch);
                weights.clear();
                weights.resize(n, 0);
                let mut total = 0u64;
                for (i, w) in weights.iter_mut().enumerate() {
                    if self.faults.is_crashed(i) {
                        continue;
                    }
                    let mut deg = 0u64;
                    self.topology
                        .for_each_neighbor(NodeId::new(i), |_| deg += 1);
                    *w = deg + 1;
                    total += *w;
                }
                let mut r = self.scheduler_rng.random_range(0..total);
                let mut chosen = 0;
                for (i, &w) in weights.iter().enumerate() {
                    if r < w {
                        chosen = i;
                        break;
                    }
                    r -= w;
                }
                self.weight_scratch = weights;
                NodeId::new(chosen)
            }
            Scheduler::Replay => {
                assert!(
                    !self.replay_order.is_empty(),
                    "replay scheduler installed without a permutation"
                );
                loop {
                    let u = self.replay_order[self.replay_cursor];
                    self.replay_cursor = (self.replay_cursor + 1) % self.replay_order.len();
                    if !self.faults.is_crashed(u.index()) {
                        break u;
                    }
                }
            }
        };
        self.activate(u);
        Some(u)
    }

    /// Activates a specific node (for externally scripted adversarial
    /// schedules): it observes the *current* emissions of its alive
    /// neighbors and transitions; everyone else is untouched. A crashed
    /// node performs no transition and the activation is not counted.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn activate(&mut self, u: NodeId) {
        if self.faults.is_crashed(u.index()) {
            return;
        }
        if self.instr.is_on() {
            let mut sample = self
                .model
                .activation_sample(&self.topology, u.index(), &self.faults)
                .unwrap_or_default();
            self.model.activate(
                &self.topology,
                u.index(),
                &mut self.states,
                &mut self.faults,
            );
            if let Some(heard) = self.model.perceived_after(u.index()) {
                sample.heard = heard;
            }
            self.instr
                .record_step(sample, self.states.len(), std::mem::size_of::<M::State>());
        } else {
            self.model.activate(
                &self.topology,
                u.index(),
                &mut self.states,
                &mut self.faults,
            );
        }
        self.activations += 1;
    }

    /// Performs `count` scheduler-chosen activations (stalled steps on
    /// a fully crashed network count toward `count`).
    pub fn run_activations(&mut self, count: u64) {
        for _ in 0..count {
            self.activate_next();
        }
    }

    /// Replaces the communication topology mid-run. States, RNG
    /// streams, the scheduler and the activation counter are untouched.
    ///
    /// # Panics
    ///
    /// Panics if the new topology's node count differs from the
    /// network's.
    pub fn set_topology(&mut self, topology: Topology) {
        assert_eq!(
            topology.node_count(),
            self.states.len(),
            "topology mutation must preserve the node count"
        );
        self.topology = topology;
    }

    /// Applies a batch of edge mutations to the topology in `O(deg)`
    /// per edge (see
    /// [`TickEngine::apply_topology_delta`](crate::TickEngine::apply_topology_delta);
    /// the semantics are identical).
    ///
    /// # Panics
    ///
    /// Panics if the delta removes an absent edge or adds a present
    /// one.
    pub fn apply_topology_delta(&mut self, delta: &TopologyDelta) {
        self.topology.apply_delta(delta);
    }

    /// Crashes node `u`: it is never scheduled, emits nothing, and its
    /// RNG stream is paused, not consumed. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn crash_node(&mut self, u: NodeId) {
        let i = u.index();
        self.faults.crash(i);
        self.model.refresh_node(i, &self.states[i], true);
    }

    /// Recovers node `u` with a **fresh protocol-initial state** (as a
    /// newly booted device would). No-op on nodes that are not crashed.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn recover_node(&mut self, u: NodeId) {
        let i = u.index();
        if !self.faults.recover(i) {
            return;
        }
        self.states[i] = self.model.initial_state(NodeCtx {
            node: u,
            node_count: self.states.len(),
        });
        self.model.refresh_node(i, &self.states[i], false);
    }

    /// Returns `true` if `u` is currently crashed.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn is_crashed(&self, u: NodeId) -> bool {
        self.faults.is_crashed(u.index())
    }

    /// Returns the crash flags, indexed by node.
    pub fn crash_flags(&self) -> &[bool] {
        self.faults.flags()
    }

    /// Returns the number of non-crashed nodes.
    pub fn alive_count(&self) -> usize {
        self.faults.alive_count()
    }

    /// Sets both perception-noise probabilities at once (see
    /// [`TickEngine::set_noise`](crate::TickEngine::set_noise); the
    /// channels live in the same shared [`FaultLayer`] and behave
    /// identically). `(0, 0)` restores the exact model — zero-probability
    /// channels draw nothing.
    ///
    /// # Panics
    ///
    /// Panics if either probability is not in `[0, 1)`.
    pub fn set_noise(&mut self, false_negative: f64, false_positive: f64) {
        self.faults.set_noise(false_negative, false_positive);
    }

    /// Returns the false-negative (lost-signal) probability.
    pub fn hearing_failure_prob(&self) -> f64 {
        self.faults.false_negative()
    }

    /// Returns the false-positive (hallucinated-signal) probability.
    pub fn spurious_beep_prob(&self) -> f64 {
        self.faults.false_positive()
    }

    /// Overwrites the state of node `u` (the scenario engine's
    /// state-injection hook).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn set_node_state(&mut self, u: NodeId, state: M::State) {
        let i = u.index();
        let mut state = state;
        self.model.adopt_state(&mut state);
        self.states[i] = state;
        self.model
            .refresh_node(i, &self.states[i], self.faults.is_crashed(i));
    }

    /// Replaces the whole configuration (crashed nodes keep their crash
    /// mask and stay silent).
    ///
    /// # Panics
    ///
    /// Panics if `states.len()` differs from the node count.
    pub fn set_states(&mut self, states: Vec<M::State>) {
        assert_eq!(
            states.len(),
            self.states.len(),
            "one state per node is required"
        );
        self.states = states;
        for s in &mut self.states {
            self.model.adopt_state(s);
        }
        for (i, s) in self.states.iter().enumerate() {
            self.model.refresh_node(i, s, self.faults.is_crashed(i));
        }
    }

    /// Captures the engine's checkpoint — activation counter, crash
    /// mask, noise channels, per-node RNG stream positions *and* the
    /// scheduler half: the scheduler stream position and replay-sweep
    /// cursor. The replay permutation itself is not captured — it is a
    /// pure function of the seed and the installation point, so restore
    /// re-draws it via [`set_scheduler`](Self::set_scheduler). See
    /// [`EngineCheckpoint`].
    pub fn checkpoint(&self) -> EngineCheckpoint {
        let n = self.states.len();
        EngineCheckpoint {
            steps: self.activations,
            crashed: self.faults.flags().to_vec(),
            false_negative: self.faults.false_negative(),
            false_positive: self.faults.false_positive(),
            rng_positions: (0..n).map(|i| self.faults.rng_position(i)).collect(),
            scheduler: Some(SchedulerCheckpoint {
                rng_position: self.scheduler_rng.position(),
                replay_cursor: self.replay_cursor,
            }),
        }
    }

    /// Restores a checkpoint taken by [`checkpoint`](Self::checkpoint)
    /// on an engine built from the same seed. The caller must have
    /// installed the checkpointed run's scheduler (via
    /// [`set_scheduler`](Self::set_scheduler)) **before** this call —
    /// installation re-draws the replay permutation from the scheduler
    /// stream exactly as the original run did; this method then
    /// fast-forwards that stream to its checkpointed position (which is
    /// already past the permutation draws) and restores the sweep
    /// cursor.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's node count or `states.len()` differs
    /// from the engine's, or if the checkpoint has no scheduler half.
    pub fn restore_checkpoint(&mut self, cp: &EngineCheckpoint, states: Vec<M::State>) {
        let n = self.states.len();
        assert_eq!(cp.node_count(), n, "checkpoint node count must match");
        let sched = cp
            .scheduler
            .as_ref()
            .expect("asynchronous checkpoints carry scheduler state");
        self.faults.set_noise(cp.false_negative, cp.false_positive);
        for i in 0..n {
            self.faults
                .restore_node(i, cp.crashed[i], cp.rng_positions[i]);
        }
        self.scheduler_rng
            .set_position(sched.rng_position.0, sched.rng_position.1);
        self.replay_cursor = if self.replay_order.is_empty() {
            assert_eq!(
                sched.replay_cursor, 0,
                "a replay cursor needs the replay scheduler installed"
            );
            0
        } else {
            sched.replay_cursor % self.replay_order.len()
        };
        self.set_states(states);
        self.activations = cp.steps;
    }

    /// Turns complexity accounting on: from the next activation the
    /// engine accumulates a [`ComplexityLedger`] (one entry per
    /// activation), and — when `recorder_capacity` is given — retains
    /// the last that many [`TraceEvent`](crate::TraceEvent)s in a
    /// [`FlightRecorder`]. Instrumentation is purely passive (no RNG
    /// draws, no reordering), so enabling it never changes an
    /// execution; disabled engines pay one branch per activation.
    pub fn enable_instrumentation(&mut self, recorder_capacity: Option<usize>) {
        self.instr.enable(recorder_capacity);
    }

    /// Returns `true` if complexity accounting is on.
    pub fn instrumentation_enabled(&self) -> bool {
        self.instr.is_on()
    }

    /// Returns the accumulated complexity counters, if instrumentation
    /// is on.
    pub fn complexity_ledger(&self) -> Option<&ComplexityLedger> {
        self.instr.ledger()
    }

    /// Returns the flight recorder, if one was attached.
    pub fn flight_recorder(&self) -> Option<&FlightRecorder> {
        self.instr.recorder()
    }

    /// Records an event into the flight recorder, stamped with the
    /// current activation count (no-op unless a recorder is attached).
    pub fn record_trace_event(&mut self, kind: &str, detail: impl Into<String>) {
        let step = self.activations;
        self.instr.record_event(step, kind, detail);
    }
}

impl<M: ActivationLeaderModel> ActivationEngine<M> {
    /// Returns the number of **alive** nodes whose state lies in the
    /// leader set (a crashed node cannot act as a leader).
    pub fn leader_count(&self) -> usize {
        self.states
            .iter()
            .zip(self.faults.flags())
            .filter(|(s, &c)| !c && self.model.is_leader(s))
            .count()
    }

    /// Returns the identifiers of all current (alive) leaders.
    pub fn leaders(&self) -> Vec<NodeId> {
        self.states
            .iter()
            .zip(self.faults.flags())
            .enumerate()
            .filter(|(_, (s, &c))| !c && self.model.is_leader(s))
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }

    /// Returns the unique (alive) leader, or `None` if there are zero
    /// or several leaders.
    pub fn unique_leader(&self) -> Option<NodeId> {
        let mut found = None;
        for (i, (s, &c)) in self.states.iter().zip(self.faults.flags()).enumerate() {
            if !c && self.model.is_leader(s) {
                if found.is_some() {
                    return None;
                }
                found = Some(NodeId::new(i));
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stone_age::{AsyncStoneAgeNetwork, BeepingAsStoneAge};
    use crate::{BeepingProtocol, LeaderElection};
    use bfw_graph::generators;

    /// Beeps forever; "leaders" are all nodes (crash masking visible).
    #[derive(Debug, Clone)]
    struct Siren;

    impl BeepingProtocol for Siren {
        type State = u32;
        fn initial_state(&self, _ctx: NodeCtx) -> u32 {
            0
        }
        fn beeps(&self, _s: &u32) -> bool {
            true
        }
        fn transition(&self, s: &u32, _heard: bool, _rng: &mut dyn rand::RngCore) -> u32 {
            s + 1
        }
    }

    impl LeaderElection for Siren {
        fn is_leader(&self, _s: &u32) -> bool {
            true
        }
    }

    fn siren_net(n: usize, seed: u64) -> AsyncStoneAgeNetwork<BeepingAsStoneAge<Siren>> {
        AsyncStoneAgeNetwork::new(
            BeepingAsStoneAge::new(Siren),
            generators::cycle(n).into(),
            seed,
        )
    }

    #[test]
    fn crashed_nodes_are_never_scheduled() {
        for scheduler in [Scheduler::Uniform, Scheduler::Weighted, Scheduler::Replay] {
            let mut net = siren_net(6, 3);
            net.set_scheduler(scheduler);
            net.crash_node(NodeId::new(2));
            net.crash_node(NodeId::new(5));
            for _ in 0..200 {
                let u = net.activate_next().unwrap();
                assert!(!net.is_crashed(u), "{scheduler}: activated crashed {u}");
            }
            assert_eq!(*net.state(NodeId::new(2)), 0, "{scheduler}");
            assert_eq!(*net.state(NodeId::new(5)), 0, "{scheduler}");
            assert_eq!(net.activations(), 200);
            assert_eq!(net.alive_count(), 4);
            assert_eq!(net.leader_count(), 4, "crashed sirens are not leaders");
        }
    }

    #[test]
    fn all_crashed_network_stalls_but_time_passes() {
        let mut net = siren_net(3, 0);
        for i in 0..3 {
            net.crash_node(NodeId::new(i));
        }
        assert_eq!(net.activate_next(), None);
        net.run_activations(10); // stalls, never spins
        assert_eq!(net.activations(), 11, "stalled steps still count");
        assert!(net.states().iter().all(|&s| s == 0), "nobody transitioned");
        // Explicit activation of a crashed node is an uncounted no-op.
        net.activate(NodeId::new(1));
        assert_eq!(net.activations(), 11);
        assert!(net.leaders().is_empty());
        assert_eq!(net.unique_leader(), None);
    }

    #[test]
    fn recover_reboots_into_initial_state_and_reschedules() {
        let mut net = siren_net(4, 7);
        net.run_activations(40);
        net.crash_node(NodeId::new(1));
        let frozen = *net.state(NodeId::new(1));
        net.run_activations(40);
        assert_eq!(*net.state(NodeId::new(1)), frozen, "crashed node is inert");
        net.recover_node(NodeId::new(1));
        assert_eq!(*net.state(NodeId::new(1)), 0, "fresh initial state");
        net.run_activations(200);
        assert!(*net.state(NodeId::new(1)) > 0, "rejoined the schedule");
        // Recovering an alive node is a no-op.
        let s0 = *net.state(NodeId::new(0));
        net.recover_node(NodeId::new(0));
        assert_eq!(*net.state(NodeId::new(0)), s0);
    }

    #[test]
    fn replay_scheduler_sweeps_a_fixed_permutation() {
        let mut net = siren_net(5, 11);
        net.set_scheduler(Scheduler::Replay);
        let first: Vec<NodeId> = (0..5).map(|_| net.activate_next().unwrap()).collect();
        let second: Vec<NodeId> = (0..5).map(|_| net.activate_next().unwrap()).collect();
        assert_eq!(first, second, "the permutation replays cyclically");
        let mut sorted: Vec<usize> = first.iter().map(|u| u.index()).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, [0, 1, 2, 3, 4], "each sweep covers every node");

        // Same seed, same installation point ⇒ same permutation.
        let mut again = siren_net(5, 11);
        again.set_scheduler(Scheduler::Replay);
        let replay: Vec<NodeId> = (0..5).map(|_| again.activate_next().unwrap()).collect();
        assert_eq!(first, replay);
    }

    #[test]
    fn weighted_scheduler_prefers_high_degree_nodes() {
        // Star: the hub has degree n - 1, each leaf degree 1. Under
        // degree weighting the hub is activated far more often than any
        // single leaf.
        let mut net =
            AsyncStoneAgeNetwork::new(BeepingAsStoneAge::new(Siren), generators::star(9).into(), 5);
        net.set_scheduler(Scheduler::Weighted);
        net.run_activations(900);
        let hub = *net.state(NodeId::new(0)) as f64;
        let leaf_mean: f64 = (1..9)
            .map(|i| *net.state(NodeId::new(i)) as f64)
            .sum::<f64>()
            / 8.0;
        assert!(
            hub > 2.0 * leaf_mean,
            "hub activated {hub} times vs leaf mean {leaf_mean}"
        );
    }

    #[test]
    fn schedulers_are_seed_deterministic() {
        for scheduler in [Scheduler::Uniform, Scheduler::Weighted, Scheduler::Replay] {
            let run = |seed| {
                let mut net = siren_net(8, seed);
                net.set_scheduler(scheduler);
                net.run_activations(100);
                net.states().to_vec()
            };
            assert_eq!(run(5), run(5), "{scheduler}");
            assert_ne!(run(5), run(6), "{scheduler}");
        }
    }

    #[test]
    fn scheduler_display_names_are_stable() {
        assert_eq!(Scheduler::Uniform.to_string(), "uniform");
        assert_eq!(Scheduler::Weighted.to_string(), "weighted");
        assert_eq!(Scheduler::Replay.to_string(), "replay");
        assert_eq!(Scheduler::default(), Scheduler::Uniform);
    }

    #[test]
    fn topology_delta_changes_the_observation_graph() {
        // CountTwo-style check through the adapter: after adding a
        // chord, the activated node observes its new neighbor.
        let mut net = siren_net(4, 2);
        let mut delta = TopologyDelta::new();
        delta.add_edge(NodeId::new(0), NodeId::new(2));
        net.apply_topology_delta(&delta);
        assert_eq!(net.topology().to_graph().edge_count(), 5);
        net.set_topology(generators::cycle(4).into());
        assert_eq!(net.topology().to_graph().edge_count(), 4);
    }

    #[test]
    fn set_states_and_set_node_state_refresh_caches() {
        let mut net = siren_net(3, 0);
        net.set_states(vec![7, 7, 7]);
        assert_eq!(net.states(), &[7, 7, 7]);
        net.set_node_state(NodeId::new(1), 9);
        assert_eq!(*net.state(NodeId::new(1)), 9);
    }

    #[test]
    #[should_panic(expected = "preserve the node count")]
    fn set_topology_validates_node_count() {
        let mut net = siren_net(3, 0);
        net.set_topology(generators::cycle(4).into());
    }
}
