//! Engine checkpoints: the serialization seam for scenario snapshots.
//!
//! A running engine's full replayable state is smaller than it looks.
//! Topology and node states have public getters already; what was
//! missing is the part buried in the [`FaultLayer`](crate::FaultLayer)
//! — the crash mask, the noise channels and each node's ChaCha8 stream
//! *position* — plus, for the asynchronous engine, the scheduler
//! stream position and replay-sweep cursor. [`EngineCheckpoint`]
//! captures exactly that, always in **original node-label order**, so a
//! checkpoint taken on the bit kernel (which may relabel its storage)
//! is byte-identical to one taken on the generic kernel at the same
//! round — the kernel-invariance the scenario snapshot format relies
//! on.
//!
//! Stream *keys* are never captured: they are a pure function of the
//! run seed (see `FaultLayer::with_scheduler`), so restoring means
//! re-carving from the seed and fast-forwarding each stream to its
//! checkpointed `(counter, cursor)` position.

/// The scheduler half of an asynchronous engine's checkpoint: the
/// scheduler stream position and — under the replay scheduler — the
/// sweep cursor into the (seed-derived, re-drawn on restore)
/// permutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerCheckpoint {
    /// `(counter, cursor)` position of the scheduler's ChaCha8 stream.
    pub rng_position: (u64, usize),
    /// Next index of the replay sweep (0 unless the replay scheduler is
    /// installed).
    pub replay_cursor: usize,
}

/// Everything an engine needs beyond its (separately captured) node
/// states and topology to resume a run byte-identically: step counter,
/// crash mask, noise channels and per-node RNG stream positions, all in
/// original node-label order.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineCheckpoint {
    /// Rounds (synchronous engines) or activations (asynchronous)
    /// performed so far.
    pub steps: u64,
    /// Crash flags, indexed by original node label.
    pub crashed: Vec<bool>,
    /// False-negative (lost-signal) noise probability.
    pub false_negative: f64,
    /// False-positive (hallucinated-signal) noise probability.
    pub false_positive: f64,
    /// Per-node ChaCha8 `(counter, cursor)` stream positions, indexed
    /// by original node label.
    pub rng_positions: Vec<(u64, usize)>,
    /// Present on asynchronous engines only.
    pub scheduler: Option<SchedulerCheckpoint>,
}

impl EngineCheckpoint {
    /// The node count this checkpoint was taken at.
    pub fn node_count(&self) -> usize {
        self.crashed.len()
    }
}
