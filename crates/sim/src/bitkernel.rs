//! Bit-parallel fast path for the beeping model: bitplane states,
//! word-wide propagation and batched Bernoulli draws.
//!
//! The generic [`TickEngine`](crate::TickEngine) steps node-by-node over
//! a `Vec<State>`; that caps experiments near `10^4` nodes. This module
//! exploits what the paper's minimalism actually buys: a BFW node's
//! state is **3 bits** (leader? beeping? frozen?) and its perception is
//! **1 bit** (some neighbor beeped), so 64 nodes fit in one machine word
//! and a whole round is a few bitwise passes:
//!
//! 1. **Emission** — `emit = beeping & alive`, word-wide.
//! 2. **Propagation** — `heard = emit | A·emit` via the word-packed
//!    adjacency view ([`bfw_graph::WordGraph`]): rotation plans on
//!    shift-structured graphs (cycles, tori), a cache-aware relabeled
//!    edge stream elsewhere, an any-beep fill on cliques. When the
//!    plan relabels, the engine stores all bitsets in internal order
//!    and translates node ids at its public boundary.
//! 3. **Noise** — [`FaultLayer`] filters the heard words (only when a
//!    channel is active).
//! 4. **Transition** — the model's boolean plane algebra, one word (64
//!    nodes) at a time; crashed nodes are merged back unchanged.
//!
//! # RNG-stream mapping (the determinism contract)
//!
//! [`BitEngine`] reproduces the generic engine **byte-identically** at a
//! fixed seed. The generic engine gives node `i` its own ChaCha8 stream
//! (carved out of the run seed in index order, see [`FaultLayer`]) and
//! draws from it *lazily* — a BFW node draws one coin only in state `W•`
//! with a silent neighborhood, and noise channels draw only per
//! filtered signal. Per-node streams make cross-node draw order
//! irrelevant, so the bit engine keeps the exact same carving and the
//! exact same lazy draw conditions — it just *finds* the drawing nodes
//! word-wide (the coin mask and noise candidates are bitwise
//! expressions) and then draws per set bit in index order. Equivalence
//! is pinned by the `bit_kernel_equivalence` workspace tests.
//!
//! The *word-batched* mapping the 64-lane Monte-Carlo path uses — one
//! ChaCha8 output word per 64 **lanes** via [`bernoulli_words`] — is a
//! different stream discipline and is documented there; it never enters
//! this engine.

use crate::fault::{filter_heard_chunk, FaultLayer};
use crate::instrument::{ComplexityLedger, FlightRecorder, Instrumentation, RoundSample};
use crate::pool::{shard_bounds, ShardPool};
use crate::snapshot::EngineCheckpoint;
use crate::{NodeCtx, Topology};
use bfw_graph::{words_for, NodeId, Relabeling, TopologyDelta, WordGraph};
use rand::Rng as _;
use rand::RngCore;
use rand_chacha::ChaCha8Rng;
use std::sync::Mutex;

/// One word of 64 node states, decomposed into the three BFW bitplanes.
///
/// The plane layout (bit `b` of each word is node `64w + b`):
///
/// | state | leader | beeping | frozen |
/// |-------|--------|---------|--------|
/// | `W•`  | 1      | 0       | 0      |
/// | `B•`  | 1      | 1       | 0      |
/// | `F•`  | 1      | 0       | 1      |
/// | `W◦`  | 0      | 0       | 0      |
/// | `B◦`  | 0      | 1       | 0      |
/// | `F◦`  | 0      | 0       | 1      |
///
/// `beeping & frozen` is never set; *waiting* is the derived plane
/// `!beeping & !frozen`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlaneWord {
    /// Leader bit — the paper's leader set `L = {W•, B•, F•}`.
    pub leader: u64,
    /// Beeping bit — the paper's beeping set `Q_b = {B•, B◦}`.
    pub beeping: u64,
    /// Frozen bit — `{F•, F◦}`.
    pub frozen: u64,
}

/// A protocol expressible as boolean algebra over [`PlaneWord`]s — the
/// model seam of [`BitEngine`], mirroring what
/// [`TickModel`](crate::TickModel) is to the generic engine.
///
/// The contract ties the bit path to the scalar protocol it
/// accelerates: `pack`/`unpack` must round-trip every state, and
/// `advance_word` restricted to one bit must equal the scalar
/// transition with the same heard flag and coin (`coin_mask` tells the
/// engine which nodes consume a coin — exactly the states whose scalar
/// transition would draw one, so the lazy per-node RNG draws line up).
///
/// `Sync` is a supertrait because the word-sharded step shares the
/// model across worker threads; bit models are stateless plane algebra,
/// so this costs implementors nothing.
pub trait BitModel: Sync {
    /// Per-node protocol state (the scalar form).
    type State: Clone + PartialEq + std::fmt::Debug;

    /// Returns the protocol's initial state for one node.
    fn initial_state(&self, ctx: NodeCtx) -> Self::State;

    /// Decomposes a state into its `(leader, beeping, frozen)` bits.
    fn pack(&self, state: &Self::State) -> (bool, bool, bool);

    /// Recomposes a state from its plane bits.
    ///
    /// # Panics
    ///
    /// Panics on bit combinations no state maps to (`beeping & frozen`).
    fn unpack(&self, leader: bool, beeping: bool, frozen: bool) -> Self::State;

    /// Probability of the one Bernoulli coin the protocol draws.
    fn coin_probability(&self) -> f64;

    /// Bitmask of the nodes whose transition consumes a coin this round
    /// — must match the scalar protocol's lazy draw condition bit for
    /// bit (garbage above the node count is tolerated; the engine masks
    /// with the alive set).
    fn coin_mask(&self, planes: PlaneWord, heard: u64) -> u64;

    /// One synchronous transition of 64 nodes: the plane algebra of the
    /// protocol's `δ` table. `coin` is only meaningful on
    /// [`coin_mask`](Self::coin_mask) bits.
    fn advance_word(&self, planes: PlaneWord, heard: u64, coin: u64) -> PlaneWord;
}

/// Bit-parallel synchronous executor of a [`BitModel`] — the fast-path
/// sibling of [`Network`](crate::Network) with the same observable
/// behavior (states, leaders, complexity ledger, RNG streams) at ~64
/// nodes per instruction.
///
/// The BFW instantiation lives in `bfw-core` (`BitNetwork =
/// BitEngine<Bfw>`), which also carries the runnable example; the
/// `bit_kernel_equivalence` workspace tests pin its byte-identity with
/// the generic [`Network`](crate::Network).
#[derive(Debug, Clone)]
pub struct BitEngine<M: BitModel> {
    model: M,
    topology: Topology,
    /// Word-packed adjacency; `None` on the clique (any-beep fill).
    plan: Option<WordGraph>,
    n: usize,
    words: usize,
    leader: Vec<u64>,
    beeping: Vec<u64>,
    frozen: Vec<u64>,
    emit: Vec<u64>,
    heard: Vec<u64>,
    faults: FaultLayer,
    round: u64,
    instr: Instrumentation,
    /// Sampler caches, maintained only while instrumentation is on —
    /// the same discipline as the generic beeping model's. `degrees` is
    /// in internal label order when the plan relabels.
    degrees: Vec<u32>,
    uniform_degree: Option<u64>,
    /// Word-shard fan-out for [`step`](Self::step); one shard (the
    /// default) runs the serial path untouched.
    pool: ShardPool,
}

fn build_plan(topology: &Topology) -> Option<WordGraph> {
    match topology {
        Topology::Clique(_) => None,
        Topology::Graph(g) => Some(WordGraph::build(g)),
        Topology::Overlay(ov) => Some(WordGraph::build(&ov.to_graph())),
    }
}

impl<M: BitModel> BitEngine<M> {
    /// Builds an engine in round 0 with every node in the model's
    /// initial state. Seeding is identical to the generic engine: node
    /// `i` draws from the `i`-th ChaCha8 stream carved out of `seed`.
    pub fn new(model: M, topology: Topology, seed: u64) -> Self {
        let n = topology.node_count();
        let states: Vec<M::State> = (0..n)
            .map(|i| {
                model.initial_state(NodeCtx {
                    node: NodeId::new(i),
                    node_count: n,
                })
            })
            .collect();
        Self::with_states(model, topology, seed, states)
    }

    /// Builds an engine in round 0 from an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `states.len()` differs from the topology's node count.
    pub fn with_states(model: M, topology: Topology, seed: u64, states: Vec<M::State>) -> Self {
        let n = topology.node_count();
        assert_eq!(states.len(), n, "one state per node is required");
        let words = words_for(n);
        let mut engine = BitEngine {
            plan: build_plan(&topology),
            model,
            topology,
            n,
            words,
            leader: vec![0; words],
            beeping: vec![0; words],
            frozen: vec![0; words],
            emit: vec![0; words],
            heard: vec![0; words],
            faults: FaultLayer::new(n, seed),
            round: 0,
            instr: Instrumentation::off(),
            degrees: Vec::new(),
            uniform_degree: None,
            pool: ShardPool::new(1),
        };
        // Adopt the plan's internal label order: the fault layer's
        // storage moves, but node `i` keeps the `i`-th carved stream
        // (streams never renumber — see `FaultLayer::permute`).
        if let Some(r) = engine.plan.as_ref().and_then(|p| p.relabeling()) {
            let perm = r.perm().to_vec();
            engine.faults.permute(&perm);
        }
        for (i, s) in states.iter().enumerate() {
            engine.write_state(i, s);
        }
        engine
    }

    /// The active node relabeling (internal vs original labels), if the
    /// adjacency plan uses one. All public node-indexed APIs speak
    /// original labels; only [`Self::planes`] exposes internal order.
    pub fn relabeling(&self) -> Option<&Relabeling> {
        self.plan.as_ref().and_then(|p| p.relabeling())
    }

    /// Internal storage index of original node `i`.
    #[inline]
    fn int(&self, i: usize) -> usize {
        match self.plan.as_ref().and_then(|p| p.relabeling()) {
            Some(r) => r.to_internal(i),
            None => i,
        }
    }

    /// Original label of internal storage index `j`.
    #[inline]
    fn orig(&self, j: usize) -> usize {
        match self.plan.as_ref().and_then(|p| p.relabeling()) {
            Some(r) => r.to_original(j),
            None => j,
        }
    }

    /// Sets the number of worker threads for [`Self::step`], clamped to
    /// the bitset word count (more shards than words cannot help).
    /// Thread count never changes results: every per-node draw comes
    /// from that node's own stream, so `threads = 1` and `threads = N`
    /// are byte-identical (states, RNG positions, ledger).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn set_threads(&mut self, threads: usize) {
        assert!(threads > 0, "at least one worker thread is required");
        self.pool = ShardPool::new(threads.min(self.words).max(1));
    }

    /// The effective worker-thread count (after clamping).
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Returns the number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Returns the current round number (0 before any step).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Returns the topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Recomposes the scalar state of node `u` from the planes.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn state(&self, u: NodeId) -> M::State {
        assert!(u.index() < self.n, "node {u} out of range");
        let i = self.int(u.index());
        let (w, b) = (i >> 6, i & 63);
        self.model.unpack(
            self.leader[w] >> b & 1 == 1,
            self.beeping[w] >> b & 1 == 1,
            self.frozen[w] >> b & 1 == 1,
        )
    }

    /// Materializes the full scalar configuration, indexed by node —
    /// the equivalence seam against [`TickEngine::states`].
    ///
    /// [`TickEngine::states`]: crate::TickEngine::states
    pub fn states(&self) -> Vec<M::State> {
        (0..self.n).map(|i| self.state(NodeId::new(i))).collect()
    }

    /// Borrows the three state planes `(leader, beeping, frozen)`.
    ///
    /// Bit order is the engine's *internal* label order — identical to
    /// original labels unless [`Self::relabeling`] is `Some`.
    pub fn planes(&self) -> (&[u64], &[u64], &[u64]) {
        (&self.leader, &self.beeping, &self.frozen)
    }

    /// Writes the state of *original* node `i`.
    fn write_state(&mut self, i: usize, state: &M::State) {
        let (l, b, f) = self.model.pack(state);
        let i = self.int(i);
        let (w, bit) = (i >> 6, 1u64 << (i & 63));
        for (plane, set) in [
            (&mut self.leader, l),
            (&mut self.beeping, b),
            (&mut self.frozen, f),
        ] {
            if set {
                plane[w] |= bit;
            } else {
                plane[w] &= !bit;
            }
        }
    }

    /// Advances one synchronous round (see the module docs for the
    /// four word-wide passes and the RNG contract).
    ///
    /// With [`Self::set_threads`] above one, the round runs
    /// word-sharded: emission is computed serially (a cheap word-wide
    /// `AND`), then every shard propagates, noise-filters, draws coins
    /// and advances *its own destination word range* concurrently.
    /// After emission freezes, every remaining pass reads shared state
    /// only from the immutable `emit` bitset and writes only its own
    /// words, and every Bernoulli draw comes from the drawing node's
    /// own ChaCha8 stream — so no barrier is needed inside the region
    /// and the result is byte-identical to the serial path.
    pub fn step(&mut self) {
        let alive = self.faults.alive_words();
        for (e, (&b, &a)) in self.emit.iter_mut().zip(self.beeping.iter().zip(alive)) {
            *e = b & a;
        }

        let mut sample = self.instr.is_on().then(|| self.emission_sample());

        if self.plan.is_none() {
            // Clique: everyone (the generic path fills crashed
            // nodes too; they are masked out downstream) hears iff
            // anyone beeps.
            let fill = if self.emit.iter().any(|&w| w != 0) {
                u64::MAX
            } else {
                0
            };
            self.heard.fill(fill);
            if let Some(last) = self.heard.last_mut() {
                if !self.n.is_multiple_of(64) {
                    *last &= (1u64 << (self.n % 64)) - 1;
                }
            }
        }

        if self.pool.threads() > 1 {
            self.step_body_sharded();
        } else {
            self.step_body_serial();
        }

        if let Some(sample) = &mut sample {
            // Post-noise perception events of alive nodes — the
            // generic `perceived_count` as a popcount.
            sample.heard = self
                .heard
                .iter()
                .zip(self.faults.alive_words())
                .map(|(&h, &a)| u64::from((h & a).count_ones()))
                .sum();
            self.instr
                .record_step(*sample, self.n, std::mem::size_of::<M::State>());
        }
        self.round += 1;
    }

    /// Propagation, noise and transition of one round, serially — the
    /// reference path the sharded body must match byte for byte.
    fn step_body_serial(&mut self) {
        if let Some(plan) = &self.plan {
            self.heard.copy_from_slice(&self.emit);
            plan.propagate_or(&self.emit, &mut self.heard);
        }
        if self.faults.has_noise() {
            self.faults.filter_heard_words(&self.emit, &mut self.heard);
        }

        let p = self.model.coin_probability();
        for w in 0..self.words {
            let alive = self.faults.alive_words()[w];
            let planes = PlaneWord {
                leader: self.leader[w],
                beeping: self.beeping[w],
                frozen: self.frozen[w],
            };
            let heard = self.heard[w];
            let mut coin = 0u64;
            let mut draws = self.model.coin_mask(planes, heard) & alive;
            while draws != 0 {
                let b = draws.trailing_zeros() as usize;
                draws &= draws - 1;
                if self.faults.rng(w * 64 + b).random_bool(p) {
                    coin |= 1u64 << b;
                }
            }
            let next = self.model.advance_word(planes, heard, coin);
            // Crashed nodes keep their pre-crash state, bit-wise.
            self.leader[w] = (next.leader & alive) | (planes.leader & !alive);
            self.beeping[w] = (next.beeping & alive) | (planes.beeping & !alive);
            self.frozen[w] = (next.frozen & alive) | (planes.frozen & !alive);
        }
    }

    /// The word-sharded body: shard `k` owns destination words
    /// `lo..hi` and the RNG streams of nodes `64·lo..64·hi`. Shared
    /// reads are the frozen `emit` bitset and the alive mask; every
    /// write (heard, the three planes, the RNG states) is to
    /// shard-private disjoint slices, handed out via `split_at_mut`
    /// behind per-shard mutexes (locked once each, uncontended).
    fn step_body_sharded(&mut self) {
        struct Shard<'a> {
            lo: usize,
            hi: usize,
            heard: &'a mut [u64],
            leader: &'a mut [u64],
            beeping: &'a mut [u64],
            frozen: &'a mut [u64],
            rngs: &'a mut [ChaCha8Rng],
        }

        let pool = self.pool;
        let bounds = shard_bounds(self.words, pool.threads());
        debug_assert_eq!(bounds.len(), pool.threads(), "threads are clamped to words");
        let n = self.n;
        let p = self.model.coin_probability();
        let model = &self.model;
        let plan = self.plan.as_ref();
        let emit = &self.emit;
        let (alive_all, fneg, fpos, mut rngs_rest) = self.faults.shard_parts_mut();
        let noise = fneg > 0.0 || fpos > 0.0;

        let mut heard_rest = &mut self.heard[..];
        let mut leader_rest = &mut self.leader[..];
        let mut beeping_rest = &mut self.beeping[..];
        let mut frozen_rest = &mut self.frozen[..];
        let mut shards: Vec<Mutex<Shard>> = Vec::with_capacity(bounds.len());
        for &(lo, hi) in &bounds {
            let len = hi - lo;
            let (heard, hr) = heard_rest.split_at_mut(len);
            let (leader, lr) = leader_rest.split_at_mut(len);
            let (beeping, br) = beeping_rest.split_at_mut(len);
            let (frozen, fr) = frozen_rest.split_at_mut(len);
            heard_rest = hr;
            leader_rest = lr;
            beeping_rest = br;
            frozen_rest = fr;
            let nodes = (hi * 64).min(n) - lo * 64;
            let (rngs, rr) = rngs_rest.split_at_mut(nodes);
            rngs_rest = rr;
            shards.push(Mutex::new(Shard {
                lo,
                hi,
                heard,
                leader,
                beeping,
                frozen,
                rngs,
            }));
        }

        let shards = &shards;
        pool.run(|k| {
            let mut guard = shards[k].lock().expect("shard lock is uncontended");
            let t = &mut *guard;
            let emit_c = &emit[t.lo..t.hi];
            let alive_c = &alive_all[t.lo..t.hi];
            if let Some(plan) = plan {
                t.heard.copy_from_slice(emit_c);
                plan.propagate_or_range(emit, t.heard, t.lo);
            }
            if noise {
                filter_heard_chunk(t.rngs, alive_c, emit_c, t.heard, fneg, fpos);
            }
            for (w, &alive) in alive_c.iter().enumerate() {
                let planes = PlaneWord {
                    leader: t.leader[w],
                    beeping: t.beeping[w],
                    frozen: t.frozen[w],
                };
                let heard = t.heard[w];
                let mut coin = 0u64;
                let mut draws = model.coin_mask(planes, heard) & alive;
                while draws != 0 {
                    let b = draws.trailing_zeros() as usize;
                    draws &= draws - 1;
                    if t.rngs[w * 64 + b].random_bool(p) {
                        coin |= 1u64 << b;
                    }
                }
                let next = model.advance_word(planes, heard, coin);
                // Crashed nodes keep their pre-crash state, bit-wise.
                t.leader[w] = (next.leader & alive) | (planes.leader & !alive);
                t.beeping[w] = (next.beeping & alive) | (planes.beeping & !alive);
                t.frozen[w] = (next.frozen & alive) | (planes.frozen & !alive);
            }
        });
    }

    /// Advances `rounds` rounds.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Popcount-based emission sample: one bit per beep, `deg(u)`
    /// messages per emitter (fixed-stride on regular graphs).
    fn emission_sample(&self) -> RoundSample {
        let emitters: u64 = self.emit.iter().map(|w| u64::from(w.count_ones())).sum();
        let messages = if let Some(d) = self.uniform_degree {
            emitters * d
        } else {
            let mut messages = 0u64;
            for (w, &word) in self.emit.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    messages += u64::from(self.degrees[w * 64 + b]);
                }
            }
            messages
        };
        RoundSample {
            emitters,
            heard: 0,
            bits: emitters,
            messages,
        }
    }

    fn refresh_sampler_caches(&mut self) {
        self.degrees.clear();
        self.uniform_degree = None;
        match &self.topology {
            Topology::Clique(n) => {
                self.uniform_degree = Some((*n as u64).saturating_sub(1));
            }
            Topology::Graph(g) => match g.uniform_degree() {
                Some(d) => self.uniform_degree = Some(d as u64),
                None => self.degrees.extend(g.nodes().map(|u| g.degree(u) as u32)),
            },
            other => {
                let n = other.node_count();
                self.degrees
                    .extend((0..n).map(|i| other.degree(NodeId::new(i)) as u32));
                if let Some((&first, rest)) = self.degrees.split_first() {
                    if rest.iter().all(|&d| d == first) {
                        self.uniform_degree = Some(u64::from(first));
                        self.degrees = Vec::new();
                    }
                }
            }
        }
        // The emission sampler walks the emit bitset in internal order,
        // so the degree cache must live in internal order too.
        if !self.degrees.is_empty() {
            if let Some(r) = self.plan.as_ref().and_then(|p| p.relabeling()) {
                let mut internal = vec![0u32; self.n];
                for (i, &d) in self.degrees.iter().enumerate() {
                    internal[r.to_internal(i)] = d;
                }
                self.degrees = internal;
            }
        }
    }

    /// Rebuilds the adjacency plan for the current topology and, when
    /// the old and new plans use different labelings, moves every
    /// node's planes, crash flag and RNG stream from its old storage
    /// position to the new one (state follows the node, not the slot).
    fn rebuild_plan(&mut self) {
        let old_perm: Option<Vec<u32>> = self
            .plan
            .as_ref()
            .and_then(|p| p.relabeling())
            .map(|r| r.perm().to_vec());
        self.plan = build_plan(&self.topology);
        let new_perm: Option<Vec<u32>> = self
            .plan
            .as_ref()
            .and_then(|p| p.relabeling())
            .map(|r| r.perm().to_vec());
        if old_perm.is_none() && new_perm.is_none() {
            return;
        }
        // map[old storage position] = new storage position.
        let mut map = vec![0u32; self.n];
        let mut identity = true;
        for orig in 0..self.n {
            let old_pos = old_perm.as_ref().map_or(orig, |p| p[orig] as usize);
            let new_pos = new_perm.as_ref().map_or(orig, |p| p[orig] as usize);
            map[old_pos] = new_pos as u32;
            identity &= old_pos == new_pos;
        }
        if identity {
            return;
        }
        for plane in [&mut self.leader, &mut self.beeping, &mut self.frozen] {
            let mut moved = vec![0u64; words_for(self.n)];
            for (i, &j) in map.iter().enumerate() {
                let j = j as usize;
                moved[j >> 6] |= (plane[i >> 6] >> (i & 63) & 1) << (j & 63);
            }
            *plane = moved;
        }
        self.faults.permute(&map);
    }

    /// Replaces the communication topology mid-run (node count must be
    /// preserved); the word-packed adjacency plan is rebuilt.
    ///
    /// # Panics
    ///
    /// Panics if the new topology's node count differs.
    pub fn set_topology(&mut self, topology: Topology) {
        assert_eq!(
            topology.node_count(),
            self.n,
            "topology mutation must preserve the node count"
        );
        self.topology = topology;
        self.rebuild_plan();
        if self.instr.is_on() {
            self.refresh_sampler_caches();
        }
    }

    /// Applies a batch of edge mutations. Unlike the generic engine's
    /// `O(deg)` overlay edit, the bit kernel re-packs its adjacency
    /// plan (`O(n + m)`) — the price of the word-wide propagation
    /// layout. High-frequency churn belongs on the generic kernel.
    ///
    /// # Panics
    ///
    /// Panics if the delta removes an absent edge or adds a present one.
    pub fn apply_topology_delta(&mut self, delta: &TopologyDelta) {
        self.topology.apply_delta(delta);
        self.rebuild_plan();
        if self.instr.is_on() {
            self.refresh_sampler_caches();
        }
    }

    /// Crashes node `u`: it emits nothing, perceives nothing, never
    /// transitions, and its RNG stream pauses. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn crash_node(&mut self, u: NodeId) {
        assert!(u.index() < self.n, "node {u} out of range");
        let i = self.int(u.index());
        self.faults.crash(i);
    }

    /// Recovers node `u` with a fresh protocol-initial state (no-op on
    /// alive nodes) — same reboot semantics as the generic engine.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn recover_node(&mut self, u: NodeId) {
        assert!(u.index() < self.n, "node {u} out of range");
        let i = self.int(u.index());
        if !self.faults.recover(i) {
            return;
        }
        let fresh = self.model.initial_state(NodeCtx {
            node: u,
            node_count: self.n,
        });
        self.write_state(u.index(), &fresh);
    }

    /// Returns `true` if `u` is currently crashed.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn is_crashed(&self, u: NodeId) -> bool {
        assert!(u.index() < self.n, "node {u} out of range");
        self.faults.is_crashed(self.int(u.index()))
    }

    /// Returns the number of non-crashed nodes.
    pub fn alive_count(&self) -> usize {
        self.faults.alive_count()
    }

    /// Sets both perception-noise probabilities (see
    /// [`TickEngine::set_noise`](crate::TickEngine::set_noise)).
    ///
    /// # Panics
    ///
    /// Panics if either probability is not in `[0, 1)`.
    pub fn set_noise(&mut self, false_negative: f64, false_positive: f64) {
        self.faults.set_noise(false_negative, false_positive);
    }

    /// Overwrites the state of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn set_node_state(&mut self, u: NodeId, state: M::State) {
        assert!(u.index() < self.n, "node {u} out of range");
        self.write_state(u.index(), &state);
    }

    /// Replaces the whole configuration (crashed nodes keep their crash
    /// mask and stay silent).
    ///
    /// # Panics
    ///
    /// Panics if `states.len()` differs from the node count.
    pub fn set_states(&mut self, states: Vec<M::State>) {
        assert_eq!(states.len(), self.n, "one state per node is required");
        for (i, s) in states.iter().enumerate() {
            self.write_state(i, s);
        }
    }

    /// Returns the number of alive nodes in the leader plane.
    pub fn leader_count(&self) -> usize {
        self.leader
            .iter()
            .zip(self.faults.alive_words())
            .map(|(&l, &a)| (l & a).count_ones() as usize)
            .sum()
    }

    /// Returns the identifiers of all current (alive) leaders, in
    /// ascending (original-label) order.
    pub fn leaders(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        for (w, (&l, &a)) in self
            .leader
            .iter()
            .zip(self.faults.alive_words())
            .enumerate()
        {
            let mut bits = l & a;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                out.push(NodeId::new(self.orig(w * 64 + b)));
            }
        }
        out.sort_unstable();
        out
    }

    /// Returns the unique (alive) leader, or `None` if there are zero
    /// or several.
    pub fn unique_leader(&self) -> Option<NodeId> {
        let mut found = None;
        for (w, (&l, &a)) in self
            .leader
            .iter()
            .zip(self.faults.alive_words())
            .enumerate()
        {
            let live = l & a;
            if live == 0 {
                continue;
            }
            if found.is_some() || live.count_ones() > 1 {
                return None;
            }
            found = Some(NodeId::new(
                self.orig(w * 64 + live.trailing_zeros() as usize),
            ));
        }
        found
    }

    /// Captures the engine's checkpoint in **original node-label
    /// order**, translating out of the plan's internal storage order —
    /// so a bit-kernel checkpoint is byte-identical to the generic
    /// engine's at the same round (the kernel-invariance of the
    /// snapshot format). See [`EngineCheckpoint`].
    pub fn checkpoint(&self) -> EngineCheckpoint {
        let mut crashed = vec![false; self.n];
        let mut rng_positions = vec![(0u64, 0usize); self.n];
        for j in 0..self.n {
            let i = self.orig(j);
            crashed[i] = self.faults.is_crashed(j);
            rng_positions[i] = self.faults.rng_position(j);
        }
        EngineCheckpoint {
            steps: self.round,
            crashed,
            false_negative: self.faults.false_negative(),
            false_positive: self.faults.false_positive(),
            rng_positions,
            scheduler: None,
        }
    }

    /// Restores a checkpoint (taken on *either* kernel) onto an engine
    /// built from the same seed and the checkpointed topology: crash
    /// flags and RNG positions are translated into the current plan's
    /// storage order (streams follow nodes, never slots).
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's node count or `states.len()` differs
    /// from the engine's, or if the checkpoint carries a scheduler
    /// half.
    pub fn restore_checkpoint(&mut self, cp: &EngineCheckpoint, states: Vec<M::State>) {
        assert_eq!(cp.node_count(), self.n, "checkpoint node count must match");
        assert!(
            cp.scheduler.is_none(),
            "synchronous engines have no scheduler state"
        );
        self.faults.set_noise(cp.false_negative, cp.false_positive);
        for i in 0..self.n {
            let j = self.int(i);
            self.faults
                .restore_node(j, cp.crashed[i], cp.rng_positions[i]);
        }
        self.set_states(states);
        self.round = cp.steps;
    }

    /// Turns complexity accounting on (same passive probe as the
    /// generic engine; see
    /// [`TickEngine::enable_instrumentation`](crate::TickEngine::enable_instrumentation)).
    pub fn enable_instrumentation(&mut self, recorder_capacity: Option<usize>) {
        self.instr.enable(recorder_capacity);
        self.refresh_sampler_caches();
    }

    /// Returns `true` if complexity accounting is on.
    pub fn instrumentation_enabled(&self) -> bool {
        self.instr.is_on()
    }

    /// Returns the accumulated complexity counters, if instrumentation
    /// is on.
    pub fn complexity_ledger(&self) -> Option<&ComplexityLedger> {
        self.instr.ledger()
    }

    /// Returns the flight recorder, if one was attached.
    pub fn flight_recorder(&self) -> Option<&FlightRecorder> {
        self.instr.recorder()
    }

    /// Records an event into the flight recorder, stamped with the
    /// current round (no-op unless a recorder is attached).
    pub fn record_trace_event(&mut self, kind: &str, detail: impl Into<String>) {
        let round = self.round;
        self.instr.record_event(round, kind, detail);
    }
}

/// Draws 64 **bitsliced** Bernoulli(`p`) samples from one RNG stream,
/// but only for the lanes selected by `need`; unselected lanes come
/// back 0 and cost nothing extra.
///
/// This is the batched draw of the 64-lane Monte-Carlo path: one
/// `next_u64()` decides one *bit of precision* for all undecided lanes
/// simultaneously, instead of one call per lane.
///
/// # The mapping (pinned by `bit_kernel_equivalence`)
///
/// A scalar `rng.random_bool(p)` is `(next_u64() >> 11) < T` with the
/// 53-bit threshold `T = ⌊p · 2^53⌋`. The bitsliced form runs the same
/// comparison MSB-first across lanes: for precision bit `k = 52, …, 0`,
/// one `next_u64()` word `r` supplies bit `k` of every lane's sample,
/// and comparing against bit `k` of `T` decides lanes whose prefix
/// stops matching — if `T`'s bit is 1, lanes with sample bit 0 are
/// decided *true*; if 0, lanes with sample bit 1 are decided *false*.
/// The loop stops as soon as every selected lane is decided (~2 words
/// expected); lanes still undecided after bit 0 equal `T` exactly and
/// are *false* (strict `<`). `need == 0` draws nothing, so skipped
/// groups leave the stream untouched.
///
/// The draw count depends only on `(p, need, stream position)` — never
/// on other streams — so lane executions stay deterministic and
/// order-independent, the same property the per-node streams give the
/// engines. It is **not** the scalar mapping: a lane-packed trial and a
/// `run_trials`-driven trial of the same index consume their streams
/// differently and agree only in distribution.
pub fn bernoulli_words(rng: &mut impl RngCore, p: f64, need: u64) -> u64 {
    assert!((0.0..1.0).contains(&p), "probability must be in [0, 1)");
    if need == 0 {
        return 0;
    }
    let threshold = (p * (1u64 << 53) as f64) as u64;
    let mut decided_true = 0u64;
    let mut undecided = need;
    for k in (0..53).rev() {
        let r = rng.next_u64();
        if threshold >> k & 1 == 1 {
            decided_true |= undecided & !r;
            undecided &= r;
        } else {
            undecided &= !r;
        }
        if undecided == 0 {
            break;
        }
    }
    // Lanes that matched every threshold bit are equal to T: false.
    decided_true & need
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn bernoulli_words_extremes_and_masking() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(bernoulli_words(&mut rng, 0.0, u64::MAX), 0);
        let w = bernoulli_words(&mut rng, 0.999999, u64::MAX);
        assert!(w.count_ones() > 48, "{w:b}");
        // Unselected lanes never come back set.
        let need = 0x00ff_00ff_00ff_00ff;
        let w = bernoulli_words(&mut rng, 0.5, need);
        assert_eq!(w & !need, 0);
    }

    #[test]
    fn bernoulli_words_zero_need_draws_nothing() {
        use rand::RngCore as _;
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        assert_eq!(bernoulli_words(&mut a, 0.5, 0), 0);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bernoulli_words_distribution() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for p in [0.1, 0.5, 0.9] {
            let mut ones = 0u64;
            let rounds = 2000;
            for _ in 0..rounds {
                ones += u64::from(bernoulli_words(&mut rng, p, u64::MAX).count_ones());
            }
            let rate = ones as f64 / (rounds * 64) as f64;
            assert!((rate - p).abs() < 0.01, "p={p} rate={rate}");
        }
    }

    #[test]
    #[should_panic(expected = "probability must be in [0, 1)")]
    fn bernoulli_words_validates_probability() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let _ = bernoulli_words(&mut rng, 1.0, 1);
    }
}
