//! The shared fault substrate: crash masking, per-node RNG streams and
//! the two-channel perception-noise model.
//!
//! [`FaultLayer`] is the one place where the fault vocabulary of every
//! runtime lives. Both executors embed it: the synchronous
//! [`TickEngine`](crate::TickEngine) (the beeping and stone-age round
//! loops) and the asynchronous
//! [`ActivationEngine`](crate::ActivationEngine) (activation-based
//! scheduling). Because the crash bitmask, the ChaCha8 stream carving
//! and the noise channels are one struct rather than per-runtime
//! copies, a crash or a noise burst behaves identically under
//! synchronous rounds and asynchronous activations by construction.
//!
//! Determinism contract: node `i` draws from a ChaCha8 stream carved
//! deterministically out of the run seed (`n` node streams in index
//! order; the activation engine's scheduler stream is carved *after*
//! them, exactly as the pre-engine asynchronous runtime did — see the
//! `activation_engine_equivalence` workspace test for the pinned
//! traces). Zero-probability noise channels draw nothing.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Per-node fault state shared by all runtimes: crash bitmask, RNG
/// streams, and the two-channel perception-noise model.
#[derive(Debug, Clone)]
pub struct FaultLayer {
    crashed: Vec<bool>,
    alive: usize,
    /// `crashed` as a `u64` bitset with the polarity flipped (bit set =
    /// alive), maintained in lockstep for the bit-parallel kernel.
    /// Bits `>= n` of the last word are always clear.
    alive_words: Vec<u64>,
    rngs: Vec<ChaCha8Rng>,
    false_negative: f64,
    false_positive: f64,
}

impl FaultLayer {
    /// Creates the fault state for `n` nodes: no crashes, no noise, one
    /// independent ChaCha8 stream per node carved out of `seed`.
    pub(crate) fn new(n: usize, seed: u64) -> Self {
        Self::with_scheduler(n, seed).0
    }

    /// Like [`new`](Self::new), but also carves one extra stream for an
    /// activation scheduler, *after* the node streams — the carving
    /// order the pre-engine asynchronous runtime used, preserved so its
    /// pinned traces stay bit-identical. Synchronous engines drop the
    /// extra stream without drawing from it, which leaves the node
    /// streams unchanged.
    pub(crate) fn with_scheduler(n: usize, seed: u64) -> (Self, ChaCha8Rng) {
        let mut master = ChaCha8Rng::seed_from_u64(seed);
        let rngs = (0..n)
            .map(|_| ChaCha8Rng::from_rng(&mut master))
            .collect::<Vec<_>>();
        let scheduler = ChaCha8Rng::from_rng(&mut master);
        let mut alive_words = vec![u64::MAX; n.div_ceil(64)];
        if let Some(last) = alive_words.last_mut() {
            if !n.is_multiple_of(64) {
                *last = (1u64 << (n % 64)) - 1;
            }
        }
        (
            FaultLayer {
                crashed: vec![false; n],
                alive: n,
                alive_words,
                rngs,
                false_negative: 0.0,
                false_positive: 0.0,
            },
            scheduler,
        )
    }

    /// Returns `true` if node `i` is crashed.
    #[inline]
    pub fn is_crashed(&self, i: usize) -> bool {
        self.crashed[i]
    }

    /// Returns the crash flags, indexed by node.
    pub fn flags(&self) -> &[bool] {
        &self.crashed
    }

    /// Marks node `i` crashed (idempotent).
    pub(crate) fn crash(&mut self, i: usize) {
        if !std::mem::replace(&mut self.crashed[i], true) {
            self.alive -= 1;
            self.alive_words[i >> 6] &= !(1u64 << (i & 63));
        }
    }

    /// Clears the crash mark on node `i`, returning `true` if it was
    /// crashed (the caller then resets the node's state).
    pub(crate) fn recover(&mut self, i: usize) -> bool {
        let was_crashed = std::mem::replace(&mut self.crashed[i], false);
        if was_crashed {
            self.alive += 1;
            self.alive_words[i >> 6] |= 1u64 << (i & 63);
        }
        was_crashed
    }

    /// Returns the alive nodes as a `u64` bitset (bit set = not
    /// crashed), `ceil(n / 64)` words, bits `>= n` clear.
    #[inline]
    pub(crate) fn alive_words(&self) -> &[u64] {
        &self.alive_words
    }

    /// Returns the number of non-crashed nodes, maintained in `O(1)`
    /// (crash/recover are the only mutation points).
    #[inline]
    pub fn alive_count(&self) -> usize {
        self.alive
    }

    /// Returns node `i`'s RNG stream (for protocol transitions).
    #[inline]
    pub fn rng(&mut self, i: usize) -> &mut ChaCha8Rng {
        &mut self.rngs[i]
    }

    /// Returns node `i`'s ChaCha8 stream position (see
    /// [`rand_chacha::ChaCha8Rng::position`]) — the checkpoint seam:
    /// streams are re-carved from the run seed on restore, so a
    /// snapshot needs only positions, never keys.
    #[inline]
    pub(crate) fn rng_position(&self, i: usize) -> (u64, usize) {
        self.rngs[i].position()
    }

    /// Restores node `i` from a checkpoint: crash flag (alive counts
    /// and the word bitset stay in lockstep) and RNG stream position.
    /// The stream key is untouched — the layer must have been carved
    /// from the same seed as the checkpointed one.
    pub(crate) fn restore_node(&mut self, i: usize, crashed: bool, rng_position: (u64, usize)) {
        if crashed != self.crashed[i] {
            if crashed {
                self.crash(i);
            } else {
                self.recover(i);
            }
        }
        self.rngs[i].set_position(rng_position.0, rng_position.1);
    }

    /// Returns `true` if either noise channel is active.
    #[inline]
    pub fn has_noise(&self) -> bool {
        self.false_negative > 0.0 || self.false_positive > 0.0
    }

    /// Passes one perceived boolean signal of node `i` through the two
    /// noise channels: a `true` signal is lost with probability
    /// `false_negative`, a `false` signal hallucinated with probability
    /// `false_positive`. A channel with probability 0 draws nothing, so
    /// disabling noise restores bit-identical RNG streams.
    #[inline]
    pub fn filter_signal(&mut self, i: usize, signal: bool) -> bool {
        use rand::Rng as _;
        if signal {
            !(self.false_negative > 0.0 && self.rngs[i].random_bool(self.false_negative))
        } else {
            self.false_positive > 0.0 && self.rngs[i].random_bool(self.false_positive)
        }
    }

    /// Word-wide counterpart of [`filter_signal`](Self::filter_signal):
    /// passes every *listening, alive* node's perceived bit through the
    /// noise channels, in node-index order.
    ///
    /// Candidates are exactly the nodes the generic
    /// [`BeepingModel`](crate::BeepingModel) noise loop visits — not
    /// beeping (`emit` bit clear) and not crashed — and each candidate
    /// makes the same lazy draws from the same per-node stream, so the
    /// RNG streams stay bit-identical to the generic path.
    pub(crate) fn filter_heard_words(&mut self, emit: &[u64], heard: &mut [u64]) {
        let fneg = self.false_negative;
        let fpos = self.false_positive;
        filter_heard_chunk(
            &mut self.rngs,
            &self.alive_words[..heard.len()],
            emit,
            heard,
            fneg,
            fpos,
        );
    }

    /// Reorders the per-node state so that the entry of node `i` moves
    /// to index `map[i]` — the adoption step when the bit engine's
    /// adjacency plan relabels nodes. Only *storage positions* move:
    /// each node keeps the ChaCha8 stream carved for it at construction
    /// (streams never renumber), its crash flag, and its noise
    /// channels, so every later draw is byte-identical to the
    /// unpermuted layout.
    pub(crate) fn permute(&mut self, map: &[u32]) {
        let n = self.crashed.len();
        assert_eq!(map.len(), n, "permutation must cover every node");
        let mut crashed = vec![false; n];
        let mut rngs: Vec<Option<ChaCha8Rng>> = vec![None; n];
        for (i, old) in self.rngs.drain(..).enumerate() {
            let j = map[i] as usize;
            crashed[j] = self.crashed[i];
            debug_assert!(rngs[j].is_none(), "map must be a permutation");
            rngs[j] = Some(old);
        }
        self.crashed = crashed;
        self.rngs = rngs
            .into_iter()
            .map(|r| r.expect("map must be a permutation"))
            .collect();
        for w in self.alive_words.iter_mut() {
            *w = 0;
        }
        for (i, &c) in self.crashed.iter().enumerate() {
            if !c {
                self.alive_words[i >> 6] |= 1u64 << (i & 63);
            }
        }
    }

    /// Decomposes the layer into the parts the word-sharded step needs
    /// concurrently: `(alive_words, false_negative, false_positive,
    /// rngs)`. The caller splits `rngs` into disjoint per-shard slices
    /// (`split_at_mut`); each shard then filters noise and draws coins
    /// for its own node range only.
    pub(crate) fn shard_parts_mut(&mut self) -> (&[u64], f64, f64, &mut [ChaCha8Rng]) {
        (
            &self.alive_words,
            self.false_negative,
            self.false_positive,
            &mut self.rngs,
        )
    }

    /// Returns the false-negative (lost-signal) probability.
    pub(crate) fn false_negative(&self) -> f64 {
        self.false_negative
    }

    /// Returns the false-positive (hallucinated-signal) probability.
    pub(crate) fn false_positive(&self) -> f64 {
        self.false_positive
    }

    pub(crate) fn set_noise(&mut self, false_negative: f64, false_positive: f64) {
        assert!(
            (0.0..1.0).contains(&false_negative),
            "hearing-failure probability must be in [0, 1)"
        );
        assert!(
            (0.0..1.0).contains(&false_positive),
            "spurious-beep probability must be in [0, 1)"
        );
        self.false_negative = false_negative;
        self.false_positive = false_positive;
    }
}

/// Chunk-level noise filter shared by the serial and word-sharded
/// paths: for every word `w` of the chunk, passes each *listening,
/// alive* node's heard bit through the two noise channels, drawing
/// lazily from that node's own stream in index order.
///
/// `rngs` holds the streams of exactly the nodes covered by the chunk's
/// words (node `64w + b` of the chunk draws from `rngs[64w + b]`), so a
/// caller hands a shard its disjoint `split_at_mut` slice and the draws
/// land on the same streams at the same positions as the whole-range
/// call — the sharding is invisible to the RNG state.
pub(crate) fn filter_heard_chunk(
    rngs: &mut [ChaCha8Rng],
    alive: &[u64],
    emit: &[u64],
    heard: &mut [u64],
    false_negative: f64,
    false_positive: f64,
) {
    use rand::Rng as _;
    for w in 0..heard.len() {
        let mut cand = alive[w] & !emit[w];
        while cand != 0 {
            let b = cand.trailing_zeros() as usize;
            cand &= cand - 1;
            let bit = 1u64 << b;
            let rng = &mut rngs[w * 64 + b];
            let kept = if heard[w] & bit != 0 {
                !(false_negative > 0.0 && rng.random_bool(false_negative))
            } else {
                false_positive > 0.0 && rng.random_bool(false_positive)
            };
            if kept {
                heard[w] |= bit;
            } else {
                heard[w] &= !bit;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_layer_streams_are_seed_deterministic() {
        use rand::RngCore as _;
        let draw = |seed| {
            let mut f = FaultLayer::new(4, seed);
            (0..4).map(|i| f.rng(i).next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
        // Streams are pairwise distinct.
        let d = draw(7);
        assert_eq!(d.iter().collect::<std::collections::HashSet<_>>().len(), 4);
    }

    #[test]
    fn scheduler_stream_does_not_disturb_node_streams() {
        use rand::RngCore as _;
        let mut plain = FaultLayer::new(3, 9);
        let (mut carved, mut scheduler) = FaultLayer::with_scheduler(3, 9);
        for i in 0..3 {
            assert_eq!(plain.rng(i).next_u64(), carved.rng(i).next_u64());
        }
        // The scheduler stream is distinct from every node stream.
        let s = scheduler.next_u64();
        let mut fresh = FaultLayer::new(3, 9);
        assert!((0..3).all(|i| fresh.rng(i).next_u64() != s));
    }

    #[test]
    fn filter_signal_is_identity_without_noise() {
        let mut f = FaultLayer::new(2, 0);
        assert!(!f.has_noise());
        assert!(f.filter_signal(0, true));
        assert!(!f.filter_signal(0, false));
        // No draws happened: the stream still matches a fresh layer.
        use rand::RngCore as _;
        let mut g = FaultLayer::new(2, 0);
        assert_eq!(f.rng(0).next_u64(), g.rng(0).next_u64());
    }

    #[test]
    fn filter_signal_flips_at_extreme_probabilities() {
        let mut f = FaultLayer::new(1, 3);
        f.set_noise(0.999, 0.999);
        let mut lost = 0;
        let mut ghost = 0;
        for _ in 0..50 {
            lost += usize::from(!f.filter_signal(0, true));
            ghost += usize::from(f.filter_signal(0, false));
        }
        assert!(lost > 45, "{lost}");
        assert!(ghost > 45, "{ghost}");
    }

    #[test]
    fn crash_and_recover_toggle() {
        let mut f = FaultLayer::new(3, 0);
        assert!(!f.is_crashed(1));
        f.crash(1);
        f.crash(1); // idempotent
        assert!(f.is_crashed(1));
        assert_eq!(f.flags(), &[false, true, false]);
        assert_eq!(f.alive_count(), 2, "idempotent crash counts once");
        assert!(f.recover(1));
        assert!(!f.recover(1), "second recover is a no-op");
        assert_eq!(f.alive_count(), 3);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn noise_probabilities_validated() {
        FaultLayer::new(1, 0).set_noise(1.0, 0.0);
    }

    #[test]
    fn alive_words_track_crashes() {
        let mut f = FaultLayer::new(70, 0);
        assert_eq!(f.alive_words(), &[u64::MAX, (1 << 6) - 1]);
        f.crash(0);
        f.crash(65);
        assert_eq!(f.alive_words(), &[u64::MAX - 1, 0b11_1101]);
        f.recover(65);
        assert_eq!(f.alive_words(), &[u64::MAX - 1, 0b11_1111]);
    }

    #[test]
    fn filter_heard_words_matches_scalar_loop() {
        // The word-wide path must visit the same candidates and make the
        // same draws as the generic per-node loop.
        let n = 100;
        let mut scalar = FaultLayer::new(n, 5);
        let mut wordy = FaultLayer::new(n, 5);
        scalar.set_noise(0.3, 0.2);
        wordy.set_noise(0.3, 0.2);
        scalar.crash(7);
        wordy.crash(7);

        let emit_flags: Vec<bool> = (0..n).map(|i| i % 5 == 0).collect();
        let mut heard_flags: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let mut emit = vec![0u64; 2];
        let mut heard = vec![0u64; 2];
        for i in 0..n {
            emit[i >> 6] |= u64::from(emit_flags[i]) << (i & 63);
            heard[i >> 6] |= u64::from(heard_flags[i]) << (i & 63);
        }

        wordy.filter_heard_words(&emit, &mut heard);
        for i in 0..n {
            if emit_flags[i] || scalar.is_crashed(i) {
                continue;
            }
            heard_flags[i] = scalar.filter_signal(i, heard_flags[i]);
        }
        for i in 0..n {
            assert_eq!(
                heard[i >> 6] >> (i & 63) & 1 == 1,
                heard_flags[i],
                "node {i}"
            );
        }
        // Streams advanced identically.
        use rand::RngCore as _;
        for i in 0..n {
            assert_eq!(scalar.rng(i).next_u64(), wordy.rng(i).next_u64(), "rng {i}");
        }
    }
}
