//! The shared fault substrate: crash masking, per-node RNG streams and
//! the two-channel perception-noise model.
//!
//! [`FaultLayer`] is the one place where the fault vocabulary of every
//! runtime lives. Both executors embed it: the synchronous
//! [`TickEngine`](crate::TickEngine) (the beeping and stone-age round
//! loops) and the asynchronous
//! [`ActivationEngine`](crate::ActivationEngine) (activation-based
//! scheduling). Because the crash bitmask, the ChaCha8 stream carving
//! and the noise channels are one struct rather than per-runtime
//! copies, a crash or a noise burst behaves identically under
//! synchronous rounds and asynchronous activations by construction.
//!
//! Determinism contract: node `i` draws from a ChaCha8 stream carved
//! deterministically out of the run seed (`n` node streams in index
//! order; the activation engine's scheduler stream is carved *after*
//! them, exactly as the pre-engine asynchronous runtime did — see the
//! `activation_engine_equivalence` workspace test for the pinned
//! traces). Zero-probability noise channels draw nothing.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Per-node fault state shared by all runtimes: crash bitmask, RNG
/// streams, and the two-channel perception-noise model.
#[derive(Debug, Clone)]
pub struct FaultLayer {
    crashed: Vec<bool>,
    alive: usize,
    rngs: Vec<ChaCha8Rng>,
    false_negative: f64,
    false_positive: f64,
}

impl FaultLayer {
    /// Creates the fault state for `n` nodes: no crashes, no noise, one
    /// independent ChaCha8 stream per node carved out of `seed`.
    pub(crate) fn new(n: usize, seed: u64) -> Self {
        Self::with_scheduler(n, seed).0
    }

    /// Like [`new`](Self::new), but also carves one extra stream for an
    /// activation scheduler, *after* the node streams — the carving
    /// order the pre-engine asynchronous runtime used, preserved so its
    /// pinned traces stay bit-identical. Synchronous engines drop the
    /// extra stream without drawing from it, which leaves the node
    /// streams unchanged.
    pub(crate) fn with_scheduler(n: usize, seed: u64) -> (Self, ChaCha8Rng) {
        let mut master = ChaCha8Rng::seed_from_u64(seed);
        let rngs = (0..n)
            .map(|_| ChaCha8Rng::from_rng(&mut master))
            .collect::<Vec<_>>();
        let scheduler = ChaCha8Rng::from_rng(&mut master);
        (
            FaultLayer {
                crashed: vec![false; n],
                alive: n,
                rngs,
                false_negative: 0.0,
                false_positive: 0.0,
            },
            scheduler,
        )
    }

    /// Returns `true` if node `i` is crashed.
    #[inline]
    pub fn is_crashed(&self, i: usize) -> bool {
        self.crashed[i]
    }

    /// Returns the crash flags, indexed by node.
    pub fn flags(&self) -> &[bool] {
        &self.crashed
    }

    /// Marks node `i` crashed (idempotent).
    pub(crate) fn crash(&mut self, i: usize) {
        if !std::mem::replace(&mut self.crashed[i], true) {
            self.alive -= 1;
        }
    }

    /// Clears the crash mark on node `i`, returning `true` if it was
    /// crashed (the caller then resets the node's state).
    pub(crate) fn recover(&mut self, i: usize) -> bool {
        let was_crashed = std::mem::replace(&mut self.crashed[i], false);
        if was_crashed {
            self.alive += 1;
        }
        was_crashed
    }

    /// Returns the number of non-crashed nodes, maintained in `O(1)`
    /// (crash/recover are the only mutation points).
    #[inline]
    pub fn alive_count(&self) -> usize {
        self.alive
    }

    /// Returns node `i`'s RNG stream (for protocol transitions).
    #[inline]
    pub fn rng(&mut self, i: usize) -> &mut ChaCha8Rng {
        &mut self.rngs[i]
    }

    /// Returns `true` if either noise channel is active.
    #[inline]
    pub fn has_noise(&self) -> bool {
        self.false_negative > 0.0 || self.false_positive > 0.0
    }

    /// Passes one perceived boolean signal of node `i` through the two
    /// noise channels: a `true` signal is lost with probability
    /// `false_negative`, a `false` signal hallucinated with probability
    /// `false_positive`. A channel with probability 0 draws nothing, so
    /// disabling noise restores bit-identical RNG streams.
    #[inline]
    pub fn filter_signal(&mut self, i: usize, signal: bool) -> bool {
        use rand::Rng as _;
        if signal {
            !(self.false_negative > 0.0 && self.rngs[i].random_bool(self.false_negative))
        } else {
            self.false_positive > 0.0 && self.rngs[i].random_bool(self.false_positive)
        }
    }

    /// Returns the false-negative (lost-signal) probability.
    pub(crate) fn false_negative(&self) -> f64 {
        self.false_negative
    }

    /// Returns the false-positive (hallucinated-signal) probability.
    pub(crate) fn false_positive(&self) -> f64 {
        self.false_positive
    }

    pub(crate) fn set_noise(&mut self, false_negative: f64, false_positive: f64) {
        assert!(
            (0.0..1.0).contains(&false_negative),
            "hearing-failure probability must be in [0, 1)"
        );
        assert!(
            (0.0..1.0).contains(&false_positive),
            "spurious-beep probability must be in [0, 1)"
        );
        self.false_negative = false_negative;
        self.false_positive = false_positive;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_layer_streams_are_seed_deterministic() {
        use rand::RngCore as _;
        let draw = |seed| {
            let mut f = FaultLayer::new(4, seed);
            (0..4).map(|i| f.rng(i).next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
        // Streams are pairwise distinct.
        let d = draw(7);
        assert_eq!(d.iter().collect::<std::collections::HashSet<_>>().len(), 4);
    }

    #[test]
    fn scheduler_stream_does_not_disturb_node_streams() {
        use rand::RngCore as _;
        let mut plain = FaultLayer::new(3, 9);
        let (mut carved, mut scheduler) = FaultLayer::with_scheduler(3, 9);
        for i in 0..3 {
            assert_eq!(plain.rng(i).next_u64(), carved.rng(i).next_u64());
        }
        // The scheduler stream is distinct from every node stream.
        let s = scheduler.next_u64();
        let mut fresh = FaultLayer::new(3, 9);
        assert!((0..3).all(|i| fresh.rng(i).next_u64() != s));
    }

    #[test]
    fn filter_signal_is_identity_without_noise() {
        let mut f = FaultLayer::new(2, 0);
        assert!(!f.has_noise());
        assert!(f.filter_signal(0, true));
        assert!(!f.filter_signal(0, false));
        // No draws happened: the stream still matches a fresh layer.
        use rand::RngCore as _;
        let mut g = FaultLayer::new(2, 0);
        assert_eq!(f.rng(0).next_u64(), g.rng(0).next_u64());
    }

    #[test]
    fn filter_signal_flips_at_extreme_probabilities() {
        let mut f = FaultLayer::new(1, 3);
        f.set_noise(0.999, 0.999);
        let mut lost = 0;
        let mut ghost = 0;
        for _ in 0..50 {
            lost += usize::from(!f.filter_signal(0, true));
            ghost += usize::from(f.filter_signal(0, false));
        }
        assert!(lost > 45, "{lost}");
        assert!(ghost > 45, "{ghost}");
    }

    #[test]
    fn crash_and_recover_toggle() {
        let mut f = FaultLayer::new(3, 0);
        assert!(!f.is_crashed(1));
        f.crash(1);
        f.crash(1); // idempotent
        assert!(f.is_crashed(1));
        assert_eq!(f.flags(), &[false, true, false]);
        assert_eq!(f.alive_count(), 2, "idempotent crash counts once");
        assert!(f.recover(1));
        assert!(!f.recover(1), "second recover is a no-op");
        assert_eq!(f.alive_count(), 3);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn noise_probabilities_validated() {
        FaultLayer::new(1, 0).set_noise(1.0, 0.0);
    }
}
