//! Synchronous simulators for weak communication models.
//!
//! This crate implements the execution environments of the reproduction
//! of *"Minimalist Leader Election Under Weak Communication"* (Vacus &
//! Ziccardi, PODC 2025):
//!
//! * the **beeping model** (Cornejo & Kuhn): per round each node beeps or
//!   listens; a node's next state is drawn from `δ⊤` when it beeps or any
//!   neighbor beeps, from `δ⊥` otherwise — see [`BeepingProtocol`] and
//!   [`Network`];
//! * a synchronous **stone-age model** (Emek & Wattenhofer): nodes
//!   display symbols from a finite alphabet and count neighbors per
//!   symbol only up to a threshold `b` — see [`stone_age`];
//! * a synchronous **message-passing model** used by the strong-model
//!   baseline (`FloodMax`) — see [`message_passing`].
//!
//! Executions are fully deterministic given a seed: every node owns an
//! independent ChaCha stream derived from the run seed, so the same
//! protocol replayed in two runtimes (e.g. beeping vs stone-age) produces
//! bit-identical traces.
//!
//! # Example
//!
//! The paper's protocol lives in the `bfw-core` crate; here is a tiny
//! custom protocol (every node beeps forever) driving the executor:
//!
//! ```
//! use bfw_sim::{BeepingProtocol, Network, NodeCtx, Topology};
//! use bfw_graph::generators;
//!
//! #[derive(Debug, Clone)]
//! struct AlwaysBeep;
//!
//! impl BeepingProtocol for AlwaysBeep {
//!     type State = ();
//!     fn initial_state(&self, _ctx: NodeCtx) {}
//!     fn beeps(&self, _state: &()) -> bool { true }
//!     fn transition(&self, _s: &(), heard: bool, _rng: &mut dyn rand::RngCore) {
//!         assert!(heard); // everyone hears themselves beep
//!     }
//! }
//!
//! let mut net = Network::new(AlwaysBeep, generators::cycle(8).into(), 42);
//! net.step();
//! assert_eq!(net.round(), 1);
//! assert_eq!(net.beeping_node_count(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod bitkernel;
mod error;
mod fault;
pub mod instrument;
pub mod message_passing;
mod monte_carlo;
mod network;
mod observers;
mod pool;
mod protocol;
mod recovering;
mod runner;
mod snapshot;
pub mod stone_age;
mod tick;
mod topology;

pub use activation::{ActivationEngine, ActivationLeaderModel, ActivationModel, Scheduler};
pub use bitkernel::{bernoulli_words, BitEngine, BitModel, PlaneWord};
pub use error::SimError;
pub use fault::FaultLayer;
pub use instrument::{ComplexityLedger, FlightRecorder, Instrumentation, RoundSample, TraceEvent};
pub use monte_carlo::{
    run_trials, run_trials_batched, run_trials_bitsliced, run_trials_sequential,
};
pub use network::{BeepingModel, Network, RoundView};
pub use observers::{
    observe_run, BeepCounter, ComplexityObserver, ConvergenceDetector, Observer, ObserverSet,
    StateHistogram, TraceRecorder,
};
pub use pool::{shard_bounds, ShardPool};
pub use protocol::{BeepingProtocol, LeaderElection, NodeCtx};
pub use recovering::{SlotAware, SlotSyncedModel};
pub use runner::{run_election, ElectionConfig, ElectionOutcome};
pub use snapshot::{EngineCheckpoint, SchedulerCheckpoint};
pub use tick::{LeaderModel, TickEngine, TickModel};
pub use topology::Topology;
