use std::error::Error;
use std::fmt;

/// Errors reported by the simulation runners.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The topology has no nodes; no election can take place.
    EmptyTopology,
    /// The topology is disconnected; eventual leader election is defined
    /// on connected graphs (several components would each keep a
    /// leader).
    Disconnected,
    /// The run exhausted its round budget before converging.
    RoundBudgetExhausted {
        /// The budget that was exhausted.
        max_rounds: u64,
        /// Leaders still present when the run stopped.
        leaders_remaining: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EmptyTopology => write!(f, "topology has no nodes"),
            SimError::Disconnected => write!(f, "topology is disconnected"),
            SimError::RoundBudgetExhausted {
                max_rounds,
                leaders_remaining,
            } => write!(
                f,
                "no convergence within {max_rounds} rounds ({leaders_remaining} leaders remaining)"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(SimError::EmptyTopology.to_string(), "topology has no nodes");
        assert_eq!(
            SimError::Disconnected.to_string(),
            "topology is disconnected"
        );
        let s = SimError::RoundBudgetExhausted {
            max_rounds: 10,
            leaders_remaining: 3,
        }
        .to_string();
        assert!(s.contains("10 rounds") && s.contains("3 leaders"));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<SimError>();
    }
}
