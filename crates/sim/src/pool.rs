//! Deterministic shard pool: the workspace's one way to fan work out
//! across `std::thread` workers.
//!
//! Both parallel call sites — the word-sharded [`BitEngine`] step and
//! the Monte-Carlo trial runners — reduce to the same shape: run
//! `job(k)` for every shard index `k`, where the job either owns a
//! disjoint slice of the data (engine sharding) or claims work items
//! from a shared atomic counter (trial runners). [`ShardPool::run`] is
//! that shape. The pool never influences *what* a shard computes, only
//! *where* it computes, so any determinism argument reduces to the
//! job's own index discipline (disjoint word ranges and per-node RNG
//! streams for the engine; `base_seed + trial_index` for the runners).
//!
//! The workspace forbids `unsafe`, so workers are scoped
//! (`std::thread::scope`) per [`run`](ShardPool::run) call rather than
//! parked in a persistent pool: borrowed shard data crosses into the
//! workers without `'static` laundering, and the scope join is the
//! phase barrier. The calling thread executes shard 0 itself, so
//! `threads == 1` costs nothing — no spawn, no synchronization.
//!
//! [`BitEngine`]: crate::BitEngine

/// A reusable fan-out handle: `threads` shards per [`run`](Self::run).
///
/// # Example
///
/// ```
/// use bfw_sim::ShardPool;
/// use std::sync::Mutex;
///
/// let pool = ShardPool::new(4);
/// let data = Mutex::new(vec![0usize; 4]);
/// pool.run(|k| data.lock().unwrap()[k] = k * 10);
/// assert_eq!(*data.lock().unwrap(), vec![0, 10, 20, 30]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPool {
    threads: usize,
}

impl ShardPool {
    /// Creates a pool that fans each [`run`](Self::run) out over
    /// `threads` shards.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "at least one worker thread is required");
        ShardPool { threads }
    }

    /// Number of shards per run.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job(k)` once for every shard `k` in `0..threads`, in
    /// parallel, and returns after all shards complete (the join is the
    /// barrier). Shard 0 runs on the calling thread; with one thread no
    /// worker is spawned at all.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any shard.
    pub fn run<F: Fn(usize) + Sync>(&self, job: F) {
        if self.threads == 1 {
            job(0);
            return;
        }
        let job = &job;
        std::thread::scope(|scope| {
            for k in 1..self.threads {
                scope.spawn(move || job(k));
            }
            job(0);
        });
    }
}

/// Splits the word range `0..words` into `shards` contiguous chunks of
/// near-equal size and returns their `(lo, hi)` bounds; chunks cover
/// the range exactly, in order, and the first `words % shards` chunks
/// are one word longer. Fewer than `shards` bounds come back when there
/// are fewer words than shards (empty chunks are dropped).
pub fn shard_bounds(words: usize, shards: usize) -> Vec<(usize, usize)> {
    assert!(shards > 0, "at least one shard is required");
    let shards = shards.min(words.max(1));
    let base = words / shards;
    let extra = words % shards;
    let mut bounds = Vec::with_capacity(shards);
    let mut lo = 0;
    for k in 0..shards {
        let len = base + usize::from(k < extra);
        if len == 0 {
            break;
        }
        bounds.push((lo, lo + len));
        lo += len;
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_shard_exactly_once() {
        for threads in [1, 2, 3, 8] {
            let pool = ShardPool::new(threads);
            let hits = AtomicUsize::new(0);
            let sum = AtomicUsize::new(0);
            pool.run(|k| {
                hits.fetch_add(1, Ordering::SeqCst);
                sum.fetch_add(k, Ordering::SeqCst);
            });
            assert_eq!(hits.load(Ordering::SeqCst), threads);
            assert_eq!(sum.load(Ordering::SeqCst), threads * (threads - 1) / 2);
        }
    }

    #[test]
    fn shard_bounds_partition_exactly() {
        for words in [0usize, 1, 7, 64, 65, 1000] {
            for shards in [1usize, 2, 3, 7, 16] {
                let bounds = shard_bounds(words, shards);
                let mut expect_lo = 0;
                for &(lo, hi) in &bounds {
                    assert_eq!(lo, expect_lo, "words={words} shards={shards}");
                    assert!(hi > lo, "chunks are non-empty");
                    expect_lo = hi;
                }
                assert_eq!(expect_lo, words, "words={words} shards={shards}");
                assert!(bounds.len() <= shards);
                if words > 0 {
                    assert_eq!(bounds.len(), shards.min(words));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker thread")]
    fn zero_threads_rejected() {
        let _ = ShardPool::new(0);
    }
}
