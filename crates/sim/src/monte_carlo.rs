//! Parallel Monte-Carlo trial runner.
//!
//! The paper's guarantees are "with high probability" statements; the
//! experiments estimate them by running many independent seeded trials.
//! [`run_trials`] distributes trials across scoped worker threads while
//! keeping results deterministic: trial `i` always receives seed
//! `base_seed + i` and lands at index `i` of the output.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `trials` independent trials of `f` across `threads` worker
/// threads and returns the results in trial order.
///
/// `f` receives the trial's seed (`base_seed + trial_index`). Results
/// are deterministic: the same inputs produce the same output vector
/// regardless of thread interleaving.
///
/// Workers claim trial indices from a shared atomic counter (dynamic
/// load balancing — trial durations are heavy-tailed) and each collects
/// its `(index, result)` pairs in a thread-local `Vec`; the pairs are
/// merged into trial order after the scope joins. No per-trial lock is
/// taken.
///
/// # Panics
///
/// Panics if `threads == 0` or if `f` panics in any worker.
///
/// # Example
///
/// ```
/// use bfw_sim::run_trials;
///
/// let squares = run_trials(8, 4, 100, |seed| seed * seed);
/// assert_eq!(squares[3], 103 * 103);
/// ```
pub fn run_trials<R, F>(trials: usize, threads: usize, base_seed: u64, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    assert!(threads > 0, "at least one worker thread is required");
    if trials == 0 {
        return Vec::new();
    }
    let threads = threads.min(trials);
    if threads == 1 {
        return run_trials_sequential(trials, base_seed, f);
    }
    let next = AtomicUsize::new(0);
    let f = &f;
    let mut buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::with_capacity(trials / threads + 1);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= trials {
                            return local;
                        }
                        local.push((i, f(base_seed + i as u64)));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    let mut results: Vec<Option<R>> = (0..trials).map(|_| None).collect();
    for (i, r) in buckets.drain(..).flatten() {
        debug_assert!(results[i].is_none(), "trial {i} produced twice");
        results[i] = Some(r);
    }
    results
        .into_iter()
        .map(|r| r.expect("every trial index is claimed exactly once"))
        .collect()
}

/// Sequential reference implementation of [`run_trials`] (same seeding,
/// same output order).
pub fn run_trials_sequential<R, F>(trials: usize, base_seed: u64, f: F) -> Vec<R>
where
    F: Fn(u64) -> R,
{
    (0..trials).map(|i| f(base_seed + i as u64)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_sequential() {
        let f = |seed: u64| seed.wrapping_mul(2654435761) % 1009;
        let seq = run_trials_sequential(100, 7, f);
        let par = run_trials(100, 8, 7, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn zero_trials() {
        let out: Vec<u64> = run_trials(0, 4, 0, |s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_path() {
        let out = run_trials(5, 1, 10, |s| s);
        assert_eq!(out, vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn more_threads_than_trials() {
        let out = run_trials(3, 64, 0, |s| s * 2);
        assert_eq!(out, vec![0, 2, 4]);
    }

    #[test]
    fn seeds_are_distinct_per_trial() {
        let out = run_trials(50, 4, 1000, |s| s);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 50);
        assert_eq!(out, (1000..1050).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "at least one worker thread")]
    fn zero_threads_panics() {
        let _ = run_trials(1, 0, 0, |s| s);
    }
}
