//! Parallel Monte-Carlo trial runner.
//!
//! The paper's guarantees are "with high probability" statements; the
//! experiments estimate them by running many independent seeded trials.
//! [`run_trials`] distributes trials across the workspace's
//! [`ShardPool`] while keeping results deterministic: trial `i` always
//! receives seed `base_seed + i` and lands at index `i` of the output.
//! All three runners share the same fan-out shape — workers claim work
//! from an atomic counter, collect `(index, result)` pairs locally,
//! and the pairs are merged in index order after the pool's join.

use crate::pool::ShardPool;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Claims work-unit indices below `limit` from a shared atomic counter,
/// runs `body(worker, unit, local)` on each, and deposits every
/// worker's collected `(trial_index, result)` pairs into its bucket —
/// the shared fan-out of all three trial runners, on [`ShardPool`].
fn claim_loop<R: Send>(
    pool: &ShardPool,
    limit: usize,
    body: impl Fn(usize, usize, &mut Vec<(usize, R)>) + Sync,
) -> Vec<Vec<(usize, R)>> {
    let next = AtomicUsize::new(0);
    let buckets: Vec<Mutex<Vec<(usize, R)>>> = (0..pool.threads())
        .map(|_| Mutex::new(Vec::new()))
        .collect();
    pool.run(|k| {
        let mut local = Vec::with_capacity(limit / pool.threads() + 1);
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= limit {
                break;
            }
            body(k, i, &mut local);
        }
        *buckets[k].lock().expect("bucket lock is per-worker") = local;
    });
    buckets
        .into_iter()
        .map(|b| b.into_inner().expect("bucket lock is per-worker"))
        .collect()
}

/// Runs `trials` independent trials of `f` across `threads` worker
/// threads and returns the results in trial order.
///
/// `f` receives the trial's seed (`base_seed + trial_index`). Results
/// are deterministic: the same inputs produce the same output vector
/// regardless of thread interleaving.
///
/// Workers claim trial indices from a shared atomic counter (dynamic
/// load balancing — trial durations are heavy-tailed) and each collects
/// its `(index, result)` pairs in a thread-local `Vec`; the pairs are
/// merged into trial order after the scope joins. No per-trial lock is
/// taken.
///
/// # Panics
///
/// Panics if `threads == 0` or if `f` panics in any worker.
///
/// # Example
///
/// ```
/// use bfw_sim::run_trials;
///
/// let squares = run_trials(8, 4, 100, |seed| seed * seed);
/// assert_eq!(squares[3], 103 * 103);
/// ```
pub fn run_trials<R, F>(trials: usize, threads: usize, base_seed: u64, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    assert!(threads > 0, "at least one worker thread is required");
    if trials == 0 {
        return Vec::new();
    }
    let threads = threads.min(trials);
    if threads == 1 {
        return run_trials_sequential(trials, base_seed, f);
    }
    let pool = ShardPool::new(threads);
    let mut buckets = claim_loop(&pool, trials, |_k, i, local| {
        local.push((i, f(base_seed + i as u64)));
    });
    let mut results: Vec<Option<R>> = (0..trials).map(|_| None).collect();
    for (i, r) in buckets.drain(..).flatten() {
        debug_assert!(results[i].is_none(), "trial {i} produced twice");
        results[i] = Some(r);
    }
    results
        .into_iter()
        .map(|r| r.expect("every trial index is claimed exactly once"))
        .collect()
}

/// Runs `trials` independent trials of `f` in **sharded seed chunks**
/// across `threads` worker threads, with a per-worker reusable scratch
/// value, and returns the results in trial order.
///
/// This is the batch variant of [`run_trials`] for Monte-Carlo sweeps
/// whose per-trial closure benefits from reusable allocations: workers
/// claim `chunk` consecutive trial indices at a time (fewer atomic
/// operations, better cache locality of the shared inputs) and hand
/// every trial of their chunks the same `&mut S` scratch, which is
/// created once per worker via `S::default()` and never crosses
/// threads. Trial `i` still always receives seed `base_seed + i` and
/// lands at index `i` of the output, so results are deterministic and
/// identical to the sequential reference regardless of `threads`,
/// `chunk` or interleaving — provided `f` writes its scratch before
/// reading it (a scratch carrying state *between* trials would break
/// the determinism contract, and the per-chunk sharding makes any such
/// leak schedule-dependent and thus caught by the parallel-vs-
/// sequential tests).
///
/// # Panics
///
/// Panics if `threads == 0`, `chunk == 0`, or `f` panics in a worker.
///
/// # Example
///
/// ```
/// use bfw_sim::run_trials_batched;
///
/// // The scratch buffer is reused across every trial of a chunk.
/// let sums = run_trials_batched(8, 4, 100, 2, |seed, buf: &mut Vec<u64>| {
///     buf.clear();
///     buf.extend(0..seed % 5);
///     buf.iter().sum::<u64>()
/// });
/// assert_eq!(sums.len(), 8);
/// assert_eq!(sums[3], (0..103u64 % 5).sum());
/// ```
pub fn run_trials_batched<R, S, F>(
    trials: usize,
    threads: usize,
    base_seed: u64,
    chunk: usize,
    f: F,
) -> Vec<R>
where
    R: Send,
    S: Default + Send,
    F: Fn(u64, &mut S) -> R + Sync,
{
    assert!(threads > 0, "at least one worker thread is required");
    assert!(chunk > 0, "chunk size must be positive");
    if trials == 0 {
        return Vec::new();
    }
    let chunks = trials.div_ceil(chunk);
    let threads = threads.min(chunks);
    if threads == 1 {
        let mut scratch = S::default();
        return (0..trials)
            .map(|i| f(base_seed + i as u64, &mut scratch))
            .collect();
    }
    let pool = ShardPool::new(threads);
    let scratches: Vec<Mutex<S>> = (0..threads).map(|_| Mutex::new(S::default())).collect();
    let scratches = &scratches;
    let mut buckets = claim_loop(&pool, chunks, |k, c, local| {
        let scratch = &mut *scratches[k].lock().expect("scratch lock is per-worker");
        let start = c * chunk;
        for i in start..(start + chunk).min(trials) {
            local.push((i, f(base_seed + i as u64, scratch)));
        }
    });
    let mut results: Vec<Option<R>> = (0..trials).map(|_| None).collect();
    for (i, r) in buckets.drain(..).flatten() {
        debug_assert!(results[i].is_none(), "trial {i} produced twice");
        results[i] = Some(r);
    }
    results
        .into_iter()
        .map(|r| r.expect("every trial index is claimed exactly once"))
        .collect()
}

/// Runs `trials` independent trials in **64-lane bitsliced groups**
/// across `threads` worker threads and returns the results in trial
/// order.
///
/// This is the lane-parallel sibling of [`run_trials_batched`] for
/// bit-packed executions (see `bfw_core::bit`): instead of one engine
/// per trial, the closure runs up to 64 trials *simultaneously* in the
/// bit positions of its words. `f(group_seed, lanes)` executes one
/// group — lane `k` is trial `group_start + k` — and must return
/// exactly `lanes` results, in lane order.
///
/// Seeding: the group starting at trial index `s` receives
/// `base_seed + s`, so a sweep's first group matches `run_trials`'
/// first trial seed. Lane executions draw from per-node streams carved
/// out of the *group* seed, a different stream discipline from the
/// scalar runners — lane trials agree with `run_trials` trials in
/// distribution, not draw-for-draw (the mapping is documented on
/// [`bernoulli_words`](crate::bernoulli_words)). Results are
/// deterministic: the same inputs produce the same output vector
/// regardless of `threads` or interleaving.
///
/// # Panics
///
/// Panics if `threads == 0`, if `f` returns the wrong number of
/// results, or if `f` panics in any worker.
///
/// # Example
///
/// ```
/// use bfw_sim::run_trials_bitsliced;
///
/// // 100 trials = groups of 64 + 36, seeds 900 and 964.
/// let out = run_trials_bitsliced(100, 4, 900, |seed, lanes| {
///     (0..lanes).map(|k| seed + k as u64).collect()
/// });
/// assert_eq!(out.len(), 100);
/// assert_eq!(out[63], 963);
/// assert_eq!(out[64], 964);
/// ```
pub fn run_trials_bitsliced<R, F>(trials: usize, threads: usize, base_seed: u64, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64, usize) -> Vec<R> + Sync,
{
    assert!(threads > 0, "at least one worker thread is required");
    if trials == 0 {
        return Vec::new();
    }
    let groups = trials.div_ceil(64);
    let run_group = |g: usize| {
        let start = g * 64;
        let lanes = 64.min(trials - start);
        let results = f(base_seed + start as u64, lanes);
        assert_eq!(
            results.len(),
            lanes,
            "bitsliced group must return one result per lane"
        );
        results
    };
    let threads = threads.min(groups);
    if threads == 1 {
        return (0..groups).flat_map(run_group).collect();
    }
    let pool = ShardPool::new(threads);
    let run_group = &run_group;
    let mut buckets: Vec<Vec<(usize, Vec<R>)>> = claim_loop(&pool, groups, |_k, g, local| {
        local.push((g, run_group(g)));
    });
    let mut results: Vec<Option<R>> = (0..trials).map(|_| None).collect();
    for (g, group) in buckets.drain(..).flatten() {
        for (k, r) in group.into_iter().enumerate() {
            let i = g * 64 + k;
            debug_assert!(results[i].is_none(), "trial {i} produced twice");
            results[i] = Some(r);
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("every trial index is claimed exactly once"))
        .collect()
}

/// Sequential reference implementation of [`run_trials`] (same seeding,
/// same output order).
pub fn run_trials_sequential<R, F>(trials: usize, base_seed: u64, f: F) -> Vec<R>
where
    F: Fn(u64) -> R,
{
    (0..trials).map(|i| f(base_seed + i as u64)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_sequential() {
        let f = |seed: u64| seed.wrapping_mul(2654435761) % 1009;
        let seq = run_trials_sequential(100, 7, f);
        let par = run_trials(100, 8, 7, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn zero_trials() {
        let out: Vec<u64> = run_trials(0, 4, 0, |s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_path() {
        let out = run_trials(5, 1, 10, |s| s);
        assert_eq!(out, vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn more_threads_than_trials() {
        let out = run_trials(3, 64, 0, |s| s * 2);
        assert_eq!(out, vec![0, 2, 4]);
    }

    #[test]
    fn seeds_are_distinct_per_trial() {
        let out = run_trials(50, 4, 1000, |s| s);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 50);
        assert_eq!(out, (1000..1050).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "at least one worker thread")]
    fn zero_threads_panics() {
        let _ = run_trials(1, 0, 0, |s| s);
    }

    #[test]
    fn batched_matches_sequential_for_any_chunking() {
        // The scratch is written before it is read, so chunking and
        // thread count must not change the output.
        let f = |seed: u64, buf: &mut Vec<u64>| {
            buf.clear();
            buf.extend((0..seed % 7).map(|x| x * seed));
            buf.iter().sum::<u64>()
        };
        let seq = run_trials_batched(100, 1, 13, 1, f);
        for (threads, chunk) in [(2, 1), (4, 4), (8, 16), (3, 100), (16, 7)] {
            assert_eq!(
                run_trials_batched(100, threads, 13, chunk, f),
                seq,
                "threads {threads}, chunk {chunk}"
            );
        }
    }

    #[test]
    fn batched_matches_unbatched_runner() {
        let plain = run_trials(40, 4, 99, |seed| seed.wrapping_mul(2654435761) % 1009);
        let batched = run_trials_batched(40, 4, 99, 8, |seed, _scratch: &mut ()| {
            seed.wrapping_mul(2654435761) % 1009
        });
        assert_eq!(plain, batched);
    }

    #[test]
    fn batched_zero_trials_and_edge_chunks() {
        let out: Vec<u64> = run_trials_batched(0, 4, 0, 8, |s, _: &mut ()| s);
        assert!(out.is_empty());
        let out = run_trials_batched(3, 64, 10, 64, |s, _: &mut ()| s);
        assert_eq!(out, vec![10, 11, 12]);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn batched_zero_chunk_panics() {
        let _ = run_trials_batched(1, 1, 0, 0, |s, _: &mut ()| s);
    }

    #[test]
    fn bitsliced_is_thread_count_invariant() {
        let f = |seed: u64, lanes: usize| {
            (0..lanes)
                .map(|k| seed.wrapping_mul(31).wrapping_add(k as u64))
                .collect::<Vec<_>>()
        };
        let one = run_trials_bitsliced(200, 1, 5, f);
        for threads in [2, 3, 8] {
            assert_eq!(run_trials_bitsliced(200, threads, 5, f), one, "{threads}");
        }
        assert_eq!(one.len(), 200);
        // Group seeds step by 64: trial 64 is lane 0 of the group
        // seeded base + 64.
        assert_eq!(one[64], (5 + 64u64).wrapping_mul(31));
    }

    #[test]
    fn bitsliced_zero_trials_and_partial_group() {
        let out: Vec<u64> = run_trials_bitsliced(0, 4, 0, |s, l| vec![s; l]);
        assert!(out.is_empty());
        let out = run_trials_bitsliced(65, 4, 10, |s, l| vec![s; l]);
        assert_eq!(out.len(), 65);
        assert_eq!(out[63], 10);
        assert_eq!(out[64], 74);
    }

    #[test]
    #[should_panic(expected = "one result per lane")]
    fn bitsliced_validates_lane_count() {
        let _ = run_trials_bitsliced(10, 1, 0, |_s, _l| vec![0u64; 3]);
    }
}
