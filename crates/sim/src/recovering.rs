//! Slot-synchronized execution for phase-multiplexed protocols.
//!
//! Protocols that multiplex logical channels over round parity (the
//! recovery layer in `bfw-core` alternates election and heartbeat
//! slots) carry a slot-parity bit in their per-node state. Under a
//! plain [`Network`](crate::Network) that bit is correct only while
//! every node has run since round 0: a node recovered mid-run, or a
//! configuration injected by a scenario, would restart at parity 0 and
//! desynchronize from the rest of the network — silently corrupting
//! both channels.
//!
//! [`SlotSyncedModel`] closes that hole: it is a [`TickModel`] that
//! wraps the beeping model and keeps the **global round counter** as
//! the single authority for slot parity. Every state that enters the
//! engine from outside the round loop — fresh initial states, states of
//! recovering nodes, scenario-injected configurations — has its parity
//! stamped from the global round via the [`SlotAware`] seam, so the
//! network can never split into disagreeing slot phases.

use crate::fault::FaultLayer;
use crate::instrument::RoundSample;
use crate::network::BeepingModel;
use crate::tick::{LeaderModel, TickEngine, TickModel};
use crate::{BeepingProtocol, LeaderElection, NodeCtx, Topology};

/// A protocol state that carries a round clock (slot parity and
/// restart-window position), settable by the runtime (implemented by
/// `bfw-core`'s `RecoveryState`).
pub trait SlotAware {
    /// Overwrites the state's round clock with the global round this
    /// state will act in next. Implementations typically keep the low
    /// bit as the slot parity and low bits modulo a power of two as a
    /// schedule position, so a wrapping 32-bit clock is sufficient.
    fn sync_clock(&mut self, round: u64);
}

/// The [`TickModel`] executing a slot-multiplexed beeping protocol with
/// the global round as the slot-parity authority: every state entering
/// the engine from outside the round loop (initial, recovered,
/// injected) has its round clock stamped via [`SlotAware`], so the
/// network can never split into disagreeing slot phases.
#[derive(Debug, Clone)]
pub struct SlotSyncedModel<P: BeepingProtocol>
where
    P::State: SlotAware,
{
    inner: BeepingModel<P>,
    round: u64,
}

impl<P: BeepingProtocol> TickModel for SlotSyncedModel<P>
where
    P::State: SlotAware,
{
    type State = P::State;

    fn initial_state(&self, ctx: NodeCtx) -> P::State {
        let mut state = self.inner.protocol.initial_state(ctx);
        state.sync_clock(self.round);
        state
    }

    fn init_caches(&mut self, n: usize) {
        self.inner.init_caches(n);
    }

    fn refresh_node(&mut self, i: usize, state: &P::State, crashed: bool) {
        self.inner.refresh_node(i, state, crashed);
    }

    fn adopt_state(&self, state: &mut P::State) {
        state.sync_clock(self.round);
    }

    fn advance(&mut self, topology: &Topology, states: &mut [P::State], faults: &mut FaultLayer) {
        self.inner.advance(topology, states, faults);
        self.round += 1;
    }

    // Complexity accounting delegates to the wrapped beeping model —
    // slot multiplexing changes what the bits mean, not how many cross
    // the channel.
    fn emission_sample(&self, topology: &Topology, faults: &FaultLayer) -> Option<RoundSample> {
        self.inner.emission_sample(topology, faults)
    }

    fn perceived_count(&self, faults: &FaultLayer) -> Option<u64> {
        self.inner.perceived_count(faults)
    }

    fn refresh_sampler_caches(&mut self, topology: &Topology) {
        self.inner.refresh_sampler_caches(topology);
    }
}

impl<P: LeaderElection> LeaderModel for SlotSyncedModel<P>
where
    P::State: SlotAware,
{
    fn is_leader(&self, state: &P::State) -> bool {
        self.inner.protocol.is_leader(state)
    }
}

impl<P: BeepingProtocol> TickEngine<SlotSyncedModel<P>>
where
    P::State: SlotAware,
{
    /// Creates a slot-synchronized network in round 0 with every node
    /// in its initial state (mirrors [`Network::new`](crate::Network)).
    pub fn new(protocol: P, topology: Topology, seed: u64) -> Self {
        TickEngine::from_model(
            SlotSyncedModel {
                inner: BeepingModel::new(protocol),
                round: 0,
            },
            topology,
            seed,
        )
    }

    /// Creates a slot-synchronized network from an explicit
    /// configuration (mirrors
    /// [`Network::with_states`](crate::Network)). The states' slot
    /// parity is stamped for round 0.
    ///
    /// # Panics
    ///
    /// Panics if `states.len()` differs from the topology's node count.
    pub fn with_states(
        protocol: P,
        topology: Topology,
        seed: u64,
        mut states: Vec<P::State>,
    ) -> Self {
        for s in &mut states {
            s.sync_clock(0);
        }
        TickEngine::from_parts(
            SlotSyncedModel {
                inner: BeepingModel::new(protocol),
                round: 0,
            },
            topology,
            seed,
            states,
        )
    }

    /// Returns the protocol driving this network.
    pub fn protocol(&self) -> &P {
        &self.model.inner.protocol
    }
}
