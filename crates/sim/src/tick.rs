//! The shared tick engine: one fault substrate and one round loop for
//! every synchronous runtime.
//!
//! The paper's point is that a single minimalist protocol family runs
//! unchanged across weak models; this module is the executor-side
//! mirror of that claim. [`TickEngine`] owns everything that is *not*
//! model-specific — the topology (including delta-applied dynamic
//! topology), the crash bitmask, the per-node ChaCha streams, the
//! two-channel perception-noise model and the round counter — and a
//! [`TickModel`] contributes only what a communication model actually
//! defines: how states are emitted and perceived within one round. The
//! beeping [`Network`](crate::Network) and the stone-age
//! [`StoneAgeNetwork`](crate::stone_age::StoneAgeNetwork) are thin
//! aliases over this engine, so crash masking, topology swapping and
//! noise each exist in exactly one place and automatically behave
//! identically across models.
//!
//! Determinism contract: node `i` draws from a ChaCha8 stream carved
//! deterministically out of the run seed, exactly as the pre-engine
//! runtimes did (see the `tick_engine_equivalence` workspace test for
//! the pinned traces). Zero-probability noise channels draw nothing.

use crate::fault::FaultLayer;
use crate::instrument::{ComplexityLedger, FlightRecorder, Instrumentation, RoundSample};
use crate::snapshot::EngineCheckpoint;
use crate::{NodeCtx, Topology};
use bfw_graph::{NodeId, TopologyDelta};

/// A synchronous communication model, pluggable into [`TickEngine`].
///
/// A model owns the protocol and its emission caches (beep flags,
/// displayed symbols, …) and defines how one round of perception and
/// transition works; the engine owns everything else. Implementations:
/// [`BeepingModel`](crate::BeepingModel) and
/// [`StoneAgeModel`](crate::stone_age::StoneAgeModel).
pub trait TickModel {
    /// Per-node protocol state.
    type State: Clone + PartialEq + std::fmt::Debug;

    /// Returns the protocol's initial state for one node.
    fn initial_state(&self, ctx: NodeCtx) -> Self::State;

    /// Sizes the model's per-node emission caches for `n` nodes.
    fn init_caches(&mut self, n: usize);

    /// Refreshes node `i`'s emission cache after its state or crash
    /// flag changed.
    fn refresh_node(&mut self, i: usize, state: &Self::State, crashed: bool);

    /// Normalizes an externally supplied state before it is installed
    /// (the engine calls this from
    /// [`set_node_state`](TickEngine::set_node_state) and
    /// [`set_states`](TickEngine::set_states)). The default is a no-op;
    /// models whose states carry engine-global bookkeeping — e.g. the
    /// recovery layer's slot parity, which must match the global round
    /// — override it so scenario state injection cannot desynchronize
    /// a node.
    fn adopt_state(&self, _state: &mut Self::State) {}

    /// Executes one synchronous round in place: perceive the cached
    /// emissions over `topology` (honoring the crash mask and noise
    /// channels in `faults`), transition every alive node using its RNG
    /// stream, and refresh the emission caches.
    fn advance(&mut self, topology: &Topology, states: &mut [Self::State], faults: &mut FaultLayer);

    /// Samples what the *pending* emission caches would transmit this
    /// round (called by an instrumented engine immediately before
    /// [`advance`](Self::advance); see [`crate::instrument`] for the
    /// accounting conventions). Must only read caches the model already
    /// maintains — never draw from an RNG stream. The default (`None`)
    /// opts a model out of complexity accounting; the engine then
    /// records an all-zero sample.
    fn emission_sample(&self, _topology: &Topology, _faults: &FaultLayer) -> Option<RoundSample> {
        None
    }

    /// Counts the nodes that perceived a non-quiescent signal in the
    /// round [`advance`](Self::advance) just executed (post-noise).
    /// Same passivity contract as
    /// [`emission_sample`](Self::emission_sample); the default (`None`)
    /// leaves the ledger's heard counter at the sample's value.
    fn perceived_count(&self, _faults: &FaultLayer) -> Option<u64> {
        None
    }

    /// Rebuilds any topology-derived caches the sampler keeps (e.g. the
    /// beeping model's per-node degree cache for message accounting).
    /// The engine calls this when instrumentation is switched on, and
    /// after every topology mutation **while instrumentation is on** —
    /// never on the uninstrumented path, so churn stays `O(deg)` per
    /// edge when nobody is counting. The default is a no-op.
    fn refresh_sampler_caches(&mut self, _topology: &Topology) {}
}

/// A [`TickModel`] whose protocol designates a leader subset of its
/// states — the seam the scenario engine's election metrics need.
pub trait LeaderModel: TickModel {
    /// Returns `true` if `state` belongs to the protocol's leader set.
    fn is_leader(&self, state: &Self::State) -> bool;
}

/// Synchronous executor generic over the communication model.
///
/// Use the model-specific aliases and constructors —
/// [`Network`](crate::Network) for the beeping model,
/// [`StoneAgeNetwork`](crate::stone_age::StoneAgeNetwork) for the
/// stone-age model; everything documented here is shared verbatim by
/// both.
#[derive(Debug, Clone)]
pub struct TickEngine<M: TickModel> {
    pub(crate) model: M,
    pub(crate) topology: Topology,
    pub(crate) states: Vec<M::State>,
    pub(crate) faults: FaultLayer,
    pub(crate) round: u64,
    pub(crate) instr: Instrumentation,
}

impl<M: TickModel> TickEngine<M> {
    /// Builds an engine in round 0 from a model and an explicit
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if `states.len()` differs from the topology's node count.
    pub(crate) fn from_parts(
        mut model: M,
        topology: Topology,
        seed: u64,
        states: Vec<M::State>,
    ) -> Self {
        let n = topology.node_count();
        assert_eq!(states.len(), n, "one state per node is required");
        model.init_caches(n);
        for (i, s) in states.iter().enumerate() {
            model.refresh_node(i, s, false);
        }
        TickEngine {
            model,
            topology,
            states,
            faults: FaultLayer::new(n, seed),
            round: 0,
            instr: Instrumentation::off(),
        }
    }

    /// Builds an engine in round 0 with every node in the model's
    /// initial state.
    pub(crate) fn from_model(model: M, topology: Topology, seed: u64) -> Self {
        let n = topology.node_count();
        let states = (0..n)
            .map(|i| {
                model.initial_state(NodeCtx {
                    node: NodeId::new(i),
                    node_count: n,
                })
            })
            .collect();
        Self::from_parts(model, topology, seed, states)
    }

    /// Returns the number of nodes.
    pub fn node_count(&self) -> usize {
        self.states.len()
    }

    /// Returns the current round number (0 before any step).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Returns the topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Returns the current state of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn state(&self, u: NodeId) -> &M::State {
        &self.states[u.index()]
    }

    /// Returns all node states, indexed by node.
    pub fn states(&self) -> &[M::State] {
        &self.states
    }

    /// Advances one synchronous round.
    pub fn step(&mut self) {
        if self.instr.is_on() {
            let mut sample = self
                .model
                .emission_sample(&self.topology, &self.faults)
                .unwrap_or_default();
            self.model
                .advance(&self.topology, &mut self.states, &mut self.faults);
            if let Some(heard) = self.model.perceived_count(&self.faults) {
                sample.heard = heard;
            }
            self.instr
                .record_step(sample, self.states.len(), std::mem::size_of::<M::State>());
        } else {
            self.model
                .advance(&self.topology, &mut self.states, &mut self.faults);
        }
        self.round += 1;
    }

    /// Advances `rounds` rounds.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Replaces the communication topology mid-run (the scenario
    /// engine's partition hook and the rebuild-per-event baseline).
    /// States, RNG streams and the round counter are untouched; the new
    /// adjacency takes effect from the next [`step`](Self::step). For
    /// incremental edge churn prefer
    /// [`apply_topology_delta`](Self::apply_topology_delta).
    ///
    /// # Panics
    ///
    /// Panics if the new topology's node count differs from the
    /// network's.
    pub fn set_topology(&mut self, topology: Topology) {
        assert_eq!(
            topology.node_count(),
            self.states.len(),
            "topology mutation must preserve the node count"
        );
        self.topology = topology;
        if self.instr.is_on() {
            self.model.refresh_sampler_caches(&self.topology);
        }
    }

    /// Applies a batch of edge mutations to the topology in `O(deg)`
    /// per edge instead of rebuilding the CSR — the scenario engine's
    /// edge-churn hook. The first delta converts the topology into its
    /// delta-overlay form (one `O(n + m)` conversion; cliques are
    /// materialized); subsequent deltas are incremental with periodic
    /// compaction.
    ///
    /// # Panics
    ///
    /// Panics if the delta removes an absent edge or adds a present one
    /// (see [`bfw_graph::OverlayGraph::apply`]).
    pub fn apply_topology_delta(&mut self, delta: &TopologyDelta) {
        self.topology.apply_delta(delta);
        if self.instr.is_on() {
            self.model.refresh_sampler_caches(&self.topology);
        }
    }

    /// Crashes node `u`: from now on it emits nothing, ignores its
    /// environment and performs no transitions (its RNG stream is
    /// paused, not consumed). Crashing an already-crashed node is a
    /// no-op.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn crash_node(&mut self, u: NodeId) {
        let i = u.index();
        self.faults.crash(i);
        self.model.refresh_node(i, &self.states[i], true);
    }

    /// Recovers node `u` with a **fresh protocol-initial state** (for
    /// BFW: `W•` — the recovering node rejoins as a leader candidate, as
    /// a newly booted device would). No-op on nodes that are not
    /// crashed.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn recover_node(&mut self, u: NodeId) {
        let i = u.index();
        if !self.faults.recover(i) {
            return;
        }
        self.states[i] = self.model.initial_state(NodeCtx {
            node: u,
            node_count: self.states.len(),
        });
        self.model.refresh_node(i, &self.states[i], false);
    }

    /// Returns `true` if `u` is currently crashed.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn is_crashed(&self, u: NodeId) -> bool {
        self.faults.is_crashed(u.index())
    }

    /// Returns the crash flags, indexed by node.
    pub fn crash_flags(&self) -> &[bool] {
        self.faults.flags()
    }

    /// Returns the number of non-crashed nodes.
    pub fn alive_count(&self) -> usize {
        self.faults.alive_count()
    }

    /// Sets both perception-noise probabilities at once: a perceived
    /// signal is lost with probability `false_negative` and hallucinated
    /// with probability `false_positive`. In the beeping model the
    /// signal is "some neighbor beeped"; in the stone-age model it is
    /// the presence of each non-quiescent symbol (see
    /// [`StoneAgeModel`](crate::stone_age::StoneAgeModel)).
    ///
    /// This is the mutation hook used by the scenario engine's
    /// `NoiseBurst` events; `(0, 0)` restores the exact model (the next
    /// rounds draw no extra randomness).
    ///
    /// # Panics
    ///
    /// Panics if either probability is not in `[0, 1)`.
    pub fn set_noise(&mut self, false_negative: f64, false_positive: f64) {
        self.faults.set_noise(false_negative, false_positive);
    }

    /// Returns the false-negative (lost-signal) probability — for the
    /// beeping model, the hearing-failure probability (0 for the exact
    /// model).
    pub fn hearing_failure_prob(&self) -> f64 {
        self.faults.false_negative()
    }

    /// Returns the false-positive (hallucinated-signal) probability —
    /// for the beeping model, the spurious-beep probability (0 for the
    /// exact model).
    pub fn spurious_beep_prob(&self) -> f64 {
        self.faults.false_positive()
    }

    /// Overwrites the state of node `u` (the scenario engine's
    /// state-injection hook).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn set_node_state(&mut self, u: NodeId, state: M::State) {
        let i = u.index();
        let mut state = state;
        self.model.adopt_state(&mut state);
        self.states[i] = state;
        self.model
            .refresh_node(i, &self.states[i], self.faults.is_crashed(i));
    }

    /// Replaces the whole configuration (crashed nodes keep their crash
    /// mask and stay silent).
    ///
    /// # Panics
    ///
    /// Panics if `states.len()` differs from the node count.
    pub fn set_states(&mut self, states: Vec<M::State>) {
        assert_eq!(
            states.len(),
            self.states.len(),
            "one state per node is required"
        );
        self.states = states;
        for s in &mut self.states {
            self.model.adopt_state(s);
        }
        for (i, s) in self.states.iter().enumerate() {
            self.model.refresh_node(i, s, self.faults.is_crashed(i));
        }
    }

    /// Captures the engine's checkpoint — round counter, crash mask,
    /// noise channels and per-node RNG stream positions (see
    /// [`EngineCheckpoint`]). Node states and topology are captured
    /// separately through [`states`](Self::states) and
    /// [`topology`](Self::topology).
    pub fn checkpoint(&self) -> EngineCheckpoint {
        let n = self.states.len();
        EngineCheckpoint {
            steps: self.round,
            crashed: self.faults.flags().to_vec(),
            false_negative: self.faults.false_negative(),
            false_positive: self.faults.false_positive(),
            rng_positions: (0..n).map(|i| self.faults.rng_position(i)).collect(),
            scheduler: None,
        }
    }

    /// Restores a checkpoint taken by [`checkpoint`](Self::checkpoint)
    /// on an engine built from the **same seed** (stream keys are
    /// re-carved from the seed; only positions are restored). The crash
    /// mask is installed before `states`, so the model's emission
    /// caches refresh against the restored flags; the caller installs
    /// the checkpointed topology separately (before or after — the next
    /// [`step`](Self::step) reads both).
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's node count or `states.len()` differs
    /// from the engine's, or if the checkpoint carries a scheduler half
    /// (synchronous engines have no scheduler).
    pub fn restore_checkpoint(&mut self, cp: &EngineCheckpoint, states: Vec<M::State>) {
        let n = self.states.len();
        assert_eq!(cp.node_count(), n, "checkpoint node count must match");
        assert!(
            cp.scheduler.is_none(),
            "synchronous engines have no scheduler state"
        );
        self.faults.set_noise(cp.false_negative, cp.false_positive);
        for i in 0..n {
            self.faults
                .restore_node(i, cp.crashed[i], cp.rng_positions[i]);
        }
        self.set_states(states);
        self.round = cp.steps;
    }

    /// Turns complexity accounting on: from the next
    /// [`step`](Self::step) the engine accumulates a
    /// [`ComplexityLedger`], and — when `recorder_capacity` is given —
    /// retains the last that many [`TraceEvent`](crate::TraceEvent)s in
    /// a [`FlightRecorder`]. Instrumentation is purely passive (no RNG
    /// draws, no reordering), so enabling it never changes an
    /// execution; disabled engines pay one branch per step.
    pub fn enable_instrumentation(&mut self, recorder_capacity: Option<usize>) {
        self.instr.enable(recorder_capacity);
        self.model.refresh_sampler_caches(&self.topology);
    }

    /// Returns `true` if complexity accounting is on.
    pub fn instrumentation_enabled(&self) -> bool {
        self.instr.is_on()
    }

    /// Returns the accumulated complexity counters, if instrumentation
    /// is on.
    pub fn complexity_ledger(&self) -> Option<&ComplexityLedger> {
        self.instr.ledger()
    }

    /// Returns the flight recorder, if one was attached.
    pub fn flight_recorder(&self) -> Option<&FlightRecorder> {
        self.instr.recorder()
    }

    /// Records an event into the flight recorder, stamped with the
    /// current round (no-op unless a recorder is attached).
    pub fn record_trace_event(&mut self, kind: &str, detail: impl Into<String>) {
        let round = self.round;
        self.instr.record_event(round, kind, detail);
    }
}

impl<M: LeaderModel> TickEngine<M> {
    /// Returns the number of **alive** nodes whose state lies in the
    /// leader set (a crashed node cannot act as a leader).
    pub fn leader_count(&self) -> usize {
        self.states
            .iter()
            .zip(self.faults.flags())
            .filter(|(s, &c)| !c && self.model.is_leader(s))
            .count()
    }

    /// Returns the identifiers of all current (alive) leaders.
    pub fn leaders(&self) -> Vec<NodeId> {
        self.states
            .iter()
            .zip(self.faults.flags())
            .enumerate()
            .filter(|(_, (s, &c))| !c && self.model.is_leader(s))
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }

    /// Returns the unique (alive) leader, or `None` if there are zero or
    /// several leaders.
    pub fn unique_leader(&self) -> Option<NodeId> {
        let mut found = None;
        for (i, (s, &c)) in self.states.iter().zip(self.faults.flags()).enumerate() {
            if !c && self.model.is_leader(s) {
                if found.is_some() {
                    return None;
                }
                found = Some(NodeId::new(i));
            }
        }
        found
    }
}
