//! Shared complexity accounting and flight recording for both engines.
//!
//! The complexity landscape the paper sits in is staked out in **bits
//! and messages**, not just rounds — the diameter-two message chasm
//! (Chatterjee–Pandurangan–Robinson) and the `Θ(D + log n)` bit-rounds
//! bound (Casteigts et al.). This module is the one seam through which
//! both executors — the synchronous [`TickEngine`](crate::TickEngine)
//! and the asynchronous [`ActivationEngine`](crate::ActivationEngine) —
//! account for what their executions actually transmit:
//!
//! * a [`ComplexityLedger`] accumulating beeps sent/heard, bits of
//!   channel information, message deliveries and per-node state size,
//!   fed once per round (sync) or per activation (async);
//! * a fixed-capacity ring-buffer [`FlightRecorder`] of recent
//!   [`TraceEvent`]s (scenario events, leader-set changes, anything a
//!   caller records), dumpable post-hoc as versioned JSON even from
//!   million-node runs — only the last `capacity` events are retained.
//!
//! **Zero cost when off, passive when on.** [`Instrumentation`] is
//! enum-dispatch around an `Option`: a disabled probe costs one branch
//! per step. An *enabled* probe only reads caches the models already
//! maintain (the beeping `beeps`/`heard` vectors, the stone-age symbol
//! vectors) — it never draws from any RNG stream and never reorders
//! existing draws, so enabling it cannot perturb an execution. That
//! property is pinned by determinism tests in `bfw-scenario`
//! (trace-on/off scenario runs are byte-identical) and the
//! `instrument_overhead` bench keeps the enabled-path tax visible.
//!
//! # Accounting conventions
//!
//! Communication models differ in what a "message" is; the ledger uses
//! one convention across all of them so faceoffs (experiment E19) stay
//! comparable:
//!
//! * **beeps sent** — transmission events: nodes emitting a
//!   non-quiescent signal this round (beeping: beeping nodes;
//!   stone-age: nodes displaying a non-quiescent symbol; async: the
//!   activated node if it displays one).
//! * **beeps heard** — perception events *after* noise: nodes that
//!   perceived at least one non-quiescent signal this round (async: the
//!   activated node, if its observation was non-empty).
//! * **bits** — channel information of the transmissions: one bit per
//!   beep, `⌈log₂ σ⌉` bits per stone-age symbol display.
//! * **messages** — deliveries across edges: for each emitter, one per
//!   neighbor (sync); for each activation, one per alive neighbor read
//!   (async).

use crate::Topology;
use bfw_graph::NodeId;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// What one engine step (round or activation) transmitted, as sampled
/// by the model. Models that do not implement sampling contribute an
/// all-zero sample, so the ledger's step counter still advances.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundSample {
    /// Nodes that emitted a non-quiescent signal.
    pub emitters: u64,
    /// Nodes that perceived a non-quiescent signal (post-noise).
    pub heard: u64,
    /// Bits of channel information transmitted.
    pub bits: u64,
    /// Signal deliveries across edges.
    pub messages: u64,
}

/// Cumulative complexity counters over an instrumented execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ComplexityLedger {
    steps: u64,
    beeps_sent: u64,
    beeps_heard: u64,
    bits: u64,
    messages: u64,
    nodes: usize,
    state_bytes: usize,
}

impl ComplexityLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one step's sample into the counters and refreshes the
    /// state-footprint facts.
    pub fn record(&mut self, sample: RoundSample, nodes: usize, state_bytes: usize) {
        self.steps += 1;
        self.beeps_sent += sample.emitters;
        self.beeps_heard += sample.heard;
        self.bits += sample.bits;
        self.messages += sample.messages;
        self.nodes = nodes;
        self.state_bytes = state_bytes;
    }

    /// Steps accounted (rounds on the tick engine, activations on the
    /// activation engine).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Total transmission events (see the module-level conventions).
    pub fn beeps_sent(&self) -> u64 {
        self.beeps_sent
    }

    /// Total post-noise perception events.
    pub fn beeps_heard(&self) -> u64 {
        self.beeps_heard
    }

    /// Total bits of channel information transmitted.
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Total signal deliveries across edges.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Number of nodes in the instrumented execution.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Size of one node's protocol state in bytes (`size_of` of the
    /// model's state type — the empirical "States" column's footprint).
    pub fn state_bytes_per_node(&self) -> usize {
        self.state_bytes
    }

    /// Renders the ledger as a versioned JSON object (no serde in the
    /// offline vendor set; keys in a fixed order so dumps diff
    /// cleanly).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"version\": 1, \"steps\": {}, \"beeps_sent\": {}, \"beeps_heard\": {}, \
             \"bits\": {}, \"messages\": {}, \"nodes\": {}, \"state_bytes_per_node\": {}}}",
            self.steps,
            self.beeps_sent,
            self.beeps_heard,
            self.bits,
            self.messages,
            self.nodes,
            self.state_bytes
        )
    }
}

/// One recorded event: a step stamp plus a short kind and free-form
/// detail (e.g. `kind = "scenario-event"`, `detail = "@400 crash-leader
/// -> crashed node 3"`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Engine step at which the event was recorded (round or
    /// activation count).
    pub step: u64,
    /// Event category.
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
}

/// A fixed-capacity ring buffer of recent [`TraceEvent`]s.
///
/// When full, recording drops the oldest event and counts the drop, so
/// the recorder's memory stays bounded no matter how long the run is —
/// the property that keeps flight recording viable at million-node
/// scale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecorder {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl FlightRecorder {
    /// Creates a recorder retaining the last `capacity` events
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            events: VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// Records an event, evicting the oldest if the buffer is full.
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events in chronological order.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Renders the recorder as a versioned JSON object.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"version\": 1, \"capacity\": {}, \"dropped\": {}, \"events\": [",
            self.capacity, self.dropped
        );
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"step\": {}, \"kind\": \"{}\", \"detail\": \"{}\"}}",
                e.step,
                escape_json(&e.kind),
                escape_json(&e.detail)
            );
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Counts emitters and their message fan-out over a topology:
/// `emits(i)` says whether node `i` transmits; the result is
/// `(emitters, Σ_{emitting i} deg(i))`, with an `O(n)` clique fast
/// path. Shared by the model samplers and the [`ComplexityObserver`]
/// adapter.
///
/// [`ComplexityObserver`]: crate::ComplexityObserver
pub fn fanout(topology: &Topology, mut emits: impl FnMut(usize) -> bool) -> (u64, u64) {
    let n = topology.node_count();
    match topology {
        Topology::Clique(_) => {
            let emitters = (0..n).filter(|&i| emits(i)).count() as u64;
            (emitters, emitters * (n as u64).saturating_sub(1))
        }
        graph_backed => {
            // Branchless accumulation over O(1) degree lookups: with
            // roughly half the nodes emitting, a branch here
            // mispredicts constantly and neighbor iteration costs
            // O(m) — both measurable against the round loop this
            // shadows (see the `instrument_overhead` bench).
            let mut emitters = 0u64;
            let mut messages = 0u64;
            for i in 0..n {
                let b = u64::from(emits(i));
                emitters += b;
                messages += b * graph_backed.degree(NodeId::new(i)) as u64;
            }
            (emitters, messages)
        }
    }
}

/// Slice form of [`fanout`] for samplers whose emission predicate is
/// already a boolean mask (the beeping model's beep cache): static CSR
/// graphs dispatch to the vectorizable [`Graph::masked_fanout`] kernel,
/// everything else falls back to the closure path.
///
/// [`Graph::masked_fanout`]: bfw_graph::Graph::masked_fanout
///
/// # Panics
///
/// Panics if `mask.len()` differs from the topology's node count.
pub fn fanout_mask(topology: &Topology, mask: &[bool]) -> (u64, u64) {
    match topology {
        Topology::Graph(g) => g.masked_fanout(mask),
        other => fanout(other, |i| mask[i]),
    }
}

/// Bits needed to name one of `alphabet` symbols (`⌈log₂ σ⌉`, at
/// least 1) — the per-display channel information of a stone-age
/// symbol.
pub fn bits_per_symbol(alphabet: usize) -> u64 {
    u64::from(usize::BITS - alphabet.saturating_sub(1).leading_zeros()).max(1)
}

/// The per-engine instrumentation seam: `Off` costs one branch per
/// step; `On` carries a boxed probe so the engines stay lean when
/// instrumentation is disabled (the common case).
#[derive(Debug, Clone, Default)]
pub struct Instrumentation {
    probe: Option<Box<Probe>>,
}

#[derive(Debug, Clone)]
struct Probe {
    ledger: ComplexityLedger,
    recorder: Option<FlightRecorder>,
}

impl Instrumentation {
    /// The disabled seam (what engines start with).
    pub fn off() -> Self {
        Self::default()
    }

    /// Returns `true` if the probe is active.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.probe.is_some()
    }

    /// Activates the probe: the ledger always accumulates; a flight
    /// recorder of `recorder_capacity` events is attached when given.
    /// Idempotent on the ledger; a second call can still attach or
    /// keep a recorder.
    pub fn enable(&mut self, recorder_capacity: Option<usize>) {
        let probe = self.probe.get_or_insert_with(|| {
            Box::new(Probe {
                ledger: ComplexityLedger::new(),
                recorder: None,
            })
        });
        if let Some(capacity) = recorder_capacity {
            if probe.recorder.is_none() {
                probe.recorder = Some(FlightRecorder::new(capacity));
            }
        }
    }

    /// The accumulated ledger, if the probe is on.
    pub fn ledger(&self) -> Option<&ComplexityLedger> {
        self.probe.as_ref().map(|p| &p.ledger)
    }

    /// The flight recorder, if one is attached.
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.probe.as_ref().and_then(|p| p.recorder.as_ref())
    }

    /// Folds one step's sample into the ledger (no-op when off).
    #[inline]
    pub fn record_step(&mut self, sample: RoundSample, nodes: usize, state_bytes: usize) {
        if let Some(probe) = &mut self.probe {
            probe.ledger.record(sample, nodes, state_bytes);
        }
    }

    /// Records a trace event (no-op when off or no recorder attached).
    pub fn record_event(&mut self, step: u64, kind: &str, detail: impl Into<String>) {
        if let Some(recorder) = self.probe.as_mut().and_then(|p| p.recorder.as_mut()) {
            recorder.record(TraceEvent {
                step,
                kind: kind.to_owned(),
                detail: detail.into(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfw_graph::generators;

    #[test]
    fn ledger_accumulates_and_renders_json() {
        let mut ledger = ComplexityLedger::new();
        ledger.record(
            RoundSample {
                emitters: 3,
                heard: 5,
                bits: 3,
                messages: 6,
            },
            8,
            2,
        );
        ledger.record(
            RoundSample {
                emitters: 1,
                heard: 2,
                bits: 1,
                messages: 2,
            },
            8,
            2,
        );
        assert_eq!(ledger.steps(), 2);
        assert_eq!(ledger.beeps_sent(), 4);
        assert_eq!(ledger.beeps_heard(), 7);
        assert_eq!(ledger.bits(), 4);
        assert_eq!(ledger.messages(), 8);
        assert_eq!(ledger.nodes(), 8);
        assert_eq!(ledger.state_bytes_per_node(), 2);
        let json = ledger.to_json();
        assert!(json.starts_with("{\"version\": 1"), "{json}");
        assert!(json.contains("\"messages\": 8"), "{json}");
    }

    #[test]
    fn recorder_is_a_ring() {
        let mut rec = FlightRecorder::new(2);
        for step in 0..5u64 {
            rec.record(TraceEvent {
                step,
                kind: "k".into(),
                detail: format!("event {step}"),
            });
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.capacity(), 2);
        assert_eq!(rec.dropped(), 3);
        let steps: Vec<u64> = rec.events().map(|e| e.step).collect();
        assert_eq!(steps, vec![3, 4], "oldest evicted, order kept");
        assert!(!rec.is_empty());
    }

    #[test]
    fn recorder_json_escapes_details() {
        let mut rec = FlightRecorder::new(4);
        rec.record(TraceEvent {
            step: 1,
            kind: "note".into(),
            detail: "say \"hi\"\nback\\slash".into(),
        });
        let json = rec.to_json();
        assert!(json.contains("\\\"hi\\\""), "{json}");
        assert!(json.contains("\\n"), "{json}");
        assert!(json.contains("\\\\slash"), "{json}");
        assert!(json.starts_with("{\"version\": 1"), "{json}");
    }

    #[test]
    fn capacity_is_clamped() {
        assert_eq!(FlightRecorder::new(0).capacity(), 1);
    }

    #[test]
    fn instrumentation_off_is_inert() {
        let mut instr = Instrumentation::off();
        assert!(!instr.is_on());
        instr.record_step(RoundSample::default(), 4, 1);
        instr.record_event(0, "k", "d");
        assert!(instr.ledger().is_none());
        assert!(instr.recorder().is_none());
    }

    #[test]
    fn instrumentation_enable_paths() {
        let mut instr = Instrumentation::off();
        instr.enable(None);
        assert!(instr.is_on());
        assert!(instr.recorder().is_none());
        instr.record_step(
            RoundSample {
                emitters: 1,
                heard: 1,
                bits: 1,
                messages: 2,
            },
            4,
            1,
        );
        // A second enable attaches a recorder without resetting the ledger.
        instr.enable(Some(8));
        assert_eq!(instr.ledger().unwrap().steps(), 1);
        instr.record_event(7, "k", "d");
        assert_eq!(instr.recorder().unwrap().len(), 1);
    }

    #[test]
    fn fanout_counts_degrees() {
        let t: Topology = generators::path(4).into();
        // Emitters 0 and 1: deg(0) = 1, deg(1) = 2.
        let (emitters, messages) = fanout(&t, |i| i < 2);
        assert_eq!((emitters, messages), (2, 3));
        // Clique fast path matches the materialized graph.
        let clique = Topology::Clique(5);
        let explicit: Topology = generators::complete(5).into();
        let (e1, m1) = fanout(&clique, |i| i % 2 == 0);
        let (e2, m2) = fanout(&explicit, |i| i % 2 == 0);
        assert_eq!((e1, m1), (e2, m2));
        assert_eq!(m1, 3 * 4);
    }

    #[test]
    fn bits_per_symbol_is_ceil_log2() {
        assert_eq!(bits_per_symbol(0), 1);
        assert_eq!(bits_per_symbol(1), 1);
        assert_eq!(bits_per_symbol(2), 1);
        assert_eq!(bits_per_symbol(3), 2);
        assert_eq!(bits_per_symbol(4), 2);
        assert_eq!(bits_per_symbol(5), 3);
        assert_eq!(bits_per_symbol(256), 8);
    }

    #[test]
    fn escape_json_handles_controls() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\u{1}b"), "a\\u0001b");
        assert_eq!(escape_json("tab\there"), "tab\\there");
    }
}
