use bfw_graph::{algo, Graph, NodeId, OverlayGraph, TopologyDelta};

/// The communication structure a [`Network`](crate::Network) runs on.
///
/// The general case wraps a CSR [`Graph`]; `Clique(n)` is a fast path
/// for the complete graph that computes hearing in `O(n)` per round
/// instead of materializing `Θ(n²)` edges (the n-scaling experiments run
/// cliques with thousands of nodes). `Overlay` is the dynamic form the
/// topology takes once [`apply_delta`](Self::apply_delta) has been
/// called: a CSR base plus an `O(deg)`-editable overlay with periodic
/// compaction, used by the scenario engine for high-frequency edge
/// churn.
///
/// # Example
///
/// ```
/// use bfw_sim::Topology;
/// use bfw_graph::generators;
///
/// let t: Topology = generators::path(10).into();
/// assert_eq!(t.node_count(), 10);
/// assert_eq!(Topology::Clique(100).node_count(), 100);
/// ```
#[derive(Debug, Clone)]
pub enum Topology {
    /// An arbitrary simple undirected graph.
    Graph(Graph),
    /// The complete graph on `n` nodes, with `O(n)`-per-round hearing.
    Clique(usize),
    /// A delta-overlaid graph (see [`OverlayGraph`]); produced by
    /// [`apply_delta`](Self::apply_delta).
    Overlay(OverlayGraph),
}

impl Topology {
    /// Returns the number of nodes.
    pub fn node_count(&self) -> usize {
        match self {
            Topology::Graph(g) => g.node_count(),
            Topology::Clique(n) => *n,
            Topology::Overlay(ov) => ov.node_count(),
        }
    }

    /// Returns `true` if the topology is connected (a prerequisite for
    /// leader election). Overlay topologies are materialized first —
    /// this is an analysis entry point, not a hot path.
    pub fn is_connected(&self) -> bool {
        match self {
            Topology::Graph(g) => algo::is_connected(g),
            Topology::Clique(n) => *n >= 1,
            Topology::Overlay(ov) => algo::is_connected(&ov.to_graph()),
        }
    }

    /// Returns the diameter, computing it exactly for graph topologies.
    ///
    /// Returns `None` for disconnected or empty topologies.
    pub fn diameter(&self) -> Option<u32> {
        match self {
            Topology::Graph(g) => algo::diameter(g),
            Topology::Clique(0) => None,
            Topology::Clique(1) => Some(0),
            Topology::Clique(_) => Some(1),
            Topology::Overlay(ov) => algo::diameter(&ov.to_graph()),
        }
    }

    /// Applies a batch of edge mutations in `O(deg)` per edge.
    ///
    /// A `Graph` topology is converted into its `Overlay` form on the
    /// first delta (one `O(n + m)` conversion, amortized away by every
    /// subsequent delta); a `Clique` is materialized first (`Θ(n²)` —
    /// churning a clique starts from its explicit edge set).
    ///
    /// # Panics
    ///
    /// Panics if the delta removes an absent edge or adds a present one.
    pub fn apply_delta(&mut self, delta: &TopologyDelta) {
        match self {
            Topology::Overlay(ov) => ov.apply(delta),
            _ => {
                let graph = match std::mem::replace(self, Topology::Clique(0)) {
                    Topology::Graph(g) => g,
                    Topology::Clique(n) => bfw_graph::generators::complete(n.max(1)),
                    Topology::Overlay(_) => unreachable!("handled above"),
                };
                let mut ov = OverlayGraph::from_graph(graph);
                ov.apply(delta);
                *self = Topology::Overlay(ov);
            }
        }
    }

    /// Returns the degree of `u` in `O(1)` (CSR offset arithmetic, or
    /// `n - 1` for the clique). This is the instrumentation hot path:
    /// message accounting sums emitter degrees every instrumented
    /// round, and iterating neighbors just to count them would dominate
    /// the round itself.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        match self {
            Topology::Graph(g) => g.degree(u),
            Topology::Clique(n) => {
                assert!(u.index() < *n, "node {u} out of range of clique({n})");
                n - 1
            }
            Topology::Overlay(ov) => ov.degree(u),
        }
    }

    /// Calls `f` for every neighbor of `u`, in ascending node order.
    ///
    /// This is the one neighbor-iteration seam shared by the runtimes:
    /// CSR graphs yield their adjacency slice, overlays their merged
    /// view, cliques every other node. Hot loops with a cheaper
    /// clique-wide formulation (e.g. [`compute_heard`]) keep their own
    /// `Clique` fast path and use this for the two graph-backed forms.
    ///
    /// [`compute_heard`]: Self::compute_heard
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn for_each_neighbor<F: FnMut(NodeId)>(&self, u: NodeId, mut f: F) {
        match self {
            Topology::Graph(g) => {
                for &v in g.neighbors(u) {
                    f(v);
                }
            }
            Topology::Overlay(ov) => {
                for v in ov.neighbors(u) {
                    f(v);
                }
            }
            Topology::Clique(n) => {
                assert!(u.index() < *n, "node {u} out of range of clique({n})");
                for v in (0..*n).filter(|&v| v != u.index()) {
                    f(NodeId::new(v));
                }
            }
        }
    }

    /// Fills `heard[u] = beeps[u] ∨ ∃v ∈ N(u): beeps[v]` — the hearing
    /// predicate of the beeping model (a node hears its own beep).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ from
    /// [`node_count`](Self::node_count).
    pub fn compute_heard(&self, beeps: &[bool], heard: &mut [bool]) {
        let n = self.node_count();
        assert_eq!(beeps.len(), n, "beeps slice has wrong length");
        assert_eq!(heard.len(), n, "heard slice has wrong length");
        match self {
            Topology::Clique(_) => {
                let any = beeps.iter().any(|&b| b);
                heard.fill(any);
            }
            graph_backed => {
                // Push-based: start from own beep, then OR each beeping
                // node into its neighbors. O(n + Σ_{u beeping} deg(u)).
                heard.copy_from_slice(beeps);
                for (u, &b) in beeps.iter().enumerate() {
                    if b {
                        graph_backed.for_each_neighbor(NodeId::new(u), |v| heard[v.index()] = true);
                    }
                }
            }
        }
    }

    /// Returns the underlying [`Graph`], materializing the clique if
    /// necessary (`Θ(n²)` memory — intended for analysis of small
    /// topologies, not for the simulation hot path) and compacting an
    /// overlay into a fresh CSR snapshot.
    pub fn to_graph(&self) -> Graph {
        match self {
            Topology::Graph(g) => g.clone(),
            Topology::Clique(n) => bfw_graph::generators::complete((*n).max(1)),
            Topology::Overlay(ov) => ov.to_graph(),
        }
    }
}

impl From<Graph> for Topology {
    fn from(g: Graph) -> Self {
        Topology::Graph(g)
    }
}

impl From<OverlayGraph> for Topology {
    fn from(ov: OverlayGraph) -> Self {
        Topology::Overlay(ov)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfw_graph::generators;

    #[test]
    fn clique_heard_matches_graph_heard() {
        let n = 9;
        let clique = Topology::Clique(n);
        let graph = Topology::Graph(generators::complete(n));
        // All 2^9 beep patterns would be slow; test a few structured ones.
        let patterns: Vec<Vec<bool>> = vec![
            vec![false; n],
            vec![true; n],
            (0..n).map(|i| i == 0).collect(),
            (0..n).map(|i| i % 2 == 0).collect(),
            (0..n).map(|i| i == n - 1).collect(),
        ];
        for beeps in patterns {
            let mut h1 = vec![false; n];
            let mut h2 = vec![false; n];
            clique.compute_heard(&beeps, &mut h1);
            graph.compute_heard(&beeps, &mut h2);
            assert_eq!(h1, h2, "pattern {beeps:?}");
        }
    }

    #[test]
    fn graph_heard_includes_own_beep() {
        let t: Topology = generators::path(3).into();
        let beeps = [false, true, false];
        let mut heard = [false; 3];
        t.compute_heard(&beeps, &mut heard);
        // Node 1 beeps: hears itself; its neighbors 0 and 2 hear it.
        assert_eq!(heard, [true, true, true]);

        let beeps = [true, false, false];
        t.compute_heard(&beeps, &mut heard);
        // Node 2 is out of earshot of node 0.
        assert_eq!(heard, [true, true, false]);
    }

    #[test]
    fn silence_is_heard_by_nobody() {
        let t: Topology = generators::cycle(5).into();
        let beeps = [false; 5];
        let mut heard = [true; 5];
        t.compute_heard(&beeps, &mut heard);
        assert!(heard.iter().all(|&h| !h));
    }

    #[test]
    fn diameters() {
        assert_eq!(Topology::Clique(1).diameter(), Some(0));
        assert_eq!(Topology::Clique(5).diameter(), Some(1));
        assert_eq!(Topology::Clique(0).diameter(), None);
        let t: Topology = generators::path(4).into();
        assert_eq!(t.diameter(), Some(3));
    }

    #[test]
    fn connectivity() {
        assert!(Topology::Clique(3).is_connected());
        let disconnected: Topology = Graph::from_edges(3, [(0, 1)]).unwrap().into();
        assert!(!disconnected.is_connected());
    }

    #[test]
    fn to_graph_of_clique() {
        let g = Topology::Clique(4).to_graph();
        assert_eq!(g.edge_count(), 6);
    }

    #[test]
    fn apply_delta_converts_to_overlay_and_edits() {
        let mut t: Topology = generators::cycle(5).into();
        let mut delta = TopologyDelta::new();
        delta.remove_edge(NodeId::new(0), NodeId::new(1));
        delta.add_edge(NodeId::new(0), NodeId::new(2));
        t.apply_delta(&delta);
        assert!(matches!(t, Topology::Overlay(_)));
        assert_eq!(t.node_count(), 5);
        let g = t.to_graph();
        assert!(g.has_edge(NodeId::new(0), NodeId::new(2)));
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(1)));
        assert_eq!(g.edge_count(), 5);
    }

    #[test]
    fn overlay_heard_matches_rebuilt_graph_heard() {
        let mut overlay: Topology = generators::cycle(7).into();
        let mut delta = TopologyDelta::new();
        delta.remove_edge(NodeId::new(2), NodeId::new(3));
        delta.add_edge(NodeId::new(0), NodeId::new(3));
        overlay.apply_delta(&delta);
        let rebuilt: Topology = overlay.to_graph().into();
        for pattern in 0..(1u32 << 7) {
            let beeps: Vec<bool> = (0..7).map(|i| pattern >> i & 1 == 1).collect();
            let mut h1 = vec![false; 7];
            let mut h2 = vec![false; 7];
            overlay.compute_heard(&beeps, &mut h1);
            rebuilt.compute_heard(&beeps, &mut h2);
            assert_eq!(h1, h2, "pattern {beeps:?}");
        }
    }

    #[test]
    fn apply_delta_on_clique_materializes() {
        let mut t = Topology::Clique(4);
        let mut delta = TopologyDelta::new();
        delta.remove_edge(NodeId::new(0), NodeId::new(1));
        t.apply_delta(&delta);
        assert_eq!(t.to_graph().edge_count(), 5);
        assert!(t.is_connected());
        assert_eq!(t.diameter(), Some(2));
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn compute_heard_validates_lengths() {
        let t = Topology::Clique(3);
        let mut heard = [false; 2];
        t.compute_heard(&[false; 3], &mut heard);
    }
}
