use bfw_graph::{algo, Graph, NodeId};

/// The communication structure a [`Network`](crate::Network) runs on.
///
/// The general case wraps a CSR [`Graph`]; `Clique(n)` is a fast path
/// for the complete graph that computes hearing in `O(n)` per round
/// instead of materializing `Θ(n²)` edges (the n-scaling experiments run
/// cliques with thousands of nodes).
///
/// # Example
///
/// ```
/// use bfw_sim::Topology;
/// use bfw_graph::generators;
///
/// let t: Topology = generators::path(10).into();
/// assert_eq!(t.node_count(), 10);
/// assert_eq!(Topology::Clique(100).node_count(), 100);
/// ```
#[derive(Debug, Clone)]
pub enum Topology {
    /// An arbitrary simple undirected graph.
    Graph(Graph),
    /// The complete graph on `n` nodes, with `O(n)`-per-round hearing.
    Clique(usize),
}

impl Topology {
    /// Returns the number of nodes.
    pub fn node_count(&self) -> usize {
        match self {
            Topology::Graph(g) => g.node_count(),
            Topology::Clique(n) => *n,
        }
    }

    /// Returns `true` if the topology is connected (a prerequisite for
    /// leader election).
    pub fn is_connected(&self) -> bool {
        match self {
            Topology::Graph(g) => algo::is_connected(g),
            Topology::Clique(n) => *n >= 1,
        }
    }

    /// Returns the diameter, computing it exactly for graph topologies.
    ///
    /// Returns `None` for disconnected or empty topologies.
    pub fn diameter(&self) -> Option<u32> {
        match self {
            Topology::Graph(g) => algo::diameter(g),
            Topology::Clique(0) => None,
            Topology::Clique(1) => Some(0),
            Topology::Clique(_) => Some(1),
        }
    }

    /// Fills `heard[u] = beeps[u] ∨ ∃v ∈ N(u): beeps[v]` — the hearing
    /// predicate of the beeping model (a node hears its own beep).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ from
    /// [`node_count`](Self::node_count).
    pub fn compute_heard(&self, beeps: &[bool], heard: &mut [bool]) {
        let n = self.node_count();
        assert_eq!(beeps.len(), n, "beeps slice has wrong length");
        assert_eq!(heard.len(), n, "heard slice has wrong length");
        match self {
            Topology::Graph(g) => {
                // Push-based: start from own beep, then OR each beeping
                // node into its neighbors. O(n + Σ_{u beeping} deg(u)).
                heard.copy_from_slice(beeps);
                for (u, &b) in beeps.iter().enumerate() {
                    if b {
                        for &v in g.neighbors(NodeId::new(u)) {
                            heard[v.index()] = true;
                        }
                    }
                }
            }
            Topology::Clique(_) => {
                let any = beeps.iter().any(|&b| b);
                heard.fill(any);
            }
        }
    }

    /// Returns the underlying [`Graph`], materializing the clique if
    /// necessary (`Θ(n²)` memory — intended for analysis of small
    /// topologies, not for the simulation hot path).
    pub fn to_graph(&self) -> Graph {
        match self {
            Topology::Graph(g) => g.clone(),
            Topology::Clique(n) => bfw_graph::generators::complete((*n).max(1)),
        }
    }
}

impl From<Graph> for Topology {
    fn from(g: Graph) -> Self {
        Topology::Graph(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfw_graph::generators;

    #[test]
    fn clique_heard_matches_graph_heard() {
        let n = 9;
        let clique = Topology::Clique(n);
        let graph = Topology::Graph(generators::complete(n));
        // All 2^9 beep patterns would be slow; test a few structured ones.
        let patterns: Vec<Vec<bool>> = vec![
            vec![false; n],
            vec![true; n],
            (0..n).map(|i| i == 0).collect(),
            (0..n).map(|i| i % 2 == 0).collect(),
            (0..n).map(|i| i == n - 1).collect(),
        ];
        for beeps in patterns {
            let mut h1 = vec![false; n];
            let mut h2 = vec![false; n];
            clique.compute_heard(&beeps, &mut h1);
            graph.compute_heard(&beeps, &mut h2);
            assert_eq!(h1, h2, "pattern {beeps:?}");
        }
    }

    #[test]
    fn graph_heard_includes_own_beep() {
        let t: Topology = generators::path(3).into();
        let beeps = [false, true, false];
        let mut heard = [false; 3];
        t.compute_heard(&beeps, &mut heard);
        // Node 1 beeps: hears itself; its neighbors 0 and 2 hear it.
        assert_eq!(heard, [true, true, true]);

        let beeps = [true, false, false];
        t.compute_heard(&beeps, &mut heard);
        // Node 2 is out of earshot of node 0.
        assert_eq!(heard, [true, true, false]);
    }

    #[test]
    fn silence_is_heard_by_nobody() {
        let t: Topology = generators::cycle(5).into();
        let beeps = [false; 5];
        let mut heard = [true; 5];
        t.compute_heard(&beeps, &mut heard);
        assert!(heard.iter().all(|&h| !h));
    }

    #[test]
    fn diameters() {
        assert_eq!(Topology::Clique(1).diameter(), Some(0));
        assert_eq!(Topology::Clique(5).diameter(), Some(1));
        assert_eq!(Topology::Clique(0).diameter(), None);
        let t: Topology = generators::path(4).into();
        assert_eq!(t.diameter(), Some(3));
    }

    #[test]
    fn connectivity() {
        assert!(Topology::Clique(3).is_connected());
        let disconnected: Topology = Graph::from_edges(3, [(0, 1)]).unwrap().into();
        assert!(!disconnected.is_connected());
    }

    #[test]
    fn to_graph_of_clique() {
        let g = Topology::Clique(4).to_graph();
        assert_eq!(g.edge_count(), 6);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn compute_heard_validates_lengths() {
        let t = Topology::Clique(3);
        let mut heard = [false; 2];
        t.compute_heard(&[false; 3], &mut heard);
    }
}
