use crate::observers::observe_run;
use crate::{
    BeepCounter, ConvergenceDetector, LeaderElection, Network, ObserverSet, SimError, Topology,
};
use bfw_graph::NodeId;

/// Configuration for a single leader-election run.
///
/// # Example
///
/// ```
/// use bfw_sim::ElectionConfig;
///
/// let cfg = ElectionConfig::new(10_000).with_stability_check(100);
/// assert_eq!(cfg.max_rounds, 10_000);
/// assert_eq!(cfg.stability_rounds, 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElectionConfig {
    /// Round budget: the run fails with
    /// [`SimError::RoundBudgetExhausted`] if more than one leader
    /// remains after this many rounds.
    pub max_rounds: u64,
    /// After convergence, keep running this many extra rounds and verify
    /// the leader stays unique and unchanged (Definition 1 demands the
    /// single-leader configuration persists). Zero disables the check.
    pub stability_rounds: u64,
}

impl ElectionConfig {
    /// Creates a config with the given round budget and no stability
    /// check.
    pub fn new(max_rounds: u64) -> Self {
        ElectionConfig {
            max_rounds,
            stability_rounds: 0,
        }
    }

    /// Enables the post-convergence stability check for `rounds` rounds.
    pub fn with_stability_check(mut self, rounds: u64) -> Self {
        self.stability_rounds = rounds;
        self
    }
}

/// Result of a completed leader-election run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElectionOutcome {
    /// First round with exactly one leader (the `T` of Definition 1).
    pub converged_round: u64,
    /// The elected node.
    pub leader: NodeId,
    /// Number of nodes.
    pub node_count: usize,
    /// Total beeps emitted up to (and including) the convergence round —
    /// an energy measure.
    pub total_beeps: u64,
    /// `true` if the stability check ran and the leader stayed unique
    /// and unchanged throughout; `true` vacuously when the check was
    /// disabled.
    pub stable: bool,
}

/// Runs one complete leader election and reports the outcome.
///
/// Steps the network until exactly one node is in the leader set, then
/// (optionally) verifies stability for `config.stability_rounds` more
/// rounds.
///
/// # Errors
///
/// * [`SimError::EmptyTopology`] — no nodes;
/// * [`SimError::Disconnected`] — leader election is only defined on
///   connected graphs;
/// * [`SimError::RoundBudgetExhausted`] — more than one leader after
///   `config.max_rounds` rounds.
///
/// The `bfw-core` crate's `Bfw` protocol is the canonical
/// [`LeaderElection`] input; see its crate-level example.
pub fn run_election<P: LeaderElection>(
    protocol: P,
    topology: Topology,
    seed: u64,
    config: ElectionConfig,
) -> Result<ElectionOutcome, SimError> {
    if topology.node_count() == 0 {
        return Err(SimError::EmptyTopology);
    }
    if !topology.is_connected() {
        return Err(SimError::Disconnected);
    }
    let n = topology.node_count();
    let mut net = Network::new(protocol, topology, seed);
    let mut obs = ObserverSet::new(ConvergenceDetector::new(), BeepCounter::new(n));
    let converged = observe_run(&mut net, &mut obs, config.max_rounds, |v| {
        v.leader_count() == 1
    });
    let Some(converged_round) = converged else {
        return Err(SimError::RoundBudgetExhausted {
            max_rounds: config.max_rounds,
            leaders_remaining: net.leader_count(),
        });
    };
    let leader = net
        .unique_leader()
        .expect("stop predicate guarantees one leader");
    let total_beeps = obs.second.total_beeps();
    let mut stable = true;
    for _ in 0..config.stability_rounds {
        net.step();
        if net.unique_leader() != Some(leader) {
            stable = false;
            break;
        }
    }
    Ok(ElectionOutcome {
        converged_round,
        leader,
        node_count: n,
        total_beeps,
        stable,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BeepingProtocol, NodeCtx};
    use bfw_graph::{generators, Graph};

    /// Toy deterministic election: nodes count down from their id; the
    /// largest id converges last and wins.
    #[derive(Debug, Clone)]
    struct Countdown;

    impl BeepingProtocol for Countdown {
        type State = u32;

        fn initial_state(&self, ctx: NodeCtx) -> u32 {
            ctx.node.index() as u32
        }

        fn beeps(&self, _s: &u32) -> bool {
            false
        }

        fn transition(&self, s: &u32, _h: bool, _r: &mut dyn rand::RngCore) -> u32 {
            s.saturating_sub(1)
        }
    }

    impl LeaderElection for Countdown {
        fn is_leader(&self, s: &u32) -> bool {
            *s > 0
        }
    }

    #[test]
    fn election_converges_and_reports() {
        let out = run_election(
            Countdown,
            generators::path(5).into(),
            0,
            ElectionConfig::new(100).with_stability_check(0),
        )
        .unwrap();
        // Leaders at round t: nodes with id > t; single leader at round 3.
        assert_eq!(out.converged_round, 3);
        assert_eq!(out.leader, NodeId::new(4));
        assert_eq!(out.node_count, 5);
        assert_eq!(out.total_beeps, 0);
        assert!(out.stable);
    }

    #[test]
    fn stability_check_catches_unstable_protocol() {
        // Countdown's "leader" disappears entirely one round after
        // convergence (node 4 reaches 0 at round 4), so the stability
        // check must fail.
        let out = run_election(
            Countdown,
            generators::path(5).into(),
            0,
            ElectionConfig::new(100).with_stability_check(5),
        )
        .unwrap();
        assert!(!out.stable);
    }

    #[test]
    fn empty_topology_rejected() {
        let g = Graph::from_edges(0, []).unwrap();
        let err = run_election(Countdown, g.into(), 0, ElectionConfig::new(10)).unwrap_err();
        assert_eq!(err, SimError::EmptyTopology);
    }

    #[test]
    fn disconnected_topology_rejected() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let err = run_election(Countdown, g.into(), 0, ElectionConfig::new(10)).unwrap_err();
        assert_eq!(err, SimError::Disconnected);
    }

    #[test]
    fn budget_exhaustion_reported() {
        /// Every node is a leader forever.
        #[derive(Debug, Clone)]
        struct Stubborn;
        impl BeepingProtocol for Stubborn {
            type State = ();
            fn initial_state(&self, _ctx: NodeCtx) {}
            fn beeps(&self, _s: &()) -> bool {
                false
            }
            fn transition(&self, _s: &(), _h: bool, _r: &mut dyn rand::RngCore) {}
        }
        impl LeaderElection for Stubborn {
            fn is_leader(&self, _s: &()) -> bool {
                true
            }
        }
        let err = run_election(
            Stubborn,
            generators::path(3).into(),
            0,
            ElectionConfig::new(5),
        )
        .unwrap_err();
        assert_eq!(
            err,
            SimError::RoundBudgetExhausted {
                max_rounds: 5,
                leaders_remaining: 3
            }
        );
    }

    #[test]
    fn single_node_converges_immediately() {
        let out = run_election(
            Countdown,
            generators::path(1).into(),
            0,
            ElectionConfig::new(10),
        );
        // Node 0 starts at state 0 — never a leader — so there is no
        // round with exactly one leader... the budget runs out.
        assert!(out.is_err());
        // With a 2-node path, node 1 is the unique leader at round 0.
        let out = run_election(
            Countdown,
            generators::path(2).into(),
            0,
            ElectionConfig::new(10),
        )
        .unwrap();
        assert_eq!(out.converged_round, 0);
    }
}
