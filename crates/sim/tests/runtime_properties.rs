//! Property-based tests of the runtimes themselves: hearing semantics,
//! determinism, and the stone-age adapter on randomized protocols.

use bfw_graph::{generators, GraphBuilder, NodeId};
use bfw_sim::stone_age::{BeepingAsStoneAge, StoneAgeNetwork};
use bfw_sim::{BeepingProtocol, Network, NodeCtx, Topology};
use proptest::prelude::*;
use rand::RngCore;

/// A protocol whose state records exactly what the node heard — used to
/// check the executor's hearing predicate against a reference
/// implementation.
#[derive(Debug, Clone)]
struct HearingProbe {
    /// Nodes in this set beep every round.
    beepers: Vec<bool>,
}

impl BeepingProtocol for HearingProbe {
    type State = (usize, bool); // (node index, heard last round)

    fn initial_state(&self, ctx: NodeCtx) -> (usize, bool) {
        (ctx.node.index(), false)
    }

    fn beeps(&self, state: &(usize, bool)) -> bool {
        self.beepers[state.0]
    }

    fn transition(
        &self,
        state: &(usize, bool),
        heard: bool,
        _rng: &mut dyn RngCore,
    ) -> (usize, bool) {
        (state.0, heard)
    }
}

fn arb_graph_and_beepers() -> impl Strategy<Value = (usize, Vec<(u32, u32)>, Vec<bool>)> {
    (2usize..16).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..3 * n);
        let beepers = proptest::collection::vec(any::<bool>(), n);
        (Just(n), edges, beepers)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// The executor's `heard` equals the model definition:
    /// own beep OR some neighbor beeps.
    #[test]
    fn hearing_matches_model_definition((n, raw_edges, beepers) in arb_graph_and_beepers()) {
        let mut b = GraphBuilder::new(n);
        for (u, v) in raw_edges {
            if u != v {
                b.add_edge(u, v).expect("in range");
            }
        }
        let g = b.build();
        let protocol = HearingProbe { beepers: beepers.clone() };
        let mut net = Network::new(protocol, g.clone().into(), 0);
        net.step();
        for u in 0..n {
            let expected = beepers[u]
                || g.neighbors(NodeId::new(u)).iter().any(|v| beepers[v.index()]);
            let (_, heard) = *net.state(NodeId::new(u));
            prop_assert_eq!(heard, expected, "node {}", u);
        }
    }

    /// The stone-age adapter reproduces the beeping execution for the
    /// probe protocol on arbitrary graphs (not just BFW).
    #[test]
    fn stone_age_adapter_equivalence((n, raw_edges, beepers) in arb_graph_and_beepers()) {
        let mut b = GraphBuilder::new(n);
        for (u, v) in raw_edges {
            if u != v {
                b.add_edge(u, v).expect("in range");
            }
        }
        let g = b.build();
        let protocol = HearingProbe { beepers };
        let mut beeping = Network::new(protocol.clone(), g.clone().into(), 1);
        let mut stone = StoneAgeNetwork::new(BeepingAsStoneAge::new(protocol), g.into(), 1);
        for _ in 0..5 {
            beeping.step();
            stone.step();
            prop_assert_eq!(beeping.states(), stone.states());
        }
    }

    /// Clique fast path equals materialized clique for the probe.
    #[test]
    fn clique_fast_path_equivalence(n in 2usize..24, beepers in proptest::collection::vec(any::<bool>(), 24)) {
        let beepers = beepers[..n].to_vec();
        let protocol = HearingProbe { beepers };
        let mut fast = Network::new(protocol.clone(), Topology::Clique(n), 2);
        let mut slow = Network::new(protocol, generators::complete(n).into(), 2);
        fast.step();
        slow.step();
        prop_assert_eq!(fast.states(), slow.states());
    }
}
