//! Property-based tests: the paper's Section 3 theorems hold on *every*
//! execution, so we assert them on randomized graphs, seeds and paths.

use bfw_core::{flow, Bfw, BfwState, FlowAuditor, InitialConfig, InvariantChecker};
use bfw_graph::{algo, generators, Graph, NodeId};
use bfw_sim::{observe_run, Network, ObserverSet, TraceRecorder};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A small random connected graph: a random tree plus extra random
/// edges.
fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    (2usize..20, any::<u64>(), 0usize..12).prop_map(|(n, seed, extra)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let tree = generators::random_tree(n, &mut rng);
        let mut b = bfw_graph::GraphBuilder::new(n);
        for (u, v) in tree.edges() {
            b.add_edge_ids(u, v).expect("tree edge in range");
        }
        for _ in 0..extra {
            let u = rand::Rng::random_range(&mut rng, 0..n as u32);
            let v = rand::Rng::random_range(&mut rng, 0..n as u32);
            if u != v {
                b.add_edge(u, v).expect("edge in range");
            }
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Corollary 8 (Ohm's law) + Lemma 7 + Lemma 11 on random-walk
    /// paths of random connected graphs.
    #[test]
    fn ohms_law_on_random_graphs(g in arb_connected_graph(), seed in any::<u64>(), rounds in 1u64..200) {
        let n = g.node_count();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xABCD);
        let mut auditor = FlowAuditor::new(n);
        for _ in 0..4 {
            let start = NodeId::new(rand::Rng::random_range(&mut rng, 0..n));
            if let Some(path) = flow::random_walk_path(&g, start, 10, &mut rng) {
                auditor.register_path(path);
            }
        }
        let mut net = Network::new(Bfw::new(0.5), g.into(), seed);
        observe_run(&mut net, &mut auditor, rounds, |_| false);
        prop_assert!(auditor.violations().is_empty(), "{:?}", auditor.violations());
    }

    /// Lemma 9 + Claim 6 + leader monotonicity on random executions.
    #[test]
    fn invariants_on_random_graphs(g in arb_connected_graph(), seed in any::<u64>(), p in 0.05f64..0.95) {
        let mut checker = InvariantChecker::new(&g).with_lemma11(g.node_count() <= 12);
        let mut net = Network::new(Bfw::new(p), g.into(), seed);
        observe_run(&mut net, &mut checker, 150, |_| false);
        prop_assert!(checker.report().is_clean(), "{:?}", checker.report().violations());
    }

    /// Lemma 12: if `N_beep_t(u) > 0 = N_beep_t(v)`, then `v` beeps in
    /// some round `s ≤ t + dis(u, v)`.
    #[test]
    fn lemma12_on_random_graphs(g in arb_connected_graph(), seed in any::<u64>()) {
        let n = g.node_count();
        let rounds = 120u64;
        let mut trace = TraceRecorder::new();
        let mut net = Network::new(Bfw::new(0.5), g.clone().into(), seed);
        observe_run(&mut net, &mut trace, rounds, |_| false);
        let dm = algo::DistanceMatrix::new(&g);

        // first_beep[v] = first round v beeps (or None).
        let mut first_beep: Vec<Option<u64>> = vec![None; n];
        let mut cum: Vec<Vec<u64>> = Vec::with_capacity(trace.len());
        let mut acc = vec![0u64; n];
        for t in 0..trace.len() {
            for (i, &b) in trace.beeps_at(t).iter().enumerate() {
                if b {
                    acc[i] += 1;
                    if first_beep[i].is_none() {
                        first_beep[i] = Some(t as u64);
                    }
                }
            }
            cum.push(acc.clone());
        }

        for u in 0..n {
            for v in 0..n {
                let d = u64::from(dm.get(NodeId::new(u), NodeId::new(v)).expect("connected"));
                for t in 0..trace.len() as u64 {
                    // Only check horizons fully inside the recorded window.
                    if t + d >= trace.len() as u64 {
                        break;
                    }
                    if cum[t as usize][u] > cum[t as usize][v] {
                        let fb = first_beep[v];
                        prop_assert!(
                            matches!(fb, Some(s) if s <= t + d),
                            "node {v} has fewer beeps than {u} at t={t} but no beep by t+{d}"
                        );
                    }
                }
            }
        }
    }

    /// Once a single leader remains it never changes (Definition 1's
    /// persistence) — checked on small cliques where convergence is
    /// fast.
    #[test]
    fn single_leader_is_absorbing(n in 2usize..10, seed in any::<u64>()) {
        let mut net = Network::new(Bfw::new(0.5), bfw_sim::Topology::Clique(n), seed);
        let converged = net.run_until(20_000, |v| v.leader_count() == 1);
        prop_assert!(converged.is_some());
        let leader = net.unique_leader().expect("converged");
        for _ in 0..300 {
            net.step();
            prop_assert_eq!(net.unique_leader(), Some(leader));
        }
    }

    /// The executor's state transitions always follow Figure 1: every
    /// consecutive state pair in a trace is reachable via `delta`.
    #[test]
    fn traces_respect_figure1(g in arb_connected_graph(), seed in any::<u64>()) {
        let mut trace = TraceRecorder::new();
        let mut net = Network::new(Bfw::new(0.5), g.into(), seed);
        observe_run(&mut net, &mut trace, 60, |_| false);
        for t in 1..trace.len() {
            for (i, (&prev, &next)) in trace
                .states_at(t - 1)
                .iter()
                .zip(trace.states_at(t))
                .enumerate()
            {
                let reachable = [
                    bfw_core::delta(prev, false, false),
                    bfw_core::delta(prev, false, true),
                    bfw_core::delta(prev, true, false),
                    bfw_core::delta(prev, true, true),
                ];
                prop_assert!(
                    reachable.contains(&next),
                    "node {i}: {prev} -> {next} is not a Figure 1 transition"
                );
            }
        }
    }

    /// Eq. (2) start: everyone waiting in round 0, and with the
    /// two-leader config exactly the chosen nodes are leaders.
    #[test]
    fn initial_configuration_matches_eq2(n in 2usize..30, seed in any::<u64>()) {
        let ends = InitialConfig::Nodes(vec![NodeId::new(0), NodeId::new(n - 1)]);
        let bfw = Bfw::new(0.5).with_initial_config(ends);
        let net = Network::new(bfw, generators::path(n).into(), seed);
        for (i, s) in net.states().iter().enumerate() {
            prop_assert!(s.is_waiting());
            let should_lead = i == 0 || i == n - 1;
            prop_assert_eq!(s.is_leader(), should_lead);
        }
        prop_assert_eq!(net.beeping_node_count(), 0);
    }
}

/// Deterministic regression: the full cycle path (closed walk) always
/// carries zero flow by Ohm's law, independent of the round.
#[test]
fn closed_walk_flow_is_zero() {
    let n = 10;
    let g = generators::cycle(n);
    let closed: Vec<NodeId> = (0..n).chain([0]).map(NodeId::new).collect();
    let mut net = Network::new(Bfw::new(0.5), g.into(), 12345);
    for _ in 0..400 {
        net.step();
        let states: Vec<BfwState> = net.states().to_vec();
        assert_eq!(
            bfw_core::path_flow(&states, &closed),
            0,
            "round {}",
            net.round()
        );
    }
}

/// Observers compose: auditing flow and invariants simultaneously.
#[test]
fn combined_observers_clean() {
    let g = generators::grid(4, 4);
    let mut combo = ObserverSet::new(
        {
            let mut a = FlowAuditor::new(16);
            a.register_path((0..4).map(NodeId::new).collect());
            a
        },
        InvariantChecker::new(&g).with_lemma11(true),
    );
    let mut net = Network::new(Bfw::new(0.5), g.into(), 2024);
    observe_run(&mut net, &mut combo, 500, |_| false);
    combo.first.assert_clean();
    combo.second.assert_clean();
}
