//! The Section 5 robustness obstacle, made executable.
//!
//! The paper's discussion explains why BFW is **not** self-stabilizing:
//! if the initial configuration were arbitrary (instead of Eq. (2)'s
//! all-waiting-with-a-leader), it "could include persistent and
//! deterministic beep waves traveling along cycles of the graph, while
//! no leader would be present in the network", and such waves are
//! locally indistinguishable from legitimate leader-emitted ones.
//!
//! This module constructs exactly those configurations:
//!
//! * [`leaderless_wave_cycle`] — `k` co-directional phantom waves on a
//!   cycle, which circulate **forever** with period `n` and zero
//!   leaders (verified in tests for thousands of rounds);
//! * [`dead_configuration`] — the all-`W◦` configuration: perfectly
//!   silent, perfectly stable, and leaderless — the other absorbing
//!   failure mode an arbitrary start can reach.
//!
//! Together they witness that Eq. (2) is not a proof convenience but a
//! real assumption: relaxing it breaks eventual leader election, which
//! is why the paper leaves a "simple but more robust rule" as an open
//! question.

use crate::state::BfwState;

/// Builds a leaderless configuration of `wave_count` co-directional
/// phantom beep waves, equally spaced on a cycle of `n` nodes
/// (node `i` adjacent to `i±1 mod n`).
///
/// Each wave is the two-node pattern `F◦ B◦` (trailing frozen node,
/// beeping front) followed by waiting nodes. Under BFW's transitions
/// the front advances one node per round; the frozen tail prevents
/// backward propagation — exactly like a legitimate wave, except no
/// leader emitted it and none exists.
///
/// # Panics
///
/// Panics if `wave_count == 0`, if `n < 3 · wave_count` (waves need
/// `≥ 3` nodes of spacing to avoid annihilating), or if `n` is not a
/// multiple of `wave_count` (equal spacing keeps the configuration
/// periodic).
///
/// # Example
///
/// ```
/// use bfw_core::adversarial::leaderless_wave_cycle;
/// use bfw_core::BfwState;
///
/// let config = leaderless_wave_cycle(6, 1);
/// assert_eq!(config[0], BfwState::Frozen);
/// assert_eq!(config[1], BfwState::Beeping);
/// assert!(config.iter().all(|s| !s.is_leader()));
/// ```
pub fn leaderless_wave_cycle(n: usize, wave_count: usize) -> Vec<BfwState> {
    assert!(wave_count > 0, "at least one wave is required");
    assert!(
        n >= 3 * wave_count,
        "waves need at least 3 nodes of spacing (n = {n}, waves = {wave_count})"
    );
    assert!(
        n.is_multiple_of(wave_count),
        "n = {n} must be a multiple of wave_count = {wave_count} for equal spacing"
    );
    let spacing = n / wave_count;
    let mut config = vec![BfwState::Waiting; n];
    for w in 0..wave_count {
        let base = w * spacing;
        config[base] = BfwState::Frozen;
        config[base + 1] = BfwState::Beeping;
    }
    config
}

/// The all-`W◦` configuration: no leader, no beep, ever — the silent
/// absorbing failure state reachable from arbitrary starts (e.g. after
/// two phantom waves annihilate on a path).
pub fn dead_configuration(n: usize) -> Vec<BfwState> {
    vec![BfwState::Waiting; n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Bfw;
    use bfw_graph::generators;
    use bfw_sim::Network;

    #[test]
    fn single_phantom_wave_circulates_forever() {
        let n = 9;
        let config = leaderless_wave_cycle(n, 1);
        let mut net = Network::with_states(
            Bfw::new(0.5),
            generators::cycle(n).into(),
            7,
            config.clone(),
        );
        for round in 1..=(10 * n as u64) {
            net.step();
            assert_eq!(
                net.states().iter().filter(|s| s.is_leader()).count(),
                0,
                "round {round}: a leader appeared from nowhere"
            );
            assert_eq!(
                net.beeping_node_count(),
                1,
                "round {round}: the wave should persist as exactly one beeping node"
            );
        }
        // The configuration is periodic with period n.
        let mut replay =
            Network::with_states(Bfw::new(0.5), generators::cycle(n).into(), 7, config);
        let start = replay.states().to_vec();
        replay.run(n as u64);
        assert_eq!(replay.states(), &start[..], "period must be exactly n");
    }

    #[test]
    fn wave_advances_one_node_per_round() {
        let n = 12;
        let mut net = Network::with_states(
            Bfw::new(0.5),
            generators::cycle(n).into(),
            0,
            leaderless_wave_cycle(n, 1),
        );
        // Beeping front starts at node 1 and advances by one per round.
        for round in 0..(2 * n) {
            let front = net
                .beep_flags()
                .iter()
                .position(|&b| b)
                .expect("the wave front is always beeping");
            assert_eq!(front, (1 + round) % n, "round {round}");
            net.step();
        }
    }

    #[test]
    fn multiple_phantom_waves_coexist() {
        let n = 12;
        for waves in [2usize, 3, 4] {
            let mut net = Network::with_states(
                Bfw::new(0.5),
                generators::cycle(n).into(),
                3,
                leaderless_wave_cycle(n, waves),
            );
            for _ in 0..(5 * n as u64) {
                net.step();
                assert_eq!(net.beeping_node_count(), waves);
                assert_eq!(net.leader_count(), 0);
            }
        }
    }

    #[test]
    fn dead_configuration_is_absorbing() {
        let n = 8;
        let mut net = Network::with_states(
            Bfw::new(0.5),
            generators::cycle(n).into(),
            5,
            dead_configuration(n),
        );
        for _ in 0..500 {
            net.step();
            assert_eq!(net.beeping_node_count(), 0);
            assert_eq!(net.leader_count(), 0);
        }
    }

    #[test]
    fn legitimate_start_is_immune() {
        // Contrast: from Eq. (2) configurations Lemma 9 applies and
        // phantom behaviour is impossible (leaders exist forever).
        let mut net = Network::new(Bfw::new(0.5), generators::cycle(9).into(), 5);
        for _ in 0..500 {
            net.step();
            assert!(net.leader_count() >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "spacing")]
    fn wave_spacing_validated() {
        let _ = leaderless_wave_cycle(5, 2);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn wave_divisibility_validated() {
        let _ = leaderless_wave_cycle(10, 3);
    }

    #[test]
    #[should_panic(expected = "at least one wave")]
    fn zero_waves_rejected() {
        let _ = leaderless_wave_cycle(6, 0);
    }
}
