//! The self-healing recovery layer: leaderless detection and
//! epoch-tagged restart on top of any beeping leader-election protocol.
//!
//! The paper leaves open whether a "simple but more robust rule" can
//! recover leader election under dynamics (Section 5 proves BFW itself
//! is *not* self-stabilizing: leaderless phantom waves circulate
//! forever, and our scenario engine shows partition-heal merges can
//! eliminate every leader organically). [`RecoveringProtocol`] is that
//! rule, built from weak-communication primitives only:
//!
//! * **Slot multiplexing.** Rounds alternate between *election slots*
//!   (even rounds — the inner protocol runs unchanged, at half speed)
//!   and *heartbeat slots* (odd rounds — a liveness channel). Beeps
//!   carry no content in the beeping model, so the two logical channels
//!   are separated in time, not by tags.
//! * **Phase-structured heartbeat waves.** Heartbeat slots are grouped
//!   into periods of [`heartbeat_period`] slots by the shared round
//!   clock. Every leader beeps exactly at **phase 0** of each period;
//!   a non-leader that hears a beat at phase `o` relays it once at
//!   phase `o + 1`, but only while `o` lies strictly inside the relay
//!   window (which ends at phase `period - 4`, enough for a sweep to
//!   cover the diameter). The last three phases of every period are a
//!   **forbidden zone**: beats there are ignored and never relayed.
//!   This phase discipline is what
//!   keeps Section 5's phantom problem off the liveness channel — a
//!   stray relay front advances one phase per slot, so it provably hits
//!   the forbidden zone and dies within one period, whereas an undisci-
//!   plined flood would let a lone front lap a cycle forever, resetting
//!   every timeout and masking leaderlessness. One relay per node per
//!   period also makes backward echoes impossible.
//! * **Timeout and restart.** Each node counts heartbeat slots since
//!   the last *credible* heartbeat (own emission, or a beat heard
//!   inside the relay window). When the count reaches [`timeout`], the
//!   node declares the network leaderless and *restarts*: it re-enters
//!   the election as a fresh candidate (for BFW: `W•`), bumps its
//!   **epoch** counter, and goes deaf and mute.
//! * **Epoch fencing by aligned cohorts.** Restarts are epoch-tagged
//!   temporally (beeps carry no epoch number): a restarted node stays
//!   deaf-mute until the next global **restart boundary** (every
//!   [`align_rounds`] rounds, at least [`grace`] election slots away).
//!   All nodes that time out in the same window therefore rejoin
//!   **simultaneously**. While they are mute, waves of the previous
//!   epoch die at them; when the whole network restarts — the wipeout
//!   case — the rejoin is an all-`W•` configuration, which is exactly
//!   the paper's Eq. (2) initialization: from there Theorem 2 applies
//!   and no phantom wave can exist. Staggered *individual* exits are
//!   what manufactures phantom waves, so the alignment is load-bearing,
//!   not cosmetic.
//!
//! Per the paper's minimalist constraint the layer adds only
//! constant-bounded counters (`O(1)` states for fixed parameters); like
//! the Theorem 3 variant it trades uniformity for a diameter-derived
//! constant — see [`RecoveryConfig::for_diameter`].
//!
//! The wrapper implements [`BeepingProtocol`] itself, so it runs on
//! every runtime a beeping protocol runs on (the beeping `Network`, the
//! stone-age runtime through `BeepingAsStoneAge`). For executions with
//! mid-run crash/recovery or state injection, use [`RecoveringNetwork`]
//! (the `SlotSyncedModel` runtime), which stamps the slot clock of
//! every externally installed state from the global round counter.
//!
//! **Known limits** (documented, measured by experiment E17): the layer
//! relies on the synchronized round structure for its phase discipline
//! (the same assumption the synchronous beeping model already makes),
//! and perception noise on the heartbeat slots degrades detection like
//! it degrades Section 3's guarantees — a hallucinated in-window beat
//! delays detection, a lost sweep advances it.
//!
//! [`heartbeat_period`]: RecoveryConfig::heartbeat_period
//! [`timeout`]: RecoveryConfig::timeout
//! [`grace`]: RecoveryConfig::grace
//! [`align_rounds`]: RecoveryConfig::align_rounds

use crate::{Bfw, BfwState};
use bfw_sim::{BeepingProtocol, LeaderElection, NodeCtx, SlotAware, SlotSyncedModel, TickEngine};
use rand::RngCore;

/// Margin between the relay window and the period wrap: the window ends
/// at phase `heartbeat_period - FORBIDDEN_PHASES`, so the last
/// `FORBIDDEN_PHASES - 1` phases of every period hear nothing credible
/// and carry no relays (a relay scheduled at the window's final phase
/// still fires one phase later). Any stray front therefore falls
/// silent at least 3 phases before the next pulse.
pub const FORBIDDEN_PHASES: u32 = 4;

/// Timing parameters of the recovery layer. Heartbeat parameters count
/// heartbeat slots (= every other round); the grace window counts
/// election slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Heartbeat slots per period: every leader pulses at phase 0 of
    /// each period; relays sweep phases `1..=relay_window`; the
    /// remaining tail of the period accepts nothing (see
    /// [`FORBIDDEN_PHASES`]).
    pub heartbeat_period: u32,
    /// Heartbeat slots without a credible heartbeat before a node
    /// declares the network leaderless and restarts.
    pub timeout: u32,
    /// Minimum election slots of post-restart deafness. The actual
    /// deaf-mute interval ends at the next restart boundary (see
    /// [`align_rounds`](Self::align_rounds)) that is at least this far
    /// away, so co-timing-out nodes rejoin simultaneously.
    pub grace: u32,
}

impl RecoveryConfig {
    /// Creates a configuration after validating the parameters.
    ///
    /// # Panics
    ///
    /// Panics on the conditions [`try_new`](Self::try_new) rejects.
    pub fn new(heartbeat_period: u32, timeout: u32, grace: u32) -> Self {
        match Self::try_new(heartbeat_period, timeout, grace) {
            Ok(config) => config,
            Err(message) => panic!("{message}"),
        }
    }

    /// Fallible constructor: rejects `heartbeat_period ≤
    /// FORBIDDEN_PHASES` (the relay window must be non-empty),
    /// `timeout ≤ heartbeat_period` (a healthy network must never time
    /// out between two consecutive sweeps) and `grace = 0`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violated constraint.
    pub fn try_new(heartbeat_period: u32, timeout: u32, grace: u32) -> Result<Self, String> {
        if heartbeat_period <= FORBIDDEN_PHASES {
            return Err(format!(
                "heartbeat period ({heartbeat_period}) must exceed the forbidden zone \
                 ({FORBIDDEN_PHASES})"
            ));
        }
        if timeout <= heartbeat_period {
            return Err(format!(
                "timeout ({timeout}) must exceed the heartbeat period ({heartbeat_period})"
            ));
        }
        if grace == 0 {
            return Err("grace window must be ≥ 1".to_owned());
        }
        Ok(RecoveryConfig {
            heartbeat_period,
            timeout,
            grace,
        })
    }

    /// The diameter-derived defaults (the recovery analogue of
    /// Theorem 3's `p = 1/(D+1)`): period `D + 5` so the relay window
    /// `D + 1` covers a full sweep, timeout `3·period` so one lost or
    /// late sweep never triggers a false restart, and grace equal to
    /// the timeout so a restart cohort's mute interval outlasts any
    /// in-flight wave.
    pub fn for_diameter(diameter: u32) -> Self {
        let period = diameter + 5;
        RecoveryConfig::new(period, 3 * period, 3 * period)
    }

    /// The global restart-boundary spacing, in **rounds**: the smallest
    /// power of two at least `2 · (timeout + grace)` (a power of two so
    /// a wrapping 32-bit round clock stays consistent with `round mod
    /// align`). Nodes rejoin only at multiples of this.
    pub fn align_rounds(&self) -> u32 {
        (2 * (self.timeout + self.grace)).next_power_of_two()
    }

    /// The last phase at which a relay may fire:
    /// `heartbeat_period - FORBIDDEN_PHASES`, at least 1. A sweep from
    /// a phase-0 pulse reaches distance `k` at phase `k`, so the
    /// window covers any graph with diameter ≤ `relay_window - 1`.
    pub fn relay_window(&self) -> u32 {
        (self.heartbeat_period - FORBIDDEN_PHASES).max(1)
    }
}

/// State of one node under [`RecoveringProtocol`]: the inner protocol
/// state plus the constant-bounded recovery bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryState<S> {
    /// The wrapped protocol's state (advanced only in election slots).
    pub inner: S,
    /// Wrapping round clock: the global round this state acts in next
    /// (low bit = slot parity, low bits mod
    /// [`RecoveryConfig::align_rounds`] = position in the restart
    /// window). Maintained by the transition; stamped from the global
    /// round by the `SlotSyncedModel` runtime for mid-run joiners.
    pub clock: u32,
    /// Relay scheduled for the upcoming heartbeat slot.
    pub hb_emit: bool,
    /// Already relayed in the current heartbeat period (one relay per
    /// node per period; cleared at each period wrap).
    pub relayed: bool,
    /// Heartbeat slots since the last *credible* heartbeat (own
    /// emission or an in-window beat) — the leaderless-detection clock
    /// (saturating).
    pub since_valid: u32,
    /// Rounds of post-restart deafness remaining; the node rejoins when
    /// this reaches 0, exactly at a restart boundary (0 = active).
    pub grace_rounds: u32,
    /// Number of restarts this node has performed — the epoch tag.
    pub epoch: u32,
}

impl<S> RecoveryState<S> {
    /// Wraps an externally produced inner state (scenario state
    /// injection, adapters): active, no pending emission, detection
    /// clock reset. The round clock defaults to 0; runtimes that know
    /// the global round stamp it on installation.
    pub fn rejoining(inner: S) -> Self {
        RecoveryState {
            inner,
            clock: 0,
            hb_emit: false,
            relayed: false,
            since_valid: 0,
            grace_rounds: 0,
            epoch: 0,
        }
    }

    /// `true` if the next round this state acts in is a heartbeat slot
    /// (an odd global round).
    pub fn heartbeat_slot(&self) -> bool {
        self.clock % 2 == 1
    }
}

impl<S> SlotAware for RecoveryState<S> {
    fn sync_clock(&mut self, round: u64) {
        self.clock = round as u32;
    }
}

/// The recovery layer around a beeping leader-election protocol `P` —
/// see the [module docs](self) for the mechanism.
///
/// # Example
///
/// ```
/// use bfw_core::{RecoveringProtocol, RecoveryConfig};
/// use bfw_sim::{LeaderElection, Network};
/// use bfw_graph::generators;
///
/// let protocol = RecoveringProtocol::bfw(0.5, RecoveryConfig::for_diameter(4));
/// let mut net = Network::new(protocol, generators::cycle(8).into(), 42);
/// net.run(10_000);
/// assert_eq!(net.leader_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveringProtocol<P: LeaderElection> {
    inner: P,
    config: RecoveryConfig,
    restart_state: P::State,
}

/// The crash/recovery-safe runtime for [`RecoveringProtocol`]: a
/// [`TickEngine`] whose [`SlotSyncedModel`] stamps the round clock of
/// every externally installed state (initial, recovered, injected) from
/// the global round counter, so mid-run rejoiners can never
/// desynchronize the election/heartbeat multiplexing. Use this — not a
/// plain `Network<RecoveringProtocol<P>>` — whenever the execution
/// involves crash recovery or scenario state injection.
pub type RecoveringNetwork<P> = TickEngine<SlotSyncedModel<RecoveringProtocol<P>>>;

impl<P: LeaderElection> RecoveringProtocol<P> {
    /// Wraps `inner` with the recovery layer; `restart_state` is the
    /// state a node re-enters the election in when its timeout fires
    /// (for BFW: `W•`, a fresh leader candidate).
    pub fn new(inner: P, config: RecoveryConfig, restart_state: P::State) -> Self {
        RecoveringProtocol {
            inner,
            config,
            restart_state,
        }
    }

    /// Returns the wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Returns the timing parameters.
    pub fn config(&self) -> &RecoveryConfig {
        &self.config
    }

    /// A conservative upper bound, in **rounds**, on the time from "the
    /// last leader disappeared" to "every node has restarted and
    /// rejoined at a restart boundary" (detection + cohort wait; the
    /// subsequent election is the inner protocol's own convergence
    /// time). Used by tests and the recovery experiment to bound
    /// re-election latency.
    pub fn detection_bound_rounds(&self) -> u64 {
        // Detection: ≤ 2·timeout heartbeat slots (timeout plus the
        // staggering of last credible beats) = 4·timeout rounds; then
        // the cohort waits ≤ align + 2·grace rounds for its boundary.
        u64::from(4 * self.config.timeout)
            + u64::from(self.config.align_rounds())
            + u64::from(2 * self.config.grace)
    }

    /// One heartbeat-slot update (the round's low bit is 1): runs the
    /// liveness channel, leaving `inner` untouched. The slot's phase in
    /// the heartbeat period is derived from the shared round clock.
    fn heartbeat_step(
        &self,
        state: &RecoveryState<P::State>,
        heard: bool,
    ) -> RecoveryState<P::State> {
        let mut next = state.clone();
        next.clock = state.clock.wrapping_add(1);
        if state.grace_rounds > 0 {
            // Deaf-mute: the detection clock is suspended, nothing is
            // emitted or relayed.
            next.grace_rounds = state.grace_rounds - 1;
            next.since_valid = 0;
            next.hb_emit = false;
            next.relayed = false;
            return next;
        }
        let period = self.config.heartbeat_period;
        let window = self.config.relay_window();
        let phase = (state.clock / 2) % period;
        let leader = self.inner.is_leader(&state.inner);
        let emitted = state.hb_emit || (leader && phase == 0);
        // A beat is credible only inside the relay window (a phase-0
        // pulse or a sweep relay). Beats in the forbidden zone are
        // stray fronts: ignored by the detector and never relayed, so
        // they die within one period.
        let credible = heard && (emitted || phase <= window);
        let relay = credible && !emitted && !leader && !state.relayed && phase < window;
        next.hb_emit = relay;
        next.relayed = if phase + 1 == period {
            false // fresh relay budget for the next period
        } else {
            state.relayed || relay
        };
        next.since_valid = if credible {
            0
        } else {
            state.since_valid.saturating_add(1)
        };
        if next.since_valid >= self.config.timeout {
            // Leaderless: restart into a new epoch, deaf and mute
            // until the next restart boundary at least `grace`
            // election slots away — every node that timed out in the
            // same window rejoins at the same boundary.
            let align = self.config.align_rounds();
            let position = state.clock.wrapping_add(1) % align;
            let mut to_boundary = (align - position) % align;
            if to_boundary < 2 * self.config.grace {
                to_boundary += align;
            }
            next.inner = self.restart_state.clone();
            next.grace_rounds = to_boundary;
            next.epoch = state.epoch.saturating_add(1);
            next.since_valid = 0;
            next.hb_emit = false;
            next.relayed = false;
        }
        next
    }

    /// One election-slot update (the round's low bit is 0): runs the
    /// inner protocol, unless the node is inside its deaf-mute window.
    fn election_step(
        &self,
        state: &RecoveryState<P::State>,
        heard: bool,
        rng: &mut dyn RngCore,
    ) -> RecoveryState<P::State> {
        let mut next = state.clone();
        next.clock = state.clock.wrapping_add(1);
        if state.grace_rounds > 0 {
            // Frozen: deaf, mute, and drawing no randomness while the
            // previous epoch's waves die out.
            next.grace_rounds = state.grace_rounds - 1;
        } else {
            next.inner = self.inner.transition(&state.inner, heard, rng);
        }
        next
    }
}

impl RecoveringProtocol<Bfw> {
    /// The canonical instantiation: BFW with beep probability `p`,
    /// restarting into `W•`.
    pub fn bfw(p: f64, config: RecoveryConfig) -> Self {
        RecoveringProtocol::new(Bfw::new(p), config, BfwState::LeaderWaiting)
    }
}

impl<P: LeaderElection> BeepingProtocol for RecoveringProtocol<P> {
    type State = RecoveryState<P::State>;

    fn initial_state(&self, ctx: NodeCtx) -> Self::State {
        RecoveryState {
            inner: self.inner.initial_state(ctx),
            clock: 0,
            hb_emit: false,
            relayed: false,
            since_valid: 0,
            grace_rounds: 0,
            epoch: 0,
        }
    }

    fn beeps(&self, state: &Self::State) -> bool {
        if state.grace_rounds > 0 {
            return false;
        }
        if state.heartbeat_slot() {
            let phase = (state.clock / 2) % self.config.heartbeat_period;
            state.hb_emit || (phase == 0 && self.inner.is_leader(&state.inner))
        } else {
            self.inner.beeps(&state.inner)
        }
    }

    fn transition(&self, state: &Self::State, heard: bool, rng: &mut dyn RngCore) -> Self::State {
        if state.heartbeat_slot() {
            self.heartbeat_step(state, heard)
        } else {
            self.election_step(state, heard, rng)
        }
    }
}

impl<P: LeaderElection> LeaderElection for RecoveringProtocol<P> {
    fn is_leader(&self, state: &Self::State) -> bool {
        self.inner.is_leader(&state.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfw_graph::generators;
    use bfw_sim::Network;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn proto(d: u32) -> RecoveringProtocol<Bfw> {
        RecoveringProtocol::bfw(0.5, RecoveryConfig::for_diameter(d))
    }

    #[test]
    #[should_panic(expected = "must exceed the heartbeat period")]
    fn config_rejects_tight_timeout() {
        let _ = RecoveryConfig::new(10, 10, 5);
    }

    #[test]
    #[should_panic(expected = "must exceed the forbidden zone")]
    fn config_rejects_tiny_period() {
        let _ = RecoveryConfig::new(FORBIDDEN_PHASES, 40, 5);
    }

    #[test]
    fn for_diameter_scales() {
        let c = RecoveryConfig::for_diameter(8);
        assert_eq!(c.heartbeat_period, 13);
        assert_eq!(c.timeout, 39);
        assert_eq!(c.grace, 39);
        assert_eq!(c.align_rounds(), 256); // next pow2 of 2·(39+39)
        assert!(c.align_rounds().is_power_of_two());
        assert_eq!(c.relay_window(), 9); // covers a sweep of diameter 8
                                         // Single node: still valid.
        let _ = RecoveryConfig::for_diameter(0);
    }

    #[test]
    fn initial_leaders_pulse_at_phase_zero() {
        let p = proto(4);
        let s = p.initial_state(NodeCtx {
            node: bfw_graph::NodeId::new(0),
            node_count: 8,
        });
        assert!(!s.heartbeat_slot(), "round 0 is an election slot");
        assert!(!p.beeps(&s), "W• does not beep in the election slot");
        assert_eq!(s.epoch, 0);
        // Round 1 is the first heartbeat slot, phase 0 of the first
        // period: every leader pulses there.
        let mut hb = s.clone();
        hb.clock = 1;
        assert!(p.beeps(&hb), "a leader pulses at phase 0");
        // At a non-zero phase without a scheduled relay: silence.
        hb.clock = 3;
        assert!(!p.beeps(&hb));
    }

    #[test]
    fn election_still_converges_under_the_wrapper() {
        // The wrapper must not break the inner election: a cycle still
        // converges to exactly one leader, and stays there.
        let mut net = Network::new(proto(4), generators::cycle(8).into(), 3);
        net.run(30_000);
        assert_eq!(net.leader_count(), 1);
        let leader = net.unique_leader().unwrap();
        net.run(5_000);
        assert_eq!(net.unique_leader(), Some(leader), "leader must be stable");
        // Nobody restarted: the heartbeat kept every timeout clock low.
        assert!(net.states().iter().all(|s| s.epoch == 0));
    }

    #[test]
    fn heartbeats_reach_every_node_periodically() {
        // After convergence, every node's detection clock stays below
        // the timeout forever (the heartbeat wave sweeps the whole
        // cycle each period), across several seeds.
        for seed in 0..6u64 {
            let p = proto(4);
            let timeout = p.config().timeout;
            let mut net = Network::new(p, generators::cycle(8).into(), seed);
            net.run(20_000);
            for _ in 0..2_000 {
                net.step();
                for s in net.states() {
                    assert!(
                        s.since_valid < timeout,
                        "seed {seed}: detection clock reached {} (timeout {timeout}) \
                         in a healthy network",
                        s.since_valid
                    );
                }
            }
        }
    }

    #[test]
    fn heartbeat_waves_die_between_pulses() {
        // The refractory + gap-validation rules must kill each sweep:
        // strictly between two leader pulses there must be silent
        // heartbeat slots (a circulating relay front would beep in
        // every heartbeat slot forever). cycle(12) has diameter 6:
        // period 11, each sweep occupies ~7 slots, leaving ~4 silent.
        let mut net = Network::new(proto(6), generators::cycle(12).into(), 5);
        net.run(20_001);
        let mut silent_hb_slots = 0;
        for _ in 0..200 {
            // Heartbeat slots are the odd rounds; count silent ones.
            if net.round() % 2 == 1 && net.beeping_node_count() == 0 {
                silent_hb_slots += 1;
            }
            net.step();
        }
        assert!(
            silent_hb_slots > 15,
            "only {silent_hb_slots}/100 heartbeat slots were silent — relays are circulating"
        );
    }

    #[test]
    fn leaderless_network_restarts_and_re_elects() {
        // Start with *no* leader at all (every node a waiting
        // non-leader): plain BFW stays leaderless forever; the wrapper
        // detects the silence and re-elects.
        let p = proto(4);
        let bound = p.detection_bound_rounds();
        let n = 8;
        let states: Vec<RecoveryState<BfwState>> = (0..n)
            .map(|_| RecoveryState::rejoining(BfwState::Waiting))
            .collect();
        let mut net = Network::with_states(p, generators::cycle(n).into(), 11, states);
        // Restart must fire within the detection bound...
        net.run(bound);
        assert!(
            net.states().iter().all(|s| s.epoch == 1),
            "every node must have restarted exactly once within {bound} rounds: {:?}",
            net.states().iter().map(|s| s.epoch).collect::<Vec<_>>()
        );
        // ...and the subsequent election must converge and stay stable.
        net.run(40_000);
        assert_eq!(net.leader_count(), 1, "re-election failed");
        assert!(
            net.states().iter().all(|s| s.epoch == 1),
            "no repeat restarts"
        );
    }

    #[test]
    fn restart_cohort_rejoins_at_one_aligned_boundary() {
        // All nodes of a silent network time out together and must
        // rejoin at the *same* restart boundary (multiple of
        // align_rounds) — the property that makes the rejoin an Eq. (2)
        // initialization with no stale wave able to survive.
        let p = proto(4);
        let align = u64::from(p.config().align_rounds());
        let n = 6;
        let states: Vec<RecoveryState<BfwState>> = (0..n)
            .map(|_| RecoveryState::rejoining(BfwState::Waiting))
            .collect();
        let mut net = Network::with_states(p, generators::cycle(n).into(), 3, states);
        let mut rejoined_at = None;
        for _ in 0..(4 * align) {
            net.step();
            let active = net.states().iter().filter(|s| s.grace_rounds == 0).count();
            let restarted = net.states().iter().filter(|s| s.epoch == 1).count();
            if restarted == n && active == n && rejoined_at.is_none() {
                rejoined_at = Some(net.round());
                // Simultaneous rejoin: everyone is a fresh candidate.
                assert!(net
                    .states()
                    .iter()
                    .all(|s| s.inner == BfwState::LeaderWaiting));
            }
            if restarted == n && active > 0 && active < n {
                panic!(
                    "staggered rejoin at round {}: {active}/{n} active",
                    net.round()
                );
            }
        }
        let at = rejoined_at.expect("cohort must have rejoined");
        assert_eq!(at % align, 0, "rejoin must land on a restart boundary");
    }

    #[test]
    fn lone_heartbeat_front_dies_in_the_forbidden_zone() {
        // Manufacture the liveness-channel phantom: a single stray
        // relay front on a leaderless cycle. Under an undisciplined
        // relay flood it would lap the cycle forever, resetting every
        // timeout and permanently masking the leaderlessness; the phase
        // discipline kills it within one period, so every node still
        // restarts.
        let p = proto(6);
        let horizon = u64::from(p.config().align_rounds()) / 2;
        let n = 16;
        let mut states: Vec<RecoveryState<BfwState>> = (0..n)
            .map(|_| RecoveryState::rejoining(BfwState::Waiting))
            .collect();
        states[0].hb_emit = true; // the orphan front
        let mut net = Network::with_states(p, generators::cycle(n).into(), 7, states);
        net.run(horizon);
        assert!(
            net.states().iter().all(|s| s.epoch >= 1),
            "the lone front suppressed detection: {:?}",
            net.states()
                .iter()
                .map(|s| s.since_valid)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn restart_grace_is_deaf_and_mute() {
        let p = proto(4);
        // A node mid-grace must not beep in either slot and must ignore
        // election beeps.
        let mut s = RecoveryState::rejoining(BfwState::LeaderWaiting);
        s.grace_rounds = 5;
        assert!(!p.beeps(&s));
        s.clock = 1; // heartbeat slot
        s.hb_emit = true; // even a pending emission is suppressed
        assert!(!p.beeps(&s));
        s.clock = 0;
        s.hb_emit = false;
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let next = p.transition(&s, true, &mut rng);
        assert_eq!(
            next.inner,
            BfwState::LeaderWaiting,
            "grace must shield the candidate from elimination"
        );
        assert_eq!(next.grace_rounds, 4);
        // No randomness was consumed while frozen.
        use rand::RngCore as _;
        let mut fresh = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(rng.next_u64(), fresh.next_u64());
    }

    #[test]
    fn transition_round_trips_slot_parity() {
        let p = proto(4);
        let s = p.initial_state(NodeCtx {
            node: bfw_graph::NodeId::new(0),
            node_count: 4,
        });
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let hb = p.transition(&s, false, &mut rng);
        assert!(hb.heartbeat_slot());
        let el = p.transition(&hb, p.beeps(&hb), &mut rng);
        assert!(!el.heartbeat_slot());
        assert_eq!(el.clock, s.clock + 2);
    }

    #[test]
    fn recovering_network_matches_plain_network_on_static_runs() {
        // With no mid-run joins the slot-synced runtime is the plain
        // runtime, bit for bit.
        let mut a = Network::new(proto(4), generators::cycle(8).into(), 13);
        let mut b = RecoveringNetwork::new(proto(4), generators::cycle(8).into(), 13);
        a.run(5_000);
        b.run(5_000);
        assert_eq!(a.states(), b.states());
        assert_eq!(a.leader_count(), b.leader_count());
    }

    #[test]
    fn recovering_network_syncs_rejoiners_at_odd_rounds() {
        // Recover a node after an odd number of rounds: under the
        // slot-synced runtime its clock must match the network's.
        let mut net = RecoveringNetwork::new(proto(4), generators::cycle(8).into(), 2);
        let u = bfw_graph::NodeId::new(3);
        net.run(100);
        net.crash_node(u);
        net.run(101); // 201 completed rounds: next round is odd = heartbeat
        net.recover_node(u);
        assert!(net.states()[3].heartbeat_slot(), "rejoiner must be stamped");
        assert_eq!(net.states()[3].clock, net.states()[0].clock);
        // And injected configurations are stamped the same way.
        net.set_node_state(u, RecoveryState::rejoining(BfwState::Waiting));
        assert!(net.states()[3].heartbeat_slot());
        assert_eq!(net.states()[3].clock, 201);
    }

    #[test]
    fn crashed_sole_leader_is_replaced_without_rejoin() {
        // The headline self-healing property: crash the unique leader
        // and *don't* bring it back. Plain BFW stays leaderless forever
        // (Section 5); the recovery layer detects the silence and
        // re-elects among the survivors. The config is sized to the
        // worst-case alive-subgraph eccentricity n - 1 = 7 (a crashed
        // node relays nothing, so the cycle degrades to a path), not to
        // the intact diameter 4.
        for seed in 0..4u64 {
            let mut net = RecoveringNetwork::new(proto(7), generators::cycle(8).into(), seed);
            net.run(30_000);
            let leader = net.unique_leader().expect("election must converge");
            net.crash_node(leader);
            assert_eq!(net.leader_count(), 0);
            net.run(60_000);
            assert_eq!(net.leader_count(), 1, "seed {seed}: no replacement leader");
            assert_ne!(net.unique_leader(), Some(leader));
            assert!(
                net.states().iter().any(|s| s.epoch >= 1),
                "seed {seed}: recovery must have gone through a restart epoch"
            );
        }
    }
}
