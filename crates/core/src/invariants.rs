//! The paper's deterministic lemmas as runtime checks.
//!
//! Section 3's results are theorems about *every* execution of BFW, so
//! they double as a powerful test oracle: run the protocol, assert the
//! lemmas each round. [`InvariantChecker`] verifies, per round,
//!
//! * **Claim 6** — all nine one-step structural implications
//!   (Eqs. (3)–(11)),
//! * **Lemma 9** — at least one leader exists,
//! * monotonicity — the leader set never grows (no transition enters the
//!   leader half of Figure 1),
//! * **Lemma 11** — `|N_beep_t(u) − N_beep_t(v)| ≤ dis(u, v)` for all
//!   pairs (optional: `O(n²)` per round).
//!
//! Violations are collected into an [`InvariantReport`]; any violation
//! is an implementation bug.

use crate::state::BfwState;
use bfw_graph::{algo::DistanceMatrix, Graph, NodeId};
use bfw_sim::{BeepingProtocol, Observer, RoundView};

/// Outcome of an invariant audit (see [`InvariantChecker`]).
#[derive(Debug, Clone, Default)]
pub struct InvariantReport {
    violations: Vec<String>,
    rounds_checked: u64,
}

impl InvariantReport {
    /// Returns the collected violation messages.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Returns `true` if no violation was recorded.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Returns the number of observed rounds.
    pub fn rounds_checked(&self) -> u64 {
        self.rounds_checked
    }
}

/// Observer that checks Claim 6, Lemma 9, Lemma 11 and leader-set
/// monotonicity on a live BFW execution.
///
/// # Example
///
/// ```
/// use bfw_core::{Bfw, InvariantChecker};
/// use bfw_sim::{observe_run, Network};
/// use bfw_graph::generators;
///
/// let g = generators::grid(3, 4);
/// let mut checker = InvariantChecker::new(&g).with_lemma11(true);
/// let mut net = Network::new(Bfw::new(0.5), g.into(), 5);
/// observe_run(&mut net, &mut checker, 300, |_| false);
/// assert!(checker.report().is_clean());
/// ```
#[derive(Debug, Clone)]
pub struct InvariantChecker {
    graph: Graph,
    distances: Option<DistanceMatrix>,
    n_beep: Vec<u64>,
    prev: Option<(Vec<BfwState>, Vec<bool>)>,
    prev_leaders: Option<usize>,
    report: InvariantReport,
}

impl InvariantChecker {
    /// Creates a checker for executions on `graph` (the checker needs
    /// the adjacency to verify the neighborhood implications (6), (10),
    /// (11)). Lemma 11 checking starts disabled.
    pub fn new(graph: &Graph) -> Self {
        InvariantChecker {
            graph: graph.clone(),
            distances: None,
            n_beep: vec![0; graph.node_count()],
            prev: None,
            prev_leaders: None,
            report: InvariantReport::default(),
        }
    }

    /// Enables (or disables) the all-pairs Lemma 11 check. Enabling
    /// builds a [`DistanceMatrix`] (`O(n·m)` once, `O(n²)` per round).
    pub fn with_lemma11(mut self, enabled: bool) -> Self {
        self.distances = enabled.then(|| DistanceMatrix::new(&self.graph));
        self
    }

    /// Returns the audit report.
    pub fn report(&self) -> &InvariantReport {
        &self.report
    }

    /// Panics with diagnostics if any violation was recorded.
    ///
    /// # Panics
    ///
    /// Panics if the audit found a violation.
    pub fn assert_clean(&self) {
        assert!(
            self.report.is_clean(),
            "BFW invariants violated: {:?}",
            self.report.violations
        );
    }

    fn violate(&mut self, round: u64, message: String) {
        self.report
            .violations
            .push(format!("round {round}: {message}"));
    }

    fn check_round(&mut self, round: u64, states: &[BfwState], beeps: &[bool]) {
        let n = states.len();
        // Lemma 9: at least one leader.
        let leaders = states.iter().filter(|s| s.is_leader()).count();
        if leaders == 0 {
            self.violate(round, "Lemma 9 violated: no leader remains".to_owned());
        }
        // Monotonicity of the leader set.
        if let Some(prev_leaders) = self.prev_leaders {
            if leaders > prev_leaders {
                self.violate(
                    round,
                    format!("leader count increased from {prev_leaders} to {leaders}"),
                );
            }
        }
        self.prev_leaders = Some(leaders);

        // Beep flags must agree with the states.
        for (i, s) in states.iter().enumerate() {
            if beeps[i] != s.beeps() {
                self.violate(
                    round,
                    format!("beep flag of node {i} disagrees with state {s}"),
                );
            }
        }

        if let Some((prev_states, prev_beeps)) = self.prev.take() {
            self.check_claim6(round, &prev_states, &prev_beeps, states);
            self.prev = Some((prev_states, prev_beeps));
        }

        // Update N_beep and check Lemma 11.
        for (c, &b) in self.n_beep.iter_mut().zip(beeps) {
            *c += u64::from(b);
        }
        if let Some(dm) = &self.distances {
            for u in 0..n {
                for v in (u + 1)..n {
                    let gap = self.n_beep[u].abs_diff(self.n_beep[v]);
                    match dm.get(NodeId::new(u), NodeId::new(v)) {
                        Some(d) if gap <= u64::from(d) => {}
                        Some(d) => {
                            self.report.violations.push(format!(
                                "round {round}: Lemma 11 violated: |N_beep({u}) − N_beep({v})| \
                                 = {gap} > dis = {d}"
                            ));
                        }
                        None => {
                            self.report.violations.push(format!(
                                "round {round}: graph disconnected between {u} and {v}"
                            ));
                        }
                    }
                }
            }
        }

        self.prev = Some((states.to_vec(), beeps.to_vec()));
        self.report.rounds_checked += 1;
    }

    /// Claim 6: one-step implications between round `t` (prev) and
    /// `t+1` (next). `prev_beeps[u] ⇔ u ∈ B_t`.
    fn check_claim6(
        &mut self,
        round: u64,
        prev: &[BfwState],
        prev_beeps: &[bool],
        next: &[BfwState],
    ) {
        let n = prev.len();
        for u in 0..n {
            let (pu, nu) = (prev[u], next[u]);
            // Eq. (3): u ∈ W_t ⇒ u ∉ F_{t+1}.
            if pu.is_waiting() && nu.is_frozen() {
                self.violate(round, format!("Eq.(3): node {u} went W → F"));
            }
            // Eq. (4): u ∈ B_t ⇒ u ∈ F_{t+1}.
            if pu.beeps() && !nu.is_frozen() {
                self.violate(round, format!("Eq.(4): node {u} beeped but is not frozen"));
            }
            // Eq. (5): u ∈ F_t ⇒ u ∈ W_{t+1}.
            if pu.is_frozen() && !nu.is_waiting() {
                self.violate(round, format!("Eq.(5): node {u} left F without entering W"));
            }
            // Eq. (7): u ∈ W_{t+1} ⇒ u ∉ B_t (checked backward).
            if nu.is_waiting() && pu.beeps() {
                self.violate(round, format!("Eq.(7): node {u} went B → W"));
            }
            // Eq. (8): u ∈ B_{t+1} ⇒ u ∈ W_t.
            if nu.beeps() && !pu.is_waiting() {
                self.violate(
                    round,
                    format!("Eq.(8): node {u} beeps without having waited"),
                );
            }
            // Eq. (9): u ∈ F_{t+1} ⇒ u ∈ B_t.
            if nu.is_frozen() && !pu.beeps() {
                self.violate(round, format!("Eq.(9): node {u} froze without beeping"));
            }
            // Eq. (11): u ∈ B◦_{t+1} ⇒ some neighbor beeped in round t
            // — unless u was an eliminated leader (then it heard a
            // neighbor beep too) — in all cases a neighbor of u was in
            // B_t.
            if nu == BfwState::Beeping {
                let any = self
                    .graph
                    .neighbors(NodeId::new(u))
                    .iter()
                    .any(|v| prev_beeps[v.index()]);
                if !any {
                    self.violate(
                        round,
                        format!("Eq.(11): node {u} is B◦ without a beeping neighbor"),
                    );
                }
            }
        }
        // Eq. (6): u ∈ B_t, v ∈ W_t, {u,v} ∈ E ⇒ v ∈ B◦_{t+1}.
        // Eq. (10): u ∈ F_{t+1}... (checked in its round-t form below).
        let edges: Vec<(NodeId, NodeId)> = self.graph.edges().collect();
        for (u, v) in edges {
            for (a, b) in [(u, v), (v, u)] {
                if prev[a.index()].beeps()
                    && prev[b.index()].is_waiting()
                    && next[b.index()] != BfwState::Beeping
                {
                    self.violate(
                        round,
                        format!("Eq.(6): {b} waited next to beeping {a} but is not B◦"),
                    );
                }
                // Eq. (10): u ∈ F_t ∧ v ∈ W_t ⇒ v ∈ F_{t−1}; forward
                // form: if u ∈ B_t and v ∈ F_t... the paper's (10) needs
                // round t−1, equivalent forward: u ∈ F_{t+1} ∧ v ∈
                // W_{t+1} ⇒ v ∈ F_t.
                if next[a.index()].is_frozen()
                    && next[b.index()].is_waiting()
                    && !prev[b.index()].is_frozen()
                {
                    self.violate(
                        round,
                        format!(
                            "Eq.(10): {a} frozen next to waiting {b}, but {b} was not frozen \
                             in the previous round"
                        ),
                    );
                }
            }
        }
    }
}

impl<P> Observer<P> for InvariantChecker
where
    P: BeepingProtocol<State = BfwState>,
{
    fn on_round(&mut self, view: &RoundView<'_, P>) {
        self.check_round(view.round, view.states, view.beeps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Bfw, InitialConfig};
    use bfw_graph::generators;
    use bfw_sim::{observe_run, Network};
    use BfwState::*;

    fn run_checked(g: Graph, p: f64, seed: u64, rounds: u64, lemma11: bool) -> InvariantChecker {
        let mut checker = InvariantChecker::new(&g).with_lemma11(lemma11);
        let mut net = Network::new(Bfw::new(p), g.into(), seed);
        observe_run(&mut net, &mut checker, rounds, |_| false);
        checker
    }

    #[test]
    fn clean_on_cycle() {
        let checker = run_checked(generators::cycle(10), 0.5, 1, 400, true);
        checker.assert_clean();
        assert_eq!(checker.report().rounds_checked(), 401);
    }

    #[test]
    fn clean_on_path_and_grid_and_star() {
        for (g, seed) in [
            (generators::path(15), 2u64),
            (generators::grid(4, 4), 3),
            (generators::star(12), 4),
            (generators::complete(8), 5),
            (generators::balanced_tree(2, 3), 6),
        ] {
            let checker = run_checked(g, 0.5, seed, 300, true);
            checker.assert_clean();
        }
    }

    #[test]
    fn clean_with_small_and_large_p() {
        for p in [0.05, 0.95] {
            let checker = run_checked(generators::cycle(9), p, 7, 300, false);
            checker.assert_clean();
        }
    }

    #[test]
    fn clean_with_two_leader_init() {
        let n = 13;
        let g = generators::path(n);
        let bfw = Bfw::new(0.5).with_initial_config(InitialConfig::Nodes(vec![
            NodeId::new(0),
            NodeId::new(n - 1),
        ]));
        let mut checker = InvariantChecker::new(&g).with_lemma11(true);
        let mut net = Network::new(bfw, g.into(), 11);
        observe_run(&mut net, &mut checker, 2_000, |_| false);
        checker.assert_clean();
    }

    #[test]
    fn detects_fabricated_lemma9_violation() {
        let g = generators::path(2);
        let mut checker = InvariantChecker::new(&g);
        checker.check_round(0, &[Waiting, Waiting], &[false, false]);
        assert!(!checker.report().is_clean());
        assert!(checker.report().violations()[0].contains("Lemma 9"));
    }

    #[test]
    fn detects_fabricated_claim6_violations() {
        let g = generators::path(2);
        // W → F directly violates Eq. (3) (and Eq. (9)).
        let mut checker = InvariantChecker::new(&g);
        checker.check_round(0, &[LeaderWaiting, Waiting], &[false, false]);
        checker.check_round(1, &[LeaderFrozen, Waiting], &[false, false]);
        let joined = checker.report().violations().join("\n");
        assert!(joined.contains("Eq.(3)"), "{joined}");
        assert!(joined.contains("Eq.(9)"), "{joined}");
    }

    #[test]
    fn detects_fabricated_eq6_violation() {
        let g = generators::path(2);
        let mut checker = InvariantChecker::new(&g);
        // Node 0 beeps next to waiting node 1...
        checker.check_round(0, &[LeaderBeeping, Waiting], &[true, false]);
        // ...but node 1 "fails" to relay (stays Waiting). Eq. (6) fires
        // (and others).
        checker.check_round(1, &[LeaderFrozen, Waiting], &[false, false]);
        let joined = checker.report().violations().join("\n");
        assert!(joined.contains("Eq.(6)"), "{joined}");
    }

    #[test]
    fn detects_fabricated_monotonicity_violation() {
        let g = generators::path(2);
        let mut checker = InvariantChecker::new(&g);
        checker.check_round(0, &[LeaderWaiting, Waiting], &[false, false]);
        checker.check_round(1, &[LeaderWaiting, LeaderWaiting], &[false, false]);
        let joined = checker.report().violations().join("\n");
        assert!(joined.contains("leader count increased"), "{joined}");
    }

    #[test]
    fn detects_beep_flag_mismatch() {
        let g = generators::path(2);
        let mut checker = InvariantChecker::new(&g);
        checker.check_round(0, &[LeaderBeeping, Waiting], &[false, false]);
        assert!(checker.report().violations()[0].contains("beep flag"));
    }

    #[test]
    fn detects_fabricated_lemma11_violation() {
        let g = generators::path(3);
        let mut checker = InvariantChecker::new(&g).with_lemma11(true);
        // Node 0 "beeps" twice in a row (impossible under the protocol):
        // gap 2 > dis(0, 1) = 1 — Lemma 11 must fire (other checks fire
        // too, which is fine).
        checker.check_round(
            0,
            &[LeaderBeeping, LeaderWaiting, LeaderWaiting],
            &[true, false, false],
        );
        checker.check_round(
            1,
            &[LeaderBeeping, LeaderWaiting, LeaderWaiting],
            &[true, false, false],
        );
        let joined = checker.report().violations().join("\n");
        assert!(joined.contains("Lemma 11"), "{joined}");
    }

    #[test]
    #[should_panic(expected = "invariants violated")]
    fn assert_clean_panics() {
        let g = generators::path(2);
        let mut checker = InvariantChecker::new(&g);
        checker.check_round(0, &[Waiting, Waiting], &[false, false]);
        checker.assert_clean();
    }
}
