//! The footnote 4 extension: termination detection from known `n`
//! and `D`.
//!
//! Table 1's footnote observes that BFW with `p = 1/(D+1)` could,
//! "assuming the additional knowledge of n, stop after Ω(D log n)
//! rounds to achieve termination detection w.h.p.". This module
//! implements that wrapper: every node counts rounds (which costs
//! `Θ(D log n)` states — the uniform six-state property is
//! deliberately given up, exactly as the footnote implies) and
//! *commits* at a common deadline `⌈C · (2D+1) · ln n⌉`, freezing its
//! leader/non-leader verdict and going permanently silent.
//!
//! Because all nodes start synchronously, they commit in the same
//! round, so the commitment cannot disturb the election. The deadline
//! constant `C` trades time for error probability (Theorem 3's proof
//! gives exponential decay in `C`); the `termination` experiment
//! measures that curve.

use crate::protocol::{Bfw, InitialConfig};
use crate::state::BfwState;
use bfw_sim::{BeepingProtocol, LeaderElection, NodeCtx};
use rand::RngCore;

/// BFW wrapped with a deadline-commit rule (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct BfwWithTermination {
    inner: Bfw,
    deadline: u64,
}

/// Per-node state of [`BfwWithTermination`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TerminationState {
    /// Still executing BFW; counts elapsed rounds.
    Running {
        /// Current BFW state.
        bfw: BfwState,
        /// Rounds elapsed since the start.
        round: u64,
    },
    /// Committed as the leader (final).
    DoneLeader,
    /// Committed as a non-leader (final).
    DoneFollower,
}

impl BfwWithTermination {
    /// Creates the wrapper for a graph with diameter `diameter` and
    /// `n = node_count` nodes, committing at round
    /// `⌈c · (2·diameter + 1) · ln n⌉` (Theorem 3's time scale times
    /// the safety factor `c`). Uses `p = 1/(D+1)` internally.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not positive and finite, or `node_count == 0`.
    pub fn new(diameter: u32, node_count: usize, c: f64) -> Self {
        assert!(c > 0.0 && c.is_finite(), "safety factor must be positive");
        assert!(node_count > 0, "network must have at least one node");
        let ln_n = (node_count.max(2) as f64).ln();
        let deadline = (c * f64::from(2 * diameter + 1) * ln_n).ceil() as u64;
        BfwWithTermination {
            inner: Bfw::with_known_diameter(diameter),
            deadline: deadline.max(1),
        }
    }

    /// Returns the commit deadline in rounds.
    pub fn deadline(&self) -> u64 {
        self.deadline
    }

    /// Replaces the wrapped protocol's initial configuration.
    pub fn with_initial_config(mut self, init: InitialConfig) -> Self {
        self.inner = self.inner.with_initial_config(init);
        self
    }

    /// Returns `true` if the node has committed (terminated).
    pub fn is_done(state: &TerminationState) -> bool {
        !matches!(state, TerminationState::Running { .. })
    }
}

impl BeepingProtocol for BfwWithTermination {
    type State = TerminationState;

    fn initial_state(&self, ctx: NodeCtx) -> TerminationState {
        TerminationState::Running {
            bfw: self.inner.initial_state(ctx),
            round: 0,
        }
    }

    fn beeps(&self, state: &TerminationState) -> bool {
        match state {
            TerminationState::Running { bfw, .. } => bfw.beeps(),
            _ => false,
        }
    }

    fn transition(
        &self,
        state: &TerminationState,
        heard: bool,
        rng: &mut dyn RngCore,
    ) -> TerminationState {
        match *state {
            TerminationState::Running { bfw, round } => {
                let next = self.inner.transition(&bfw, heard, rng);
                let round = round + 1;
                if round >= self.deadline {
                    if next.is_leader() {
                        TerminationState::DoneLeader
                    } else {
                        TerminationState::DoneFollower
                    }
                } else {
                    TerminationState::Running { bfw: next, round }
                }
            }
            done => done,
        }
    }
}

impl LeaderElection for BfwWithTermination {
    fn is_leader(&self, state: &TerminationState) -> bool {
        match state {
            TerminationState::Running { bfw, .. } => bfw.is_leader(),
            TerminationState::DoneLeader => true,
            TerminationState::DoneFollower => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfw_graph::generators;
    use bfw_sim::Network;

    #[test]
    fn deadline_scales_with_d_and_n() {
        let small = BfwWithTermination::new(4, 16, 1.0).deadline();
        let bigger_d = BfwWithTermination::new(8, 16, 1.0).deadline();
        let bigger_n = BfwWithTermination::new(4, 256, 1.0).deadline();
        let bigger_c = BfwWithTermination::new(4, 16, 3.0).deadline();
        assert!(bigger_d > small);
        assert!(bigger_n > small);
        assert!((bigger_c as f64 / small as f64 - 3.0).abs() < 0.1);
    }

    #[test]
    fn all_nodes_commit_at_the_deadline() {
        let n = 12;
        let proto = BfwWithTermination::new(6, n, 2.0);
        let deadline = proto.deadline();
        let mut net = Network::new(proto, generators::cycle(n).into(), 3);
        net.run(deadline - 1);
        assert!(net.states().iter().all(|s| !BfwWithTermination::is_done(s)));
        net.step();
        assert!(net.states().iter().all(BfwWithTermination::is_done));
    }

    #[test]
    fn committed_configuration_is_final_and_silent() {
        let n = 10;
        let proto = BfwWithTermination::new(5, n, 2.0);
        let deadline = proto.deadline();
        let mut net = Network::new(proto, generators::cycle(n).into(), 9);
        net.run(deadline);
        let committed = net.states().to_vec();
        for _ in 0..100 {
            net.step();
            assert_eq!(
                net.states(),
                &committed[..],
                "done states must never change"
            );
            assert_eq!(net.beeping_node_count(), 0, "done nodes are silent");
        }
    }

    #[test]
    fn generous_deadline_commits_exactly_one_leader() {
        let n = 12;
        for seed in 0..20u64 {
            let proto = BfwWithTermination::new(6, n, 4.0);
            let deadline = proto.deadline();
            let mut net = Network::new(proto, generators::cycle(n).into(), seed);
            net.run(deadline + 1);
            let leaders = net
                .states()
                .iter()
                .filter(|s| matches!(s, TerminationState::DoneLeader))
                .count();
            assert_eq!(leaders, 1, "seed {seed}: {leaders} committed leaders");
        }
    }

    #[test]
    fn tiny_deadline_can_commit_multiple_leaders() {
        // The error probability is the point of the experiment: with a
        // deadline far below the Theorem 3 scale, several leaders must
        // survive to the commit on some seed.
        let n = 32;
        let mut witnessed = false;
        for seed in 0..50u64 {
            let proto = BfwWithTermination::new(16, n, 0.05);
            let deadline = proto.deadline();
            let mut net = Network::new(proto, generators::cycle(n).into(), seed);
            net.run(deadline + 1);
            let leaders = net
                .states()
                .iter()
                .filter(|s| matches!(s, TerminationState::DoneLeader))
                .count();
            if leaders > 1 {
                witnessed = true;
                break;
            }
        }
        assert!(
            witnessed,
            "a far-too-early deadline should produce split commits"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn safety_factor_validated() {
        let _ = BfwWithTermination::new(4, 16, 0.0);
    }
}
