//! Closed-form predictions used to judge the experiments.
//!
//! Re-exports the chain analysis of [`bfw_markov`] (Eq. (15)/(16)) and
//! adds normalization helpers that turn measured convergence rounds into
//! the dimensionless ratios reported in EXPERIMENTS.md: if Theorem 2 is
//! right, `rounds / (D² ln n)` stays bounded as graphs grow; if
//! Theorem 3 is right, `rounds / (D ln n)` does, for `p = 1/(D+1)`.

pub use bfw_markov::{bfw_chain, BfwChainTheory};

/// Normalizes a measured convergence time by the Theorem 2 bound
/// `D² ln n`.
///
/// Bounded values across a growing family empirically support
/// `T = O(D² log n)`.
///
/// # Example
///
/// ```
/// use bfw_core::theory::theorem2_ratio;
///
/// let r = theorem2_ratio(1_000.0, 10, 128);
/// assert!((r - 1_000.0 / (100.0 * (128f64).ln())).abs() < 1e-12);
/// ```
pub fn theorem2_ratio(rounds: f64, diameter: u32, n: usize) -> f64 {
    rounds / BfwChainTheory::theorem2_reference(diameter, n)
}

/// Normalizes a measured convergence time by the Theorem 3 bound
/// `D ln n`.
pub fn theorem3_ratio(rounds: f64, diameter: u32, n: usize) -> f64 {
    rounds / BfwChainTheory::theorem3_reference(diameter, n)
}

/// Fraction of rounds a surviving leader is expected to beep once the
/// process has settled: `π_B = p/(2p+1)` (Eq. (16)).
pub fn stationary_beep_rate(p: f64) -> f64 {
    BfwChainTheory::new(p).stationary_beep_rate()
}

/// The §5 tightness heuristic: with two leaders at the ends of a path
/// of length `D`, the wave meeting point behaves like a ±1 random walk,
/// predicting elimination in `Θ(D²)` rounds. This returns the reference
/// curve `D²`.
pub fn section5_reference(diameter: u32) -> f64 {
    let d = f64::from(diameter.max(1));
    d * d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_invert_references() {
        let rounds = 1234.5;
        let r2 = theorem2_ratio(rounds, 7, 200);
        assert!((r2 * BfwChainTheory::theorem2_reference(7, 200) - rounds).abs() < 1e-9);
        let r3 = theorem3_ratio(rounds, 7, 200);
        assert!((r3 * BfwChainTheory::theorem3_reference(7, 200) - rounds).abs() < 1e-9);
    }

    #[test]
    fn beep_rate_half() {
        assert!((stationary_beep_rate(0.5) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn section5_is_quadratic() {
        assert_eq!(section5_reference(10), 100.0);
        assert_eq!(section5_reference(0), 1.0);
    }
}
