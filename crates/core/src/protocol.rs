//! The BFW protocol (Section 1.2), its Theorem 3 variant and ablations.

use crate::state::{delta, BfwState};
use bfw_graph::NodeId;
use bfw_sim::{BeepingProtocol, LeaderElection, NodeCtx};
use rand::{Rng, RngCore};

/// Which nodes start as leaders (`W•`) — everyone else starts as a
/// waiting non-leader (`W◦`).
///
/// The paper's analysis assumes Eq. (2): all nodes waiting and at least
/// one leader in round 0. [`InitialConfig::AllLeaders`] is the paper's
/// default (every node initialized as a leader); the other variants are
/// used by the experiments (e.g. two leaders at the ends of a path for
/// the Section 5 tightness study) and are valid initial configurations
/// for all of Section 3's deterministic results.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum InitialConfig {
    /// Every node starts in `W•` (the paper's initialization).
    #[default]
    AllLeaders,
    /// The first `k` nodes (by index) start in `W•`, the rest in `W◦`.
    FirstK(usize),
    /// Exactly the listed nodes start in `W•`.
    Nodes(Vec<NodeId>),
}

impl InitialConfig {
    /// Returns `true` if `node` starts as a leader under this
    /// configuration.
    pub fn is_initial_leader(&self, node: NodeId) -> bool {
        match self {
            InitialConfig::AllLeaders => true,
            InitialConfig::FirstK(k) => node.index() < *k,
            InitialConfig::Nodes(nodes) => nodes.contains(&node),
        }
    }

    /// Returns `true` if the configuration gives at least one leader to
    /// a graph of `n` nodes (Eq. (2)'s requirement `W•_0 ≠ ∅`).
    pub fn has_leader(&self, n: usize) -> bool {
        match self {
            InitialConfig::AllLeaders => n > 0,
            InitialConfig::FirstK(k) => *k >= 1 && n > 0,
            InitialConfig::Nodes(nodes) => nodes.iter().any(|u| u.index() < n),
        }
    }
}

/// **Algorithm BFW** (Figure 1) — the paper's six-state uniform
/// leader-election protocol for the beeping model.
///
/// The protocol is *uniform* and *anonymous*: the transition function
/// depends on nothing but the node's current state, whether it heard a
/// beep, and a fresh `Bernoulli(p)` coin (consulted only in `W•` during
/// silence). With the default [`InitialConfig::AllLeaders`], nodes are
/// fully interchangeable.
///
/// # Example
///
/// ```
/// use bfw_core::{Bfw, BfwState};
/// use bfw_sim::{BeepingProtocol, LeaderElection, NodeCtx};
/// use bfw_graph::NodeId;
///
/// let bfw = Bfw::new(0.5);
/// let ctx = NodeCtx { node: NodeId::new(3), node_count: 100 };
/// let s0 = bfw.initial_state(ctx);
/// assert_eq!(s0, BfwState::LeaderWaiting);
/// assert!(bfw.is_leader(&s0));
/// assert!(!bfw.beeps(&s0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Bfw {
    p: f64,
    init: InitialConfig,
}

impl Bfw {
    /// Creates BFW with beep probability `p` and the paper's
    /// all-leaders initialization.
    ///
    /// The paper suggests `p = 1/2` as the canonical uniform choice
    /// (one random bit per round).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in the open interval `(0, 1)` — the paper
    /// requires a constant `p ∈ (0, 1)`.
    pub fn new(p: f64) -> Self {
        assert!(
            p > 0.0 && p < 1.0 && p.is_finite(),
            "BFW requires p in the open interval (0, 1), got {p}"
        );
        Bfw {
            p,
            init: InitialConfig::AllLeaders,
        }
    }

    /// The Theorem 3 variant: `p = 1/(D+1)` for (approximately) known
    /// diameter `D`, converging in `O(D log n)` rounds w.h.p. at the
    /// cost of uniformity.
    ///
    /// # Panics
    ///
    /// Never panics: `1/(D+1) ∈ (0, 1)` for every `D ≥ 1`; `D = 0` is
    /// mapped to `p = 1/2` (a single node needs no election).
    pub fn with_known_diameter(diameter: u32) -> Self {
        if diameter == 0 {
            Bfw::new(0.5)
        } else {
            Bfw::new(1.0 / (f64::from(diameter) + 1.0))
        }
    }

    /// Replaces the initial configuration (see [`InitialConfig`]).
    pub fn with_initial_config(mut self, init: InitialConfig) -> Self {
        self.init = init;
        self
    }

    /// Returns the beep probability `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Returns the initial configuration.
    pub fn initial_config(&self) -> &InitialConfig {
        &self.init
    }
}

impl BeepingProtocol for Bfw {
    type State = BfwState;

    fn initial_state(&self, ctx: NodeCtx) -> BfwState {
        if self.init.is_initial_leader(ctx.node) {
            BfwState::LeaderWaiting
        } else {
            BfwState::Waiting
        }
    }

    fn beeps(&self, state: &BfwState) -> bool {
        state.beeps()
    }

    fn transition(&self, state: &BfwState, heard: bool, rng: &mut dyn RngCore) -> BfwState {
        // Draw the coin lazily: only δ⊥(W•) is randomized, so BFW uses
        // at most one random bit per round (exactly one when p = 1/2).
        let coin = if *state == BfwState::LeaderWaiting && !heard {
            rng.random_bool(self.p)
        } else {
            false
        };
        delta(*state, heard, coin)
    }
}

impl LeaderElection for Bfw {
    fn is_leader(&self, state: &BfwState) -> bool {
        state.is_leader()
    }
}

/// **Ablation:** BFW without the frozen states (a 4-state protocol).
///
/// DESIGN.md calls out the one-round freeze as the design choice that
/// makes beep waves directional (Claim 6 / Lemma 7 depend on it). This
/// protocol removes it: after beeping, a node returns directly to
/// waiting. Waves then reflect, a leader can be hit by its own wave and
/// eliminate itself, and *all* leaders can disappear — violating
/// Lemma 9. The `ablation` experiment demonstrates this empirically; do
/// not use this protocol for anything but that comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct BfwNoFreeze {
    p: f64,
    init: InitialConfig,
}

/// States of the [`BfwNoFreeze`] ablation (no frozen states).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NoFreezeState {
    /// Waiting leader.
    LeaderWaiting,
    /// Beeping leader.
    LeaderBeeping,
    /// Waiting non-leader.
    Waiting,
    /// Beeping non-leader.
    Beeping,
}

impl NoFreezeState {
    /// Returns `true` for the two leader states.
    pub const fn is_leader(self) -> bool {
        matches!(
            self,
            NoFreezeState::LeaderWaiting | NoFreezeState::LeaderBeeping
        )
    }

    /// Returns `true` for the two beeping states.
    pub const fn beeps(self) -> bool {
        matches!(self, NoFreezeState::LeaderBeeping | NoFreezeState::Beeping)
    }
}

impl BfwNoFreeze {
    /// Creates the ablated protocol with beep probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in the open interval `(0, 1)`.
    pub fn new(p: f64) -> Self {
        assert!(
            p > 0.0 && p < 1.0 && p.is_finite(),
            "BfwNoFreeze requires p in the open interval (0, 1), got {p}"
        );
        BfwNoFreeze {
            p,
            init: InitialConfig::AllLeaders,
        }
    }

    /// Replaces the initial configuration.
    pub fn with_initial_config(mut self, init: InitialConfig) -> Self {
        self.init = init;
        self
    }

    /// Returns the beep probability `p`.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl BeepingProtocol for BfwNoFreeze {
    type State = NoFreezeState;

    fn initial_state(&self, ctx: NodeCtx) -> NoFreezeState {
        if self.init.is_initial_leader(ctx.node) {
            NoFreezeState::LeaderWaiting
        } else {
            NoFreezeState::Waiting
        }
    }

    fn beeps(&self, state: &NoFreezeState) -> bool {
        state.beeps()
    }

    fn transition(
        &self,
        state: &NoFreezeState,
        heard: bool,
        rng: &mut dyn RngCore,
    ) -> NoFreezeState {
        match (state, heard) {
            (NoFreezeState::LeaderWaiting, false) => {
                if rng.random_bool(self.p) {
                    NoFreezeState::LeaderBeeping
                } else {
                    NoFreezeState::LeaderWaiting
                }
            }
            (NoFreezeState::LeaderWaiting, true) => NoFreezeState::Beeping,
            // No freeze: return straight to waiting after a beep.
            (NoFreezeState::LeaderBeeping, _) => NoFreezeState::LeaderWaiting,
            (NoFreezeState::Beeping, _) => NoFreezeState::Waiting,
            (NoFreezeState::Waiting, true) => NoFreezeState::Beeping,
            (NoFreezeState::Waiting, false) => NoFreezeState::Waiting,
        }
    }
}

impl LeaderElection for BfwNoFreeze {
    fn is_leader(&self, state: &NoFreezeState) -> bool {
        state.is_leader()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfw_graph::generators;
    use bfw_sim::{run_election, ElectionConfig, Network};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn ctx(i: usize, n: usize) -> NodeCtx {
        NodeCtx {
            node: NodeId::new(i),
            node_count: n,
        }
    }

    #[test]
    #[should_panic(expected = "open interval")]
    fn rejects_p_zero() {
        let _ = Bfw::new(0.0);
    }

    #[test]
    #[should_panic(expected = "open interval")]
    fn rejects_p_one() {
        let _ = Bfw::new(1.0);
    }

    #[test]
    #[should_panic(expected = "open interval")]
    fn rejects_p_nan() {
        let _ = Bfw::new(f64::NAN);
    }

    #[test]
    fn uniform_protocol_ignores_identity() {
        let bfw = Bfw::new(0.5);
        // Same initial state for every node and every network size.
        for (i, n) in [(0, 1), (5, 10), (999, 1000)] {
            assert_eq!(bfw.initial_state(ctx(i, n)), BfwState::LeaderWaiting);
        }
    }

    #[test]
    fn initial_config_variants() {
        let first2 = InitialConfig::FirstK(2);
        assert!(first2.is_initial_leader(NodeId::new(0)));
        assert!(first2.is_initial_leader(NodeId::new(1)));
        assert!(!first2.is_initial_leader(NodeId::new(2)));
        assert!(first2.has_leader(5));
        assert!(!InitialConfig::FirstK(0).has_leader(5));

        let ends = InitialConfig::Nodes(vec![NodeId::new(0), NodeId::new(4)]);
        assert!(ends.is_initial_leader(NodeId::new(4)));
        assert!(!ends.is_initial_leader(NodeId::new(2)));
        assert!(ends.has_leader(5));
        assert!(!ends.has_leader(0));
        assert!(InitialConfig::AllLeaders.has_leader(1));
        assert!(!InitialConfig::AllLeaders.has_leader(0));
        assert!(!InitialConfig::Nodes(vec![NodeId::new(9)]).has_leader(5));
        assert_eq!(InitialConfig::default(), InitialConfig::AllLeaders);
    }

    #[test]
    fn with_known_diameter_matches_theorem3() {
        assert!((Bfw::with_known_diameter(9).p() - 0.1).abs() < 1e-12);
        assert!((Bfw::with_known_diameter(1).p() - 0.5).abs() < 1e-12);
        assert!((Bfw::with_known_diameter(0).p() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn transition_consumes_randomness_only_in_quiet_leader_waiting() {
        // Two rngs stay in lockstep if the protocol draws the same
        // number of values; check that non-randomized states draw none.
        let bfw = Bfw::new(0.5);
        for s in BfwState::ALL {
            for heard in [false, true] {
                if s == BfwState::LeaderWaiting && !heard {
                    continue; // the one randomized transition
                }
                let mut a = ChaCha8Rng::seed_from_u64(7);
                let mut b = ChaCha8Rng::seed_from_u64(7);
                let _ = bfw.transition(&s, heard, &mut a);
                // If no randomness was consumed, the streams still agree.
                assert_eq!(a.next_u64(), b.next_u64(), "state {s}, heard {heard}");
            }
        }
    }

    #[test]
    fn randomized_transition_matches_p() {
        let bfw = Bfw::new(0.25);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let trials = 100_000;
        let mut beeps = 0;
        for _ in 0..trials {
            if bfw.transition(&BfwState::LeaderWaiting, false, &mut rng) == BfwState::LeaderBeeping
            {
                beeps += 1;
            }
        }
        let rate = beeps as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn small_cycle_elects_leader() {
        let out = run_election(
            Bfw::new(0.5),
            generators::cycle(8).into(),
            1,
            ElectionConfig::new(50_000).with_stability_check(500),
        )
        .unwrap();
        assert!(out.stable);
        assert!(out.converged_round < 50_000);
    }

    #[test]
    fn two_leader_initialization_on_path() {
        let n = 11;
        let bfw = Bfw::new(0.5).with_initial_config(InitialConfig::Nodes(vec![
            NodeId::new(0),
            NodeId::new(n - 1),
        ]));
        let net = Network::new(bfw, generators::path(n).into(), 3);
        assert_eq!(net.leader_count(), 2);
        assert_eq!(net.state(NodeId::new(0)), &BfwState::LeaderWaiting);
        assert_eq!(net.state(NodeId::new(5)), &BfwState::Waiting);
    }

    #[test]
    fn no_freeze_states_and_panics() {
        assert!(NoFreezeState::LeaderBeeping.is_leader());
        assert!(NoFreezeState::LeaderBeeping.beeps());
        assert!(!NoFreezeState::Waiting.beeps());
        let p = BfwNoFreeze::new(0.5);
        assert_eq!(p.p(), 0.5);
    }

    #[test]
    #[should_panic(expected = "open interval")]
    fn no_freeze_rejects_bad_p() {
        let _ = BfwNoFreeze::new(1.5);
    }

    #[test]
    fn no_freeze_can_lose_all_leaders() {
        // The ablation violates Lemma 9: on small cycles, waves reflect
        // and eliminate everyone with positive probability. Scan seeds
        // until we witness a zero-leader round (must happen quickly).
        let mut witnessed = false;
        'outer: for seed in 0..200u64 {
            let mut net = Network::new(BfwNoFreeze::new(0.5), generators::cycle(6).into(), seed);
            for _ in 0..300 {
                net.step();
                if net.leader_count() == 0 {
                    witnessed = true;
                    break 'outer;
                }
            }
        }
        assert!(
            witnessed,
            "no-freeze ablation should be able to lose every leader"
        );
    }

    #[test]
    fn bfw_never_loses_all_leaders_short_runs() {
        // Contrast with the ablation: Lemma 9 holds for the real
        // protocol (checked deterministically over many seeds).
        for seed in 0..50u64 {
            let mut net = Network::new(Bfw::new(0.5), generators::cycle(6).into(), seed);
            for _ in 0..300 {
                net.step();
                assert!(net.leader_count() >= 1, "seed {seed} round {}", net.round());
            }
        }
    }
}
