//! The paper's flow theory (Section 3) as executable code.
//!
//! Definition 5 assigns to each oriented edge `e = (u, v)` in round `t`
//! the flow `ν_t(e) ∈ {−1, 0, +1}`: `+1` when a wave crosses from `u` to
//! `v` (`u` beeping, `v` waiting), `−1` in the opposite direction, `0`
//! otherwise. Along a path the flows add up, and the paper proves:
//!
//! * **Lemma 7 (conservation)** — `ν_t(ω) = ν_{t−1}(ω) + 1{v₁ ∈ B_t} −
//!   1{v_k ∈ B_t}`;
//! * **Corollary 8 (Ohm's law)** — `ν_t(ω) = N_beep_t(v₁) −
//!   N_beep_t(v_k)`;
//! * **Lemma 11** — `|N_beep_t(u) − N_beep_t(v)| ≤ dis(u, v)`.
//!
//! These are *deterministic* consequences of the state machine, so the
//! [`FlowAuditor`] checks them exactly on live executions; any violation
//! is a bug in either the implementation or the paper.

use crate::state::BfwState;
use bfw_graph::{Graph, NodeId};
use bfw_sim::{BeepingProtocol, Observer, RoundView};
use rand::Rng;

/// The flow `ν_t(e)` along the oriented edge `(u, v)` (Definition 5),
/// computed from the two endpoint states in round `t`.
///
/// # Example
///
/// ```
/// use bfw_core::{edge_flow, BfwState};
///
/// assert_eq!(edge_flow(BfwState::LeaderBeeping, BfwState::Waiting), 1);
/// assert_eq!(edge_flow(BfwState::Waiting, BfwState::Beeping), -1);
/// assert_eq!(edge_flow(BfwState::Frozen, BfwState::Waiting), 0);
/// ```
#[inline]
pub fn edge_flow(u: BfwState, v: BfwState) -> i64 {
    match (u.beeps(), u.is_waiting(), v.beeps(), v.is_waiting()) {
        (true, _, _, true) => 1,
        (_, true, true, _) => -1,
        _ => 0,
    }
}

/// The flow `ν_t(ω)` along a path given as a vertex sequence
/// (Definition 5). Paths may repeat vertices and edges, exactly as in
/// Definition 4.
///
/// # Panics
///
/// Panics if a vertex index is out of range for `states`.
pub fn path_flow(states: &[BfwState], path: &[NodeId]) -> i64 {
    path.windows(2)
        .map(|w| edge_flow(states[w[0].index()], states[w[1].index()]))
        .sum()
}

/// Samples a random walk of `edges` edges starting at `start` — a valid
/// "path" in the paper's Definition 4 sense (vertices and edges may
/// repeat), used to exercise Ohm's law on non-simple paths.
///
/// Returns `None` if the walk hits a node with no neighbors.
///
/// # Panics
///
/// Panics if `start` is out of range.
pub fn random_walk_path<R: Rng + ?Sized>(
    g: &Graph,
    start: NodeId,
    edges: usize,
    rng: &mut R,
) -> Option<Vec<NodeId>> {
    let mut path = Vec::with_capacity(edges + 1);
    path.push(start);
    let mut current = start;
    for _ in 0..edges {
        let nbrs = g.neighbors(current);
        if nbrs.is_empty() {
            return None;
        }
        current = nbrs[rng.random_range(0..nbrs.len())];
        path.push(current);
    }
    Some(path)
}

/// Audits the flow theory on a live execution.
///
/// Plugged in as an [`Observer`], the auditor maintains `N_beep_t(u)`
/// for every node and, each round, checks
///
/// 1. **Ohm's law** (Corollary 8) along every registered path,
/// 2. **Lemma 7** (flow conservation) between consecutive rounds,
/// 3. **Lemma 11** (`|N_beep(u) − N_beep(v)| ≤ dis(u, v)`) for the
///    registered paths' endpoints, using the path length as the distance
///    upper bound.
///
/// Violations are collected (they indicate implementation bugs; the
/// properties are theorems).
///
/// # Example
///
/// ```
/// use bfw_core::{Bfw, FlowAuditor};
/// use bfw_sim::{observe_run, Network};
/// use bfw_graph::{generators, NodeId};
///
/// let g = generators::cycle(8);
/// let mut auditor = FlowAuditor::new(8);
/// auditor.register_path((0..8).chain([0]).map(NodeId::new).collect());
/// let mut net = Network::new(Bfw::new(0.5), g.into(), 7);
/// observe_run(&mut net, &mut auditor, 200, |_| false);
/// assert!(auditor.violations().is_empty());
/// assert!(auditor.checks_performed() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct FlowAuditor {
    n_beep: Vec<u64>,
    paths: Vec<Vec<NodeId>>,
    previous_flows: Vec<Option<i64>>,
    last_states: Option<Vec<BfwState>>,
    violations: Vec<String>,
    checks: u64,
}

impl FlowAuditor {
    /// Creates an auditor for `n` nodes with no registered paths.
    pub fn new(n: usize) -> Self {
        FlowAuditor {
            n_beep: vec![0; n],
            paths: Vec::new(),
            previous_flows: Vec::new(),
            last_states: None,
            violations: Vec::new(),
            checks: 0,
        }
    }

    /// Registers a path (vertex sequence, repeats allowed) to audit each
    /// round.
    ///
    /// # Panics
    ///
    /// Panics if the path is empty or mentions an out-of-range node.
    pub fn register_path(&mut self, path: Vec<NodeId>) {
        assert!(!path.is_empty(), "path must contain at least one vertex");
        assert!(
            path.iter().all(|u| u.index() < self.n_beep.len()),
            "path mentions out-of-range node"
        );
        self.paths.push(path);
        self.previous_flows.push(None);
    }

    /// Returns `N_beep_t(u)` as of the last observed round.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn n_beep(&self, u: NodeId) -> u64 {
        self.n_beep[u.index()]
    }

    /// Returns all beep counts, indexed by node.
    pub fn n_beeps(&self) -> &[u64] {
        &self.n_beep
    }

    /// Returns the collected violations (empty on a correct
    /// implementation).
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Returns how many individual property checks have been evaluated.
    pub fn checks_performed(&self) -> u64 {
        self.checks
    }

    /// Panics with a diagnostic if any violation was recorded.
    ///
    /// # Panics
    ///
    /// Panics if the audit found a violation.
    pub fn assert_clean(&self) {
        assert!(
            self.violations.is_empty(),
            "flow theory violated: {:?}",
            self.violations
        );
    }

    fn audit_round(&mut self, round: u64, states: &[BfwState], beeps: &[bool]) {
        // Update N_beep with this round's beeps.
        for (c, &b) in self.n_beep.iter_mut().zip(beeps) {
            *c += u64::from(b);
        }
        for (idx, path) in self.paths.iter().enumerate() {
            let flow = path_flow(states, path);
            let first = *path.first().expect("paths are non-empty");
            let last = *path.last().expect("paths are non-empty");

            // Corollary 8 (Ohm's law).
            let expected = self.n_beep[first.index()] as i64 - self.n_beep[last.index()] as i64;
            self.checks += 1;
            if flow != expected {
                self.violations.push(format!(
                    "round {round}: Ohm's law violated on path #{idx}: ν = {flow}, \
                     N_beep({first}) − N_beep({last}) = {expected}"
                ));
            }

            // Lemma 7 (conservation) against the previous round.
            if let Some(prev) = self.previous_flows[idx] {
                let delta = i64::from(beeps[first.index()]) - i64::from(beeps[last.index()]);
                self.checks += 1;
                if flow != prev + delta {
                    self.violations.push(format!(
                        "round {round}: Lemma 7 violated on path #{idx}: \
                         ν_t = {flow}, ν_(t−1) + Δ = {}",
                        prev + delta
                    ));
                }
            }
            self.previous_flows[idx] = Some(flow);

            // Lemma 11, with the path length as a distance upper bound:
            // |N_beep(u) − N_beep(v)| = |ν| ≤ len ≥ dis(u, v).
            self.checks += 1;
            if expected.unsigned_abs() as usize > path.len() - 1 {
                self.violations.push(format!(
                    "round {round}: |N_beep({first}) − N_beep({last})| = {} exceeds \
                     path length {}",
                    expected.abs(),
                    path.len() - 1
                ));
            }
        }
        self.last_states = Some(states.to_vec());
    }
}

impl<P> Observer<P> for FlowAuditor
where
    P: BeepingProtocol<State = BfwState>,
{
    fn on_round(&mut self, view: &RoundView<'_, P>) {
        self.audit_round(view.round, view.states, view.beeps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Bfw, InitialConfig};
    use bfw_graph::generators;
    use bfw_sim::{observe_run, Network};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use BfwState::*;

    #[test]
    fn edge_flow_definition5_exhaustive() {
        // Flow is +1 iff u ∈ B and v ∈ W; −1 iff u ∈ W and v ∈ B; 0
        // otherwise — across all 36 state pairs.
        for u in BfwState::ALL {
            for v in BfwState::ALL {
                let expected = if u.beeps() && v.is_waiting() {
                    1
                } else if u.is_waiting() && v.beeps() {
                    -1
                } else {
                    0
                };
                assert_eq!(edge_flow(u, v), expected, "({u}, {v})");
            }
        }
    }

    #[test]
    fn edge_flow_antisymmetric() {
        for u in BfwState::ALL {
            for v in BfwState::ALL {
                assert_eq!(edge_flow(u, v), -edge_flow(v, u), "({u}, {v})");
            }
        }
    }

    #[test]
    fn path_flow_sums_edges() {
        let states = [LeaderBeeping, Waiting, Beeping, LeaderWaiting];
        let path: Vec<NodeId> = (0..4).map(NodeId::new).collect();
        // Edges: (B•,W◦) = +1, (W◦,B◦) = −1, (B◦,W•) = +1.
        assert_eq!(path_flow(&states, &path), 1);
        // Reversed path gives the negation.
        let rev: Vec<NodeId> = (0..4).rev().map(NodeId::new).collect();
        assert_eq!(path_flow(&states, &rev), -1);
    }

    #[test]
    fn path_flow_bounded_by_length() {
        // Eq. (1): |ν_t(ω)| ≤ k for every state assignment. Alternating
        // B,W cancels (+1, −1, ...); the densest co-directional wave
        // train is B W F B W (two wavefronts moving the same way).
        let alternating = [
            LeaderBeeping,
            Waiting,
            LeaderBeeping,
            Waiting,
            LeaderBeeping,
        ];
        let path: Vec<NodeId> = (0..5).map(NodeId::new).collect();
        assert_eq!(path_flow(&alternating, &path), 0);

        let wave_train = [LeaderBeeping, Waiting, Frozen, Beeping, Waiting];
        let flow = path_flow(&wave_train, &path);
        assert_eq!(flow, 2);
        assert!((flow.unsigned_abs() as usize) < path.len());
    }

    #[test]
    fn path_flow_single_vertex_is_zero() {
        assert_eq!(path_flow(&[LeaderBeeping], &[NodeId::new(0)]), 0);
    }

    #[test]
    fn path_flow_with_repeated_vertices() {
        // Definition 4 allows repeats: a back-and-forth path has zero
        // net flow.
        let states = [LeaderBeeping, Waiting];
        let path = vec![
            NodeId::new(0),
            NodeId::new(1),
            NodeId::new(0),
            NodeId::new(1),
        ];
        // Edge flows: +1 (B→W), −1 (W→B), +1 (B→W).
        assert_eq!(path_flow(&states, &path), 1);
    }

    #[test]
    fn random_walk_path_stays_on_edges() {
        let g = generators::grid(4, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let path = random_walk_path(&g, NodeId::new(0), 20, &mut rng).unwrap();
        assert_eq!(path.len(), 21);
        for w in path.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn random_walk_none_on_isolated_node() {
        let g = bfw_graph::Graph::from_edges(2, []).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(random_walk_path(&g, NodeId::new(0), 1, &mut rng), None);
    }

    #[test]
    fn auditor_clean_on_real_execution_cycle() {
        let n = 12;
        let g = generators::cycle(n);
        let mut auditor = FlowAuditor::new(n);
        // The full cycle (closed path — endpoints equal, flow must be 0
        // by Ohm's law) plus a diameter path.
        auditor.register_path((0..n).chain([0]).map(NodeId::new).collect());
        auditor.register_path((0..=n / 2).map(NodeId::new).collect());
        let mut net = Network::new(Bfw::new(0.5), g.into(), 99);
        observe_run(&mut net, &mut auditor, 500, |_| false);
        auditor.assert_clean();
        assert!(auditor.checks_performed() >= 500 * 2);
    }

    #[test]
    fn auditor_clean_on_random_walk_paths_grid() {
        let g = generators::grid(5, 5);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut auditor = FlowAuditor::new(25);
        for _ in 0..5 {
            let start = NodeId::new(rng.random_range(0..25));
            let path = random_walk_path(&g, start, 15, &mut rng).unwrap();
            auditor.register_path(path);
        }
        let mut net = Network::new(Bfw::new(0.3), g.into(), 17);
        observe_run(&mut net, &mut auditor, 400, |_| false);
        auditor.assert_clean();
    }

    #[test]
    fn auditor_two_leader_initialization() {
        // Ohm's law also holds with k-leader initial configurations
        // (Section 3 only needs Eq. (2)).
        let n = 9;
        let bfw = Bfw::new(0.5).with_initial_config(InitialConfig::Nodes(vec![
            NodeId::new(0),
            NodeId::new(n - 1),
        ]));
        let mut auditor = FlowAuditor::new(n);
        auditor.register_path((0..n).map(NodeId::new).collect());
        let mut net = Network::new(bfw, generators::path(n).into(), 4);
        observe_run(&mut net, &mut auditor, 600, |_| false);
        auditor.assert_clean();
    }

    #[test]
    fn auditor_detects_fabricated_violation() {
        // Feed the auditor inconsistent data directly to prove it can
        // fail: states say "flow 0" while a node's beep count advanced.
        let mut auditor = FlowAuditor::new(2);
        auditor.register_path(vec![NodeId::new(0), NodeId::new(1)]);
        // Round 0: node 0 beeps, node 1 waits -> flow +1, N = (1, 0). OK.
        auditor.audit_round(0, &[LeaderBeeping, Waiting], &[true, false]);
        assert!(auditor.violations().is_empty());
        // Round 1: claim both wait (flow 0) but node 0 "beeped" again —
        // N = (2, 0) ≠ 0. Ohm's law check must fire.
        auditor.audit_round(1, &[LeaderWaiting, Waiting], &[true, false]);
        assert!(!auditor.violations().is_empty());
    }

    #[test]
    #[should_panic(expected = "flow theory violated")]
    fn assert_clean_panics_on_violation() {
        let mut auditor = FlowAuditor::new(2);
        auditor.register_path(vec![NodeId::new(0), NodeId::new(1)]);
        auditor.audit_round(0, &[LeaderWaiting, Waiting], &[true, false]);
        auditor.assert_clean();
    }

    #[test]
    #[should_panic(expected = "at least one vertex")]
    fn register_empty_path_panics() {
        let mut auditor = FlowAuditor::new(2);
        auditor.register_path(vec![]);
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn register_out_of_range_path_panics() {
        let mut auditor = FlowAuditor::new(2);
        auditor.register_path(vec![NodeId::new(5)]);
    }

    #[test]
    fn n_beep_accessors() {
        let mut auditor = FlowAuditor::new(2);
        auditor.audit_round(0, &[LeaderBeeping, Waiting], &[true, false]);
        auditor.audit_round(1, &[LeaderFrozen, Waiting], &[false, false]);
        assert_eq!(auditor.n_beep(NodeId::new(0)), 1);
        assert_eq!(auditor.n_beeps(), &[1, 0]);
    }
}
