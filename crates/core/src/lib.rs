//! The **BFW** leader-election protocol of *"Minimalist Leader Election
//! Under Weak Communication"* (Robin Vacus & Isabella Ziccardi,
//! PODC 2025), together with the paper's flow theory as executable
//! checks.
//!
//! BFW (Beep / Frozen / Waiting) solves *Eventual Leader Election*
//! (Definition 1) in the beeping model on any connected graph, using
//! only **six states**, no identifiers, and no knowledge of the network:
//!
//! * every node starts as a leader in state `W•`;
//! * an undisturbed leader beeps with probability `p` each round;
//! * hearing a beep turns a waiting node into a beeping non-leader
//!   (`B◦`) — this both *eliminates* waiting leaders and *propagates*
//!   the wave;
//! * after beeping, a node is *frozen* (`F`) for exactly one round, which
//!   makes waves directional: they never reflect back toward their
//!   origin.
//!
//! The paper proves (Theorem 2) that a single leader remains within
//! `O(D² log n)` rounds w.h.p., improved to `O(D log n)` when the
//! diameter is known (Theorem 3, `p = 1/(D+1)`).
//!
//! # Quick start
//!
//! ```
//! use bfw_core::Bfw;
//! use bfw_sim::{run_election, ElectionConfig};
//! use bfw_graph::generators;
//!
//! let outcome = run_election(
//!     Bfw::new(0.5),
//!     generators::cycle(32).into(),
//!     42,
//!     ElectionConfig::new(100_000).with_stability_check(1_000),
//! )?;
//! println!("leader {} elected in {} rounds", outcome.leader, outcome.converged_round);
//! assert!(outcome.stable);
//! # Ok::<(), bfw_sim::SimError>(())
//! ```
//!
//! # Module map
//!
//! | module | paper section |
//! |--------|---------------|
//! | [`state`] | Figure 1 (the six states and `δ⊥`/`δ⊤`) |
//! | [`bit`] | Figure 1 as word-wide plane algebra (the bit-parallel kernel) |
//! | [`protocol`] | Section 1.2 (algorithm), Theorem 3 variant, ablations |
//! | [`flow`] | Section 3 (Definition 5, Lemma 7, Corollary 8) |
//! | [`invariants`] | Claim 6, Lemma 9, Lemma 11, Lemma 12 as runtime checks |
//! | [`theory`] | Eq. (15)/(16) closed forms, Theorem 2/3 reference curves |
//! | [`viz`] | beep-wave rendering for path topologies |
//! | [`adversarial`] | Section 5's leaderless phantom waves (why BFW is not self-stabilizing) |
//! | [`recovery`] | Section 5's open question: a heartbeat/timeout/restart layer that makes elections self-healing |
//! | [`termination`] | footnote 4: termination detection from known `n`, `D` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod bit;
pub mod flow;
pub mod invariants;
pub mod protocol;
pub mod recovery;
pub mod state;
pub mod termination;
pub mod theory;
pub mod viz;

pub use bit::{run_bfw_trials_bitsliced, BfwLaneEngine, BitNetwork, LaneOutcome};
pub use flow::{edge_flow, path_flow, random_walk_path, FlowAuditor};
pub use invariants::{InvariantChecker, InvariantReport};
pub use protocol::{Bfw, BfwNoFreeze, InitialConfig, NoFreezeState};
pub use recovery::{RecoveringNetwork, RecoveringProtocol, RecoveryConfig, RecoveryState};
pub use state::{delta, BfwState};
pub use termination::{BfwWithTermination, TerminationState};
