//! ASCII rendering of BFW executions — the beep waves of Section 1.3
//! made visible.
//!
//! On a path or cycle, rendering one character per node and one line per
//! round shows waves expanding from leaders, crashing into each other,
//! and eliminating the leaders they cross — exactly the narrative of the
//! paper's "Beep waves" paragraph. The `two_leader_duel` example prints
//! such a trace.
//!
//! Legend:
//!
//! | char | state |
//! |------|-------|
//! | `L`  | `W•` waiting leader |
//! | `!`  | `B•` beeping leader |
//! | `=`  | `F•` frozen leader |
//! | `.`  | `W◦` waiting non-leader |
//! | `*`  | `B◦` beeping non-leader |
//! | `-`  | `F◦` frozen non-leader |

use crate::state::BfwState;
use bfw_sim::TraceRecorder;
use std::fmt::Write as _;

/// Returns the single-character glyph for a state (see module legend).
pub const fn glyph(state: BfwState) -> char {
    match state {
        BfwState::LeaderWaiting => 'L',
        BfwState::LeaderBeeping => '!',
        BfwState::LeaderFrozen => '=',
        BfwState::Waiting => '.',
        BfwState::Beeping => '*',
        BfwState::Frozen => '-',
    }
}

/// Renders one round as a string, one glyph per node in index order.
///
/// # Example
///
/// ```
/// use bfw_core::{viz, BfwState};
///
/// let row = viz::render_round(&[
///     BfwState::LeaderWaiting,
///     BfwState::Beeping,
///     BfwState::Waiting,
/// ]);
/// assert_eq!(row, "L*.");
/// ```
pub fn render_round(states: &[BfwState]) -> String {
    states.iter().map(|&s| glyph(s)).collect()
}

/// Renders a recorded execution as a round-per-line block with round
/// numbers, suitable for printing to a terminal.
pub fn render_trace(trace: &TraceRecorder<BfwState>) -> String {
    let mut out = String::new();
    let width = trace.len().saturating_sub(1).to_string().len().max(1);
    for t in 0..trace.len() {
        let _ = writeln!(out, "{t:>width$} | {}", render_round(trace.states_at(t)));
    }
    out
}

/// Returns the legend explaining the glyphs, one mapping per line.
pub fn legend() -> String {
    BfwState::ALL
        .iter()
        .map(|&s| format!("{} = {}", glyph(s), s.symbol()))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Renders one round of a `rows × cols` grid topology as a 2-D block
/// (row-major node order, matching
/// [`bfw_graph::generators::grid`]).
///
/// # Panics
///
/// Panics if `states.len() != rows * cols`.
///
/// # Example
///
/// ```
/// use bfw_core::{viz, BfwState};
///
/// let block = viz::render_grid_round(
///     &[BfwState::LeaderWaiting, BfwState::Waiting,
///       BfwState::Beeping, BfwState::Frozen],
///     2, 2,
/// );
/// assert_eq!(block, "L.\n*-\n");
/// ```
pub fn render_grid_round(states: &[BfwState], rows: usize, cols: usize) -> String {
    assert_eq!(
        states.len(),
        rows * cols,
        "states must cover the whole grid"
    );
    let mut out = String::with_capacity(rows * (cols + 1));
    for r in 0..rows {
        for c in 0..cols {
            out.push(glyph(states[r * cols + c]));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Bfw, InitialConfig};
    use bfw_graph::{generators, NodeId};
    use bfw_sim::{observe_run, Network, TraceRecorder};

    #[test]
    fn glyphs_are_distinct() {
        let mut glyphs: Vec<char> = BfwState::ALL.iter().map(|&s| glyph(s)).collect();
        glyphs.sort_unstable();
        glyphs.dedup();
        assert_eq!(glyphs.len(), 6);
    }

    #[test]
    fn render_round_order_and_length() {
        use BfwState::*;
        let s = render_round(&[
            LeaderWaiting,
            LeaderBeeping,
            LeaderFrozen,
            Waiting,
            Beeping,
            Frozen,
        ]);
        assert_eq!(s, "L!=.*-");
    }

    #[test]
    fn render_trace_shape() {
        let n = 7;
        let bfw = Bfw::new(0.5).with_initial_config(InitialConfig::Nodes(vec![
            NodeId::new(0),
            NodeId::new(n - 1),
        ]));
        let mut trace = TraceRecorder::new();
        let mut net = Network::new(bfw, generators::path(n).into(), 3);
        observe_run(&mut net, &mut trace, 12, |_| false);
        let text = render_trace(&trace);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 13);
        // Round 0: leaders at the ends, everyone waiting.
        assert!(lines[0].ends_with("L.....L"));
        // Every line has the round-number prefix and n glyphs.
        for line in &lines {
            let (_, glyphs) = line.split_once(" | ").expect("separator present");
            assert_eq!(glyphs.chars().count(), n);
        }
    }

    #[test]
    fn legend_mentions_every_symbol() {
        let l = legend();
        for s in BfwState::ALL {
            assert!(l.contains(s.symbol()), "missing {}", s.symbol());
        }
        assert_eq!(l.lines().count(), 6);
    }

    #[test]
    fn grid_rendering_shape() {
        use BfwState::*;
        let block = render_grid_round(&[LeaderWaiting; 6], 2, 3);
        assert_eq!(block, "LLL\nLLL\n");
        let mixed = render_grid_round(&[LeaderBeeping, Waiting, Frozen, Waiting], 2, 2);
        assert_eq!(mixed, "!.\n-.\n");
    }

    #[test]
    #[should_panic(expected = "cover the whole grid")]
    fn grid_rendering_validates_shape() {
        let _ = render_grid_round(&[BfwState::Waiting; 5], 2, 3);
    }
}
