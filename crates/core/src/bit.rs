//! BFW on the bit-parallel kernel: plane algebra, the `BitNetwork`
//! fast path and the 64-lane Monte-Carlo engine.
//!
//! # The δ table as boolean planes
//!
//! With the planes `leader` / `beeping` / `frozen` (and the derived
//! `waiting = !beeping & !frozen`), Figure 1's entire transition
//! function collapses to four word-wide expressions:
//!
//! ```text
//! beeping' = (waiting & heard) | (waiting & !heard & leader & coin)
//! frozen'  = beeping
//! leader'  = leader & !(waiting & heard)
//! ```
//!
//! Reading them against the table: a waiting node that hears a beep
//! relays it (`W → B◦`, and a `W•` additionally loses its leader bit —
//! the elimination rule); a silent waiting leader beeps iff its coin
//! came up (`W• → B•`); every beeping node freezes for exactly one
//! round (`B → F`); every frozen node thaws (`F → W`), keeping its
//! leader bit. The `bit_kernel_equivalence` workspace test checks the
//! algebra exhaustively against [`delta`](crate::delta) and pins
//! byte-identity with the generic engine.

use crate::protocol::Bfw;
use crate::state::BfwState;
use bfw_graph::{Graph, NodeId};
use bfw_sim::{
    bernoulli_words, run_trials_bitsliced, BeepingProtocol, BitEngine, BitModel, NodeCtx, PlaneWord,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

impl BitModel for Bfw {
    type State = BfwState;

    fn initial_state(&self, ctx: NodeCtx) -> BfwState {
        BeepingProtocol::initial_state(self, ctx)
    }

    fn pack(&self, state: &BfwState) -> (bool, bool, bool) {
        (state.is_leader(), state.beeps(), state.is_frozen())
    }

    fn unpack(&self, leader: bool, beeping: bool, frozen: bool) -> BfwState {
        match (leader, beeping, frozen) {
            (true, false, false) => BfwState::LeaderWaiting,
            (true, true, false) => BfwState::LeaderBeeping,
            (true, false, true) => BfwState::LeaderFrozen,
            (false, false, false) => BfwState::Waiting,
            (false, true, false) => BfwState::Beeping,
            (false, false, true) => BfwState::Frozen,
            _ => panic!("no BFW state is both beeping and frozen"),
        }
    }

    fn coin_probability(&self) -> f64 {
        self.p()
    }

    fn coin_mask(&self, planes: PlaneWord, heard: u64) -> u64 {
        // Exactly the scalar lazy-draw condition: state == W• (leader,
        // neither beeping nor frozen) and silence.
        planes.leader & !planes.beeping & !planes.frozen & !heard
    }

    fn advance_word(&self, planes: PlaneWord, heard: u64, coin: u64) -> PlaneWord {
        let waiting = !planes.beeping & !planes.frozen;
        PlaneWord {
            leader: planes.leader & !(waiting & heard),
            beeping: (waiting & heard) | (waiting & !heard & planes.leader & coin),
            frozen: planes.beeping,
        }
    }
}

/// The bit-parallel BFW executor — drop-in sibling of
/// [`Network<Bfw>`](bfw_sim::Network) with byte-identical outcomes at a
/// fixed seed (see [`bit`](crate::bit) module docs).
///
/// # Example
///
/// ```
/// use bfw_core::{Bfw, BitNetwork};
/// use bfw_graph::generators;
///
/// let mut net = BitNetwork::new(Bfw::new(0.5), generators::cycle(256).into(), 42);
/// while net.leader_count() > 1 {
///     net.step();
/// }
/// assert!(net.unique_leader().is_some());
/// ```
pub type BitNetwork = BitEngine<Bfw>;

/// Outcome of one Monte-Carlo lane: when the lane's execution reached a
/// unique leader (`None` if the round budget ran out) and which node it
/// was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneOutcome {
    /// First round with exactly one leader (convergence is absorbing —
    /// the paper's Lemma 9: the leader count never increases and never
    /// reaches zero).
    pub converged_round: Option<u64>,
    /// The elected node, for converged lanes.
    pub leader: Option<NodeId>,
}

/// 64 independent BFW executions packed into the bit positions of one
/// word per node — the lane-parallel Monte-Carlo engine.
///
/// The layout is the *transpose* of [`BitNetwork`]'s: there, bit `b` of
/// word `w` is node `64w + b` of **one** execution; here, bit `k` of
/// node `u`'s word is node `u` of **lane (trial)** `k`. One round
/// advances all lanes at once: `heard[u]` is the OR of `beeping[v]`
/// over `N(u) ∪ {u}` (word-wide across lanes), and the per-node coin is
/// drawn for all lanes needing one via [`bernoulli_words`] — one
/// ChaCha8 output word per ~bit of precision instead of one draw per
/// lane.
///
/// Determinism: node `u` owns the `u`-th ChaCha8 stream carved from the
/// **group seed** (the same carving scheme as the engines' fault layer)
/// and draws only when at least one lane needs a coin, with a draw
/// count that is a pure function of the lane-need mask — so outcomes
/// are reproducible and independent of scheduling. Lane trials agree
/// with scalar trials in distribution, not draw-for-draw.
#[derive(Debug, Clone)]
pub struct BfwLaneEngine {
    p: f64,
    graph: Graph,
    lane_mask: u64,
    lanes: usize,
    leader: Vec<u64>,
    beeping: Vec<u64>,
    frozen: Vec<u64>,
    heard: Vec<u64>,
    rngs: Vec<ChaCha8Rng>,
    round: u64,
    converged_at: Vec<Option<u64>>,
    converged_lanes: u64,
}

impl BfwLaneEngine {
    /// Builds `lanes` (1–64) independent executions of `protocol` on
    /// `graph`, all in their initial configuration, seeded by the group
    /// seed.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0 or exceeds 64.
    pub fn new(protocol: &Bfw, graph: &Graph, seed: u64, lanes: usize) -> Self {
        assert!((1..=64).contains(&lanes), "lanes must be in 1..=64");
        let n = graph.node_count();
        let lane_mask = if lanes == 64 {
            u64::MAX
        } else {
            (1u64 << lanes) - 1
        };
        let mut master = ChaCha8Rng::seed_from_u64(seed);
        let rngs = (0..n)
            .map(|_| ChaCha8Rng::from_rng(&mut master))
            .collect::<Vec<_>>();
        let leader = (0..n)
            .map(|i| {
                let initial = BeepingProtocol::initial_state(
                    protocol,
                    NodeCtx {
                        node: NodeId::new(i),
                        node_count: n,
                    },
                );
                if initial.is_leader() {
                    lane_mask
                } else {
                    0
                }
            })
            .collect();
        let mut engine = BfwLaneEngine {
            p: protocol.p(),
            graph: graph.clone(),
            lane_mask,
            lanes,
            leader,
            beeping: vec![0; n],
            frozen: vec![0; n],
            heard: vec![0; n],
            rngs,
            round: 0,
            converged_at: vec![None; lanes],
            converged_lanes: 0,
        };
        engine.note_convergence();
        engine
    }

    /// Completed rounds (shared by all lanes).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Lanes that currently have a unique leader, as a bitmask.
    pub fn converged_lanes(&self) -> u64 {
        self.converged_lanes
    }

    /// Per-lane leader count == 1, via one carry-save pass over the
    /// leader words; records first-convergence rounds.
    fn note_convergence(&mut self) {
        let mut ones = 0u64;
        let mut more = 0u64;
        for &l in &self.leader {
            more |= ones & l;
            ones |= l;
        }
        let mut newly = ones & !more & self.lane_mask & !self.converged_lanes;
        self.converged_lanes |= newly;
        while newly != 0 {
            let k = newly.trailing_zeros() as usize;
            newly &= newly - 1;
            self.converged_at[k] = Some(self.round);
        }
    }

    /// Advances one synchronous round in every lane.
    pub fn step(&mut self) {
        for u in 0..self.heard.len() {
            let mut h = self.beeping[u];
            for &v in self.graph.neighbors(NodeId::new(u)) {
                h |= self.beeping[v.index()];
            }
            self.heard[u] = h;
        }
        for u in 0..self.heard.len() {
            let (l, b, f) = (self.leader[u], self.beeping[u], self.frozen[u]);
            let heard = self.heard[u];
            let waiting = !b & !f;
            let need = l & waiting & !heard;
            let coin = bernoulli_words(&mut self.rngs[u], self.p, need);
            self.leader[u] = l & !(waiting & heard);
            self.beeping[u] = (waiting & heard) | (need & coin);
            self.frozen[u] = b;
        }
        self.round += 1;
        self.note_convergence();
    }

    /// Runs until every lane has converged or `max_rounds` is reached,
    /// then reports per-lane outcomes in lane order.
    pub fn run_to_convergence(mut self, max_rounds: u64) -> Vec<LaneOutcome> {
        while self.converged_lanes != self.lane_mask && self.round < max_rounds {
            self.step();
        }
        // One pass recovers each converged lane's elected node.
        let mut leaders = vec![None; self.lanes];
        for (u, &l) in self.leader.iter().enumerate() {
            let mut bits = l & self.converged_lanes;
            while bits != 0 {
                let k = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                leaders[k] = Some(NodeId::new(u));
            }
        }
        self.converged_at
            .iter()
            .zip(leaders)
            .map(|(&converged_round, leader)| LaneOutcome {
                converged_round,
                leader,
            })
            .collect()
    }
}

/// Runs `trials` independent BFW elections on `graph` in 64-lane
/// bitsliced groups across `threads` workers — the sweep driver that
/// makes `n = 10^6` Monte-Carlo estimation tractable.
///
/// Group seeding follows [`run_trials_bitsliced`]: the group covering
/// trials `s..s+64` receives `base_seed + s`. Outcomes land at their
/// trial index; lanes that exhaust `max_rounds` report
/// `converged_round: None`.
pub fn run_bfw_trials_bitsliced(
    protocol: &Bfw,
    graph: &Graph,
    trials: usize,
    threads: usize,
    base_seed: u64,
    max_rounds: u64,
) -> Vec<LaneOutcome> {
    run_trials_bitsliced(trials, threads, base_seed, |seed, lanes| {
        BfwLaneEngine::new(protocol, graph, seed, lanes).run_to_convergence(max_rounds)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfw_graph::generators;

    #[test]
    fn plane_algebra_matches_delta_exhaustively() {
        // Every (state, heard, coin) cell of Figure 1, one bit at a time.
        let bfw = Bfw::new(0.5);
        for state in BfwState::ALL {
            for heard in [false, true] {
                for coin in [false, true] {
                    let (l, b, f) = BitModel::pack(&bfw, &state);
                    let planes = PlaneWord {
                        leader: u64::from(l),
                        beeping: u64::from(b),
                        frozen: u64::from(f),
                    };
                    let next = bfw.advance_word(planes, u64::from(heard), u64::from(coin));
                    let bit = bfw.unpack(
                        next.leader & 1 == 1,
                        next.beeping & 1 == 1,
                        next.frozen & 1 == 1,
                    );
                    // The scalar coin only matters on the coin mask.
                    let mask = bfw.coin_mask(planes, u64::from(heard));
                    let scalar = crate::delta(state, heard, coin && mask & 1 == 1);
                    assert_eq!(bit, scalar, "{state} heard={heard} coin={coin}");
                }
            }
        }
    }

    #[test]
    fn coin_mask_is_the_lazy_draw_condition() {
        let bfw = Bfw::new(0.5);
        for state in BfwState::ALL {
            for heard in [false, true] {
                let (l, b, f) = BitModel::pack(&bfw, &state);
                let planes = PlaneWord {
                    leader: u64::from(l),
                    beeping: u64::from(b),
                    frozen: u64::from(f),
                };
                let draws = bfw.coin_mask(planes, u64::from(heard)) & 1 == 1;
                assert_eq!(
                    draws,
                    state == BfwState::LeaderWaiting && !heard,
                    "{state} heard={heard}"
                );
            }
        }
    }

    #[test]
    fn bit_network_elects_on_small_graphs() {
        for (name, graph) in [
            ("cycle", generators::cycle(48)),
            ("torus", generators::torus(4, 6)),
            ("path", generators::path(30)),
        ] {
            let mut net = BitNetwork::new(Bfw::new(0.5), graph.into(), 7);
            let mut rounds = 0u64;
            while net.leader_count() > 1 && rounds < 100_000 {
                net.step();
                rounds += 1;
            }
            assert_eq!(net.leader_count(), 1, "{name}");
            let u = net.unique_leader().expect(name);
            assert!(net.state(u).is_leader(), "{name}");
        }
    }

    #[test]
    fn lane_engine_converges_every_lane() {
        let graph = generators::cycle(32);
        let outcomes =
            BfwLaneEngine::new(&Bfw::new(0.5), &graph, 99, 64).run_to_convergence(1_000_000);
        assert_eq!(outcomes.len(), 64);
        for (k, o) in outcomes.iter().enumerate() {
            let r = o.converged_round.unwrap_or_else(|| panic!("lane {k}"));
            assert!(r > 0);
            assert!(o.leader.is_some(), "lane {k}");
        }
        // Lanes are independent: convergence rounds are not all equal.
        let rounds: std::collections::HashSet<_> =
            outcomes.iter().map(|o| o.converged_round).collect();
        assert!(rounds.len() > 4, "{rounds:?}");
    }

    #[test]
    fn lane_trials_are_deterministic_and_indexed() {
        let graph = generators::torus(4, 4);
        let bfw = Bfw::new(0.5);
        let a = run_bfw_trials_bitsliced(&bfw, &graph, 100, 1, 7, 1_000_000);
        let b = run_bfw_trials_bitsliced(&bfw, &graph, 100, 4, 7, 1_000_000);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        // The second group (trials 64..) is seeded independently.
        assert_ne!(a[0], a[64]);
    }

    #[test]
    fn single_node_converges_at_round_zero() {
        let graph = generators::path(1);
        let outcomes = BfwLaneEngine::new(&Bfw::new(0.5), &graph, 1, 3).run_to_convergence(10);
        for o in outcomes {
            assert_eq!(o.converged_round, Some(0));
            assert_eq!(o.leader, Some(NodeId::new(0)));
        }
    }

    #[test]
    #[should_panic(expected = "lanes must be in 1..=64")]
    fn lane_count_validated() {
        let _ = BfwLaneEngine::new(&Bfw::new(0.5), &generators::path(2), 0, 65);
    }
}
