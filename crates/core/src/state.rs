//! The six states of Figure 1 and the pure transition function.

use std::fmt;

/// One of the six states of the BFW state machine (Figure 1).
///
/// Leader states carry a filled bullet in the paper (`W•`, `B•`, `F•`);
/// non-leader states an empty one (`W◦`, `B◦`, `F◦`). `B` stands for
/// *Beeping*, `F` for *Frozen*, `W` for *Waiting*. The beeping set is
/// `Q_b = {B•, B◦}`; the leader set of Definition 1 is
/// `L = {W•, B•, F•}`. The starting state is `W•`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BfwState {
    /// `W•` — waiting leader (the initial state `q_s`).
    LeaderWaiting,
    /// `B•` — beeping leader.
    LeaderBeeping,
    /// `F•` — frozen leader (one round after a beep).
    LeaderFrozen,
    /// `W◦` — waiting non-leader.
    Waiting,
    /// `B◦` — beeping non-leader (wave propagation / fresh elimination).
    Beeping,
    /// `F◦` — frozen non-leader.
    Frozen,
}

impl BfwState {
    /// All six states, leaders first (useful for exhaustive tests).
    pub const ALL: [BfwState; 6] = [
        BfwState::LeaderWaiting,
        BfwState::LeaderBeeping,
        BfwState::LeaderFrozen,
        BfwState::Waiting,
        BfwState::Beeping,
        BfwState::Frozen,
    ];

    /// Returns `true` if the state belongs to the leader set
    /// `L = {W•, B•, F•}`.
    #[inline]
    pub const fn is_leader(self) -> bool {
        matches!(
            self,
            BfwState::LeaderWaiting | BfwState::LeaderBeeping | BfwState::LeaderFrozen
        )
    }

    /// Returns `true` if the state belongs to the beeping set
    /// `Q_b = {B•, B◦}`.
    #[inline]
    pub const fn beeps(self) -> bool {
        matches!(self, BfwState::LeaderBeeping | BfwState::Beeping)
    }

    /// Returns `true` for the waiting states `{W•, W◦}` (the set `W_t`
    /// of Section 2).
    #[inline]
    pub const fn is_waiting(self) -> bool {
        matches!(self, BfwState::LeaderWaiting | BfwState::Waiting)
    }

    /// Returns `true` for the frozen states `{F•, F◦}` (the set `F_t`).
    #[inline]
    pub const fn is_frozen(self) -> bool {
        matches!(self, BfwState::LeaderFrozen | BfwState::Frozen)
    }

    /// Returns the paper's symbol for the state (`W•`, `B◦`, …).
    pub const fn symbol(self) -> &'static str {
        match self {
            BfwState::LeaderWaiting => "W•",
            BfwState::LeaderBeeping => "B•",
            BfwState::LeaderFrozen => "F•",
            BfwState::Waiting => "W◦",
            BfwState::Beeping => "B◦",
            BfwState::Frozen => "F◦",
        }
    }
}

impl fmt::Display for BfwState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// The transition function of Figure 1 as a pure function.
///
/// `heard` selects between `δ⊤` (`true`) and `δ⊥` (`false`); `coin` is
/// the outcome of the Bernoulli(`p`) draw, consulted **only** for the
/// single randomized transition `δ⊥(W•)`.
///
/// The transitions, exactly as drawn in Figure 1:
///
/// | state | `δ⊥` (silence)            | `δ⊤` (beep heard) |
/// |-------|---------------------------|-------------------|
/// | `W•`  | `B•` w.p. `p`, else `W•`  | `B◦` (eliminated) |
/// | `B•`  | — (always hears itself)   | `F•`              |
/// | `F•`  | `W•`                      | `W•` (frozen: ignores environment) |
/// | `W◦`  | `W◦`                      | `B◦`              |
/// | `B◦`  | — (always hears itself)   | `F◦`              |
/// | `F◦`  | `W◦`                      | `W◦`              |
///
/// Beeping states only ever see `heard = true` under the model's
/// semantics (a beeping node hears its own beep); this function still
/// totalizes them to the `δ⊤` outcome so it is safe on any input.
#[inline]
pub const fn delta(state: BfwState, heard: bool, coin: bool) -> BfwState {
    match (state, heard) {
        // δ⊥(W•): the only randomized transition.
        (BfwState::LeaderWaiting, false) => {
            if coin {
                BfwState::LeaderBeeping
            } else {
                BfwState::LeaderWaiting
            }
        }
        // δ⊤(W•): a non-frozen leader hearing a beep is eliminated and
        // relays the wave.
        (BfwState::LeaderWaiting, true) => BfwState::Beeping,
        // After any beep the node freezes for one round.
        (BfwState::LeaderBeeping, _) => BfwState::LeaderFrozen,
        (BfwState::Beeping, _) => BfwState::Frozen,
        // Frozen nodes ignore their environment entirely.
        (BfwState::LeaderFrozen, _) => BfwState::LeaderWaiting,
        (BfwState::Frozen, _) => BfwState::Waiting,
        // Waiting non-leaders relay waves.
        (BfwState::Waiting, true) => BfwState::Beeping,
        (BfwState::Waiting, false) => BfwState::Waiting,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// E1: the exhaustive transition table of Figure 1 — all 6 states ×
    /// {heard, silent} × {coin, no-coin}.
    #[test]
    fn figure1_transition_table() {
        use BfwState::*;
        let table: [(BfwState, bool, bool, BfwState); 24] = [
            // (state, heard, coin, expected)
            (LeaderWaiting, false, false, LeaderWaiting),
            (LeaderWaiting, false, true, LeaderBeeping),
            (LeaderWaiting, true, false, Beeping),
            (LeaderWaiting, true, true, Beeping),
            (LeaderBeeping, true, false, LeaderFrozen),
            (LeaderBeeping, true, true, LeaderFrozen),
            (LeaderBeeping, false, false, LeaderFrozen), // defensive totalization
            (LeaderBeeping, false, true, LeaderFrozen),
            (LeaderFrozen, false, false, LeaderWaiting),
            (LeaderFrozen, false, true, LeaderWaiting),
            (LeaderFrozen, true, false, LeaderWaiting),
            (LeaderFrozen, true, true, LeaderWaiting),
            (Waiting, false, false, Waiting),
            (Waiting, false, true, Waiting),
            (Waiting, true, false, Beeping),
            (Waiting, true, true, Beeping),
            (Beeping, true, false, Frozen),
            (Beeping, true, true, Frozen),
            (Beeping, false, false, Frozen),
            (Beeping, false, true, Frozen),
            (Frozen, false, false, Waiting),
            (Frozen, false, true, Waiting),
            (Frozen, true, false, Waiting),
            (Frozen, true, true, Waiting),
        ];
        for (s, heard, coin, expected) in table {
            assert_eq!(
                delta(s, heard, coin),
                expected,
                "delta({s}, {heard}, {coin})"
            );
        }
    }

    #[test]
    fn state_predicates_partition() {
        for s in BfwState::ALL {
            // Exactly one of waiting / beeping / frozen.
            let flags = [s.is_waiting(), s.beeps(), s.is_frozen()]
                .iter()
                .filter(|&&b| b)
                .count();
            assert_eq!(flags, 1, "{s} must be in exactly one of W/B/F");
        }
        assert_eq!(BfwState::ALL.iter().filter(|s| s.is_leader()).count(), 3);
    }

    #[test]
    fn leader_set_matches_figure() {
        use BfwState::*;
        assert!(LeaderWaiting.is_leader());
        assert!(LeaderBeeping.is_leader());
        assert!(LeaderFrozen.is_leader());
        assert!(!Waiting.is_leader());
        assert!(!Beeping.is_leader());
        assert!(!Frozen.is_leader());
    }

    #[test]
    fn no_transition_creates_a_leader() {
        // The protocol never turns a non-leader into a leader: leader
        // count is monotone non-increasing (used by Lemma 9's proof and
        // by our convergence detection).
        for s in BfwState::ALL.iter().filter(|s| !s.is_leader()) {
            for heard in [false, true] {
                for coin in [false, true] {
                    assert!(!delta(*s, heard, coin).is_leader());
                }
            }
        }
    }

    #[test]
    fn elimination_only_from_waiting_leader_hearing() {
        // A leader leaves the leader set only via δ⊤(W•).
        for s in BfwState::ALL.iter().filter(|s| s.is_leader()) {
            for heard in [false, true] {
                for coin in [false, true] {
                    let next = delta(*s, heard, coin);
                    if !next.is_leader() {
                        assert_eq!(*s, BfwState::LeaderWaiting);
                        assert!(heard);
                        // And the eliminated leader relays the wave.
                        assert_eq!(next, BfwState::Beeping);
                    }
                }
            }
        }
    }

    #[test]
    fn beep_always_followed_by_freeze() {
        // Claim 6 Eq. (4): u ∈ B_t ⇒ u ∈ F_{t+1}.
        for s in BfwState::ALL.iter().filter(|s| s.beeps()) {
            for heard in [false, true] {
                for coin in [false, true] {
                    assert!(delta(*s, heard, coin).is_frozen());
                }
            }
        }
    }

    #[test]
    fn freeze_always_followed_by_wait() {
        // Claim 6 Eq. (5): u ∈ F_t ⇒ u ∈ W_{t+1}.
        for s in BfwState::ALL.iter().filter(|s| s.is_frozen()) {
            for heard in [false, true] {
                for coin in [false, true] {
                    assert!(delta(*s, heard, coin).is_waiting());
                }
            }
        }
    }

    #[test]
    fn waiting_never_freezes_immediately() {
        // Claim 6 Eq. (3): u ∈ W_t ⇒ u ∉ F_{t+1}.
        for s in BfwState::ALL.iter().filter(|s| s.is_waiting()) {
            for heard in [false, true] {
                for coin in [false, true] {
                    assert!(!delta(*s, heard, coin).is_frozen());
                }
            }
        }
    }

    #[test]
    fn symbols_and_display() {
        assert_eq!(BfwState::LeaderWaiting.symbol(), "W•");
        assert_eq!(BfwState::Beeping.to_string(), "B◦");
        // Debug is non-empty for every state.
        for s in BfwState::ALL {
            assert!(!format!("{s:?}").is_empty());
        }
    }
}
