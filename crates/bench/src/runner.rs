use bfw_core::{Bfw, InitialConfig};
use bfw_sim::{run_election, run_trials, ElectionConfig, Topology};
use bfw_stats::Summary;

/// Aggregated convergence statistics of repeated BFW elections on one
/// workload.
#[derive(Debug, Clone)]
pub struct ElectionSummary {
    /// Convergence rounds across trials.
    pub rounds: Summary,
    /// Total beeps (energy) across trials.
    pub beeps: Summary,
    /// Trials that exhausted the round budget.
    pub failures: usize,
}

impl ElectionSummary {
    /// Formats `mean ± ci95 (p95)` of the convergence rounds.
    pub fn display_rounds(&self) -> String {
        if self.rounds.is_empty() {
            return "n/a".to_owned();
        }
        format!(
            "{:.0} ± {:.0} (p95 {:.0})",
            self.rounds.mean(),
            self.rounds.ci95_half_width(),
            self.rounds.quantile(0.95)
        )
    }
}

/// Runs `trials` independent BFW elections in parallel and aggregates
/// them.
///
/// Failed trials (budget exhausted) are counted in
/// [`ElectionSummary::failures`] and excluded from the summaries;
/// experiments size their budgets so that failures indicate a real
/// anomaly.
///
/// # Panics
///
/// Panics if the topology is empty or disconnected (workloads are
/// validated upstream).
pub fn election_summary(
    p: f64,
    init: &InitialConfig,
    topology: &Topology,
    trials: usize,
    threads: usize,
    base_seed: u64,
    max_rounds: u64,
) -> ElectionSummary {
    let results = run_trials(trials, threads, base_seed, |seed| {
        let bfw = Bfw::new(p).with_initial_config(init.clone());
        match run_election(bfw, topology.clone(), seed, ElectionConfig::new(max_rounds)) {
            Ok(out) => Some((out.converged_round, out.total_beeps)),
            Err(bfw_sim::SimError::RoundBudgetExhausted { .. }) => None,
            Err(e) => panic!("workload must be a valid election topology: {e}"),
        }
    });
    let mut rounds = Vec::with_capacity(trials);
    let mut beeps = Vec::with_capacity(trials);
    let mut failures = 0;
    for r in results {
        match r {
            Some((round, beep)) => {
                rounds.push(round as f64);
                beeps.push(beep as f64);
            }
            None => failures += 1,
        }
    }
    ElectionSummary {
        rounds: Summary::from_values(rounds),
        beeps: Summary::from_values(beeps),
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfw_graph::generators;

    #[test]
    fn summary_on_small_cycle() {
        let g: Topology = generators::cycle(8).into();
        let s = election_summary(0.5, &InitialConfig::AllLeaders, &g, 10, 2, 42, 100_000);
        assert_eq!(s.failures, 0);
        assert_eq!(s.rounds.len(), 10);
        assert!(s.rounds.mean() > 0.0);
        assert!(s.beeps.mean() > 0.0);
        assert!(s.display_rounds().contains('±'));
    }

    #[test]
    fn failures_counted() {
        let g: Topology = generators::path(32).into();
        // A 2-round budget cannot elect a leader among 32.
        let s = election_summary(0.5, &InitialConfig::AllLeaders, &g, 5, 2, 0, 2);
        assert_eq!(s.failures, 5);
        assert!(s.rounds.is_empty());
        assert_eq!(s.display_rounds(), "n/a");
    }

    #[test]
    fn deterministic_given_seed() {
        let g: Topology = generators::cycle(10).into();
        let a = election_summary(0.5, &InitialConfig::AllLeaders, &g, 6, 3, 9, 100_000);
        let b = election_summary(0.5, &InitialConfig::AllLeaders, &g, 6, 1, 9, 100_000);
        assert_eq!(a.rounds.sorted_values(), b.rounds.sorted_values());
    }

    #[test]
    fn clique_fast_path_agrees_with_graph_topology() {
        let fast = election_summary(
            0.5,
            &InitialConfig::AllLeaders,
            &Topology::Clique(12),
            6,
            2,
            5,
            100_000,
        );
        let slow: Topology = generators::complete(12).into();
        let slow = election_summary(0.5, &InitialConfig::AllLeaders, &slow, 6, 2, 5, 100_000);
        assert_eq!(fast.rounds.sorted_values(), slow.rounds.sorted_values());
    }
}
