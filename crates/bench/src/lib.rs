//! Experiment harness: regenerates every table and figure of the BFW
//! paper reproduction.
//!
//! The paper (PODC 2025) is a theory paper; its "evaluation" consists of
//! Figure 1 (the protocol), Table 1 (comparison against prior work) and
//! the Theorems. This crate turns each into a measured artifact — see
//! DESIGN.md's experiment index (E1–E12) for the mapping. Each
//! experiment lives in [`experiments`] and returns paper-style
//! [`bfw_stats::Table`]s; the `experiments` binary prints them
//! and writes CSVs, and one Criterion bench per experiment keeps the
//! workloads timed.
//!
//! # Example
//!
//! ```no_run
//! use bfw_bench::{ExpConfig, experiments};
//!
//! let cfg = ExpConfig::quick();
//! let result = experiments::thm2_d::run(&cfg);
//! for (name, table) in &result.tables {
//!     println!("## {name}\n{}", table.to_markdown());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
mod runner;
mod workloads;

pub use runner::{election_summary, ElectionSummary};
pub use workloads::{GraphSpec, WorkloadError};

use bfw_stats::Table;

/// Shared experiment configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpConfig {
    /// Monte-Carlo trials per configuration point.
    pub trials: usize,
    /// Worker threads for trial parallelism.
    pub threads: usize,
    /// Base RNG seed; trial `i` of each point uses derived seeds.
    pub seed: u64,
    /// Reduce workload sizes (used by CI and the Criterion benches).
    pub quick: bool,
    /// Enable the optional noise sweeps (`--noise`): experiments that
    /// support it (E17) add perception-noise rows on top of their
    /// noise-free tables.
    pub noise: bool,
    /// Where report-emitting experiments (E19/E20) write their
    /// `BENCH_*.json`. `None` means the workspace root — the tracked
    /// location the CI smoke steps assert on. Tests point this at a
    /// scratch directory so `cargo test` never clobbers the committed
    /// artifacts (the tick-scale report holds wall-clock timings from a
    /// release build; a quick debug-build rewrite would destroy them).
    pub report_dir: Option<std::path::PathBuf>,
}

impl ExpConfig {
    /// Full-size configuration used to produce EXPERIMENTS.md.
    pub fn full() -> Self {
        ExpConfig {
            trials: 30,
            threads: default_threads(),
            seed: 0xBF_2025,
            quick: false,
            noise: false,
            report_dir: None,
        }
    }

    /// Reduced configuration for smoke tests and benches.
    pub fn quick() -> Self {
        ExpConfig {
            trials: 8,
            threads: default_threads(),
            seed: 0xBF_2025,
            quick: true,
            noise: false,
            report_dir: None,
        }
    }

    /// Resolves the directory `BENCH_*.json` reports land in:
    /// [`report_dir`](ExpConfig::report_dir) when set, otherwise the
    /// workspace root (next to `BENCH_churn.json`).
    pub fn report_root(&self) -> std::path::PathBuf {
        self.report_dir.clone().unwrap_or_else(|| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .ancestors()
                .nth(2)
                .expect("crates/bench has a workspace root")
                .to_path_buf()
        })
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

/// Output of one experiment: named tables plus free-form observations
/// (the "measured vs. paper" notes that feed EXPERIMENTS.md).
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment identifier (e.g. `"E4-thm2-d-scaling"`).
    pub id: &'static str,
    /// What the experiment reproduces.
    pub reproduces: &'static str,
    /// Named result tables.
    pub tables: Vec<(String, Table)>,
    /// Headline observations (one per line in the report).
    pub notes: Vec<String>,
}

impl ExperimentResult {
    /// Renders the full result as Markdown (used by the binary and by
    /// EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## {} — {}\n\n", self.id, self.reproduces);
        for (name, table) in &self.tables {
            out.push_str(&format!("### {name}\n\n{}\n", table.to_markdown()));
        }
        if !self.notes.is_empty() {
            out.push_str("Observations:\n");
            for n in &self.notes {
                out.push_str(&format!("- {n}\n"));
            }
        }
        out
    }
}
