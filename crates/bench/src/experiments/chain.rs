//! **E9 — the Eq. (15)/(16) chain, coupled and measured.**
//!
//! Section 4 couples every surviving leader with the three-state chain
//! `W → B → F` of Eq. (15). Two measurable consequences:
//!
//! 1. after convergence, the surviving leader's long-run beep frequency
//!    must equal the stationary mass `π_B = p/(2p+1)` (Eq. (16)) —
//!    waves it emits never return to disturb it (the flow theory in
//!    action);
//! 2. the chain itself (simulated directly) shows the `Var(N_t) = Θ(t)`
//!    anti-concentration that powers Lemma 14.

use crate::{ExpConfig, ExperimentResult, GraphSpec};
use bfw_core::Bfw;
use bfw_markov::{bfw_chain, BfwChainTheory, BFW_CHAIN_B, BFW_CHAIN_W};
use bfw_sim::{run_trials, Network};
use bfw_stats::{Summary, Table};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const PS: [f64; 4] = [0.1, 0.25, 0.5, 0.75];

/// Measures the surviving leader's empirical beep rate after
/// convergence.
fn leader_beep_rate(spec: &GraphSpec, p: f64, seed: u64, horizon: u64) -> Option<f64> {
    let mut net = Network::new(Bfw::new(p), spec.topology(), seed);
    net.run_until(5_000_000, |v| v.leader_count() == 1)?;
    let leader = net.unique_leader().expect("just converged");
    // Let residual waves die out before measuring.
    net.run(256);
    let mut beeps = 0u64;
    for _ in 0..horizon {
        net.step();
        if net.state(leader).beeps() {
            beeps += 1;
        }
    }
    Some(beeps as f64 / horizon as f64)
}

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> ExperimentResult {
    let horizon: u64 = if cfg.quick { 20_000 } else { 100_000 };
    let spec = GraphSpec::Cycle(if cfg.quick { 12 } else { 24 });

    let mut rate_table = Table::with_columns(&[
        "p",
        "π_B = p/(2p+1)",
        "measured leader beep rate",
        "relative error",
    ]);
    let mut notes = Vec::new();

    for &p in &PS {
        let rates = run_trials(cfg.trials.min(8), cfg.threads, cfg.seed, |seed| {
            leader_beep_rate(&spec, p, seed, horizon)
        });
        let rates: Vec<f64> = rates.into_iter().flatten().collect();
        let measured = Summary::from_values(rates);
        let predicted = BfwChainTheory::new(p).stationary_beep_rate();
        let rel_err = (measured.mean() - predicted).abs() / predicted;
        rate_table.push_row(vec![
            format!("{p:.2}"),
            format!("{predicted:.4}"),
            format!("{:.4} ± {:.4}", measured.mean(), measured.ci95_half_width()),
            format!("{:.2}%", 100.0 * rel_err),
        ]);
    }
    notes.push(format!(
        "the surviving leader on {spec} beeps at exactly the stationary rate of Eq. (16): \
         its own waves never return (Corollary 8 ⇒ no self-elimination, and no \
         re-disturbance after convergence)."
    ));

    // Part 2: Var(N_t) = Θ(t) for the bare chain (Lemma 14's engine).
    let mut var_table = Table::with_columns(&[
        "p",
        "t",
        "E[N_t] measured",
        "π_B·t predicted",
        "Var(N_t)/t measured",
        "σ²rate predicted",
    ]);
    let t: usize = if cfg.quick { 2_000 } else { 10_000 };
    let chain_trials = if cfg.quick { 300 } else { 1_000 };
    for &p in &PS {
        let chain = bfw_chain(p);
        let theory = BfwChainTheory::new(p);
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut counts = Vec::with_capacity(chain_trials);
        for _ in 0..chain_trials {
            let mut s = chain.sampler(BFW_CHAIN_W);
            counts.push(s.visit_counts(t, &mut rng)[BFW_CHAIN_B] as f64);
        }
        let summary = Summary::from_values(counts);
        var_table.push_row(vec![
            format!("{p:.2}"),
            t.to_string(),
            format!("{:.1}", summary.mean()),
            format!("{:.1}", theory.expected_beeps(t as u64)),
            format!("{:.4}", summary.variance() / t as f64),
            format!("{:.4}", theory.visit_count_variance_rate()),
        ]);
    }
    notes.push(
        "Var(N_t)/t matches the renewal-theory rate — the linear-in-t variance that \
         Lemma 14 turns into anti-concentration and Theorem 2 into leader elimination."
            .to_owned(),
    );

    // Part 3: the anti-concentration statements themselves.
    //
    // Theorem 13 (behind Lemma 14): sup_m P(|N_t − m| ≤ c·√Var(N_t))
    // ≤ 1 − ε(c) for every constant c. We measure the most crowded
    // window at c = 1 (where ε is macroscopic, ≈ 0.32 under the CLT)
    // and at the paper's radius √t (≈ 4σ here, so ε is of order 1e−5 —
    // consistent, but below Monte-Carlo resolution; reported for
    // completeness). Lemma 15's pair-collision probability
    // P(|ΔN_{d²}| < d) sits at ≈ 3σ, likewise close to (but below) 1.
    let mut anti_table = Table::with_columns(&[
        "p",
        "t = d²",
        "d",
        "σ = √Var(N_t)",
        "sup_m P(|N_t − m| ≤ σ)",
        "sup_m P(|N_t − m| ≤ √t)",
        "P(|ΔN| < d)  (Lemma 15)",
    ]);
    let anti_trials = if cfg.quick { 400 } else { 2_000 };
    let ds: &[usize] = if cfg.quick { &[16, 32] } else { &[16, 32, 64] };
    let mut worst_1sigma: f64 = 0.0;
    for &p in &PS {
        let chain = bfw_chain(p);
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xA2C);
        for &d in ds {
            let t = d * d;
            let counts: Vec<i64> = (0..anti_trials)
                .map(|_| {
                    let mut s = chain.sampler(BFW_CHAIN_W);
                    s.visit_counts(t, &mut rng)[BFW_CHAIN_B] as i64
                })
                .collect();
            let summary = Summary::from_values(counts.iter().map(|&c| c as f64));
            let sigma = summary.std_dev();
            // Most crowded window of a given radius.
            let min = *counts.iter().min().expect("non-empty");
            let max = *counts.iter().max().expect("non-empty");
            let crowd = |radius: i64| -> f64 {
                let mut best = 0usize;
                for m in min..=max {
                    let inside = counts.iter().filter(|&&c| (c - m).abs() <= radius).count();
                    best = best.max(inside);
                }
                best as f64 / anti_trials as f64
            };
            let at_sigma = crowd(sigma.round() as i64);
            let at_sqrt_t = crowd((t as f64).sqrt() as i64);
            // Lemma 15: pair consecutive trials as independent copies.
            let close = counts
                .chunks_exact(2)
                .filter(|w| (w[0] - w[1]).unsigned_abs() < d as u64)
                .count();
            let l15 = close as f64 / (anti_trials / 2) as f64;
            worst_1sigma = worst_1sigma.max(at_sigma);
            anti_table.push_row(vec![
                format!("{p:.2}"),
                t.to_string(),
                d.to_string(),
                format!("{sigma:.1}"),
                format!("{at_sigma:.3}"),
                format!("{at_sqrt_t:.3}"),
                format!("{l15:.3}"),
            ]);
        }
    }
    notes.push(format!(
        "anti-concentration (Theorem 13): the most crowded ±1σ window holds at most \
         {worst_1sigma:.3} of the mass — bounded away from 1 uniformly over p, t and \
         the window location. The paper's ±√t window is ≈ 4σ wide, so its ε is of \
         order 1e−5: real but below Monte-Carlo resolution (measured ≈ 1.000, \
         consistent). Lemma 15's pair collision at < d is a ≈ 3σ event, likewise \
         near 1 by design — the proofs only need *some* ε > 0."
    ));

    ExperimentResult {
        id: "E9-chain",
        reproduces: "Eq. (15)/(16), Lemma 14's variance engine, and the Lemma 14/15 \
                     anti-concentration bounds",
        tables: vec![
            ("stationary beep rate".to_owned(), rate_table),
            ("visit-count variance".to_owned(), var_table),
            ("anti-concentration".to_owned(), anti_table),
        ],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_matches_stationary_rate() {
        let mut cfg = ExpConfig::quick();
        cfg.trials = 3;
        let result = run(&cfg);
        let rate_table = &result.tables[0].1;
        assert_eq!(rate_table.row_count(), PS.len());
        for row in rate_table.rows() {
            let err: f64 = row[3].trim_end_matches('%').parse().unwrap();
            assert!(err < 5.0, "beep rate off by {err}% for p={}", row[0]);
        }
        // Anti-concentration table: the 1σ window must be clearly
        // bounded away from 1 (the CLT predicts ≈ 0.68).
        let anti = &result.tables[2].1;
        assert!(!anti.rows().is_empty());
        for row in anti.rows() {
            let at_sigma: f64 = row[4].parse().unwrap();
            assert!(at_sigma < 0.9, "1σ window too crowded: {row:?}");
            assert!(at_sigma > 0.3, "1σ window implausibly empty: {row:?}");
        }
    }
}
