//! **E20 (extension) — kernel throughput: rounds/second for the
//! generic vs the bit-parallel BFW kernel at scale.**
//!
//! The generic [`TickEngine`](bfw_sim::TickEngine) advances one node at
//! a time; the bitplane [`BitEngine`](bfw_sim::BitEngine) advances 64
//! nodes per word operation and both are byte-identical at a fixed seed
//! (the `bit_kernel_equivalence` workspace tests pin it). This
//! experiment measures what the equivalence buys: rounds/second for
//! each kernel across `n ∈ {10³ … 10⁷}` on the cycle, the torus and a
//! random 4-regular graph, and the wall-clock seconds of the timed
//! bit-kernel segment at each size — the headline being the `n = 10⁶`
//! cycle completing in single-digit seconds where the generic engine
//! needs minutes, with the `n = 10⁷` rows pinning that the kernel
//! keeps its word-parallel throughput at ten-million-node scale.
//!
//! Timing methodology (the `instrument_overhead` bench's): build both
//! engines at the same seed, warm each up, then time a fixed block of
//! rounds per kernel — more rounds for the bit kernel so both segments
//! measure meaningfully without the generic segment dominating the
//! experiment's runtime at `n = 10⁶`.
//!
//! Besides the stdout table the experiment **commits its numbers**: it
//! writes the versioned `BENCH_tick.json` at the workspace root
//! (tracked like `BENCH_churn.json` / `BENCH_complexity.json`; the CI
//! smoke step asserts it is emitted and parses).

use crate::{ExpConfig, ExperimentResult};
use bfw_core::{Bfw, BitNetwork};
use bfw_graph::{generators, Graph};
use bfw_sim::Network;
use bfw_stats::Table;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// One measured row of the throughput sweep.
struct Row {
    graph: String,
    n: usize,
    generic_rounds: u64,
    generic_rps: f64,
    bit_rounds: u64,
    bit_rps: f64,
    bit_seconds: f64,
    speedup: f64,
}

/// The sweep sizes: `quick` keeps CI to a sub-second smoke, the full
/// run climbs to the million-node headline.
fn sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![1_000]
    } else {
        vec![1_000, 10_000, 100_000, 1_000_000, 10_000_000]
    }
}

/// The throughput workloads at `n` nodes: ring, torus and random
/// 4-regular graph (the diameter-diverse trio of the churn-scale
/// experiment).
fn workloads(n: usize) -> Vec<(String, Graph)> {
    let side = (n as f64).sqrt() as usize;
    let mut rng = ChaCha8Rng::seed_from_u64(0x71C);
    vec![
        (format!("cycle:{n}"), generators::cycle(n)),
        (
            format!("torus:{side}x{side}"),
            generators::torus(side, side),
        ),
        (
            format!("random-regular:{n}:4"),
            generators::random_regular(n, 4, &mut rng),
        ),
    ]
}

/// Rounds to time on the generic kernel: enough for a stable
/// measurement at small `n`, few enough that the `n = 10⁶` cell stays
/// tractable (the generic engine is exactly what's slow there).
fn generic_rounds(n: usize) -> u64 {
    (2_000_000 / n as u64).clamp(20, 2_000)
}

/// Rounds to time on the bit kernel: scaled up by the expected speedup
/// so the segment is long enough to time, and the `n = 10⁶` cell's
/// wall-clock — the committed `bit_seconds` — reflects a real workload
/// (thousands of rounds), not a microbenchmark.
fn bit_rounds(n: usize) -> u64 {
    (200_000_000 / n as u64).clamp(1_000, 100_000)
}

/// Times both kernels on one graph at one seed. The engines run the
/// same protocol from the same seed (warmup included), so the rounds
/// they execute are the same work — the ratio is pure kernel speed.
fn measure(name: &str, graph: &Graph, seed: u64) -> Row {
    let n = graph.node_count();
    let warmup = 16;

    let mut generic = Network::new(Bfw::new(0.5), graph.clone().into(), seed);
    generic.run(warmup);
    let g_rounds = generic_rounds(n);
    let start = Instant::now();
    generic.run(g_rounds);
    let g_secs = start.elapsed().as_secs_f64();
    // Free the generic engine's per-node RNG streams before carving
    // the bit engine's: at n = 10⁷ each set is gigabyte-scale, and
    // only one engine is ever timed at once.
    drop(generic);

    let mut bit = BitNetwork::new(Bfw::new(0.5), graph.clone().into(), seed);
    bit.run(warmup);
    let b_rounds = bit_rounds(n);
    let start = Instant::now();
    bit.run(b_rounds);
    let b_secs = start.elapsed().as_secs_f64();

    let generic_rps = g_rounds as f64 / g_secs.max(1e-9);
    let bit_rps = b_rounds as f64 / b_secs.max(1e-9);
    Row {
        graph: name.to_owned(),
        n,
        generic_rounds: g_rounds,
        generic_rps,
        bit_rounds: b_rounds,
        bit_rps,
        bit_seconds: b_secs,
        speedup: bit_rps / generic_rps.max(1e-9),
    }
}

/// Rounds a measured float to `decimals` places so the report renders
/// compact, stable spellings (the renderer prints the shortest exact
/// form of the rounded value).
fn rounded(x: f64, decimals: u32) -> f64 {
    let scale = 10f64.powi(decimals as i32);
    (x * scale).round() / scale
}

/// Assembles the `bfw/bench-report` document (see [`crate::report`]);
/// key-sorted deterministic rendering means re-runs diff cleanly, and
/// `bfw report validate` checks it back.
fn render_report(rows: &[Row], cfg: &ExpConfig) -> bfw_stats::JsonValue {
    use bfw_stats::JsonValue;
    crate::report::bench_report(
        "E20-tick-scale",
        cfg.quick,
        cfg.seed,
        [],
        rows.iter().map(|row| {
            JsonValue::object([
                ("graph", JsonValue::from(row.graph.as_str())),
                ("n", JsonValue::from(row.n)),
                ("generic_rounds", JsonValue::from(row.generic_rounds)),
                ("generic_rps", JsonValue::from(rounded(row.generic_rps, 1))),
                ("bit_rounds", JsonValue::from(row.bit_rounds)),
                ("bit_rps", JsonValue::from(rounded(row.bit_rps, 1))),
                ("bit_seconds", JsonValue::from(rounded(row.bit_seconds, 4))),
                ("speedup", JsonValue::from(rounded(row.speedup, 1))),
            ])
        }),
    )
}

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> ExperimentResult {
    let mut table = Table::with_columns(&[
        "graph",
        "n",
        "generic rounds/s",
        "bit rounds/s",
        "speedup",
        "bit segment (s)",
    ]);
    let mut rows = Vec::new();
    for n in sizes(cfg.quick) {
        for (name, graph) in workloads(n) {
            rows.push(measure(&name, &graph, cfg.seed));
        }
    }
    for row in &rows {
        table.push_row(vec![
            row.graph.clone(),
            row.n.to_string(),
            format!("{:.0}", row.generic_rps),
            format!("{:.0}", row.bit_rps),
            format!("{:.1}x", row.speedup),
            format!("{:.3}", row.bit_seconds),
        ]);
    }

    let report = render_report(&rows, cfg);
    let path = crate::report::write_bench_report(cfg.report_root(), "BENCH_tick.json", &report);

    let mut notes = vec![format!("wrote {}", path.display())];
    if let Some(headline) = rows.iter().rfind(|r| r.graph.starts_with("cycle")) {
        notes.push(format!(
            "{}: bit kernel sustains {:.0} rounds/s ({:.1}x the generic engine's {:.0}); \
             the {}-round timed segment took {:.2}s",
            headline.graph,
            headline.bit_rps,
            headline.speedup,
            headline.generic_rps,
            headline.bit_rounds,
            headline.bit_seconds
        ));
    }
    notes.push(
        "both kernels execute the same rounds from the same seed (byte-identical states; see \
         the bit_kernel_equivalence workspace tests) — the ratio is pure kernel speed"
            .to_owned(),
    );

    ExperimentResult {
        id: "E20-tick-scale",
        reproduces: "extension beyond the paper: throughput of the bit-parallel BFW kernel \
                     (word-wide bitplane rounds) vs the generic per-node engine",
        tables: vec![("kernel throughput".to_owned(), table)],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfw_stats::JsonValue;

    #[test]
    fn quick_run_produces_sweep_and_json() {
        // Redirect the report into a scratch directory: the tracked
        // workspace-root BENCH_tick.json holds release-build timings
        // and must not be overwritten by this debug-build quick run.
        let scratch = std::env::temp_dir().join(format!("bfw-tick-scale-{}", std::process::id()));
        std::fs::create_dir_all(&scratch).unwrap();
        let mut cfg = ExpConfig::quick();
        cfg.report_dir = Some(scratch.clone());
        let result = run(&cfg);
        assert_eq!(result.id, "E20-tick-scale");
        let table = &result.tables[0].1;
        // 1 quick size x 3 graphs.
        assert_eq!(table.row_count(), 3, "{}", table.to_markdown());
        let md = table.to_markdown();
        assert!(md.contains("cycle:1000"), "{md}");
        assert!(md.contains("random-regular:1000:4"), "{md}");

        // The JSON report exists, carries the envelope, and validates.
        let json = std::fs::read_to_string(scratch.join("BENCH_tick.json")).unwrap();
        let summary = crate::report::validate_bench_report(&json).unwrap();
        assert_eq!(summary.experiment, "E20-tick-scale");
        assert_eq!(summary.rows, 3);
        let value = JsonValue::parse(&json).unwrap();
        assert_eq!(
            value.get("version").and_then(JsonValue::as_number),
            Some(1.0)
        );
        assert_eq!(
            value.get("format").and_then(JsonValue::as_str),
            Some("bfw/bench-report")
        );
        let rows = value.get("rows").and_then(JsonValue::as_array).unwrap();
        assert_eq!(rows.len(), 3);
        for row in rows {
            assert!(row.get("speedup").and_then(JsonValue::as_number).is_some());
            assert!(
                row.get("bit_seconds")
                    .and_then(JsonValue::as_number)
                    .unwrap()
                    >= 0.0
            );
        }
        let _ = std::fs::remove_dir_all(&scratch);
    }

    #[test]
    fn round_budgets_scale_sanely() {
        assert_eq!(generic_rounds(1_000), 2_000);
        assert_eq!(generic_rounds(100_000), 20);
        assert_eq!(generic_rounds(1_000_000), 20);
        assert_eq!(bit_rounds(1_000), 100_000);
        assert_eq!(bit_rounds(1_000_000), 1_000);
        assert_eq!(generic_rounds(10_000_000), 20);
        assert_eq!(bit_rounds(10_000_000), 1_000);
        // The bit segment always times more rounds than the generic one.
        for n in [1_000usize, 10_000, 100_000, 1_000_000, 10_000_000] {
            assert!(bit_rounds(n) > generic_rounds(n), "n={n}");
        }
    }
}
