//! **E19 (extension) — complexity faceoff: beeps, bits, messages and
//! state across protocols and topologies.**
//!
//! The paper's Table 1 compares leader-election algorithms by their
//! *assumptions* and asymptotic round counts. This experiment measures
//! the other axes of the minimalism argument empirically: how much
//! information actually crosses the channel. For each workload it runs
//! BFW, BFW wrapped in the self-healing recovery layer, FloodMax (the
//! strong-model reference) and — on the clique — Knockout, all with the
//! complexity instrumentation of [`bfw_sim::instrument`] (FloodMax's
//! counters are analytic: its flooding schedule is deterministic), and
//! reports rounds × beeps × bits × messages × per-node state.
//!
//! Expected shape: FloodMax converges in `D` rounds but moves
//! `Θ(m · D · log n)` bits with `Ω(n)`-bit nodes, while BFW needs more
//! rounds yet each round carries at most one bit per node and the node
//! state stays a single byte — the diameter-two "message chasm" of the
//! related-work discussion, now with measured columns.
//!
//! Besides the stdout table the experiment **commits its numbers**: it
//! writes the versioned `BENCH_complexity.json` at the workspace root
//! (tracked like `BENCH_churn.json`; the CI smoke step asserts it is
//! emitted and parses).

use crate::{ExpConfig, ExperimentResult, GraphSpec};
use bfw_baselines::suite::{
    BfwUniform, CandidateAlgorithm, FloodMaxAlgorithm, KnockoutCliqueAlgorithm,
};
use bfw_baselines::ComplexityStats;
use bfw_core::{RecoveringNetwork, RecoveringProtocol, RecoveryConfig};
use bfw_graph::{algo, Graph};
use bfw_stats::Table;

/// Round budget per cell — generous: every stack converges far below
/// it on these sizes.
const MAX_ROUNDS: u64 = 10_000_000;

/// One measured cell of the faceoff.
struct Row {
    graph: String,
    diameter: u32,
    protocol: &'static str,
    /// `None` = not applicable on this topology (clique-only).
    outcome: Option<(u64, ComplexityStats)>,
}

/// The workloads: two cycle diameters, a torus, a random graph and the
/// clique (diameter-diverse, and the clique admits Knockout).
fn workloads(quick: bool) -> Vec<GraphSpec> {
    if quick {
        vec![
            GraphSpec::Cycle(16),
            GraphSpec::Cycle(48),
            GraphSpec::Torus(4, 4),
            GraphSpec::ErdosRenyi(24, 250, 7),
            GraphSpec::Clique(16),
        ]
    } else {
        vec![
            GraphSpec::Cycle(64),
            GraphSpec::Cycle(160),
            GraphSpec::Torus(8, 8),
            GraphSpec::ErdosRenyi(96, 80, 7),
            GraphSpec::Clique(64),
        ]
    }
}

/// Runs BFW under the self-healing recovery layer with instrumentation
/// until a unique leader emerges, returning the convergence round and
/// the measured channel complexity (`None` when the budget runs out).
fn run_recovering_measured(graph: &Graph, seed: u64) -> Option<(u64, ComplexityStats)> {
    let d = algo::diameter(graph)
        .expect("workloads are connected")
        .max(1);
    let config = RecoveryConfig::for_diameter(d);
    let protocol = RecoveringProtocol::bfw(0.5, config);
    let mut net = RecoveringNetwork::new(protocol, graph.clone().into(), seed);
    net.enable_instrumentation(None);
    let mut converged = None;
    for _ in 0..MAX_ROUNDS {
        net.step();
        if net.leader_count() == 1 {
            converged = Some(net.round());
            break;
        }
    }
    let round = converged?;
    let ledger = net.complexity_ledger().expect("instrumentation was on");
    Some((
        round,
        ComplexityStats {
            beeps_sent: ledger.beeps_sent(),
            beeps_heard: ledger.beeps_heard(),
            bits: ledger.bits(),
            messages: ledger.messages(),
            state_bytes: ledger.state_bytes_per_node(),
        },
    ))
}

fn measure(spec: &GraphSpec, graph: &Graph, diameter: u32, seed: u64) -> Vec<Row> {
    let is_clique = matches!(spec, GraphSpec::Clique(_));
    let cell = |protocol, outcome| Row {
        graph: spec.to_string(),
        diameter,
        protocol,
        outcome,
    };
    let beeping = |algo: &dyn CandidateAlgorithm| {
        algo.run_measured(graph, seed, MAX_ROUNDS)
            .ok()
            .and_then(|(stats, c)| c.map(|c| (stats.converged_round, c)))
    };
    vec![
        cell("BFW (p=0.5)", beeping(&BfwUniform { p: 0.5 })),
        cell("BFW + recovery", run_recovering_measured(graph, seed)),
        cell("FloodMax", beeping(&FloodMaxAlgorithm::default())),
        cell(
            "Knockout",
            if is_clique {
                beeping(&KnockoutCliqueAlgorithm::default())
            } else {
                None
            },
        ),
    ]
}

/// Assembles the `bfw/bench-report` document (see [`crate::report`]);
/// key-sorted deterministic rendering means re-runs diff cleanly, and
/// `bfw report validate` checks it back.
fn render_report(rows: &[Row], cfg: &ExpConfig) -> bfw_stats::JsonValue {
    use bfw_stats::JsonValue;
    crate::report::bench_report(
        "E19-complexity",
        cfg.quick,
        cfg.seed,
        [],
        rows.iter().map(|row| {
            let mut fields = vec![
                ("graph", JsonValue::from(row.graph.as_str())),
                ("diameter", JsonValue::from(row.diameter)),
                ("protocol", JsonValue::from(row.protocol)),
            ];
            match &row.outcome {
                Some((rounds, c)) => fields.extend([
                    ("rounds", JsonValue::from(*rounds)),
                    ("beeps_sent", JsonValue::from(c.beeps_sent)),
                    ("beeps_heard", JsonValue::from(c.beeps_heard)),
                    ("bits", JsonValue::from(c.bits)),
                    ("messages", JsonValue::from(c.messages)),
                    ("state_bytes", JsonValue::from(c.state_bytes)),
                ]),
                None => fields.push(("rounds", JsonValue::Null)),
            }
            JsonValue::object(fields)
        }),
    )
}

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> ExperimentResult {
    let mut table = Table::with_columns(&[
        "graph",
        "D",
        "protocol",
        "rounds",
        "beeps sent",
        "beeps heard",
        "bits",
        "messages",
        "state B/node",
    ]);
    let mut rows = Vec::new();
    for spec in workloads(cfg.quick) {
        let graph = spec.build();
        let diameter = algo::diameter(&graph).expect("workloads are connected");
        rows.extend(measure(&spec, &graph, diameter, cfg.seed));
    }
    for row in &rows {
        let cells = match &row.outcome {
            Some((rounds, c)) => vec![
                rounds.to_string(),
                c.beeps_sent.to_string(),
                c.beeps_heard.to_string(),
                c.bits.to_string(),
                c.messages.to_string(),
                c.state_bytes.to_string(),
            ],
            None => vec!["n/a (clique-only)".to_owned(); 6],
        };
        let mut full = vec![
            row.graph.clone(),
            row.diameter.to_string(),
            row.protocol.to_owned(),
        ];
        full.extend(cells);
        table.push_row(full);
    }

    let report = render_report(&rows, cfg);
    let path =
        crate::report::write_bench_report(cfg.report_root(), "BENCH_complexity.json", &report);

    let mut notes = vec![format!("wrote {}", path.display())];
    // The headline: on the largest cycle, compare BFW's channel usage
    // against FloodMax's.
    let largest = rows
        .iter()
        .filter(|r| r.graph.starts_with("cycle"))
        .filter_map(|r| {
            r.outcome
                .as_ref()
                .map(|(rounds, c)| (r.graph.clone(), r.protocol, *rounds, *c))
        })
        .collect::<Vec<_>>();
    if let (Some(bfw), Some(flood)) = (
        largest.iter().rfind(|(_, p, ..)| *p == "BFW (p=0.5)"),
        largest.iter().rfind(|(_, p, ..)| *p == "FloodMax"),
    ) {
        notes.push(format!(
            "{}: FloodMax converges in {} rounds to BFW's {}, but loads the channel with \
             {} bits/round to BFW's {} and needs {}B of state per node to BFW's {}B — \
             the message chasm, measured",
            bfw.0,
            flood.2,
            bfw.2,
            flood.3.bits / flood.2.max(1),
            bfw.3.bits / bfw.2.max(1),
            flood.3.state_bytes,
            bfw.3.state_bytes
        ));
    }
    notes.push(
        "beeps_heard counts post-noise perception events (beeping stacks only); FloodMax's \
         counters are the exact closed form messages = rounds x 2m, bits = messages x ceil(log2 n)"
            .to_owned(),
    );

    ExperimentResult {
        id: "E19-complexity",
        reproduces: "extension beyond the paper: empirical channel-complexity faceoff \
                     (rounds / beeps / bits / messages / state) across protocols and topologies",
        tables: vec![("complexity faceoff".to_owned(), table)],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfw_stats::JsonValue;

    #[test]
    fn quick_run_produces_faceoff_and_json() {
        // Keep the tracked workspace-root BENCH_complexity.json
        // untouched: write into a scratch directory instead.
        let scratch = std::env::temp_dir().join(format!("bfw-complexity-{}", std::process::id()));
        std::fs::create_dir_all(&scratch).unwrap();
        let mut cfg = ExpConfig::quick();
        cfg.trials = 1;
        cfg.report_dir = Some(scratch.clone());
        let result = run(&cfg);
        let table = &result.tables[0].1;
        // 5 workloads x 4 protocols.
        assert_eq!(table.row_count(), 20, "{}", table.to_markdown());
        let md = table.to_markdown();
        assert!(md.contains("BFW + recovery"), "{md}");
        assert!(md.contains("FloodMax"), "{md}");
        assert!(md.contains("n/a (clique-only)"), "{md}");
        // Knockout measures on the clique.
        let knockout_clique = table
            .rows()
            .iter()
            .find(|r| r[0].starts_with("clique") && r[2] == "Knockout")
            .unwrap();
        assert_ne!(knockout_clique[3], "n/a (clique-only)");

        // The JSON report exists, carries the envelope, and validates.
        let json = std::fs::read_to_string(scratch.join("BENCH_complexity.json")).unwrap();
        let summary = crate::report::validate_bench_report(&json).unwrap();
        assert_eq!(summary.experiment, "E19-complexity");
        assert_eq!(summary.rows, 20);
        let value = JsonValue::parse(&json).unwrap();
        assert_eq!(
            value.get("version").and_then(JsonValue::as_number),
            Some(1.0)
        );
        assert_eq!(
            value.get("format").and_then(JsonValue::as_str),
            Some("bfw/bench-report")
        );
        let rows = value.get("rows").and_then(JsonValue::as_array).unwrap();
        assert_eq!(rows.len(), 20);
        assert!(rows
            .iter()
            .any(|r| r.get("rounds") == Some(&JsonValue::Null)));
        let _ = std::fs::remove_dir_all(&scratch);
    }

    #[test]
    fn bfw_beats_floodmax_on_bits_at_diameter() {
        // The message-chasm shape on the larger quick cycle: FloodMax
        // is faster in rounds but moves more bits than BFW, with far
        // larger per-node state.
        let spec = GraphSpec::Cycle(48);
        let graph = spec.build();
        let rows = measure(&spec, &graph, 24, 0xBF_2025);
        let get = |name: &str| {
            *rows
                .iter()
                .find(|r| r.protocol == name)
                .and_then(|r| r.outcome.as_ref())
                .unwrap()
        };
        let (bfw_rounds, bfw) = get("BFW (p=0.5)");
        let (flood_rounds, flood) = get("FloodMax");
        assert!(flood_rounds < bfw_rounds);
        // Per-round channel load: FloodMax saturates every edge with a
        // log n-bit message each round, BFW's nodes emit at most one
        // bit each. (Totals can go either way on sparse graphs — BFW
        // runs for Theta(D^2 log n) rounds — which is exactly why the
        // faceoff reports both.)
        let flood_per_round = flood.bits / flood_rounds;
        let bfw_per_round = bfw.bits / bfw_rounds;
        assert!(
            flood_per_round > bfw_per_round,
            "{flood_per_round} vs {bfw_per_round}"
        );
        assert!(flood.state_bytes > bfw.state_bytes);
        assert_eq!(bfw.state_bytes, 1, "BFW state is one byte");
        assert_eq!(flood.beeps_sent, 0);
        assert!(bfw.beeps_sent > 0);
    }
}
