//! **E16 (exploratory) — BFW under asynchronous activation.**
//!
//! The paper claims BFW for the beeping model and for a *synchronous*
//! version of the stone-age model (§1) — the qualifier matters, since
//! the original stone-age model is asynchronous. This experiment runs
//! BFW under a uniformly random sequential scheduler and records what
//! actually happens. Mechanically, asynchrony breaks the freeze
//! discipline: a displayed beep persists until its emitter is next
//! activated, so a leader can be activated against the *smeared*
//! remnant of its own wave and eliminate itself; conversely, stretches
//! where a node is never activated stall the waves entirely.
//!
//! We report, per topology: wipeouts (zero leaders — impossible
//! synchronously), single-leader outcomes and their stability, and
//! undecided runs. No claim of the paper is tested here; this maps the
//! territory beyond the claim's boundary.

use crate::{ExpConfig, ExperimentResult, GraphSpec};
use bfw_core::Bfw;
use bfw_sim::run_trials;
use bfw_sim::stone_age::{AsyncStoneAgeNetwork, BeepingAsStoneAge};
use bfw_stats::{Summary, Table};

enum AsyncOutcome {
    /// Zero leaders before ever reaching a unique one.
    EarlyWipeout,
    /// A unique leader was reached, but it later eliminated itself
    /// (leader count is monotone, so "the single-leader configuration
    /// changed" can only mean it dropped to zero): a delayed wipeout.
    LateWipeout,
    /// Exactly one leader, stable for an extra `n²` activations.
    StableSingle(u64),
    /// Still more than one leader at the horizon.
    Undecided,
}

fn one_async_run(spec: &GraphSpec, seed: u64, horizon: u64) -> AsyncOutcome {
    let n = spec.topology().node_count() as u64;
    let mut net =
        AsyncStoneAgeNetwork::new(BeepingAsStoneAge::new(Bfw::new(0.5)), spec.topology(), seed);
    let mut reached_single = None;
    while net.activations() < horizon {
        net.activate_random();
        match net.leader_count() {
            0 => return AsyncOutcome::EarlyWipeout,
            1 => {
                reached_single = Some(net.activations());
                break;
            }
            _ => {}
        }
    }
    let Some(at) = reached_single else {
        return AsyncOutcome::Undecided;
    };
    for _ in 0..(n * n) {
        net.activate_random();
        if net.leader_count() == 0 {
            return AsyncOutcome::LateWipeout;
        }
    }
    AsyncOutcome::StableSingle(at)
}

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> ExperimentResult {
    let trials = (4 * cfg.trials).max(40);
    let workloads = if cfg.quick {
        vec![GraphSpec::Cycle(12), GraphSpec::Clique(12)]
    } else {
        vec![
            GraphSpec::Cycle(24),
            GraphSpec::Clique(32),
            GraphSpec::Grid(5, 5),
            GraphSpec::Path(24),
        ]
    };
    let mut table = Table::with_columns(&[
        "graph",
        "n",
        "early wipeouts",
        "late wipeouts (lone leader self-eliminates)",
        "stable single leader",
        "undecided",
        "activations/n to single (mean)",
    ]);
    let mut notes = Vec::new();
    let mut any_wipeout = false;

    for spec in &workloads {
        let n = spec.topology().node_count() as u64;
        let horizon = 50_000 * n; // generous: ~50k "round equivalents"
        let outcomes = run_trials(
            trials,
            cfg.threads,
            cfg.seed ^ 0xA5C,
            |seed| match one_async_run(spec, seed, horizon) {
                AsyncOutcome::EarlyWipeout => (0u8, 0),
                AsyncOutcome::LateWipeout => (1u8, 0),
                AsyncOutcome::StableSingle(a) => (2u8, a),
                AsyncOutcome::Undecided => (3u8, 0),
            },
        );
        let early = outcomes.iter().filter(|o| o.0 == 0).count();
        let late = outcomes.iter().filter(|o| o.0 == 1).count();
        let stable: Vec<f64> = outcomes
            .iter()
            .filter(|o| o.0 == 2)
            .map(|o| o.1 as f64 / n as f64)
            .collect();
        let undecided = outcomes.iter().filter(|o| o.0 == 3).count();
        any_wipeout |= early + late > 0;
        let mean = Summary::from_values(stable.clone());
        table.push_row(vec![
            spec.to_string(),
            n.to_string(),
            format!("{early}/{trials}"),
            format!("{late}/{trials}"),
            format!("{}/{trials}", stable.len()),
            undecided.to_string(),
            if mean.is_empty() {
                "—".into()
            } else {
                format!("{:.0}", mean.mean())
            },
        ]);
    }

    if any_wipeout {
        notes.push(
            "wipeouts occur under asynchrony — impossible in the synchronous model \
             (Lemma 9). A displayed beep persists until its emitter's next activation, \
             so a lone leader is eventually activated against the smeared echo of its \
             own wave and eliminates itself. The paper's restriction to a *synchronous* \
             stone-age model is necessary, not stylistic."
                .to_owned(),
        );
    } else {
        notes.push(
            "no wipeout observed at these sizes/horizons; asynchrony mainly slows or \
             stalls elimination here — larger instances or adversarial schedules may \
             still break Lemma 9."
                .to_owned(),
        );
    }
    notes.push(
        "exploratory: the paper makes no claim about asynchronous execution; this \
         experiment maps the boundary of the synchrony assumption."
            .to_owned(),
    );

    ExperimentResult {
        id: "E16-async",
        reproduces: "exploration beyond §1's synchrony qualifier (async stone-age scheduler)",
        tables: vec![("asynchronous BFW outcomes".to_owned(), table)],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_outcome_table() {
        let mut cfg = ExpConfig::quick();
        cfg.trials = 5;
        let result = run(&cfg);
        let table = &result.tables[0].1;
        assert_eq!(table.row_count(), 2);
        // Outcome counts add up to the trial count
        // ((4 * cfg.trials).max(40) = 40 for cfg.trials = 5).
        for row in table.rows() {
            let early: usize = row[2].split('/').next().unwrap().parse().unwrap();
            let late: usize = row[3].split('/').next().unwrap().parse().unwrap();
            let stable: usize = row[4].split('/').next().unwrap().parse().unwrap();
            let undecided: usize = row[5].parse().unwrap();
            assert_eq!(early + late + stable + undecided, 40, "{row:?}");
        }
        assert_eq!(result.notes.len(), 2);
    }
}
