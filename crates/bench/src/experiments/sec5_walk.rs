//! **E7 — the Section 5 tightness conjecture.**
//!
//! The paper's discussion argues the `O(D² log n)` bound is tight up to
//! `log n`: put exactly two leaders at the ends of a path of length
//! `D`; their beep waves meet in the middle, and the meeting point
//! performs (approximately) a ±1 random walk, so one leader survives
//! only after `Θ(D²)` rounds. We measure the elimination time of this
//! exact configuration across a `D` sweep — the log–log exponent should
//! approach 2 (no `log n` factor: the pair count is 1, so the union
//! bound costs nothing here).

use crate::{election_summary, ExpConfig, ExperimentResult, GraphSpec};
use bfw_core::{theory, Bfw, InitialConfig};
use bfw_graph::NodeId;
use bfw_sim::{run_trials, Network};
use bfw_stats::loglog_fit;
use bfw_stats::{linear_fit, Summary, Table};

fn diameters(quick: bool) -> Vec<usize> {
    if quick {
        vec![4, 8, 16, 32]
    } else {
        vec![4, 8, 16, 32, 64, 128]
    }
}

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> ExperimentResult {
    let mut table = Table::with_columns(&[
        "D",
        "n",
        "elimination rounds (mean ± ci95)",
        "p95",
        "rounds / D²",
        "failed",
    ]);
    let mut ds = Vec::new();
    let mut means = Vec::new();

    for &d in &diameters(cfg.quick) {
        let n = d + 1;
        let spec = GraphSpec::Path(n);
        let init = InitialConfig::Nodes(vec![NodeId::new(0), NodeId::new(n - 1)]);
        let budget = super::thm2_d::d2_budget(d as u32, n);
        let s = election_summary(
            0.5,
            &init,
            &spec.topology(),
            cfg.trials,
            cfg.threads,
            cfg.seed,
            budget,
        );
        table.push_row(vec![
            d.to_string(),
            n.to_string(),
            s.display_rounds(),
            format!("{:.0}", s.rounds.quantile(0.95)),
            format!(
                "{:.3}",
                s.rounds.mean() / theory::section5_reference(d as u32)
            ),
            s.failures.to_string(),
        ]);
        if !s.rounds.is_empty() {
            ds.push(d as f64);
            means.push(s.rounds.mean());
        }
    }

    let mut notes = Vec::new();
    if ds.len() >= 2 {
        let fit = loglog_fit(&ds, &means);
        notes.push(format!(
            "two-leader duel: elimination rounds ≈ c·D^{:.2} (R² = {:.3}) — the paper's \
             §5 random-walk heuristic predicts an exponent of 2",
            fit.slope, fit.r_squared
        ));
    }
    notes.push(
        "a roughly flat rounds/D² column supports the conjecture that Theorem 2 is tight \
         up to the log n factor."
            .to_owned(),
    );

    let (walk_table, walk_notes) = random_walk_diagnostics(cfg);
    notes.extend(walk_notes);

    ExperimentResult {
        id: "E7-sec5-duel",
        reproduces: "Section 5's tightness conjecture (two leaders at path ends, Θ(D²) duel)",
        tables: vec![
            ("two-leader duel vs D".to_owned(), table),
            ("ΔN_beep random-walk diagnostics".to_owned(), walk_table),
        ],
        notes,
    }
}

/// The mechanism behind the conjecture: while both leaders survive,
/// `ΔN_t = N_beep_t(u) − N_beep_t(v)` drives the wave meeting point
/// (Corollary 8 — the flow between them equals `ΔN_t`), and Section 4's
/// coupling makes `ΔN_t` a difference of two i.i.d. renewal counters:
/// an unbiased, linear-variance walk. We measure its drift and
/// variance at checkpoints over trials that still have both leaders.
fn random_walk_diagnostics(cfg: &ExpConfig) -> (Table, Vec<String>) {
    let d: usize = if cfg.quick { 32 } else { 64 };
    let n = d + 1;
    let trials = (4 * cfg.trials).max(40);
    let checkpoints: Vec<u64> = (1..=6).map(|k| (k * d / 2) as u64).collect();

    // Per trial: ΔN at each checkpoint, or None once a leader died.
    let samples = run_trials(trials, cfg.threads, cfg.seed ^ 0x5EC5, |seed| {
        let protocol = Bfw::new(0.5).with_initial_config(InitialConfig::Nodes(vec![
            NodeId::new(0),
            NodeId::new(n - 1),
        ]));
        let mut net = Network::new(protocol, GraphSpec::Path(n).topology(), seed);
        let mut counts = [0i64; 2];
        let mut out: Vec<Option<i64>> = Vec::with_capacity(checkpoints.len());
        let mut next = 0;
        for t in 1..=*checkpoints.last().expect("non-empty") {
            net.step();
            counts[0] += i64::from(net.beep_flags()[0]);
            counts[1] += i64::from(net.beep_flags()[n - 1]);
            if checkpoints[next] == t {
                out.push((net.leader_count() == 2).then(|| counts[0] - counts[1]));
                next += 1;
            }
        }
        out
    });

    let mut table = Table::with_columns(&[
        "t (rounds)",
        "surviving trials",
        "mean ΔN (drift)",
        "Var(ΔN)",
        "Var(ΔN)/t",
    ]);
    let mut ts = Vec::new();
    let mut vars = Vec::new();
    for (i, &t) in checkpoints.iter().enumerate() {
        let deltas: Vec<f64> = samples
            .iter()
            .filter_map(|s| s[i])
            .map(|d| d as f64)
            .collect();
        if deltas.len() < 2 {
            continue;
        }
        let s = Summary::from_values(deltas);
        table.push_row(vec![
            t.to_string(),
            s.len().to_string(),
            format!("{:.2}", s.mean()),
            format!("{:.2}", s.variance()),
            format!("{:.4}", s.variance() / t as f64),
        ]);
        ts.push(t as f64);
        vars.push(s.variance());
    }
    let mut notes = Vec::new();
    if ts.len() >= 2 {
        let fit = linear_fit(&ts, &vars);
        notes.push(format!(
            "ΔN between the two leaders: drift ≈ 0 (symmetry) and Var(ΔN_t) ≈ {:.3}·t \
             (linear fit, R² = {:.3}) — the unbiased linear-variance walk behind the §5 \
             heuristic and Lemma 14's anti-concentration",
            fit.slope, fit.r_squared
        ));
    }
    (table, notes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reports_quadratic_exponent() {
        let mut cfg = ExpConfig::quick();
        cfg.trials = 6;
        let result = run(&cfg);
        assert_eq!(result.tables[0].1.row_count(), 4);
        assert!(result.notes[0].contains("D^"));
        // Random-walk diagnostics present with a linear-variance note.
        assert_eq!(result.tables.len(), 2);
        assert!(result.tables[1].1.row_count() >= 2);
        assert!(result.notes.last().expect("walk note").contains("Var"));
    }
}
