//! **E13 — footnote 4: termination detection from known `n` and `D`.**
//!
//! Table 1's footnote: with `p = 1/(D+1)` and knowledge of `n`, BFW
//! "could stop after Ω(D log n) rounds to achieve termination detection
//! w.h.p.". [`bfw_core::BfwWithTermination`] implements the deadline
//! commit at `⌈C·(2D+1)·ln n⌉` rounds. This experiment measures the
//! error probability (more than one node committing as leader — the
//! safety violation) as a function of the safety factor `C`: Theorem 3
//! predicts exponential decay, so a handful of multiples of the
//! `D log n` scale should already drive the error to zero at these
//! sizes.

use crate::{ExpConfig, ExperimentResult, GraphSpec};
use bfw_core::{BfwWithTermination, TerminationState};
use bfw_sim::{run_trials, Network};
use bfw_stats::Table;

const FACTORS: [f64; 6] = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0];

fn committed_leaders(spec: &GraphSpec, c: f64, seed: u64) -> usize {
    let n = spec.topology().node_count();
    let d = spec.diameter();
    let protocol = BfwWithTermination::new(d, n, c);
    let deadline = protocol.deadline();
    let mut net = Network::new(protocol, spec.topology(), seed);
    net.run(deadline + 1);
    net.states()
        .iter()
        .filter(|s| matches!(s, TerminationState::DoneLeader))
        .count()
}

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> ExperimentResult {
    let trials = (4 * cfg.trials).max(40);
    let workloads = if cfg.quick {
        vec![GraphSpec::Cycle(16), GraphSpec::Path(12)]
    } else {
        vec![
            GraphSpec::Cycle(32),
            GraphSpec::Path(32),
            GraphSpec::Grid(6, 6),
        ]
    };
    let mut table = Table::with_columns(&[
        "graph",
        "C",
        "deadline (rounds)",
        "multi-leader commits",
        "zero-leader commits",
        "error rate",
    ]);
    let mut notes = Vec::new();

    for spec in &workloads {
        let n = spec.topology().node_count();
        let d = spec.diameter();
        let mut last_error = 1.0;
        for &c in &FACTORS {
            let deadline = BfwWithTermination::new(d, n, c).deadline();
            let outcomes = run_trials(trials, cfg.threads, cfg.seed, |seed| {
                committed_leaders(spec, c, seed)
            });
            let multi = outcomes.iter().filter(|&&l| l > 1).count();
            // Lemma 9 forbids zero leaders; committing zero would be a
            // catastrophic bug, not a probability.
            let zero = outcomes.iter().filter(|&&l| l == 0).count();
            let error = multi as f64 / trials as f64;
            last_error = error;
            table.push_row(vec![
                spec.to_string(),
                format!("{c}"),
                deadline.to_string(),
                format!("{multi}/{trials}"),
                format!("{zero}/{trials}"),
                format!("{:.1}%", 100.0 * error),
            ]);
        }
        notes.push(format!(
            "{spec}: error rate at C = 8 is {:.1}% — a constant multiple of the D·log n \
             scale suffices, as footnote 4 claims",
            100.0 * last_error
        ));
    }
    notes.push(
        "zero-leader commits are 0 everywhere (Lemma 9 holds right up to the deadline); \
         the price of termination detection is the counter: Θ(D log n) states instead \
         of 6."
            .to_owned(),
    );

    ExperimentResult {
        id: "E13-termination",
        reproduces: "footnote 4 (termination detection w.h.p. from known n, D)",
        tables: vec![("commit error vs safety factor".to_owned(), table)],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shows_decaying_error() {
        let mut cfg = ExpConfig::quick();
        cfg.trials = 8;
        let result = run(&cfg);
        let table = &result.tables[0].1;
        assert_eq!(table.row_count(), 2 * FACTORS.len());
        for row in table.rows() {
            // Never zero committed leaders.
            assert!(row[4].starts_with("0/"), "{row:?}");
        }
        // The largest factor should be error-free on these small graphs.
        for row in table.rows().iter().filter(|r| r[1] == "8") {
            assert_eq!(row[5], "0.0%", "{row:?}");
        }
    }
}
