//! One module per experiment of the DESIGN.md index (E1 lives in
//! `bfw-core`'s exhaustive state-machine tests; E10 lives in the
//! workspace `model_equivalence` integration test — both are pure test
//! artifacts. Everything that produces a table or series is here).

pub mod ablation;
pub mod async_faults;
pub mod async_stone_age;
pub mod chain;
pub mod churn;
pub mod churn_scale;
pub mod complexity;
pub mod convergence;
pub mod decay;
pub mod flow_audit;
pub mod noise;
pub mod p_sweep;
pub mod parallel_scale;
pub mod recovery;
pub mod sec5_walk;
pub mod table1;
pub mod termination;
pub mod thm2_d;
pub mod thm2_n;
pub mod thm3;
pub mod tick_scale;

use crate::{ExpConfig, ExperimentResult};

/// An experiment entry point, as stored in the registry.
pub type ExperimentFn = fn(&ExpConfig) -> ExperimentResult;

/// Registry of all runnable experiments: `(cli-name, runner)`.
pub fn all() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("table1", table1::run as ExperimentFn),
        ("thm2-n", thm2_n::run),
        ("thm2-d", thm2_d::run),
        ("thm3", thm3::run),
        ("convergence", convergence::run),
        ("sec5", sec5_walk::run),
        ("p-sweep", p_sweep::run),
        ("chain", chain::run),
        ("flow", flow_audit::run),
        ("ablation", ablation::run),
        ("termination", termination::run),
        ("noise", noise::run),
        ("decay", decay::run),
        ("async", async_stone_age::run),
        ("churn", churn::run),
        ("churn-scale", churn_scale::run),
        ("recovery", recovery::run),
        ("async-faults", async_faults::run),
        ("complexity", complexity::run),
        ("tick-scale", tick_scale::run),
        ("parallel-scale", parallel_scale::run),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique() {
        let names: Vec<&str> = all().iter().map(|(n, _)| *n).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert_eq!(names.len(), 21);
    }
}
