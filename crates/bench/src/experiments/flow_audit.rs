//! **E12 — the flow theory audited at scale.**
//!
//! Ohm's law (Corollary 8), conservation (Lemma 7) and the Lipschitz
//! bound (Lemma 11) are deterministic theorems; this experiment runs
//! them as exact checks over the full workload suite and reports the
//! number of checks performed vs violations found (must be zero — any
//! violation is an implementation bug, not noise).

use crate::{ExpConfig, ExperimentResult, GraphSpec};
use bfw_core::{flow, Bfw, FlowAuditor, InvariantChecker};
use bfw_sim::{observe_run, Network, ObserverSet, Topology};
use bfw_stats::Table;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> ExperimentResult {
    let rounds: u64 = if cfg.quick { 300 } else { 2_000 };
    let mut table = Table::with_columns(&[
        "graph",
        "paths audited",
        "rounds",
        "flow checks",
        "flow violations",
        "invariant rounds",
        "invariant violations",
    ]);
    let mut total_violations = 0u64;

    for spec in GraphSpec::standard_suite(cfg.quick) {
        // FlowAuditor needs explicit adjacency; materialize cliques
        // (and compact overlays, though specs never produce them).
        let graph = match spec.topology() {
            Topology::Graph(g) => g,
            t => t.to_graph(),
        };
        let n = graph.node_count();
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xF10);
        let mut auditor = FlowAuditor::new(n);
        for _ in 0..6 {
            let start = bfw_graph::NodeId::new(rng.random_range(0..n));
            if let Some(path) = flow::random_walk_path(&graph, start, 12, &mut rng) {
                auditor.register_path(path);
            }
        }
        let checker = InvariantChecker::new(&graph).with_lemma11(n <= 64);
        let mut combo = ObserverSet::new(auditor, checker);
        let mut net = Network::new(Bfw::new(0.5), graph.into(), cfg.seed);
        observe_run(&mut net, &mut combo, rounds, |_| false);
        let (auditor, checker) = (combo.first, combo.second);
        total_violations +=
            auditor.violations().len() as u64 + checker.report().violations().len() as u64;
        table.push_row(vec![
            spec.to_string(),
            "6".to_owned(),
            rounds.to_string(),
            auditor.checks_performed().to_string(),
            auditor.violations().len().to_string(),
            checker.report().rounds_checked().to_string(),
            checker.report().violations().len().to_string(),
        ]);
    }

    ExperimentResult {
        id: "E12-flow-audit",
        reproduces: "Corollary 8 (Ohm's law), Lemma 7, Lemma 9, Lemma 11, Claim 6 — exact",
        tables: vec![("flow & invariant audit".to_owned(), table)],
        notes: vec![format!(
            "{total_violations} violations across the suite (expected 0) — the flow theory \
             holds deterministically on every audited execution."
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_audit_is_clean() {
        let cfg = ExpConfig::quick();
        let result = run(&cfg);
        for row in result.tables[0].1.rows() {
            assert_eq!(row[4], "0", "flow violations in {row:?}");
            assert_eq!(row[6], "0", "invariant violations in {row:?}");
        }
        assert!(result.notes[0].starts_with('0'));
    }
}
