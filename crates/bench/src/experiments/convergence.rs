//! **E6 — Definition 1, Lemma 9 and almost-sure convergence.**
//!
//! For every workload in the standard suite and every trial we check the
//! full eventual-leader-election contract: (i) at least one leader in
//! every round (Lemma 9), (ii) the leader set never grows, (iii) a
//! single-leader round is reached, and (iv) the configuration then
//! persists (we keep running for a multiple of the convergence time and
//! require the same unique leader throughout). Zero violations expected.

use crate::{ExpConfig, ExperimentResult, GraphSpec};
use bfw_core::Bfw;
use bfw_sim::{observe_run, run_trials, ConvergenceDetector, Network};
use bfw_stats::{Summary, Table};

struct TrialOutcome {
    converged: Option<u64>,
    min_leaders: usize,
    leaders_increased: bool,
    stable: bool,
}

fn one_trial(spec: &GraphSpec, seed: u64, budget: u64) -> TrialOutcome {
    let mut net = Network::new(Bfw::new(0.5), spec.topology(), seed);
    let mut det = ConvergenceDetector::new();
    let converged = observe_run(&mut net, &mut det, budget, |v| v.leader_count() == 1);
    let mut stable = true;
    if let Some(round) = converged {
        let leader = net.unique_leader();
        // Definition 1 asks for persistence from T on: watch 3T + 64
        // extra rounds.
        for _ in 0..(3 * round + 64) {
            net.step();
            if net.unique_leader() != leader {
                stable = false;
                break;
            }
        }
    }
    TrialOutcome {
        converged,
        min_leaders: det.min_leader_count(),
        leaders_increased: det.leader_count_increased(),
        stable,
    }
}

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> ExperimentResult {
    let mut table = Table::with_columns(&[
        "graph",
        "n",
        "D",
        "trials",
        "converged",
        "rounds (mean)",
        "min leaders seen",
        "monotone",
        "stable",
    ]);
    let mut total_violations = 0usize;

    for spec in GraphSpec::standard_suite(cfg.quick) {
        let d = spec.diameter();
        let n = spec.topology().node_count();
        let budget = super::thm2_d::d2_budget(d, n);
        let outcomes = run_trials(cfg.trials, cfg.threads, cfg.seed, |seed| {
            let o = one_trial(&spec, seed, budget);
            (o.converged, o.min_leaders, o.leaders_increased, o.stable)
        });
        let converged = outcomes.iter().filter(|o| o.0.is_some()).count();
        let rounds = Summary::from_values(outcomes.iter().filter_map(|o| o.0.map(|r| r as f64)));
        let min_leaders = outcomes.iter().map(|o| o.1).min().unwrap_or(0);
        let monotone = outcomes.iter().all(|o| !o.2);
        let stable = outcomes.iter().all(|o| o.3);
        if min_leaders == 0 || !monotone || !stable || converged < cfg.trials {
            total_violations += 1;
        }
        table.push_row(vec![
            spec.to_string(),
            n.to_string(),
            d.to_string(),
            cfg.trials.to_string(),
            format!("{converged}/{}", cfg.trials),
            if rounds.is_empty() {
                "—".into()
            } else {
                format!("{:.0}", rounds.mean())
            },
            min_leaders.to_string(),
            yesno(monotone),
            yesno(stable),
        ]);
    }

    let notes = vec![
        format!(
            "{total_violations} workload(s) violated the contract (expected 0): Lemma 9 \
             (≥1 leader), monotone leader set, convergence within the Theorem 2 budget, \
             and post-convergence stability all hold."
        ),
        "\"min leaders seen\" = 1 everywhere: exactly one leader remains, never zero \
         (almost-sure convergence, Definition 1)."
            .to_owned(),
    ];

    ExperimentResult {
        id: "E6-convergence",
        reproduces: "Definition 1 + Lemma 9 + Theorem 2's a.s. convergence, across the suite",
        tables: vec![("convergence contract".to_owned(), table)],
        notes,
    }
}

fn yesno(b: bool) -> String {
    if b { "yes" } else { "NO" }.to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_contract_holds() {
        let mut cfg = ExpConfig::quick();
        cfg.trials = 3;
        let result = run(&cfg);
        let table = &result.tables[0].1;
        assert!(table.row_count() >= 5);
        for row in table.rows() {
            assert_eq!(row[6], "1", "min leaders must be exactly 1: {row:?}");
            assert_eq!(row[7], "yes", "leader set must be monotone: {row:?}");
            assert_eq!(row[8], "yes", "single leader must persist: {row:?}");
        }
        assert!(result.notes[0].starts_with('0'), "{}", result.notes[0]);
    }
}
