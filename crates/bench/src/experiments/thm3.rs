//! **E5 — Theorem 3: `p = 1/(D+1)` converges in `O(D log n)`.**
//!
//! Running the same path/cycle sweep as E4 with the non-uniform
//! parameter should (a) drop the log–log exponent from ≈2 to ≈1 and
//! (b) open a speedup over uniform `p = 1/2` that grows roughly
//! linearly with `D` — the paper's space–time trade-off in action.

use crate::experiments::thm2_d::d2_budget;
use crate::{election_summary, ExpConfig, ExperimentResult, GraphSpec};
use bfw_core::theory;
use bfw_core::InitialConfig;
use bfw_markov::BfwChainTheory;
use bfw_stats::{loglog_fit, Table};

fn sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![8, 12, 16, 24, 32]
    } else {
        vec![8, 12, 16, 24, 32, 48, 64, 96, 128]
    }
}

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> ExperimentResult {
    let mut table = Table::with_columns(&[
        "family",
        "n",
        "D",
        "p=1/(D+1) rounds",
        "p=1/2 rounds",
        "speedup",
        "rounds / (D ln n)",
        "failed",
    ]);
    let mut notes = Vec::new();

    for family in ["path", "cycle"] {
        let mut ds = Vec::new();
        let mut means_known = Vec::new();
        for &n in &sizes(cfg.quick) {
            let spec = match family {
                "path" => GraphSpec::Path(n),
                _ => GraphSpec::Cycle(n),
            };
            let d = spec.diameter();
            let budget = d2_budget(d, n);
            let p_known = BfwChainTheory::theorem3_p(d);
            let known = election_summary(
                p_known,
                &InitialConfig::AllLeaders,
                &spec.topology(),
                cfg.trials,
                cfg.threads,
                cfg.seed,
                budget,
            );
            let uniform = election_summary(
                0.5,
                &InitialConfig::AllLeaders,
                &spec.topology(),
                cfg.trials,
                cfg.threads,
                cfg.seed ^ 0x5EED,
                budget,
            );
            let speedup = if known.rounds.is_empty() || uniform.rounds.is_empty() {
                "—".to_owned()
            } else {
                format!("{:.2}x", uniform.rounds.mean() / known.rounds.mean())
            };
            table.push_row(vec![
                family.to_owned(),
                n.to_string(),
                d.to_string(),
                known.display_rounds(),
                uniform.display_rounds(),
                speedup,
                format!("{:.3}", theory::theorem3_ratio(known.rounds.mean(), d, n)),
                format!("{}", known.failures + uniform.failures),
            ]);
            if !known.rounds.is_empty() {
                ds.push(f64::from(d));
                means_known.push(known.rounds.mean());
            }
        }
        if ds.len() >= 2 {
            let fit = loglog_fit(&ds, &means_known);
            notes.push(format!(
                "{family}: with p = 1/(D+1), rounds ≈ c·D^{:.2} (R² = {:.3}) — Theorem 3 \
                 predicts an exponent near 1 (vs ≈2 for uniform p)",
                fit.slope, fit.r_squared
            ));
        }
    }
    notes.push(
        "The uniform/known-D speedup grows with D — the Θ̃(D) overhead the paper's \
         abstract concedes for uniformity."
            .to_owned(),
    );

    ExperimentResult {
        id: "E5-thm3",
        reproduces: "Theorem 3 (p = 1/(D+1) ⇒ O(D log n)) and the uniformity trade-off",
        tables: vec![("known-D vs uniform".to_owned(), table)],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_compares_variants() {
        let mut cfg = ExpConfig::quick();
        cfg.trials = 4;
        let result = run(&cfg);
        assert_eq!(result.tables[0].1.row_count(), 10);
        assert!(result.notes.len() >= 3);
    }
}
