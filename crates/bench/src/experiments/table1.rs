//! **E2 + E11 — the paper's Table 1, measured.**
//!
//! The paper compares BFW against prior leader-election algorithms along
//! two axes: what they *assume* (identifiers, knowledge of `n`/`D`,
//! model strength, state budget) and what they *cost* (round
//! complexity). We reproduce both: an assumptions table straight from
//! the implementations' [`AlgorithmInfo`](bfw_baselines::AlgorithmInfo),
//! and measured convergence
//! rounds plus distinct-state counts on a common workload suite.
//!
//! Expected shape: FloodMax (strong model) fastest at `≈ D`;
//! BitwiseMaxId deterministic at `≈ D log n` with `Ω(n)` states; BFW
//! uniform slowest (`≈ D² log n`) but with **six** states and zero
//! assumptions; known-`D` BFW in between; Knockout fast on the clique
//! and incorrect elsewhere.

use crate::{ExpConfig, ExperimentResult, GraphSpec};
use bfw_baselines::standard_suite;
use bfw_sim::run_trials;
use bfw_stats::{Summary, Table};

fn comparison_workloads(quick: bool) -> Vec<GraphSpec> {
    let mut w = vec![
        GraphSpec::Clique(16),
        GraphSpec::Star(16),
        GraphSpec::Path(16),
        GraphSpec::Grid(4, 4),
    ];
    if !quick {
        w.push(GraphSpec::Cycle(32));
        w.push(GraphSpec::ErdosRenyi(32, 200, 7));
    }
    w
}

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> ExperimentResult {
    let algorithms = standard_suite(0.5);

    // Assumptions table (the static half of Table 1).
    let mut assumptions = Table::with_columns(&[
        "algorithm",
        "model",
        "unique IDs",
        "knowledge",
        "states (bound)",
        "deterministic",
        "single-hop only",
    ]);
    for a in &algorithms {
        let i = a.info();
        assumptions.push_row(vec![
            i.name.to_owned(),
            i.model.to_string(),
            yesno(i.unique_ids),
            i.knowledge.to_owned(),
            i.state_bound.to_owned(),
            yesno(i.deterministic),
            yesno(i.clique_only),
        ]);
    }

    // Measured rounds + states per workload.
    let mut measured = Table::with_columns(&[
        "graph",
        "n",
        "D",
        "algorithm",
        "rounds (mean ± ci95)",
        "rounds p95",
        "states used (max)",
        "failed trials",
    ]);
    let mut notes = Vec::new();

    for spec in comparison_workloads(cfg.quick) {
        let graph = spec.build();
        let n = graph.node_count();
        let d = spec.diameter();
        // Budget: generous multiple of the slowest expected algorithm.
        let budget = 2_000
            * u64::from(d.max(1))
            * u64::from(d.max(1))
            * (n.max(2) as f64).ln().ceil() as u64;
        for a in &algorithms {
            let info = a.info();
            let trials = if info.deterministic { 1 } else { cfg.trials };
            let outcomes = run_trials(trials, cfg.threads, cfg.seed, |seed| {
                a.run(&graph, seed, budget)
                    .ok()
                    .map(|s| (s.converged_round, s.distinct_states))
            });
            let ok: Vec<(u64, usize)> = outcomes.iter().flatten().copied().collect();
            let failures = trials - ok.len();
            let rounds = Summary::from_values(ok.iter().map(|&(r, _)| r as f64));
            let max_states = ok.iter().map(|&(_, s)| s).max().unwrap_or(0);
            let (mean_ci, p95) = if rounds.is_empty() {
                ("no convergence".to_owned(), "—".to_owned())
            } else {
                (
                    format!("{:.1} ± {:.1}", rounds.mean(), rounds.ci95_half_width()),
                    format!("{:.0}", rounds.quantile(0.95)),
                )
            };
            measured.push_row(vec![
                spec.to_string(),
                n.to_string(),
                d.to_string(),
                info.name.to_owned(),
                mean_ci,
                p95,
                if max_states == 0 {
                    "—".to_owned()
                } else {
                    max_states.to_string()
                },
                failures.to_string(),
            ]);
        }
    }

    notes.push(
        "BFW uses at most 6 distinct states on every workload; ID-based algorithms use \
         Ω(n) (measured column)."
            .to_owned(),
    );
    notes.push(
        "Ordering matches Table 1: FloodMax ≈ D ≤ BitwiseMaxId ≈ D·log n ≤ BFW ≈ D²·log n; \
         Knockout converges only on the clique."
            .to_owned(),
    );

    ExperimentResult {
        id: "E2-table1",
        reproduces: "Table 1 (assumptions + empirical round complexity) and E11 (states column)",
        tables: vec![
            ("Table 1a: assumptions".to_owned(), assumptions),
            ("Table 1b: measured".to_owned(), measured),
        ],
        notes,
    }
}

fn yesno(b: bool) -> String {
    if b { "yes" } else { "no" }.to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_tables() {
        let mut cfg = ExpConfig::quick();
        cfg.trials = 3;
        let result = run(&cfg);
        assert_eq!(result.tables.len(), 2);
        let (_, assumptions) = &result.tables[0];
        assert_eq!(assumptions.row_count(), 5);
        let (_, measured) = &result.tables[1];
        // 4 quick workloads × 5 algorithms.
        assert_eq!(measured.row_count(), 20);
        assert!(result.to_markdown().contains("Table 1a"));
    }
}
