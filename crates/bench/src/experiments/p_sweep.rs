//! **E8 — ablation of the paper's "any constant p (say 1/2)".**
//!
//! Section 1.2 fixes no particular `p`; the analysis only needs a
//! constant in `(0, 1)`. Sweeping `p` shows why: on a fixed graph the
//! convergence time is a shallow bowl in `p` — very small `p` wastes
//! rounds waiting for anyone to beep, very large `p` produces constant
//! collisions (everyone beeps, nobody gets eliminated while beeping) —
//! and any moderate constant is within a small factor of the optimum.
//! On high-diameter graphs the optimum shifts toward small `p`,
//! foreshadowing Theorem 3's `p = 1/(D+1)`.

use crate::{election_summary, ExpConfig, ExperimentResult, GraphSpec};
use bfw_core::InitialConfig;
use bfw_stats::Table;

const PS: [f64; 8] = [0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.8, 0.9];

fn workloads(quick: bool) -> Vec<GraphSpec> {
    if quick {
        vec![GraphSpec::Cycle(16), GraphSpec::Clique(16)]
    } else {
        vec![
            GraphSpec::Cycle(32),
            GraphSpec::Clique(64),
            GraphSpec::Grid(6, 6),
        ]
    }
}

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> ExperimentResult {
    let mut table = Table::with_columns(&[
        "graph",
        "p",
        "rounds (mean ± ci95)",
        "p95",
        "total beeps (mean)",
        "failed",
    ]);
    let mut notes = Vec::new();

    for spec in workloads(cfg.quick) {
        let topo = spec.topology();
        let d = spec.diameter();
        let n = topo.node_count();
        let budget = 40 * super::thm2_d::d2_budget(d, n); // p = 0.05 is slow
        let mut best: Option<(f64, f64)> = None;
        let mut at_half = f64::NAN;
        for &p in &PS {
            let s = election_summary(
                p,
                &InitialConfig::AllLeaders,
                &topo,
                cfg.trials,
                cfg.threads,
                cfg.seed,
                budget,
            );
            if !s.rounds.is_empty() {
                let mean = s.rounds.mean();
                if best.is_none_or(|(_, b)| mean < b) {
                    best = Some((p, mean));
                }
                if (p - 0.5).abs() < 1e-9 {
                    at_half = mean;
                }
            }
            table.push_row(vec![
                spec.to_string(),
                format!("{p:.2}"),
                s.display_rounds(),
                format!("{:.0}", s.rounds.quantile(0.95)),
                format!("{:.0}", s.beeps.mean()),
                s.failures.to_string(),
            ]);
        }
        if let Some((best_p, best_mean)) = best {
            notes.push(format!(
                "{spec}: optimum near p = {best_p:.2} ({best_mean:.0} rounds); the paper's \
                 default p = 1/2 costs {:.2}× the optimum — any moderate constant works",
                at_half / best_mean
            ));
        }
    }

    ExperimentResult {
        id: "E8-p-sweep",
        reproduces: "Section 1.2's choice of a constant p (robustness ablation)",
        tables: vec![("convergence vs p".to_owned(), table)],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_sweeps_all_p() {
        let mut cfg = ExpConfig::quick();
        cfg.trials = 3;
        let result = run(&cfg);
        assert_eq!(result.tables[0].1.row_count(), 2 * PS.len());
        assert_eq!(result.notes.len(), 2);
    }
}
