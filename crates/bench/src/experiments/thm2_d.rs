//! **E4 — Theorem 2, diameter scaling.**
//!
//! On paths and cycles the diameter grows with `n` (`D = n−1` resp.
//! `⌊n/2⌋`), so Theorem 2 predicts `rounds ≈ D² log n`. A log–log fit
//! of mean rounds against `D` should produce a slope near 2 (slightly
//! above, because `log n` grows along the sweep), and the normalized
//! ratio `rounds / (D² ln n)` should stay roughly flat — that flatness
//! *is* the empirical content of Theorem 2.

use crate::{election_summary, ExpConfig, ExperimentResult, GraphSpec};
use bfw_core::theory;
use bfw_core::InitialConfig;
use bfw_stats::{loglog_fit, Table};

fn sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![8, 12, 16, 24, 32]
    } else {
        vec![8, 12, 16, 24, 32, 48, 64, 96, 128]
    }
}

/// Budget for a path/cycle workload of diameter `d` in an `n`-node
/// graph: a generous constant times the Theorem 2 bound.
pub(crate) fn d2_budget(d: u32, n: usize) -> u64 {
    let bound = theory::BfwChainTheory::theorem2_reference(d, n);
    (400.0 * bound).ceil() as u64 + 10_000
}

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> ExperimentResult {
    let mut table = Table::with_columns(&[
        "family",
        "n",
        "D",
        "rounds (mean ± ci95)",
        "p95",
        "rounds / (D² ln n)",
        "failed",
    ]);
    let mut notes = Vec::new();

    for family in ["path", "cycle"] {
        let mut ds = Vec::new();
        let mut means = Vec::new();
        for &n in &sizes(cfg.quick) {
            let spec = match family {
                "path" => GraphSpec::Path(n),
                _ => GraphSpec::Cycle(n),
            };
            let d = spec.diameter();
            let s = election_summary(
                0.5,
                &InitialConfig::AllLeaders,
                &spec.topology(),
                cfg.trials,
                cfg.threads,
                cfg.seed,
                d2_budget(d, n),
            );
            table.push_row(vec![
                family.to_owned(),
                n.to_string(),
                d.to_string(),
                s.display_rounds(),
                format!("{:.0}", s.rounds.quantile(0.95)),
                format!("{:.3}", theory::theorem2_ratio(s.rounds.mean(), d, n)),
                s.failures.to_string(),
            ]);
            if !s.rounds.is_empty() {
                ds.push(f64::from(d));
                means.push(s.rounds.mean());
            }
        }
        if ds.len() >= 2 {
            let fit = loglog_fit(&ds, &means);
            notes.push(format!(
                "{family}: rounds ≈ c·D^{:.2} (log-log slope, R² = {:.3})",
                fit.slope, fit.r_squared
            ));
        }
    }
    notes.push(
        "Theorem 2 is an upper bound: the ratio column rounds/(D² ln n) stays bounded \
         (here it even decreases — the all-leaders start eliminates most leaders locally \
         and fast, so small instances sit below the worst case). The worst-case D² \
         behaviour itself is isolated by the two-leader duel of E7."
            .to_owned(),
    );

    ExperimentResult {
        id: "E4-thm2-d-scaling",
        reproduces: "Theorem 2's D² factor (paths and cycles, growing diameter)",
        tables: vec![("rounds vs D".to_owned(), table)],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reports_exponent() {
        let mut cfg = ExpConfig::quick();
        cfg.trials = 4;
        let result = run(&cfg);
        assert_eq!(result.tables[0].1.row_count(), 10);
        assert_eq!(result.notes.len(), 3);
        for note in &result.notes[..2] {
            assert!(note.contains("D^"), "{note}");
        }
    }
}
