//! **E3 — Theorem 2, `log n` scaling at fixed diameter.**
//!
//! Theorem 2 bounds convergence by `O(D² log n)` w.h.p. Holding `D`
//! fixed and growing `n` isolates the `log n` factor: on cliques
//! (`D = 1`) and stars (`D = 2`), mean convergence rounds should grow
//! *linearly in `ln n`* — a straight line with positive slope and high
//! `R²` when regressing rounds on `ln n`, and a flat `rounds / ln n`
//! ratio column.

use crate::{election_summary, ExpConfig, ExperimentResult, GraphSpec};
use bfw_core::InitialConfig;
use bfw_stats::{linear_fit, Table};

fn sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![8, 16, 32, 64, 128]
    } else {
        vec![16, 32, 64, 128, 256, 512, 1024, 2048, 4096]
    }
}

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> ExperimentResult {
    let mut table = Table::with_columns(&[
        "family",
        "n",
        "D",
        "rounds (mean ± ci95)",
        "p95",
        "rounds / ln n",
        "failed",
    ]);
    let mut notes = Vec::new();

    for family in ["clique", "star"] {
        let mut lnn = Vec::new();
        let mut means = Vec::new();
        for &n in &sizes(cfg.quick) {
            let spec = match family {
                "clique" => GraphSpec::Clique(n),
                _ => GraphSpec::Star(n),
            };
            let d = spec.diameter();
            let budget = 10_000 * (n.max(2) as f64).ln().ceil() as u64;
            let s = election_summary(
                0.5,
                &InitialConfig::AllLeaders,
                &spec.topology(),
                cfg.trials,
                cfg.threads,
                cfg.seed,
                budget,
            );
            let ln_n = (n as f64).ln();
            table.push_row(vec![
                family.to_owned(),
                n.to_string(),
                d.to_string(),
                s.display_rounds(),
                format!("{:.0}", s.rounds.quantile(0.95)),
                format!("{:.2}", s.rounds.mean() / ln_n),
                s.failures.to_string(),
            ]);
            if !s.rounds.is_empty() {
                lnn.push(ln_n);
                means.push(s.rounds.mean());
            }
        }
        if lnn.len() >= 2 {
            let fit = linear_fit(&lnn, &means);
            notes.push(format!(
                "{family}: rounds ≈ {:.2}·ln n + {:.2} (R² = {:.3}) — linear in ln n as \
                 Theorem 2 predicts at fixed D",
                fit.slope, fit.intercept, fit.r_squared
            ));
        }
    }

    ExperimentResult {
        id: "E3-thm2-n-scaling",
        reproduces: "Theorem 2's log n factor (fixed-D families: clique D=1, star D=2)",
        tables: vec![("rounds vs n at fixed D".to_owned(), table)],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_fits_lines() {
        let mut cfg = ExpConfig::quick();
        cfg.trials = 5;
        let result = run(&cfg);
        assert_eq!(result.tables[0].1.row_count(), 10); // 2 families × 5 sizes
        assert_eq!(result.notes.len(), 2);
        for note in &result.notes {
            assert!(note.contains("R²"), "{note}");
        }
    }
}
