//! **E14 (extension) — unreliable hearing.**
//!
//! Beyond the paper: the beeping model assumes perfect hearing, and
//! Section 3's wave directionality silently depends on it. With each
//! listener missing a beep independently with probability `q`, a wave
//! can pass *through* a node (the node misses it, its neighbor does
//! not), after which the wave's echo can hit the originating leader
//! from behind — self-elimination becomes possible and Lemma 9 can
//! fail. This experiment measures, as a function of `q`: the
//! probability of losing *all* leaders (safety collapse), and the
//! convergence rate of the runs that survive.
//!
//! Expected shape: graceful degradation for small `q` (waves are short
//! and local; missing one beep usually just delays elimination) and
//! increasing wipeouts as `q` grows — quantifying how far the paper's
//! model assumptions can be stretched.

use crate::{ExpConfig, ExperimentResult, GraphSpec};
use bfw_core::Bfw;
use bfw_sim::{run_trials, Network};
use bfw_stats::{Summary, Table};

const QS: [f64; 6] = [0.0, 0.01, 0.05, 0.1, 0.2, 0.4];

enum NoisyOutcome {
    Wipeout(u64),
    Converged(u64),
    StillRunning,
}

fn one_noisy_run(spec: &GraphSpec, q: f64, seed: u64, horizon: u64) -> NoisyOutcome {
    let mut net = Network::new(Bfw::new(0.5), spec.topology(), seed).with_hearing_noise(q);
    for round in 1..=horizon {
        net.step();
        match net.leader_count() {
            0 => return NoisyOutcome::Wipeout(round),
            1 => return NoisyOutcome::Converged(round),
            _ => {}
        }
    }
    NoisyOutcome::StillRunning
}

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> ExperimentResult {
    let trials = (4 * cfg.trials).max(40);
    let horizon: u64 = if cfg.quick { 20_000 } else { 200_000 };
    let workloads = if cfg.quick {
        vec![GraphSpec::Cycle(16)]
    } else {
        vec![GraphSpec::Cycle(32), GraphSpec::Grid(5, 5)]
    };
    let mut table = Table::with_columns(&[
        "graph",
        "q (miss prob)",
        "wipeouts (all leaders lost)",
        "converged",
        "undecided",
        "rounds to 1 leader (mean)",
    ]);
    let mut notes = Vec::new();

    for spec in &workloads {
        let mut q0_wipeouts = 0usize;
        let mut worst_wipeout_rate = 0.0f64;
        for &q in &QS {
            let outcomes =
                run_trials(
                    trials,
                    cfg.threads,
                    cfg.seed ^ 0x401,
                    |seed| match one_noisy_run(spec, q, seed, horizon) {
                        NoisyOutcome::Wipeout(r) => (1u8, r),
                        NoisyOutcome::Converged(r) => (2u8, r),
                        NoisyOutcome::StillRunning => (0u8, 0),
                    },
                );
            let wipeouts = outcomes.iter().filter(|o| o.0 == 1).count();
            let converged: Vec<f64> = outcomes
                .iter()
                .filter(|o| o.0 == 2)
                .map(|o| o.1 as f64)
                .collect();
            let undecided = outcomes.iter().filter(|o| o.0 == 0).count();
            let mean = Summary::from_values(converged.clone());
            if q == 0.0 {
                q0_wipeouts = wipeouts;
            }
            worst_wipeout_rate = worst_wipeout_rate.max(wipeouts as f64 / trials as f64);
            table.push_row(vec![
                spec.to_string(),
                format!("{q}"),
                format!("{wipeouts}/{trials}"),
                format!("{}/{trials}", converged.len()),
                undecided.to_string(),
                if mean.is_empty() {
                    "—".into()
                } else {
                    format!("{:.0}", mean.mean())
                },
            ]);
        }
        if worst_wipeout_rate > 0.0 {
            notes.push(format!(
                "{spec}: q = 0 reproduces the exact model ({q0_wipeouts} wipeouts — Lemma 9); \
                 with noise the deterministic guarantee is genuinely lost (worst wipeout \
                 rate {:.0}% in the sweep) — the freeze protects against echoes only \
                 under reliable hearing",
                100.0 * worst_wipeout_rate
            ));
        } else {
            notes.push(format!(
                "{spec}: no wipeout observed before convergence in this sweep \
                 ({q0_wipeouts} at q = 0, per Lemma 9); on this topology noise mainly \
                 slows (or on dense graphs even speeds up) elimination — the wipeout \
                 risk is topology-dependent (cf. the grid rows)"
            ));
        }
    }

    ExperimentResult {
        id: "E14-noise",
        reproduces: "extension beyond the paper: sensitivity of Section 3's guarantees to \
                     unreliable hearing",
        tables: vec![("noise sweep".to_owned(), table)],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_contrasts_clean_and_noisy() {
        let mut cfg = ExpConfig::quick();
        cfg.trials = 8;
        let result = run(&cfg);
        let table = &result.tables[0].1;
        assert_eq!(table.row_count(), QS.len());
        // q = 0 row: zero wipeouts (Lemma 9).
        let clean = &table.rows()[0];
        assert_eq!(clean[1], "0");
        assert!(clean[2].starts_with("0/"), "{clean:?}");
    }
}
