//! **E15 — the leader survival curve (the paper's narrative, plotted).**
//!
//! Section 1.3 describes the dynamics: leaders beeping "with different
//! frequencies ... are gradually eliminated, until only one remains".
//! Tracking the mean number of surviving leaders per round makes the
//! two regimes of that process visible and explains E4's measured
//! exponent: from the all-leaders start, dense local skirmishes remove
//! almost everyone within `O(1/p)`-scale rounds (halving times nearly
//! constant), after which the process enters the slow long-range-duel
//! tail whose length scales like `D²` (E7). The table reports the
//! rounds at which the mean leader count crosses `n/2, n/4, …, 2, 1`.

use crate::{ExpConfig, ExperimentResult, GraphSpec};
use bfw_core::Bfw;
use bfw_sim::{run_trials, Network};
use bfw_stats::Table;

/// Mean leader count per round across trials, until all trials have
/// converged (or `horizon`).
fn survival_curve(spec: &GraphSpec, cfg: &ExpConfig, horizon: u64) -> Vec<f64> {
    let trials = cfg.trials.max(10);
    let curves = run_trials(trials, cfg.threads, cfg.seed ^ 0xDECA, |seed| {
        let mut net = Network::new(Bfw::new(0.5), spec.topology(), seed);
        let mut counts = Vec::with_capacity(horizon as usize + 1);
        counts.push(net.leader_count() as f64);
        for _ in 0..horizon {
            // Once converged the count stays 1; skip the stepping cost.
            if net.leader_count() == 1 {
                break;
            }
            net.step();
            counts.push(net.leader_count() as f64);
        }
        counts
    });
    let mut mean = vec![0.0; horizon as usize + 1];
    for curve in &curves {
        for (t, slot) in mean.iter_mut().enumerate() {
            // Converged curves implicitly continue at 1.
            *slot += curve.get(t).copied().unwrap_or(1.0);
        }
    }
    for slot in &mut mean {
        *slot /= curves.len() as f64;
    }
    mean
}

/// First round at which the curve drops to `threshold` or below.
fn crossing(curve: &[f64], threshold: f64) -> Option<u64> {
    curve.iter().position(|&c| c <= threshold).map(|t| t as u64)
}

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> ExperimentResult {
    let workloads = if cfg.quick {
        vec![GraphSpec::Cycle(32), GraphSpec::Clique(32)]
    } else {
        vec![
            GraphSpec::Cycle(64),
            GraphSpec::Clique(256),
            GraphSpec::Path(64),
            GraphSpec::Grid(8, 8),
        ]
    };
    let mut table = Table::with_columns(&[
        "graph",
        "n",
        "threshold",
        "round (mean count ≤ threshold)",
        "Δ from previous",
    ]);
    let mut notes = Vec::new();

    for spec in &workloads {
        let n = spec.topology().node_count();
        let d = spec.diameter();
        let horizon = super::thm2_d::d2_budget(d, n).min(500_000);
        let curve = survival_curve(spec, cfg, horizon);
        let mut thresholds = Vec::new();
        let mut k = n as f64 / 2.0;
        while k >= 2.0 {
            thresholds.push(k);
            k /= 2.0;
        }
        thresholds.push(1.0);
        let mut prev = 0u64;
        let mut halving_rounds = Vec::new();
        for threshold in thresholds {
            match crossing(&curve, threshold) {
                Some(round) => {
                    table.push_row(vec![
                        spec.to_string(),
                        n.to_string(),
                        format!("{threshold:.0}"),
                        round.to_string(),
                        (round - prev).to_string(),
                    ]);
                    halving_rounds.push(round - prev);
                    prev = round;
                }
                None => {
                    table.push_row(vec![
                        spec.to_string(),
                        n.to_string(),
                        format!("{threshold:.0}"),
                        "not reached".to_owned(),
                        "—".to_owned(),
                    ]);
                }
            }
        }
        if halving_rounds.len() >= 3 {
            let first = halving_rounds[0].max(1);
            let last = *halving_rounds.last().expect("non-empty").max(&1);
            notes.push(format!(
                "{spec}: early halvings cost ~{first} round(s); the final 2→1 step costs \
                 {last} — {:.1}× more. The tail (a long-range duel, E7) dominates \
                 convergence, exactly the paper's gradual-elimination narrative.",
                last as f64 / first as f64
            ));
        }
    }

    ExperimentResult {
        id: "E15-decay",
        reproduces: "Section 1.3's elimination dynamics (survival curve, two regimes)",
        tables: vec![("leader survival crossings".to_owned(), table)],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shows_two_regimes() {
        let mut cfg = ExpConfig::quick();
        cfg.trials = 6;
        let result = run(&cfg);
        assert!(result.tables[0].1.row_count() >= 8);
        assert!(!result.notes.is_empty());
        // Every workload's curve must reach 1 (convergence).
        for row in result.tables[0].1.rows() {
            assert_ne!(row[3], "not reached", "{row:?}");
        }
    }

    #[test]
    fn crossing_finds_first_drop() {
        let curve = [8.0, 5.0, 3.0, 1.0, 1.0];
        assert_eq!(crossing(&curve, 4.0), Some(2));
        assert_eq!(crossing(&curve, 1.0), Some(3));
        assert_eq!(crossing(&curve, 0.5), None);
    }
}
