//! **E15 (extension) — churn tolerance and re-election latency.**
//!
//! The paper's guarantees are for a static world: a fixed connected
//! graph and the Eq. (2) initialization. This experiment measures how
//! BFW behaves when the world moves, using the `bfw-scenario` engine:
//! on each topology the elected leader is crashed and later rejoins
//! (in fresh `W•`), and a partition is opened and healed. Each
//! disruption is answered (or not) by a **re-election**: the scenario
//! monitor records the latency from the disruption to the next
//! unique leader that stays stable for the configured window.
//!
//! Expected shape: after a crash + rejoin the recovered `W•` node is the
//! only leader candidate and wins in `O(D)`-ish rounds (its first
//! beep wave sweeps unopposed); partitions that isolate the leader
//! recover only after healing. The table quantifies both across
//! cycle / star / random topologies.

use crate::{ExpConfig, ExperimentResult, GraphSpec};
use bfw_scenario::{run_bfw_scenario, KernelKind, ScenarioSpec, Timeline};
use bfw_scenario::{Recovery, ScenarioEvent};
use bfw_sim::run_trials_batched;
use bfw_stats::{Summary, Table};

/// The crash + heal schedule every topology is subjected to.
///
/// The rejoin is **contested**: two random nodes crash before the
/// leader does, so `RecoverAll` reintroduces three fresh `W•`
/// candidates at once and the re-election is a real multi-leader duel
/// whose length depends on the topology (not just on the schedule).
fn churn_timeline(n: usize, horizon: u64) -> Timeline {
    let half: Vec<bfw_graph::NodeId> = (0..n / 2).map(bfw_graph::NodeId::new).collect();
    Timeline::new()
        .at(horizon * 2 / 10, ScenarioEvent::CrashRandom)
        .at(horizon * 2 / 10 + 50, ScenarioEvent::CrashRandom)
        // Crash the elected leader, let the network sit leaderless,
        // then every crashed node rejoins as a fresh W• and they duel.
        .at(horizon * 3 / 10, ScenarioEvent::CrashLeader)
        .at(horizon * 3 / 10 + 200, ScenarioEvent::RecoverAll)
        // Open a half/half partition, then heal it.
        .at(horizon * 6 / 10, ScenarioEvent::Partition { side: half })
        .at(horizon * 6 / 10 + 300, ScenarioEvent::Heal)
}

fn scenario_for(spec: &GraphSpec, horizon: u64, n: usize) -> ScenarioSpec {
    ScenarioSpec {
        name: format!("churn on {spec}"),
        graph: spec.to_string(),
        p: 0.5,
        rounds: horizon,
        stability: 50,
        seed: 0,
        protocol: bfw_scenario::ProtocolKind::Bfw,
        heartbeat: None,
        timeout: None,
        grace: None,
        runtime: Default::default(),
        scheduler: None,
        kernel: KernelKind::default(),
        threads: None,
        timeline: churn_timeline(n, horizon),
        trace: None,
    }
}

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> ExperimentResult {
    let trials = cfg.trials.max(8);
    let (size, horizon): (usize, u64) = if cfg.quick {
        (12, 30_000)
    } else {
        (24, 120_000)
    };
    let workloads = vec![
        GraphSpec::Cycle(size),
        GraphSpec::Star(size),
        GraphSpec::ErdosRenyi(size, 250, 7),
        GraphSpec::Grid(size / 4, 4),
    ];
    // Note: every disruption opens its own recovery window (same-round
    // bursts share one); a stable leader answers all open windows at
    // once, so a burst of events yields one recovery per distinct
    // disruption round, each with its own latency.
    let mut table = Table::with_columns(&[
        "graph",
        "disruption events",
        "recoveries (total / per trial)",
        "re-election latency (mean ± ci95)",
        "latency p95",
        "leader flaps (mean)",
        "unrecovered runs",
        "ended leaderless",
    ]);
    let mut notes = Vec::new();

    for spec in &workloads {
        let graph = spec.build();
        let scenario = scenario_for(spec, horizon, graph.node_count());
        let disruptions = scenario.timeline.entries().len();
        // Sharded-seed batches: each worker claims 4 consecutive seeds
        // per atomic fetch. This sweep keeps no state between trials,
        // so the per-worker scratch slot stays empty.
        let outcomes = run_trials_batched(
            trials,
            cfg.threads,
            cfg.seed ^ 0xC1124,
            4,
            |seed, _scratch: &mut ()| {
                let outcome = run_bfw_scenario(&scenario, &graph, seed)
                    .expect("churn scenario timing is always valid");
                let latencies: Vec<u64> =
                    outcome.recoveries.iter().map(Recovery::latency).collect();
                (
                    latencies,
                    outcome.leader_flaps,
                    outcome.pending_disruption.is_some(),
                    outcome.final_leaders.is_empty(),
                )
            },
        );
        let mut latencies = Vec::new();
        let mut flaps = Vec::new();
        let mut recoveries = 0usize;
        let mut unrecovered = 0usize;
        let mut wipeouts = 0usize;
        for (lats, flap_count, pending, leaderless) in &outcomes {
            recoveries += lats.len();
            latencies.extend(lats.iter().map(|&l| l as f64));
            flaps.push(*flap_count as f64);
            unrecovered += usize::from(*pending);
            wipeouts += usize::from(*leaderless);
        }
        let latency = Summary::from_values(latencies);
        let flaps = Summary::from_values(flaps);
        table.push_row(vec![
            spec.to_string(),
            disruptions.to_string(),
            format!("{recoveries} / {:.1}", recoveries as f64 / trials as f64),
            if latency.is_empty() {
                "—".into()
            } else {
                format!("{:.0} ± {:.0}", latency.mean(), latency.ci95_half_width())
            },
            if latency.is_empty() {
                "—".into()
            } else {
                format!("{:.0}", latency.quantile(0.95))
            },
            format!("{:.1}", flaps.mean()),
            format!("{unrecovered}/{trials}"),
            format!("{wipeouts}/{trials}"),
        ]);
        if unrecovered == 0 {
            notes.push(format!(
                "{spec}: every disruption re-elected a stable leader \
                 (mean latency {:.0} rounds over {recoveries} recoveries)",
                latency.mean()
            ));
        } else if wipeouts == unrecovered {
            notes.push(format!(
                "{spec}: {wipeouts}/{trials} runs lost every leader — a duel or heal-merge \
                 wipeout, the dynamic-graph face of Section 5's non-self-stabilization"
            ));
        } else {
            notes.push(format!(
                "{spec}: {unrecovered}/{trials} runs ended with an unanswered disruption \
                 ({wipeouts} of them leaderless; the rest were still electing at the horizon)"
            ));
        }
    }
    notes.push(
        "recovery exists only because crashed nodes rejoin in fresh W• (the scenario's \
         RecoverAll); BFW alone cannot re-elect after losing its last leader — Section 5's \
         non-self-stabilization, now measured"
            .to_owned(),
    );

    ExperimentResult {
        id: "E15-churn",
        reproduces: "extension beyond the paper: re-election latency under crash/rejoin and \
                     partition/heal churn (bfw-scenario engine)",
        tables: vec![("churn recovery".to_owned(), table)],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_full_table() {
        let mut cfg = ExpConfig::quick();
        cfg.trials = 4;
        let result = run(&cfg);
        let table = &result.tables[0].1;
        assert_eq!(table.row_count(), 4, "{}", table.to_markdown());
        let cycle_row = &table.rows()[0];
        assert_eq!(cycle_row[0], "cycle:12");
        // Some recoveries must complete on the cycle at this horizon.
        assert!(
            !cycle_row[2].starts_with("0 /"),
            "cycle should record recoveries, got {cycle_row:?}"
        );
        assert!(!result.notes.is_empty());
    }

    #[test]
    fn timeline_has_crash_and_heal() {
        let t = churn_timeline(12, 10_000);
        let events: Vec<String> = t.entries().iter().map(|e| e.event.to_string()).collect();
        assert!(events.contains(&"crash-leader".to_owned()));
        assert!(events.contains(&"heal".to_owned()));
    }
}
